//! `digiq_bench::cli::CommonArgs` contract tests: the accepted flag
//! family, bad-value rejection (exit code 2 from the real binary), and
//! round-tripping of the router/scheduler strategy selections.

use digiq_bench::cli::CommonArgs;
use qcircuit::pipeline::{PipelineConfig, RouteStrategy, ScheduleStrategy};
use std::process::Command;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn the_full_flag_family_parses() {
    let a = CommonArgs::from_args(
        &argv(&[
            "--small",
            "--full",
            "--json",
            "--seeds",
            "5",
            "--workers",
            "7",
            "--router",
            "lookahead",
            "--scheduler",
            "asap",
            "--cache-dir",
            "/tmp/x",
            "--resume",
            "--store-capacity",
            "9",
        ]),
        1,
    )
    .unwrap();
    assert!(a.small && a.full && a.json && a.resume && !a.smoke);
    assert_eq!((a.seeds, a.workers), (5, 7));
    assert_eq!(a.pipeline.router, RouteStrategy::Lookahead { window: 16 });
    assert_eq!(a.pipeline.scheduler, ScheduleStrategy::Asap);
    assert_eq!(a.cache_dir.as_deref(), Some("/tmp/x"));
    assert_eq!(a.store_capacity, Some(9));
    // Unknown flags are ignored (bespoke per-binary extras pass through).
    assert!(CommonArgs::from_args(&argv(&["--max-rows", "4"]), 1).is_ok());
}

#[test]
fn bad_values_are_rejected_with_the_offending_flag_named() {
    for (args, needle) in [
        (vec!["--workers", "0"], "--workers"),
        (vec!["--workers", "lots"], "--workers"),
        (vec!["--seeds", "-1"], "--seeds"),
        (vec!["--router", "magic"], "magic"),
        (vec!["--scheduler", "magic"], "magic"),
        (vec!["--store-capacity", "big"], "--store-capacity"),
        (vec!["--cache-dir"], "--cache-dir"),
        (vec!["--resume"], "--cache-dir"),
    ] {
        let err = CommonArgs::from_args(&argv(&args), 1).unwrap_err();
        assert!(err.contains(needle), "{args:?}: {err}");
    }
}

/// The process-level contract: a malformed flag exits the real binary
/// with status 2 and a message on stderr, before any work happens.
#[test]
fn malformed_flags_exit_the_binary_with_status_2() {
    for args in [
        &["--workers", "0"][..],
        &["--router", "magic"],
        &["--resume"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
            .args(args)
            .output()
            .expect("run sweep binary");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error:"), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?} printed to stdout");
    }
}

/// `--help` / `-h` print the shared flag family plus the binary's own
/// extras and exit 0 before any work happens.
#[test]
fn help_exits_zero_and_documents_the_flag_family() {
    for (bin, flag, extra) in [
        (env!("CARGO_BIN_EXE_sweep"), "--help", "--compare-serial"),
        (env!("CARGO_BIN_EXE_sweep"), "-h", "--interrupt-after"),
        (env!("CARGO_BIN_EXE_cosim"), "--help", "--diff-analytic"),
        (env!("CARGO_BIN_EXE_table2_parking"), "-h", "--max-rows"),
    ] {
        let out = Command::new(bin).arg(flag).output().expect("run binary");
        assert_eq!(out.status.code(), Some(0), "{bin} {flag}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        // The shared family…
        for shared in ["--workers", "--seeds", "--cache-dir", "--router", "--help"] {
            assert!(stdout.contains(shared), "{bin} {flag} is missing {shared}");
        }
        // …plus the binary's bespoke extras.
        assert!(stdout.contains(extra), "{bin} {flag} is missing {extra}");
        assert!(out.stderr.is_empty(), "{bin} {flag} wrote to stderr");
    }
}

#[test]
fn router_and_scheduler_selections_roundtrip() {
    for (router, scheduler) in [
        ("greedy", "crosstalk"),
        ("greedy", "asap"),
        ("lookahead", "crosstalk"),
        ("lookahead", "asap"),
    ] {
        let a = CommonArgs::from_args(&argv(&["--router", router, "--scheduler", scheduler]), 1)
            .unwrap();
        // The parsed names round-trip back to the flag values…
        assert_eq!(a.pipeline.router.name(), router);
        assert_eq!(a.pipeline.scheduler.name(), scheduler);
        // …and re-parsing the printed names reproduces the selection.
        let b = CommonArgs::from_args(
            &argv(&[
                "--router",
                a.pipeline.router.name(),
                "--scheduler",
                a.pipeline.scheduler.name(),
            ]),
            1,
        )
        .unwrap();
        assert_eq!(a.pipeline, b.pipeline);
    }
    // Defaults reproduce the paper pipeline exactly.
    assert_eq!(
        CommonArgs::from_args(&[], 1).unwrap().pipeline,
        PipelineConfig::default()
    );
}
