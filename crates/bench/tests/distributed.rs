//! Cross-process distributed-sweep checks against the real `sweep`
//! binary: N=4 single-thread worker processes sharing one cache dir
//! merge byte-identical to the serial run and to the committed engine
//! golden; a worker killed while holding a claim leaves a sweep the
//! survivors finish (stale-claim expiry) with the same bytes; and two
//! workers racing the same claims never double-journal a job. The
//! in-process claim-protocol tests live in
//! `crates/core/tests/distributed.rs`.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "digiq-dist-cli-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn path_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sweep_cmd(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    cmd.args(args).stderr(Stdio::null());
    cmd
}

fn sweep_stdout(args: &[&str]) -> String {
    let out = sweep_cmd(args).output().expect("run sweep");
    assert!(out.status.success(), "sweep {args:?} failed");
    String::from_utf8(out.stdout).expect("utf-8 report")
}

fn serial_smoke() -> String {
    sweep_stdout(&["--smoke"])
}

fn golden_smoke() -> String {
    // CARGO_MANIFEST_DIR = crates/bench; the golden lives at the repo root.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/engine_smoke.json");
    std::fs::read_to_string(&path).expect("read engine golden")
}

/// One record per job across every journal shard of the smoke spec.
fn journal_lines(cache_dir: &Path) -> usize {
    let journal_dir = cache_dir.join("v1/journal");
    let mut lines = 0;
    for entry in std::fs::read_dir(&journal_dir).expect("journal dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            lines += std::fs::read_to_string(&path)
                .expect("read shard")
                .lines()
                .count();
        }
    }
    lines
}

#[test]
fn four_worker_processes_merge_byte_identical_to_serial_and_golden() {
    let dir = TempDir::new("n4");
    let merged = sweep_stdout(&[
        "--smoke",
        "--distributed",
        "--n-workers",
        "4",
        "--cache-dir",
        dir.path_str(),
    ]);
    let serial = serial_smoke();
    assert_eq!(merged, serial, "merged report differs from the serial run");
    assert_eq!(
        merged.trim_end(),
        golden_smoke().trim_end(),
        "merged report differs from tests/golden/engine_smoke.json"
    );

    // A standalone merge over the same shards reproduces the bytes.
    let remerged = sweep_stdout(&["--smoke", "--merge", "--cache-dir", dir.path_str()]);
    assert_eq!(remerged, serial);
}

#[test]
fn killed_worker_claims_expire_and_survivors_finish_with_identical_bytes() {
    let dir = TempDir::new("kill");
    // A doomed worker that grabs a claim and sits on it (30 s hold),
    // heartbeating all the while. SIGKILL takes the heartbeat thread
    // with it, so the claim goes stale after the short TTL.
    let mut doomed = sweep_cmd(&[
        "--smoke",
        "--worker-id",
        "0",
        "--n-workers",
        "1",
        "--claim-ttl-ms",
        "400",
        "--dist-hold-ms",
        "30000",
        "--cache-dir",
        dir.path_str(),
    ])
    .spawn()
    .expect("spawn doomed worker");
    // Give it time to claim its first job, then kill it mid-hold.
    std::thread::sleep(std::time::Duration::from_millis(600));
    doomed.kill().expect("kill worker");
    let _ = doomed.wait();

    // Survivors with the same TTL wait out the expiry, reclaim the
    // abandoned job, and the merged report still matches the serial run.
    let merged = sweep_stdout(&[
        "--smoke",
        "--distributed",
        "--n-workers",
        "2",
        "--claim-ttl-ms",
        "400",
        "--cache-dir",
        dir.path_str(),
    ]);
    assert_eq!(
        merged,
        serial_smoke(),
        "post-kill merge differs from the serial run"
    );
}

#[test]
fn racing_workers_never_double_journal_a_job() {
    let dir = TempDir::new("race");
    // Two workers with the same scan offset race every claim.
    let workers: Vec<_> = (0..2)
        .map(|id| {
            sweep_cmd(&[
                "--smoke",
                "--worker-id",
                &id.to_string(),
                "--n-workers",
                "1",
                "--cache-dir",
                dir.path_str(),
            ])
            .spawn()
            .expect("spawn racing worker")
        })
        .collect();
    for mut w in workers {
        assert!(w.wait().expect("wait worker").success());
    }
    // The smoke spec has 4 jobs; the claim protocol must have admitted
    // exactly one journal record for each across all shards.
    assert_eq!(journal_lines(dir.path()), 4, "a job was double-journaled");
    assert_eq!(
        sweep_stdout(&["--smoke", "--merge", "--cache-dir", dir.path_str()]),
        serial_smoke()
    );
}
