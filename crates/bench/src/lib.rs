//! # digiq-bench — harnesses regenerating every DigiQ table and figure
//!
//! Each binary prints the rows/series of one paper artifact; run them all
//! with `cargo run -p digiq-bench --release --bin <name>`:
//!
//! | Binary              | Artifact |
//! |---------------------|----------|
//! | `table1_design_space` | Table I (design space) |
//! | `table2_parking`      | Table II (parking frequencies + drift tolerance) |
//! | `table3_cells`        | Table III (RSFQ cell library) |
//! | `fig2_trajectory`     | Fig 2 (SFQ-driven Bloch trajectory) |
//! | `fig3_cycle`          | Fig 3 (one DigiQ_opt controller cycle) |
//! | `fig4_waveform`       | Fig 4b (current-generator transient) |
//! | `fig7_cz_error`       | Fig 7 (CZ error vs drift, 1–3 pulses) |
//! | `fig8_synthesis`      | Fig 8a/b/c (power, area, cables) + §VI-A2 delay |
//! | `fig9_exec_time`      | Fig 9 (normalized execution time) |
//! | `fig10_gate_error`    | Fig 10a/b (per-qubit and per-coupler errors) |
//! | `scalability`         | §VI-A3 (max qubits at 10 W) |
//! | `sweep`               | batched design × benchmark × seed sweeps via `digiq_core::engine` |
//! | `cosim`               | cycle-accurate co-simulation (`digiq_core::cosim`) with `--diff-analytic` validation of the Fig 9 model and `--trace` per-cycle dumps |
//!
//! Every binary parses the shared flag family in [`cli`] (`--small` /
//! `--full` / `--smoke`, `--workers`, `--seeds`, `--json`, `--router` /
//! `--scheduler`, and the artifact-store flags `--cache-dir` /
//! `--resume` / `--store-capacity`); `--help` / `-h` print the family
//! plus each binary's bespoke extras. The sweep-shaped binaries are
//! driven by the batched evaluation engine (`digiq_core::engine`): jobs
//! shard over `--workers` threads (default: every core), shared
//! artifacts are memoized in the unified `digiq_core::store`
//! (persistently under `--cache-dir` — a second `sweep`, `cosim` or
//! `fig9_exec_time` run warm-starts with zero pass builds, and an
//! interrupted `sweep` resumes via `--resume`), and output is
//! deterministic for any worker count. `sweep --compare-serial`
//! measures the parallel speedup and proves byte-identical reports.
//!
//! Heavier harnesses accept `--small` / `--full` to trade fidelity for
//! runtime (defaults regenerate a faithful reduced grid; `--full` matches
//! paper scale). The `benches/` directory holds std-only timing kernels
//! (see [`timing`]) for the computational hot paths; run them with
//! `cargo bench -p digiq-bench --bench kernels` (add `-- --quick` for
//! smoke mode, `--json-out FILE` to record the stats).
//!
//! The same evaluations are also served over TCP by the `digiq-serve`
//! crate: its `serve` daemon shares one engine across clients (with
//! request coalescing and graceful drain), and its `loadgen` binary —
//! built on [`timing::percentile`] — measures the service's req/s and
//! p50/p99 latency. `scripts/ci.sh --bench-json` records both kernel
//! and service numbers in `BENCH_<date>.json`.

pub mod cli;
pub mod timing;

/// Parses a `--flag` style boolean from argv.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses `--key value` from argv.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Prints a rule line for table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_do_not_panic() {
        assert!(!super::has_flag("--definitely-not-set"));
        assert!(super::arg_value("--nope").is_none());
        super::rule(10);
    }
}
