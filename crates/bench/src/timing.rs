//! Std-only micro-benchmark harness (offline replacement for criterion).
//!
//! Each kernel is warmed up for a fixed wall-clock budget, then timed over
//! a fixed number of samples; the harness reports min / median / mean
//! per-iteration times. Iteration counts per sample are auto-calibrated so
//! one sample lasts roughly `sample_budget`. Use `--quick` on the bench
//! binary to shrink budgets by 10× (CI smoke mode).
//!
//! ```
//! use digiq_bench::timing::Harness;
//!
//! let mut h = Harness::quick();
//! let stats = h.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! assert!(stats.median_ns > 0.0);
//! ```

use sfq_hw::json::{Json, ToJson};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-kernel timing summary (per-iteration, nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// Population standard deviation over the samples — near-zero spread
    /// distinguishes a stable measurement from one dominated by noise
    /// (e.g. a slow kernel that landed at one iteration per sample).
    pub stddev_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (calibrated).
    pub iters_per_sample: u64,
}

impl ToJson for Stats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("min_ns", self.min_ns.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("stddev_ns", self.stddev_ns.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
        ])
    }
}

impl Stats {
    /// Reads stats back from their [`ToJson`] form (one row of a
    /// committed `BENCH_<date>.json` record). `stddev_ns` is optional so
    /// records written before it existed still parse.
    ///
    /// # Errors
    ///
    /// Returns the first missing/mistyped field.
    pub fn from_json(j: &Json) -> Result<Stats, String> {
        Ok(Stats {
            min_ns: j.num_field("min_ns", "stats")?,
            median_ns: j.num_field("median_ns", "stats")?,
            mean_ns: j.num_field("mean_ns", "stats")?,
            stddev_ns: j.num_field("stddev_ns", "stats").unwrap_or(0.0),
            samples: j.count_field("samples", "stats")? as usize,
            iters_per_sample: j.count_field("iters_per_sample", "stats")?,
        })
    }
}

/// The `p`-th percentile (0–100) of a latency sample by
/// nearest-rank on a sorted copy — what `loadgen` reports as p50/p99.
/// Returns 0.0 on an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Micro-benchmark runner with fixed warm-up and sample budgets.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Wall-clock spent warming each kernel before timing.
    pub warm_up: Duration,
    /// Target wall-clock per timed sample.
    pub sample_budget: Duration,
    /// Timed samples per kernel.
    pub samples: usize,
    /// Minimum total iterations across all samples. Slow kernels whose
    /// calibration lands at one iteration per sample would otherwise be
    /// summarized from `samples` single shots — the floor spreads at
    /// least this many iterations over the samples regardless of budget.
    pub min_total_iters: u64,
    /// Collected results, in run order.
    pub results: Vec<(String, Stats)>,
}

impl Harness {
    /// Criterion-comparable defaults (~3 s per kernel).
    pub fn standard() -> Self {
        Harness {
            warm_up: Duration::from_millis(500),
            sample_budget: Duration::from_millis(150),
            samples: 20,
            min_total_iters: 60,
            results: Vec::new(),
        }
    }

    /// Fast smoke-mode budgets (~0.3 s per kernel).
    pub fn quick() -> Self {
        Harness {
            warm_up: Duration::from_millis(50),
            sample_budget: Duration::from_millis(15),
            samples: 10,
            min_total_iters: 20,
            results: Vec::new(),
        }
    }

    /// Times `f`, prints one report line, and records the stats.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> Stats {
        // Warm up and calibrate: how many iterations fit the sample budget?
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let floor = self.min_total_iters.div_ceil(self.samples.max(1) as u64);
        let iters = ((self.sample_budget.as_secs_f64() / per_iter).ceil() as u64)
            .max(floor)
            .max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            sample_ns.push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        let var = sample_ns
            .iter()
            .map(|&x| (x - mean_ns) * (x - mean_ns))
            .sum::<f64>()
            / sample_ns.len() as f64;
        let stats = Stats {
            min_ns: sample_ns[0],
            median_ns: sample_ns[sample_ns.len() / 2],
            mean_ns,
            stddev_ns: var.sqrt(),
            samples: self.samples,
            iters_per_sample: iters,
        };
        println!(
            "{name:<32} min {:>12}  median {:>12}  mean {:>12} ±{:>10}  ({} samples x {} iters)",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.stddev_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push((name.to_string(), stats));
        stats
    }
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_kernel() {
        let mut h = Harness {
            warm_up: Duration::from_millis(1),
            sample_budget: Duration::from_micros(200),
            samples: 3,
            min_total_iters: 0,
            results: Vec::new(),
        };
        let s = h.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns || (s.median_ns - s.min_ns).abs() < 1e3);
        assert!(s.stddev_ns >= 0.0);
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].0, "noop_sum");
    }

    #[test]
    fn slow_kernels_hit_the_iteration_floor() {
        // A zero sample budget calibrates to 1 iter/sample; the floor must
        // still spread min_total_iters over the samples.
        let mut h = Harness {
            warm_up: Duration::from_micros(10),
            sample_budget: Duration::ZERO,
            samples: 4,
            min_total_iters: 30,
            results: Vec::new(),
        };
        let s = h.bench("floored", || black_box(1u64 + 1));
        assert!(
            s.iters_per_sample >= 8,
            "floor not applied: {} iters/sample",
            s.iters_per_sample
        );
        assert!(s.iters_per_sample * s.samples as u64 >= 30);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let s = Stats {
            min_ns: 1.25,
            median_ns: 2.5,
            mean_ns: 3.75,
            stddev_ns: 0.5,
            samples: 4,
            iters_per_sample: 5,
        };
        let j = Json::parse(&s.to_json_string()).unwrap();
        assert_eq!(Stats::from_json(&j), Ok(s));
        // Records written before stddev existed still parse (as 0.0).
        let legacy = Json::parse(
            r#"{"min_ns":1,"median_ns":2,"mean_ns":3,"samples":4,"iters_per_sample":5}"#,
        )
        .unwrap();
        let parsed = Stats::from_json(&legacy).unwrap();
        assert_eq!(parsed.stddev_ns, 0.0);
        assert_eq!(parsed.iters_per_sample, 5);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Order-independent: percentile sorts its own copy.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0);
    }

    #[test]
    fn stats_serialize_their_fields() {
        let s = Stats {
            min_ns: 1.0,
            median_ns: 2.0,
            mean_ns: 3.0,
            stddev_ns: 0.25,
            samples: 4,
            iters_per_sample: 5,
        };
        let j = Json::parse(&s.to_json_string()).unwrap();
        assert_eq!(j.num_field("median_ns", "stats"), Ok(2.0));
        assert_eq!(j.count_field("iters_per_sample", "stats"), Ok(5));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 us");
        assert_eq!(fmt_ns(3.2e6), "3.20 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
