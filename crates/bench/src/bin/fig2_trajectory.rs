//! Regenerates Fig 2: Bloch-sphere trajectory of a qubit driven by a
//! resonant SFQ pulse train (blue) vs free evolution (orange).
use qsim::pulse::{SfqParams, SfqPulseSim};
use qsim::transmon::Transmon;

fn main() {
    let sim = SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default());
    let driven = sim.resonant_comb(16);
    println!("# driven trajectory: tick x y z   (one SFQ pulse per qubit period)");
    for (k, (x, y, z)) in sim.bloch_trajectory(&driven).iter().enumerate() {
        println!("D {k:4} {x:+.5} {y:+.5} {z:+.5}");
    }
    let free = vec![false; 16];
    println!("# free evolution: tick x y z   (constant z, xy precession)");
    let mut prefixed = vec![true];
    prefixed.extend_from_slice(&free);
    for (k, (x, y, z)) in sim.bloch_trajectory(&prefixed).iter().enumerate() {
        println!("F {k:4} {x:+.5} {y:+.5} {z:+.5}");
    }
}
