//! Regenerates Fig 2: Bloch-sphere trajectory of a qubit driven by a
//! resonant SFQ pulse train (blue) vs free evolution (orange).
//!
//! The two trajectories are independent, so they run through the
//! evaluation engine's ordered map (output order fixed regardless of
//! scheduling or `--workers`; flags parsed by `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::{default_workers, par_map_ordered};
use qsim::pulse::{SfqParams, SfqPulseSim};
use qsim::transmon::Transmon;

fn main() {
    let args = CommonArgs::parse(default_workers());
    let sim = SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default());
    let driven = sim.resonant_comb(16);
    let mut free_prefixed = vec![true];
    free_prefixed.extend_from_slice(&[false; 16]);
    let pulse_trains = [driven, free_prefixed];
    let trajectories = par_map_ordered(&pulse_trains, args.workers.min(2), |_, bits| {
        sim.bloch_trajectory(bits)
    });

    println!("# driven trajectory: tick x y z   (one SFQ pulse per qubit period)");
    for (k, (x, y, z)) in trajectories[0].iter().enumerate() {
        println!("D {k:4} {x:+.5} {y:+.5} {z:+.5}");
    }
    println!("# free evolution: tick x y z   (constant z, xy precession)");
    for (k, (x, y, z)) in trajectories[1].iter().enumerate() {
        println!("F {k:4} {x:+.5} {y:+.5} {z:+.5}");
    }
}
