//! Cycle-accurate co-simulation driver: runs designs × benchmarks × seeds
//! through `digiq_core::cosim` via the evaluation engine, with every job
//! also executing the analytic Fig 9 model on the identical compiled
//! artifact and hash draws.
//!
//! Modes:
//!
//! * default / `--small` — all four Table I designs plus the Impossible
//!   MIMD reference × {QGAN, Ising, BV} on an 8×8 grid;
//! * `--full` — the five Fig 9 configurations × all six Table IV
//!   benchmarks at paper scale (32×32 grid);
//! * `--smoke` — a tiny 2-design × 2-benchmark sweep on a 4×4 grid with
//!   2 workers, printing **only** the compact report JSON (the CI golden
//!   check diffs this byte-for-byte);
//! * `--diff-analytic` — after the sweep, prints the per-job divergence
//!   table, re-runs on a fresh single-worker engine to prove the
//!   serialized report is byte-identical for any worker count, and exits
//!   non-zero on any cycle-count divergence;
//! * `--trace` — co-simulates one small DigiQ_opt workload with the
//!   per-cycle trace enabled and prints the first events.
//!
//! Common flags (parsed by `digiq_bench::cli`): `--workers N` (default:
//! all cores), `--seeds N` (drift seeds `0..N`), `--json` (print the
//! report JSON instead of the table), the pass-pipeline strategy
//! selection `--router greedy|lookahead` / `--scheduler crosstalk|asap`
//! (the differential check holds for every configuration — both engines
//! consume the identical compiled artifact), and the artifact-store
//! flags `--cache-dir DIR` (persist compiled stages and co-simulation
//! reports so a second run warm-starts; store counters go to stderr) /
//! `--store-capacity N` (LRU-bound the in-memory store).

use digiq_bench::cli::CommonArgs;
use digiq_core::cosim::{simulate, CosimParams};
use digiq_core::design::{ControllerDesign, SystemConfig};
use digiq_core::engine::{default_workers, CosimSweepReport, EvalEngine, SweepSpec};
use digiq_core::exec::{checkerboard_groups, ExecParams};
use qcircuit::bench::{Benchmark, ALL_BENCHMARKS};
use qcircuit::schedule::schedule_crosstalk_aware;
use qcircuit::topology::Grid;
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;

/// Acceptable f64-rounding gap between integer-tick and f64-ns totals.
const NS_TOLERANCE: f64 = 1e-9;

fn spec_for_mode(smoke: bool, full: bool, seeds: usize) -> SweepSpec {
    let spec = if smoke {
        // The shared constructor digiq-serve replays over the wire —
        // one definition, one golden.
        SweepSpec::cosim_smoke()
    } else if full {
        let mut s = SweepSpec::small_grid(SweepSpec::fig9_designs(), &ALL_BENCHMARKS, 32, 32);
        s.benchmarks = ALL_BENCHMARKS
            .iter()
            .map(|&bench| digiq_core::engine::BenchmarkSpec {
                bench,
                scale: digiq_core::engine::BenchScale::Paper,
            })
            .collect();
        s
    } else {
        let mut designs = vec![ControllerDesign::ImpossibleMimd.into()];
        designs.extend(SweepSpec::table_one_designs());
        SweepSpec::small_grid(
            designs,
            &[Benchmark::Qgan, Benchmark::Ising, Benchmark::Bv],
            8,
            8,
        )
    };
    spec.with_seeds((0..seeds.max(1) as u64).collect())
}

fn print_table(report: &CosimSweepReport) {
    println!(
        "cosim: {} jobs on the {}x{} grid",
        report.jobs.len(),
        report.grid_rows,
        report.grid_cols
    );
    digiq_bench::rule(96);
    println!(
        "{:22} | {:>8} | {:>12} | {:>12} | {:>7} | {:>7} | {:>8}",
        "design", "bench", "cosim (ns)", "analytic", "1q cyc", "ser cyc", "util"
    );
    digiq_bench::rule(96);
    for job in &report.jobs {
        let util = job
            .cosim
            .groups
            .iter()
            .map(|g| g.utilization)
            .fold(0.0f64, f64::max);
        println!(
            "{:22} | {:>8} | {:>12.1} | {:>12.1} | {:>7} | {:>7} | {:>7.1}%",
            job.design.to_string(),
            job.benchmark,
            job.cosim.total_ns,
            job.analytic.total_ns,
            job.cosim.oneq_cycles,
            job.cosim.serialization_cycles,
            100.0 * util,
        );
    }
    digiq_bench::rule(96);
}

fn print_diff(report: &CosimSweepReport) -> bool {
    println!("differential validation (cosim − analytic):");
    digiq_bench::rule(96);
    println!(
        "{:22} | {:>8} | {:>4} | {:>7} | {:>7} | {:>6} | {:>12} | {:>6}",
        "design", "bench", "seed", "Δ1q", "Δser", "Δslots", "rel ns err", "exact"
    );
    digiq_bench::rule(96);
    let mut all_exact = true;
    for job in &report.jobs {
        let d = job.diff();
        let exact = d.is_exact(NS_TOLERANCE);
        all_exact &= exact;
        println!(
            "{:22} | {:>8} | {:>4} | {:>7} | {:>7} | {:>6} | {:>12.2e} | {:>6}",
            job.design.to_string(),
            job.benchmark,
            job.seed,
            d.oneq_delta,
            d.serialization_delta,
            d.slots_delta,
            d.total_rel_err,
            if exact { "yes" } else { "NO" },
        );
    }
    digiq_bench::rule(96);
    all_exact
}

fn trace_demo() {
    let grid = Grid::new(4, 4);
    let mut c = qcircuit::ir::Circuit::new(16);
    for q in 0..16 {
        c.ry(q, 0.1 + 0.05 * q as f64);
    }
    c.cz(0, 1);
    let slots = schedule_crosstalk_aware(&c, &grid);
    let groups = checkerboard_groups(4, 16, 2);
    let mut params = ExecParams::new(SystemConfig::paper_default(
        ControllerDesign::DigiqOpt { bs: 2 },
        2,
    ));
    params.config.n_qubits = 16;
    let report = simulate(&c, &slots, &groups, &CosimParams::new(params).with_trace());
    println!(
        "trace demo: DigiQ_opt(BS=2), 16 rotations + 1 CZ, {} cycles of 1q work, {} lost to contention",
        report.oneq_cycles, report.serialization_cycles
    );
    digiq_bench::rule(72);
    println!(
        "{:>9} | {:>4} | {:>5} | {:>5} | {:>9} | {:>6}",
        "tick", "slot", "group", "qubit", "kind", "detail"
    );
    digiq_bench::rule(72);
    for e in report.trace.iter().take(40) {
        let qubit = e.qubit.map(|q| q.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{:>9} | {:>4} | {:>5} | {:>5} | {:>9} | {:>6}",
            e.tick,
            e.slot,
            e.group,
            qubit,
            e.kind.name(),
            e.detail
        );
    }
    if report.trace.len() > 40 {
        println!("… {} more events", report.trace.len() - 40);
    }
    digiq_bench::rule(72);
}

fn main() {
    if digiq_bench::has_flag("--trace") {
        trace_demo();
        return;
    }
    let args = CommonArgs::parse_for(
        "cosim",
        &[
            (
                "--trace",
                "co-simulate one small workload with the per-cycle trace and exit",
            ),
            (
                "--diff-analytic",
                "print per-job divergence, verify worker-count byte-identity, exit non-zero on drift",
            ),
        ],
        default_workers(),
    );
    let (smoke, workers) = (args.smoke, args.workers);
    let spec = spec_for_mode(smoke, args.full, args.seeds).with_pipeline(args.pipeline);

    let engine = args.engine();
    let report = engine.run_cosim(&spec, workers);
    args.report_store_stats(&engine);

    if smoke || args.json {
        println!("{}", report.to_json_string());
        if smoke {
            return; // the golden check diffs pure JSON output
        }
    } else {
        print_table(&report);
        let (hits, misses) = engine.cosim_cache_stats();
        println!("cosim cache: {misses} simulated, {hits} reused");
        for p in &engine.pass_cache_stats().passes {
            println!(
                "pipeline pass {:12} {} built, {} reused ({})",
                p.pass,
                p.misses,
                p.hits,
                digiq_bench::timing::fmt_ns(p.wall_ns)
            );
        }
    }

    if digiq_bench::has_flag("--diff-analytic") {
        // In --json mode stdout stays pure JSON; validation chatter goes
        // to stderr, and the exit code still reports divergence.
        let quiet = args.json;
        let all_exact = if quiet {
            report.jobs.iter().all(|r| r.diff().is_exact(NS_TOLERANCE))
        } else {
            print_diff(&report)
        };

        // Worker-count invariance: a fresh single-worker engine must
        // serialize the byte-identical report.
        let serial = EvalEngine::new(CostModel::default()).run_cosim(&spec, 1);
        let a = report.to_json_string();
        let b = serial.to_json_string();
        assert_eq!(
            a, b,
            "worker count changed the serialized co-simulation report"
        );
        let say = |msg: String| {
            if quiet {
                eprintln!("{msg}");
            } else {
                println!("{msg}");
            }
        };
        say(format!(
            "report byte-identical across worker counts ({} bytes, {} vs 1 workers)",
            a.len(),
            workers
        ));

        if all_exact {
            say(format!(
                "zero cycle-count divergence across {} jobs (ns totals within {NS_TOLERANCE:.0e} relative)",
                report.jobs.len()
            ));
        } else {
            eprintln!("cycle-count divergence detected — the co-simulator and the analytic model disagree");
            std::process::exit(1);
        }
    }
}
