//! Regenerates Table III: the RSFQ cell library.
fn main() {
    println!("Table III: RSFQ cell library");
    digiq_bench::rule(56);
    println!(
        "{:10} | {:>11} | {:>8} | {:>9} | {}",
        "cell", "area (um2)", "JJs", "delay(ps)", "source"
    );
    digiq_bench::rule(56);
    for c in sfq_hw::cells::ALL_CELLS {
        println!(
            "{:10} | {:>11.0} | {:>8} | {:>9.1} | {}",
            c.mnemonic(),
            c.area_um2(),
            c.jj_count(),
            c.delay_ps(),
            if c.in_table_iii() {
                "Table III"
            } else {
                "estimate"
            }
        );
    }
}
