//! Regenerates Table III: the RSFQ cell library.
//!
//! `--json` emits the rows via `sfq_hw::json` (flags parsed by
//! `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use sfq_hw::json::{Json, ToJson};

fn main() {
    let args = CommonArgs::parse(default_workers());
    if args.json {
        let json = Json::Arr(
            sfq_hw::cells::ALL_CELLS
                .iter()
                .map(|c| {
                    Json::obj([
                        ("cell", c.mnemonic().to_json()),
                        ("area_um2", c.area_um2().to_json()),
                        ("jj_count", c.jj_count().to_json()),
                        ("delay_ps", c.delay_ps().to_json()),
                        ("in_table_iii", c.in_table_iii().to_json()),
                    ])
                })
                .collect(),
        );
        println!("{}", json.render());
        return;
    }
    println!("Table III: RSFQ cell library");
    digiq_bench::rule(56);
    println!(
        "{:10} | {:>11} | {:>8} | {:>9} | {}",
        "cell", "area (um2)", "JJs", "delay(ps)", "source"
    );
    digiq_bench::rule(56);
    for c in sfq_hw::cells::ALL_CELLS {
        println!(
            "{:10} | {:>11.0} | {:>8} | {:>9.1} | {}",
            c.mnemonic(),
            c.area_um2(),
            c.jj_count(),
            c.delay_ps(),
            if c.in_table_iii() {
                "Table III"
            } else {
                "estimate"
            }
        );
    }
}
