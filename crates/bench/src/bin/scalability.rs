//! Regenerates §VI-A3: maximum qubit counts within the 10 W budget.
//!
//! Tiles synthesize in parallel through the evaluation engine's hardware
//! cache (`--workers`, default: all cores); `--json` emits the rows via
//! `sfq_hw::json` (flags parsed by `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use digiq_core::scalability::scalability_table_parallel;
use sfq_hw::json::ToJson;

fn main() {
    let args = CommonArgs::parse(default_workers());
    let workers = args.workers;
    let rows = scalability_table_parallel(&sfq_hw::cost::CostModel::default(), workers);
    if args.json {
        println!("{}", rows.to_json_string());
        return;
    }
    println!("Scalability at the 10 W 4K-stage budget (1,024-qubit tiles)");
    digiq_bench::rule(84);
    println!(
        "{:22} | {:>10} | {:>12} | {:>11} | {:>10}",
        "design", "tile W", "tile mm2", "max qubits", "cables"
    );
    digiq_bench::rule(84);
    for r in rows {
        println!(
            "{:22} | {:>10.3} | {:>12.1} | {:>11} | {:>10}",
            r.design, r.tile_power_w, r.tile_area_mm2, r.max_qubits, r.cables_per_tile
        );
    }
    println!();
    println!("paper: DigiQ_min(BS=2) >42,000 | DigiQ_opt(BS=8) >25,000 | DigiQ_opt(BS=16) >17,000");
}
