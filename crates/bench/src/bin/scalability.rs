//! Regenerates §VI-A3: maximum qubit counts within the 10 W budget.
fn main() {
    println!("Scalability at the 10 W 4K-stage budget (1,024-qubit tiles)");
    digiq_bench::rule(84);
    println!(
        "{:22} | {:>10} | {:>12} | {:>11} | {:>10}",
        "design", "tile W", "tile mm2", "max qubits", "cables"
    );
    digiq_bench::rule(84);
    for r in digiq_core::scalability::scalability_table(&sfq_hw::cost::CostModel::default()) {
        println!(
            "{:22} | {:>10.3} | {:>12.1} | {:>11} | {:>10}",
            r.design, r.tile_power_w, r.tile_area_mm2, r.max_qubits, r.cables_per_tile
        );
    }
    println!();
    println!("paper: DigiQ_min(BS=2) >42,000 | DigiQ_opt(BS=8) >25,000 | DigiQ_opt(BS=16) >17,000");
}
