//! The batched sweep driver: runs designs × benchmarks × seeds through
//! `digiq_core::engine`, sharded over worker threads with every shared
//! artifact memoized, and emits a deterministic `SweepReport`.
//!
//! Modes:
//!
//! * default / `--small` — the four Table I designs × {QGAN, Ising, BV}
//!   on an 8×8 grid;
//! * `--full` — the five Fig 9 configurations × all six Table IV
//!   benchmarks at paper scale (32×32 grid);
//! * `--smoke` — a tiny 2-design × 2-benchmark sweep on a 4×4 grid with
//!   2 workers, printing **only** the compact report JSON (the CI golden
//!   check diffs this byte-for-byte);
//! * `--compare-serial` — times the sweep on fresh engines with 1 worker
//!   and with `--workers` workers, verifies the two serialized reports
//!   are byte-identical, and prints the speedup;
//! * `--distributed` — spawns `--n-workers` child processes of this
//!   binary (each `--worker-id N`) that coordinate through claim files
//!   under the shared `--cache-dir`, then merges their shard journals
//!   into a report byte-identical to the serial run; `--merge` runs
//!   just the merge step over existing shards.
//!
//! Common flags (parsed by `digiq_bench::cli`): `--workers N` (default:
//! all cores), `--seeds N` (drift seeds `0..N`), `--json` (print the
//! report JSON — with per-pass pipeline metrics and store counters
//! appended — instead of the table), the pass-pipeline strategy
//! selection `--router greedy|lookahead` / `--scheduler crosstalk|asap`,
//! and the artifact-store flags: `--cache-dir DIR` persists compiled
//! stages, baselines and the job journal so a second run warm-starts
//! (report JSON byte-identical, zero pass builds — store counters go to
//! stderr), `--resume` skips journaled jobs after an interruption, and
//! `--store-capacity N` bounds the in-memory store (LRU eviction).
//! `--interrupt-after N` deliberately stops after `N` fresh jobs (the
//! interruption-testing hook behind the CI resume check).

use digiq_bench::cli::CommonArgs;
use digiq_core::engine::{
    default_workers, DistributedConfig, EvalEngine, PassCacheStats, SweepReport, SweepSpec,
};
use digiq_core::store::{ArtifactStore, SweepJournal};
use qcircuit::bench::{Benchmark, ALL_BENCHMARKS};
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};
use std::path::Path;
use std::time::{Duration, Instant};

fn spec_for_mode(smoke: bool, full: bool, seeds: usize) -> SweepSpec {
    let spec = if smoke {
        // The shared constructor digiq-serve replays over the wire —
        // one definition, one golden.
        SweepSpec::smoke()
    } else if full {
        let mut s = SweepSpec::small_grid(SweepSpec::fig9_designs(), &ALL_BENCHMARKS, 32, 32);
        s.benchmarks = ALL_BENCHMARKS
            .iter()
            .map(|&bench| digiq_core::engine::BenchmarkSpec {
                bench,
                scale: digiq_core::engine::BenchScale::Paper,
            })
            .collect();
        s
    } else {
        SweepSpec::small_grid(
            SweepSpec::table_one_designs(),
            &[Benchmark::Qgan, Benchmark::Ising, Benchmark::Bv],
            8,
            8,
        )
    };
    spec.with_seeds((0..seeds.max(1) as u64).collect())
}

fn print_table(report: &SweepReport) {
    println!(
        "sweep: {} jobs on the {}x{} grid",
        report.jobs.len(),
        report.grid_rows,
        report.grid_cols
    );
    digiq_bench::rule(78);
    println!(
        "{:22} | {:>8} | {:>4} | {:>12} | {:>10}",
        "design", "bench", "seed", "total (ns)", "vs MIMD"
    );
    digiq_bench::rule(78);
    for job in &report.jobs {
        println!(
            "{:22} | {:>8} | {:>4} | {:>12.1} | {:>10.2}",
            job.design.to_string(),
            job.benchmark,
            job.seed,
            job.report.exec.total_ns,
            job.report.normalized_time
        );
    }
    digiq_bench::rule(78);
    let c = &report.cache;
    println!(
        "cache: {} artifacts built, {} reused (circuits {}+{}, compiles {}+{}, seq-dbs {}+{})",
        c.total_misses(),
        c.total_hits(),
        c.circuit_misses,
        c.circuit_hits,
        c.compile_misses,
        c.compile_hits,
        c.seq_db_misses,
        c.seq_db_hits,
    );
}

fn print_pass_stats(stats: &PassCacheStats) {
    println!("pipeline passes (per-stage cache + build metrics):");
    println!(
        "{:12} | {:>5} | {:>6} | {:>10} | {:>9} | {:>9} | {:>6} | {:>6}",
        "pass", "built", "reused", "wall", "gates in", "gates out", "swaps", "slots"
    );
    for p in &stats.passes {
        println!(
            "{:12} | {:>5} | {:>6} | {:>10} | {:>9} | {:>9} | {:>6} | {:>6}",
            p.pass,
            p.misses,
            p.hits,
            digiq_bench::timing::fmt_ns(p.wall_ns),
            p.gates_in,
            p.gates_out,
            p.swaps_added,
            p.slots_out,
        );
    }
}

/// The report JSON with the pipeline configuration, per-pass accounting
/// and store counters appended as extra top-level fields
/// (`SweepReport::parse` ignores unknown fields, so the result still
/// parses as a plain report). Recording the strategy selection keeps
/// archived reports reproducible — two runs under different pipelines
/// stay distinguishable.
fn json_with_pass_stats(
    report: &SweepReport,
    spec: &SweepSpec,
    stats: &PassCacheStats,
    engine: &EvalEngine,
) -> String {
    let mut j = report.to_json();
    if let Json::Obj(fields) = &mut j {
        fields.push((
            "pipeline".to_string(),
            Json::obj([
                ("router", spec.pipeline.router.name().to_json()),
                ("scheduler", spec.pipeline.scheduler.name().to_json()),
                ("fuse", spec.pipeline.fuse.to_json()),
            ]),
        ));
        fields.push(("pass_cache".to_string(), stats.to_json()));
        fields.push(("store".to_string(), engine.store_stats().to_json()));
    }
    j.render()
}

/// Parse an optional non-negative integer flag, exiting with a usage
/// error on malformed values (matches `--interrupt-after` handling).
fn dist_count(flag: &str) -> Option<usize> {
    digiq_bench::arg_value(flag).map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("error: `{flag}` needs a non-negative integer, got `{v}`");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args = CommonArgs::parse_for(
        "sweep",
        &[
            (
                "--compare-serial",
                "time fresh-engine serial vs parallel runs and verify byte-identity",
            ),
            (
                "--interrupt-after N",
                "stop after N fresh jobs (journal testing hook; needs --cache-dir)",
            ),
            (
                "--distributed",
                "spawn --n-workers worker processes over --cache-dir, wait, merge, print",
            ),
            (
                "--n-workers N",
                "worker process count for --distributed (default 4)",
            ),
            (
                "--worker-id N",
                "run as one distributed worker: claim jobs, stream a shard journal",
            ),
            (
                "--merge",
                "assemble the final report from a distributed sweep's shard journals",
            ),
            (
                "--claim-ttl-ms N",
                "stale-claim expiry for distributed workers (default 30000)",
            ),
            (
                "--dist-hold-ms N",
                "hold each claimed job N ms before evaluating (crash-testing hook)",
            ),
        ],
        default_workers(),
    );
    let (smoke, workers) = (args.smoke, args.workers);
    let spec = spec_for_mode(smoke, args.full, args.seeds).with_pipeline(args.pipeline);

    if digiq_bench::has_flag("--compare-serial") {
        // The serial equivalent of the old hand-rolled loops: every job
        // rebuilds its artifacts from scratch (a fresh engine per job, so
        // nothing is shared — exactly what the per-figure binaries did
        // before the engine existed).
        let jobs = spec.jobs();
        let t0 = Instant::now();
        let naive: Vec<_> = jobs
            .iter()
            .map(|job| EvalEngine::new(CostModel::default()).run_job(&spec, job))
            .collect();
        let naive_ns = t0.elapsed().as_nanos() as f64;

        let t1 = Instant::now();
        let serial = EvalEngine::new(CostModel::default()).run(&spec, 1);
        let serial_ns = t1.elapsed().as_nanos() as f64;
        let t2 = Instant::now();
        let parallel = EvalEngine::new(CostModel::default()).run(&spec, workers);
        let parallel_ns = t2.elapsed().as_nanos() as f64;

        assert_eq!(naive, serial.jobs, "caching changed the results");
        let a = serial.to_json_string();
        let b = parallel.to_json_string();
        assert_eq!(a, b, "worker count changed the serialized report");
        println!(
            "serial, no sharing:    {}  (artifacts rebuilt per job)",
            digiq_bench::timing::fmt_ns(naive_ns)
        );
        println!(
            "engine, 1 worker:      {}",
            digiq_bench::timing::fmt_ns(serial_ns)
        );
        println!(
            "engine, {workers} workers:     {}",
            digiq_bench::timing::fmt_ns(parallel_ns)
        );
        println!(
            "engine speedup {:.2}x over the serial equivalent ({} jobs); \
             reports byte-identical across worker counts ({} bytes)",
            naive_ns / parallel_ns.max(1.0),
            spec.job_count(),
            a.len()
        );
        return;
    }

    let engine = args.engine();

    // Distributed modes, all anchored on one shared `--cache-dir`:
    // `--worker-id N` runs one claiming worker (normally spawned as a
    // child of `--distributed`), `--distributed` spawns `--n-workers`
    // such children and merges once they exit, and `--merge` assembles
    // a report from whatever shard journals are already on disk.
    let worker_id = dist_count("--worker-id");
    let distributed = digiq_bench::has_flag("--distributed");
    let merge_only = digiq_bench::has_flag("--merge");

    let report = if worker_id.is_some() || distributed || merge_only {
        let Some(dir) = args.cache_dir.as_deref() else {
            eprintln!("error: distributed sweep modes need --cache-dir");
            std::process::exit(2);
        };
        let dir = Path::new(dir);
        let n_workers = dist_count("--n-workers").unwrap_or(4).max(1);

        if let Some(id) = worker_id {
            // Worker process: claim → evaluate → shard-journal until the
            // whole sweep is journaled. Prints nothing to stdout — the
            // coordinator (or `--merge`) owns the report.
            let mut cfg = DistributedConfig::new(format!("w{id}"));
            cfg.scan_offset = id * spec.job_count() / n_workers;
            if let Some(ms) = dist_count("--claim-ttl-ms") {
                cfg.claim_ttl = Duration::from_millis(ms as u64);
            }
            cfg.hold = dist_count("--dist-hold-ms").map(|ms| Duration::from_millis(ms as u64));
            if let Err(e) = engine.run_distributed(&spec, dir, &cfg, None) {
                eprintln!("error: worker w{id}: {e}");
                std::process::exit(1);
            }
            args.report_store_stats(&engine);
            return;
        }

        if distributed {
            // Coordinator: respawn this binary as N worker children
            // sharing the cache dir, forwarding our own flags (minus
            // `--distributed`) so mode/pipeline/ttl selections carry.
            let exe = std::env::current_exe().unwrap_or_else(|e| {
                eprintln!("error: cannot locate the sweep binary: {e}");
                std::process::exit(1);
            });
            let forwarded: Vec<String> = std::env::args()
                .skip(1)
                .filter(|a| a != "--distributed")
                .collect();
            let mut children = Vec::new();
            for id in 0..n_workers {
                let child = std::process::Command::new(&exe)
                    .args(&forwarded)
                    .args(["--worker-id", &id.to_string()])
                    .args(["--n-workers", &n_workers.to_string()])
                    .spawn()
                    .unwrap_or_else(|e| {
                        eprintln!("error: cannot spawn worker w{id}: {e}");
                        std::process::exit(1);
                    });
                children.push((id, child));
            }
            let mut failed = false;
            for (id, mut child) in children {
                let ok = child.wait().map(|s| s.success()).unwrap_or(false);
                if !ok {
                    eprintln!("error: worker w{id} exited with failure");
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
        }

        // Merge (runs for both the coordinator and `--merge`): assemble
        // the report from every shard journal under the cache dir. The
        // result is byte-identical to a serial in-process run.
        engine.merge_distributed(&spec, dir).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    } else {
        match &args.cache_dir {
            None => engine.run(&spec, workers),
            Some(dir) => {
                // Persistent mode: journal completed jobs under the cache
                // dir (keyed by the spec fingerprint) so `--resume` can skip
                // them, and report the deterministic cold-run cache
                // accounting so warm-started and resumed runs serialize
                // byte-identically to an uninterrupted one.
                let journal_dir = ArtifactStore::journal_dir(Path::new(dir));
                let journal =
                    SweepJournal::open(&journal_dir, spec.stable_key()).unwrap_or_else(|e| {
                        eprintln!("error: cannot open sweep journal under `{dir}`: {e}");
                        std::process::exit(1);
                    });
                let interrupt_after =
                    digiq_bench::arg_value("--interrupt-after").map(|v| {
                        v.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("error: `--interrupt-after` needs a non-negative integer, got `{v}`");
                    std::process::exit(2);
                })
                    });
                match engine.run_journaled(&spec, workers, &journal, args.resume, interrupt_after) {
                    Some(report) => report,
                    None => {
                        eprintln!(
                            "sweep interrupted after {} fresh job(s); journal at {} — \
                         rerun with --resume to finish",
                            interrupt_after.unwrap_or(0),
                            journal.path().display()
                        );
                        return;
                    }
                }
            }
        }
    };
    if smoke {
        // The CI golden check diffs this byte-for-byte: the plain report
        // only, nothing appended.
        println!("{}", report.to_json_string());
    } else if args.json {
        println!(
            "{}",
            json_with_pass_stats(&report, &spec, &engine.pass_cache_stats(), &engine)
        );
    } else {
        print_table(&report);
        print_pass_stats(&engine.pass_cache_stats());
    }
    args.report_store_stats(&engine);
}
