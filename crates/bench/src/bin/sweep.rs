//! The batched sweep driver: runs designs × benchmarks × seeds through
//! `digiq_core::engine`, sharded over worker threads with every shared
//! artifact memoized, and emits a deterministic `SweepReport`.
//!
//! Modes:
//!
//! * default / `--small` — the four Table I designs × {QGAN, Ising, BV}
//!   on an 8×8 grid;
//! * `--full` — the five Fig 9 configurations × all six Table IV
//!   benchmarks at paper scale (32×32 grid);
//! * `--smoke` — a tiny 2-design × 2-benchmark sweep on a 4×4 grid with
//!   2 workers, printing **only** the compact report JSON (the CI golden
//!   check diffs this byte-for-byte);
//! * `--compare-serial` — times the sweep on fresh engines with 1 worker
//!   and with `--workers` workers, verifies the two serialized reports
//!   are byte-identical, and prints the speedup.
//!
//! Common flags (parsed by `digiq_bench::cli`): `--workers N` (default:
//! all cores), `--seeds N` (drift seeds `0..N`), `--json` (print the
//! report JSON — with per-pass pipeline metrics and store counters
//! appended — instead of the table), the pass-pipeline strategy
//! selection `--router greedy|lookahead` / `--scheduler crosstalk|asap`,
//! and the artifact-store flags: `--cache-dir DIR` persists compiled
//! stages, baselines and the job journal so a second run warm-starts
//! (report JSON byte-identical, zero pass builds — store counters go to
//! stderr), `--resume` skips journaled jobs after an interruption, and
//! `--store-capacity N` bounds the in-memory store (LRU eviction).
//! `--interrupt-after N` deliberately stops after `N` fresh jobs (the
//! interruption-testing hook behind the CI resume check).

use digiq_bench::cli::CommonArgs;
use digiq_core::engine::{default_workers, EvalEngine, PassCacheStats, SweepReport, SweepSpec};
use digiq_core::store::{ArtifactStore, SweepJournal};
use qcircuit::bench::{Benchmark, ALL_BENCHMARKS};
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};
use std::path::Path;
use std::time::Instant;

fn spec_for_mode(smoke: bool, full: bool, seeds: usize) -> SweepSpec {
    let spec = if smoke {
        // The shared constructor digiq-serve replays over the wire —
        // one definition, one golden.
        SweepSpec::smoke()
    } else if full {
        let mut s = SweepSpec::small_grid(SweepSpec::fig9_designs(), &ALL_BENCHMARKS, 32, 32);
        s.benchmarks = ALL_BENCHMARKS
            .iter()
            .map(|&bench| digiq_core::engine::BenchmarkSpec {
                bench,
                scale: digiq_core::engine::BenchScale::Paper,
            })
            .collect();
        s
    } else {
        SweepSpec::small_grid(
            SweepSpec::table_one_designs(),
            &[Benchmark::Qgan, Benchmark::Ising, Benchmark::Bv],
            8,
            8,
        )
    };
    spec.with_seeds((0..seeds.max(1) as u64).collect())
}

fn print_table(report: &SweepReport) {
    println!(
        "sweep: {} jobs on the {}x{} grid",
        report.jobs.len(),
        report.grid_rows,
        report.grid_cols
    );
    digiq_bench::rule(78);
    println!(
        "{:22} | {:>8} | {:>4} | {:>12} | {:>10}",
        "design", "bench", "seed", "total (ns)", "vs MIMD"
    );
    digiq_bench::rule(78);
    for job in &report.jobs {
        println!(
            "{:22} | {:>8} | {:>4} | {:>12.1} | {:>10.2}",
            job.design.to_string(),
            job.benchmark,
            job.seed,
            job.report.exec.total_ns,
            job.report.normalized_time
        );
    }
    digiq_bench::rule(78);
    let c = &report.cache;
    println!(
        "cache: {} artifacts built, {} reused (circuits {}+{}, compiles {}+{}, seq-dbs {}+{})",
        c.total_misses(),
        c.total_hits(),
        c.circuit_misses,
        c.circuit_hits,
        c.compile_misses,
        c.compile_hits,
        c.seq_db_misses,
        c.seq_db_hits,
    );
}

fn print_pass_stats(stats: &PassCacheStats) {
    println!("pipeline passes (per-stage cache + build metrics):");
    println!(
        "{:12} | {:>5} | {:>6} | {:>10} | {:>9} | {:>9} | {:>6} | {:>6}",
        "pass", "built", "reused", "wall", "gates in", "gates out", "swaps", "slots"
    );
    for p in &stats.passes {
        println!(
            "{:12} | {:>5} | {:>6} | {:>10} | {:>9} | {:>9} | {:>6} | {:>6}",
            p.pass,
            p.misses,
            p.hits,
            digiq_bench::timing::fmt_ns(p.wall_ns),
            p.gates_in,
            p.gates_out,
            p.swaps_added,
            p.slots_out,
        );
    }
}

/// The report JSON with the pipeline configuration, per-pass accounting
/// and store counters appended as extra top-level fields
/// (`SweepReport::parse` ignores unknown fields, so the result still
/// parses as a plain report). Recording the strategy selection keeps
/// archived reports reproducible — two runs under different pipelines
/// stay distinguishable.
fn json_with_pass_stats(
    report: &SweepReport,
    spec: &SweepSpec,
    stats: &PassCacheStats,
    engine: &EvalEngine,
) -> String {
    let mut j = report.to_json();
    if let Json::Obj(fields) = &mut j {
        fields.push((
            "pipeline".to_string(),
            Json::obj([
                ("router", spec.pipeline.router.name().to_json()),
                ("scheduler", spec.pipeline.scheduler.name().to_json()),
                ("fuse", spec.pipeline.fuse.to_json()),
            ]),
        ));
        fields.push(("pass_cache".to_string(), stats.to_json()));
        fields.push(("store".to_string(), engine.store_stats().to_json()));
    }
    j.render()
}

fn main() {
    let args = CommonArgs::parse_for(
        "sweep",
        &[
            (
                "--compare-serial",
                "time fresh-engine serial vs parallel runs and verify byte-identity",
            ),
            (
                "--interrupt-after N",
                "stop after N fresh jobs (journal testing hook; needs --cache-dir)",
            ),
        ],
        default_workers(),
    );
    let (smoke, workers) = (args.smoke, args.workers);
    let spec = spec_for_mode(smoke, args.full, args.seeds).with_pipeline(args.pipeline);

    if digiq_bench::has_flag("--compare-serial") {
        // The serial equivalent of the old hand-rolled loops: every job
        // rebuilds its artifacts from scratch (a fresh engine per job, so
        // nothing is shared — exactly what the per-figure binaries did
        // before the engine existed).
        let jobs = spec.jobs();
        let t0 = Instant::now();
        let naive: Vec<_> = jobs
            .iter()
            .map(|job| EvalEngine::new(CostModel::default()).run_job(&spec, job))
            .collect();
        let naive_ns = t0.elapsed().as_nanos() as f64;

        let t1 = Instant::now();
        let serial = EvalEngine::new(CostModel::default()).run(&spec, 1);
        let serial_ns = t1.elapsed().as_nanos() as f64;
        let t2 = Instant::now();
        let parallel = EvalEngine::new(CostModel::default()).run(&spec, workers);
        let parallel_ns = t2.elapsed().as_nanos() as f64;

        assert_eq!(naive, serial.jobs, "caching changed the results");
        let a = serial.to_json_string();
        let b = parallel.to_json_string();
        assert_eq!(a, b, "worker count changed the serialized report");
        println!(
            "serial, no sharing:    {}  (artifacts rebuilt per job)",
            digiq_bench::timing::fmt_ns(naive_ns)
        );
        println!(
            "engine, 1 worker:      {}",
            digiq_bench::timing::fmt_ns(serial_ns)
        );
        println!(
            "engine, {workers} workers:     {}",
            digiq_bench::timing::fmt_ns(parallel_ns)
        );
        println!(
            "engine speedup {:.2}x over the serial equivalent ({} jobs); \
             reports byte-identical across worker counts ({} bytes)",
            naive_ns / parallel_ns.max(1.0),
            spec.job_count(),
            a.len()
        );
        return;
    }

    let engine = args.engine();
    let report = match &args.cache_dir {
        None => engine.run(&spec, workers),
        Some(dir) => {
            // Persistent mode: journal completed jobs under the cache
            // dir (keyed by the spec fingerprint) so `--resume` can skip
            // them, and report the deterministic cold-run cache
            // accounting so warm-started and resumed runs serialize
            // byte-identically to an uninterrupted one.
            let journal_dir = ArtifactStore::journal_dir(Path::new(dir));
            let journal = SweepJournal::open(&journal_dir, spec.stable_key()).unwrap_or_else(|e| {
                eprintln!("error: cannot open sweep journal under `{dir}`: {e}");
                std::process::exit(1);
            });
            let interrupt_after = digiq_bench::arg_value("--interrupt-after").map(|v| {
                v.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("error: `--interrupt-after` needs a non-negative integer, got `{v}`");
                    std::process::exit(2);
                })
            });
            match engine.run_journaled(&spec, workers, &journal, args.resume, interrupt_after) {
                Some(report) => report,
                None => {
                    eprintln!(
                        "sweep interrupted after {} fresh job(s); journal at {} — \
                         rerun with --resume to finish",
                        interrupt_after.unwrap_or(0),
                        journal.path().display()
                    );
                    return;
                }
            }
        }
    };
    if smoke {
        // The CI golden check diffs this byte-for-byte: the plain report
        // only, nothing appended.
        println!("{}", report.to_json_string());
    } else if args.json {
        println!(
            "{}",
            json_with_pass_stats(&report, &spec, &engine.pass_cache_stats(), &engine)
        );
    } else {
        print_table(&report);
        print_pass_stats(&engine.pass_cache_stats());
    }
    args.report_store_stats(&engine);
}
