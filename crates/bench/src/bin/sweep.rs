//! The batched sweep driver: runs designs × benchmarks × seeds through
//! `digiq_core::engine`, sharded over worker threads with every shared
//! artifact memoized, and emits a deterministic `SweepReport`.
//!
//! Modes:
//!
//! * default / `--small` — the four Table I designs × {QGAN, Ising, BV}
//!   on an 8×8 grid;
//! * `--full` — the five Fig 9 configurations × all six Table IV
//!   benchmarks at paper scale (32×32 grid);
//! * `--smoke` — a tiny 2-design × 2-benchmark sweep on a 4×4 grid with
//!   2 workers, printing **only** the compact report JSON (the CI golden
//!   check diffs this byte-for-byte);
//! * `--compare-serial` — times the sweep on fresh engines with 1 worker
//!   and with `--workers` workers, verifies the two serialized reports
//!   are byte-identical, and prints the speedup.
//!
//! Common flags: `--workers N` (default: all cores), `--seeds N` (drift
//! seeds `0..N`), `--json` (print the report JSON instead of the table).

use digiq_core::design::ControllerDesign;
use digiq_core::engine::{default_workers, EvalEngine, SweepReport, SweepSpec};
use qcircuit::bench::{Benchmark, ALL_BENCHMARKS};
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;
use std::time::Instant;

fn spec_for_mode(smoke: bool, full: bool, seeds: usize) -> SweepSpec {
    let spec = if smoke {
        SweepSpec::small_grid(
            vec![
                ControllerDesign::SfqMimdNaive.into(),
                ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ],
            &[Benchmark::Bv, Benchmark::Qgan],
            4,
            4,
        )
    } else if full {
        let mut s = SweepSpec::small_grid(SweepSpec::fig9_designs(), &ALL_BENCHMARKS, 32, 32);
        s.benchmarks = ALL_BENCHMARKS
            .iter()
            .map(|&bench| digiq_core::engine::BenchmarkSpec {
                bench,
                scale: digiq_core::engine::BenchScale::Paper,
            })
            .collect();
        s
    } else {
        SweepSpec::small_grid(
            SweepSpec::table_one_designs(),
            &[Benchmark::Qgan, Benchmark::Ising, Benchmark::Bv],
            8,
            8,
        )
    };
    spec.with_seeds((0..seeds.max(1) as u64).collect())
}

fn print_table(report: &SweepReport) {
    println!(
        "sweep: {} jobs on the {}x{} grid",
        report.jobs.len(),
        report.grid_rows,
        report.grid_cols
    );
    digiq_bench::rule(78);
    println!(
        "{:22} | {:>8} | {:>4} | {:>12} | {:>10}",
        "design", "bench", "seed", "total (ns)", "vs MIMD"
    );
    digiq_bench::rule(78);
    for job in &report.jobs {
        println!(
            "{:22} | {:>8} | {:>4} | {:>12.1} | {:>10.2}",
            job.design.to_string(),
            job.benchmark,
            job.seed,
            job.report.exec.total_ns,
            job.report.normalized_time
        );
    }
    digiq_bench::rule(78);
    let c = &report.cache;
    println!(
        "cache: {} artifacts built, {} reused (circuits {}+{}, compiles {}+{}, seq-dbs {}+{})",
        c.total_misses(),
        c.total_hits(),
        c.circuit_misses,
        c.circuit_hits,
        c.compile_misses,
        c.compile_hits,
        c.seq_db_misses,
        c.seq_db_hits,
    );
}

fn main() {
    let smoke = digiq_bench::has_flag("--smoke");
    let full = digiq_bench::has_flag("--full");
    let seeds: usize = digiq_bench::arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let workers: usize = if smoke {
        2
    } else {
        digiq_bench::arg_value("--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(default_workers)
    };
    let spec = spec_for_mode(smoke, full, seeds);

    if digiq_bench::has_flag("--compare-serial") {
        // The serial equivalent of the old hand-rolled loops: every job
        // rebuilds its artifacts from scratch (a fresh engine per job, so
        // nothing is shared — exactly what the per-figure binaries did
        // before the engine existed).
        let jobs = spec.jobs();
        let t0 = Instant::now();
        let naive: Vec<_> = jobs
            .iter()
            .map(|job| EvalEngine::new(CostModel::default()).run_job(&spec, job))
            .collect();
        let naive_ns = t0.elapsed().as_nanos() as f64;

        let t1 = Instant::now();
        let serial = EvalEngine::new(CostModel::default()).run(&spec, 1);
        let serial_ns = t1.elapsed().as_nanos() as f64;
        let t2 = Instant::now();
        let parallel = EvalEngine::new(CostModel::default()).run(&spec, workers);
        let parallel_ns = t2.elapsed().as_nanos() as f64;

        assert_eq!(naive, serial.jobs, "caching changed the results");
        let a = serial.to_json_string();
        let b = parallel.to_json_string();
        assert_eq!(a, b, "worker count changed the serialized report");
        println!(
            "serial, no sharing:    {}  (artifacts rebuilt per job)",
            digiq_bench::timing::fmt_ns(naive_ns)
        );
        println!(
            "engine, 1 worker:      {}",
            digiq_bench::timing::fmt_ns(serial_ns)
        );
        println!(
            "engine, {workers} workers:     {}",
            digiq_bench::timing::fmt_ns(parallel_ns)
        );
        println!(
            "engine speedup {:.2}x over the serial equivalent ({} jobs); \
             reports byte-identical across worker counts ({} bytes)",
            naive_ns / parallel_ns.max(1.0),
            spec.job_count(),
            a.len()
        );
        return;
    }

    let report = EvalEngine::new(CostModel::default()).run(&spec, workers);
    if smoke || digiq_bench::has_flag("--json") {
        println!("{}", report.to_json_string());
    } else {
        print_table(&report);
    }
}
