//! Regenerates Fig 8: power (a), area (b) and cable count (c) of every
//! design point per 1,024 qubits, plus the §VI-A2 worst-stage delay.
//!
//! The 26 design points synthesize independently, so the sweep is
//! sharded over `--workers` threads (default: all cores) through the
//! evaluation engine's ordered map — rows always print in the canonical
//! `fig8_points` order. `--json` emits the rows via `sfq_hw::json`
//! (flags parsed by `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use digiq_core::hardware::fig8_sweep_parallel;
use sfq_hw::json::ToJson;

fn main() {
    let args = CommonArgs::parse(default_workers());
    let workers = args.workers;
    let rows = fig8_sweep_parallel(&sfq_hw::cost::CostModel::default(), workers);
    if args.json {
        println!("{}", rows.to_json_string());
        return;
    }
    println!("Fig 8: hardware cost per 1,024 qubits ({workers} synthesis workers)");
    digiq_bench::rule(86);
    println!(
        "{:22} | {:>3} | {:>9} | {:>11} | {:>7} | {:>10}",
        "design", "G", "power (W)", "area (mm2)", "cables", "stage (ps)"
    );
    digiq_bench::rule(86);
    let mut worst: f64 = 0.0;
    for r in &rows {
        worst = worst.max(r.worst_stage_ps);
        println!(
            "{:22} | {:>3} | {:>9.3} | {:>11.1} | {:>7} | {:>10.1}",
            r.design, r.groups, r.power_w, r.area_mm2, r.cables, r.worst_stage_ps
        );
    }
    println!();
    println!("worst synthesized stage {worst:.1} ps -> 40 ps SFQ clock (paper: 34.5 ps)");
    println!("paper anchors: naive 5.9 W / 16,197 mm2 / 2,619 cables; decomp 10.7 W / 29,571 mm2 / 161 cables");
    println!("               DigiQ_min(G=2,BS=2) 39 cables; DigiQ_opt(G=2,BS=16) 33 cables");
}
