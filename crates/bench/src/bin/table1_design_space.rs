//! Regenerates Table I: the SFQ single-qubit-gate controller design space.
fn main() {
    println!("Table I: design space for SFQ-based single-qubit gate controllers");
    digiq_bench::rule(100);
    println!(
        "{:22} | {:42} | {:24} | {}",
        "design", "scalability", "execution", "calibration"
    );
    digiq_bench::rule(100);
    for row in digiq_core::design::design_space_table() {
        println!(
            "{:22} | {:42} | {:24} | {}",
            row.design, row.scalability, row.execution, row.calibration
        );
    }
}
