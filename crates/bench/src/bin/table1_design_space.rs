//! Regenerates Table I: the SFQ single-qubit-gate controller design space.
//!
//! `--json` emits the rows via `sfq_hw::json`; the printed design points
//! are exactly the ones `SweepSpec::table_one_designs` enumerates for the
//! evaluation engine (flags parsed by `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::{default_workers, SweepSpec};
use sfq_hw::json::ToJson;

fn main() {
    let args = CommonArgs::parse(default_workers());
    let rows = digiq_core::design::design_space_table();
    if args.json {
        println!("{}", rows.to_json_string());
        return;
    }
    println!("Table I: design space for SFQ-based single-qubit gate controllers");
    digiq_bench::rule(100);
    println!(
        "{:22} | {:42} | {:24} | {}",
        "design", "scalability", "execution", "calibration"
    );
    digiq_bench::rule(100);
    for row in &rows {
        println!(
            "{:22} | {:42} | {:24} | {}",
            row.design, row.scalability, row.execution, row.calibration
        );
    }
    println!();
    let points = SweepSpec::table_one_designs();
    let names: Vec<String> = points.iter().map(|p| p.design.to_string()).collect();
    println!("engine sweep axis: {}", names.join(", "));
}
