//! Regenerates Fig 10: (a) median single-qubit gate error per qubit for
//! DigiQ_opt(BS=8) and DigiQ_min(BS=2); (b) CZ error per coupler.
//!
//! Default: 64 qubits with coupler stride 4 (minutes). `--full`: all
//! 1,024 qubits / 1,984 couplers (much longer). `--workers N` sets the
//! error model's per-qubit/per-coupler worker pool (default: all cores,
//! matching the evaluation engine's sharding; flags parsed by
//! `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use digiq_core::error_model::{calibrate_shared, fig10a, fig10b, ErrorModelConfig};

fn main() {
    let args = CommonArgs::parse(default_workers());
    let full = args.full;
    let mut config = if full {
        ErrorModelConfig::default()
    } else {
        let mut c = ErrorModelConfig::small(64);
        c.grid_cols = 8;
        c
    };
    config.threads = args.workers;
    eprintln!("calibrating shared bitstreams…");
    let shared = calibrate_shared(&config);
    eprintln!(
        "evaluating per-qubit errors ({} qubits, {} workers)…",
        config.n_qubits, config.threads
    );
    let rows = fig10a(&config, &shared);
    println!("# Fig 10a: qubit drift(GHz) opt_median min_median");
    for r in &rows {
        println!(
            "A {:4} {:+.5} {:.3e} {:.3e}",
            r.qubit, r.drift_ghz, r.opt_median, r.min_median
        );
    }
    let med = |f: &dyn Fn(&digiq_core::error_model::QubitErrorRow) -> f64| {
        let mut v: Vec<f64> = rows.iter().map(f).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    eprintln!(
        "medians: opt {:.2e}, min {:.2e} (paper band ~1e-4..1e-3 with outliers)",
        med(&|r| r.opt_median),
        med(&|r| r.min_median)
    );

    let oneq: Vec<f64> = rows.iter().map(|r| r.opt_median).collect();
    let stride = if full { 1 } else { 4 };
    eprintln!("evaluating CZ errors (stride {stride})…");
    let czs = fig10b(&config, &oneq, stride);
    println!("# Fig 10b: coupler qa qb cz_error");
    for c in &czs {
        println!(
            "B {:4} {:4} {:4} {:.3e}",
            c.coupler, c.qubits.0, c.qubits.1, c.cz_error
        );
    }
    let over = czs.iter().filter(|c| c.cz_error > 0.002).count();
    eprintln!(
        "CZ error > 0.002 on {over}/{} couplers (paper: 3–7% with calibration, 84% without)",
        czs.len()
    );
}
