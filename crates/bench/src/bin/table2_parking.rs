//! Regenerates Table II: optimal parking frequencies and drift tolerance
//! for delay-implemented Rz gates with error ≤ 1e-4 at N = 255.
//!
//! `--max-rows N` caps the ranked rows (default 3, the paper's count —
//! the one bespoke flag beside the `digiq_bench::cli` family);
//! `--json` emits the rows via `sfq_hw::json`.
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use sfq_hw::json::{Json, ToJson};

fn main() {
    let args = CommonArgs::parse_for(
        "table2_parking",
        &[(
            "--max-rows N",
            "cap the ranked rows (default 3, the paper's count)",
        )],
        default_workers(),
    );
    let step = if args.full { 2.0e-5 } else { 1.0e-4 };
    let max_rows = digiq_bench::arg_value("--max-rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let rows = calib::parking::parking_search((4.0, 6.5), 0.040, 255, 1.0e-4, step, max_rows);
    if args.json {
        let json = Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("freq_ghz", r.freq_ghz.to_json()),
                        ("drift_tolerance_ghz", r.drift_tolerance_ghz.to_json()),
                        ("center_error", r.center_error.to_json()),
                    ])
                })
                .collect(),
        );
        println!("{}", json.render());
        return;
    }
    println!("Table II: optimal parking frequencies (N=255, err ≤ 1e-4, 40 ps clock)");
    println!("search band 4.0–6.5 GHz, step {step} GHz");
    digiq_bench::rule(66);
    println!(
        "{:>22} | {:>22} | {:>12}",
        "parking freq (GHz)", "drift tol (± GHz)", "center err"
    );
    digiq_bench::rule(66);
    for r in &rows {
        println!(
            "{:>22.5} | {:>22.5} | {:>12.2e}",
            r.freq_ghz, r.drift_tolerance_ghz, r.center_error
        );
    }
    println!();
    println!("paper reports: 6.21286 ±0.01282 | 5.02978 ±0.01049 | 4.14238 ±0.00820");
}
