//! Regenerates Fig 7: CZ gate error as a function of per-qubit frequency
//! drift for echo sequences of 1, 2 and 3 Uqq pulses (ideal 1q gates).
//!
//! Default: 5×5 drift grid ±6 MHz (runtime ~minutes). `--small`: 3×3.
//! The independent panels are sharded through the evaluation engine's
//! ordered map, so output order is fixed for any worker count (flags
//! parsed by `digiq_bench::cli`).
use calib::cz::{calibrate_shared_pulse, fig7_panel};
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::{default_workers, par_map_ordered};
use qsim::two_qubit::CoupledTransmons;

fn main() {
    let args = CommonArgs::parse(default_workers());
    let (grid, pulses_max) = if args.small { (3, 2) } else { (5, 3) };
    let pair = CoupledTransmons::paper_pair(6.21286, 4.14238);
    let pulse = calibrate_shared_pulse(&pair, 4.0, 0.25);
    println!(
        "# calibrated shared pulse: nominal CZ error {:.2e} (paper ~3e-4)",
        pulse.nominal_error
    );
    let panels: Vec<usize> = (1..=pulses_max).collect();
    let results = par_map_ordered(&panels, args.workers.min(panels.len()), |_, &n| {
        fig7_panel(&pair, &pulse, n, 0.006, grid, 3)
    });
    for (n, points) in panels.iter().zip(&results) {
        println!("# panel {n}: {n} Uqq pulse(s); columns: drift1(GHz) drift2(GHz) error");
        for p in points {
            println!(
                "{n} {:+.4} {:+.4} {:.3e}",
                p.drift1_ghz, p.drift2_ghz, p.error
            );
        }
    }
}
