//! Regenerates Fig 3: the gate sequence inside one DigiQ_opt controller
//! cycle — d "0"s (Rz via delay), the Ry(π/2) bitstream, and the residual
//! Rz absorbed into the next cycle.
//!
//! `--json` emits the decomposition via `sfq_hw::json` (flags parsed by
//! `digiq_bench::cli`).
use calib::opt_decomp::{decompose_opt, OptBasis};
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use sfq_hw::json::{Json, ToJson};

fn main() {
    let args = CommonArgs::parse(default_workers());
    let basis = OptBasis::ideal(255);
    let target = qsim::gates::h();
    let dec = decompose_opt(&target, &basis, 0.0, 2, 1e-6);
    if args.json {
        let delays: Vec<u64> = dec.delays.iter().map(|&d| d as u64).collect();
        let json = Json::obj([
            ("delays", delays.to_json()),
            ("residual_rz_rad", dec.phi_out.to_json()),
            ("error", dec.error.to_json()),
        ]);
        println!("{}", json.render());
        return;
    }
    println!("decomposing H on the ideal DigiQ_opt basis:");
    for (k, &d) in dec.delays.iter().enumerate() {
        println!(
            "  cycle {k}: wait d={d:3} ticks (Rz({:+.4} rad)) then fire Ry(pi/2) bitstream",
            basis.theta(d as usize)
        );
    }
    println!(
        "  residual Rz({:+.4} rad) absorbed into the next gate",
        dec.phi_out
    );
    println!("  achieved error: {:.2e}", dec.error);
    println!();
    println!("cycle timing: 253 bitstream ticks + 255 delay slots @40 ps = 20.32 ns");
}
