//! Regenerates Fig 9: execution time of the Table IV benchmarks on each
//! DigiQ configuration, normalized to the Impossible MIMD baseline.
//!
//! Driven by the batched evaluation engine: the 5 × 6 job matrix is
//! sharded over `--workers` threads (default: all cores) and every
//! shared artifact — compiled circuits, sequence databases — is built
//! once in the engine's artifact store, so each benchmark compiles a
//! single time for all five designs. Default runs the full paper-scale
//! benchmarks on the 32×32 grid (release build recommended); `--small`
//! runs reduced instances on an 8×8 grid in seconds. With `--cache-dir`
//! the compiled stages and baselines persist, so a second run (or a
//! preceding `sweep --cache-dir` over the same benchmarks) warm-starts
//! with zero pass builds.

use digiq_bench::cli::CommonArgs;
use digiq_core::engine::{default_workers, BenchScale, BenchmarkSpec, SweepSpec};
use qcircuit::bench::ALL_BENCHMARKS;

fn main() {
    let args = CommonArgs::parse(default_workers());
    let (small, workers) = (args.small, args.workers);
    let (rows, cols) = if small { (8, 8) } else { (32, 32) };
    let mut spec = SweepSpec::small_grid(SweepSpec::fig9_designs(), &ALL_BENCHMARKS, rows, cols)
        .with_pipeline(args.pipeline);
    if !small {
        spec.benchmarks = ALL_BENCHMARKS
            .iter()
            .map(|&bench| BenchmarkSpec {
                bench,
                scale: BenchScale::Paper,
            })
            .collect();
    }

    let engine = args.engine();
    let report = engine.run(&spec, workers);

    println!(
        "Fig 9: execution time normalized to Impossible MIMD ({} qubits, {rows}x{cols} grid)",
        rows * cols
    );
    digiq_bench::rule(96);
    print!("{:18}", "design");
    for b in ALL_BENCHMARKS {
        print!(" | {:>9}", b.name());
    }
    println!();
    digiq_bench::rule(96);
    // Jobs are design-major in benchmark order: one table row per design.
    for design_row in report.jobs.chunks(ALL_BENCHMARKS.len()) {
        print!("{:18}", design_row[0].design.to_string());
        for job in design_row {
            print!(" | {:>9.2}", job.report.normalized_time);
        }
        println!();
    }
    println!();
    println!(
        "engine: {workers} workers, {} artifacts built, {} reused",
        report.cache.total_misses(),
        report.cache.total_hits()
    );
    // Stage-granular reuse: lowering/routing/scheduling are
    // design-independent, so each benchmark's stages build once and the
    // other four designs hit the per-pass caches.
    for p in &engine.pass_cache_stats().passes {
        println!(
            "  pass {:12} {} built, {} reused across the design axis",
            p.pass, p.misses, p.hits
        );
    }
    println!("paper: DigiQ_opt(BS=16) 4.7–9.8x; DigiQ_min(BS=4) 11.0–14.4x; outliers up to 36.9x");
    args.report_store_stats(&engine);
}
