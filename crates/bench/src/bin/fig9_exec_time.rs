//! Regenerates Fig 9: execution time of the Table IV benchmarks on each
//! DigiQ configuration, normalized to the Impossible MIMD baseline.
//!
//! Default runs the full paper-scale benchmarks on the 32×32 grid
//! (~minutes, release build recommended).
use digiq_core::design::ControllerDesign;
use digiq_core::system::DigiqSystem;
use sfq_hw::cost::CostModel;

fn main() {
    let model = CostModel::default();
    let designs = [
        ControllerDesign::DigiqMin { bs: 2 },
        ControllerDesign::DigiqMin { bs: 4 },
        ControllerDesign::DigiqOpt { bs: 4 },
        ControllerDesign::DigiqOpt { bs: 8 },
        ControllerDesign::DigiqOpt { bs: 16 },
    ];
    println!("Fig 9: execution time normalized to Impossible MIMD (1,024 qubits, 32x32 grid)");
    digiq_bench::rule(96);
    print!("{:18}", "design");
    for b in qcircuit::bench::ALL_BENCHMARKS {
        print!(" | {:>9}", b.name());
    }
    println!();
    digiq_bench::rule(96);
    for design in designs {
        let system = DigiqSystem::build(design, 2, &model);
        print!("{:18}", design.to_string());
        for bench in qcircuit::bench::ALL_BENCHMARKS {
            let r = system.evaluate_benchmark(bench);
            print!(" | {:>9.2}", r.normalized_time);
        }
        println!();
    }
    println!();
    println!("paper: DigiQ_opt(BS=16) 4.7–9.8x; DigiQ_min(BS=4) 11.0–14.4x; outliers up to 36.9x");
}
