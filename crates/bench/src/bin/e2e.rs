//! End-to-end benchmark recorder: whole-system rows for the committed
//! `BENCH_<date>.json` trajectory, one tier above the kernel
//! micro-benchmarks.
//!
//! The micro-kernel gate (`benches/kernels.rs`) catches hot-loop churn;
//! these rows catch regressions that only show up when the layers
//! compose — store coalescing, pipeline workspace reuse across thousands
//! of jobs, worker sharding. Three in-process workloads plus one
//! over-the-wire round:
//!
//! * `sweep_cold_full` — a cold `sweep --full` (the five Fig 9
//!   configurations × all six Table IV benchmarks, paper-scale 32×32
//!   grid) on a fresh engine;
//! * `fig7_paper` — shared-pulse calibration plus all three paper-scale
//!   Fig 7 panels (5×5 drift grid, 3 Uqq echo depths);
//! * `fig10_64q` — the bounded Fig 10 error model (64 qubits, coupler
//!   stride 4): shared-bitstream calibration, per-qubit 1q medians, CZ
//!   couplers;
//! * `serve_loadgen` — a serve daemon plus one loadgen round over
//!   localhost TCP (sibling binaries next to this one; skipped with a
//!   note when they are not built).
//!
//! Every row records `wall_ns` plus a `checks` object of deterministic
//! fields (job counts, FNV-1a digests of the numeric output). `--compare
//! FILE` diffs against a committed record's `"e2e"` section: `checks`
//! mismatches are hard failures (exit 1) — the outputs are seeded and
//! sharding-order-independent, so any drift is a real behaviour change —
//! while wall time only warns (CI timing is noisy). Records that predate
//! the e2e section pass with a note, and a fresh record picks up the
//! gate from there. `--json-out FILE` writes the row array (what
//! `scripts/ci.sh --bench-e2e` and `bench_record` embed under `"e2e"`).
//!
//! Sizes are bounded so the whole set finishes in well under a minute of
//! compute on a single-CPU container (the fig10 row dominates).

use digiq_core::engine::{
    default_workers, par_map_ordered, BenchScale, BenchmarkSpec, EvalEngine, SweepSpec,
};
use digiq_core::error_model::{calibrate_shared, fig10a, fig10b, ErrorModelConfig};
use qcircuit::bench::ALL_BENCHMARKS;
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};
use std::io::BufRead;
use std::time::Instant;

/// One end-to-end row: wall time (warn-only in compares) plus the
/// deterministic `checks` fields (hard-fail) and free-form `info`
/// context (never compared).
struct Row {
    name: &'static str,
    wall_ns: f64,
    checks: Vec<(String, Json)>,
    info: Vec<(String, Json)>,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
            ("checks", Json::Obj(self.checks.clone())),
            ("info", Json::Obj(self.info.clone())),
        ])
    }
}

/// 64-bit FNV-1a — the digest that pins a workload's full numeric output
/// into one comparable field (any drift anywhere flips it).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
    fn push_f64(&mut self, v: f64) {
        self.update(&v.to_bits().to_le_bytes());
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_nanos() as f64)
}

/// Cold paper-scale sweep: the `sweep --full` spec (Fig 9 designs × all
/// Table IV benchmarks at paper scale on the 32×32 grid) on a fresh
/// engine, seed 0. The serialized report is digested whole — it is
/// byte-identical across worker counts by the engine's merge-order
/// contract, so the digest is scheduling-independent.
fn sweep_cold_full(workers: usize) -> Row {
    let mut spec = SweepSpec::small_grid(SweepSpec::fig9_designs(), &ALL_BENCHMARKS, 32, 32);
    spec.benchmarks = ALL_BENCHMARKS
        .iter()
        .map(|&bench| BenchmarkSpec {
            bench,
            scale: BenchScale::Paper,
        })
        .collect();
    let spec = spec.with_seeds(vec![0]);
    let (report, wall_ns) = timed(|| EvalEngine::new(CostModel::default()).run(&spec, workers));
    let mut d = Fnv64::new();
    d.update(report.to_json_string().as_bytes());
    Row {
        name: "sweep_cold_full",
        wall_ns,
        checks: vec![
            ("jobs".to_string(), report.jobs.len().to_json()),
            ("report_digest".to_string(), d.hex().to_json()),
        ],
        info: vec![("workers".to_string(), workers.to_json())],
    }
}

/// Paper-scale Fig 7: shared-pulse calibration plus the three echo
/// panels on the 5×5 drift grid, sharded like the figure binary.
fn fig7_paper(workers: usize) -> Row {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let panels: Vec<usize> = (1..=3).collect();
    let ((pulse, results), wall_ns) = timed(|| {
        let pulse = calib::cz::calibrate_shared_pulse(&pair, 4.0, 0.25);
        let results = par_map_ordered(&panels, workers.min(panels.len()), |_, &n| {
            calib::cz::fig7_panel(&pair, &pulse, n, 0.006, 5, 3)
        });
        (pulse, results)
    });
    let mut d = Fnv64::new();
    d.push_f64(pulse.nominal_error);
    let mut points = 0u64;
    for p in results.iter().flatten() {
        d.push_f64(p.drift1_ghz);
        d.push_f64(p.drift2_ghz);
        d.push_f64(p.error);
        points += 1;
    }
    Row {
        name: "fig7_paper",
        wall_ns,
        checks: vec![
            ("points".to_string(), points.to_json()),
            ("error_digest".to_string(), d.hex().to_json()),
        ],
        info: vec![("workers".to_string(), workers.to_json())],
    }
}

/// Bounded Fig 10 error model: 64 qubits on an 8-column grid, CZ
/// couplers at stride 4 (the figure binary's default mode).
fn fig10_64q(workers: usize) -> Row {
    let mut config = ErrorModelConfig::small(64);
    config.grid_cols = 8;
    config.threads = workers;
    let ((rows, czs), wall_ns) = timed(|| {
        let shared = calibrate_shared(&config);
        let rows = fig10a(&config, &shared);
        let oneq: Vec<f64> = rows.iter().map(|r| r.opt_median).collect();
        let czs = fig10b(&config, &oneq, 4);
        (rows, czs)
    });
    let mut d = Fnv64::new();
    for r in &rows {
        d.push_f64(r.opt_median);
        d.push_f64(r.min_median);
    }
    for c in &czs {
        d.push_f64(c.cz_error);
    }
    Row {
        name: "fig10_64q",
        wall_ns,
        checks: vec![
            ("qubits".to_string(), rows.len().to_json()),
            ("couplers".to_string(), czs.len().to_json()),
            ("error_digest".to_string(), d.hex().to_json()),
        ],
        info: vec![("workers".to_string(), workers.to_json())],
    }
}

/// One serve+loadgen round over localhost TCP: 4 clients × 2 requests
/// (cold wave builds, warm wave replays the coalesced artifacts). The
/// sibling binaries live next to this one in `target/release`; when they
/// are not built the row is skipped with a note rather than failing —
/// the in-process rows still gate.
fn serve_loadgen() -> Option<Row> {
    let dir = std::env::current_exe().ok()?.parent()?.to_path_buf();
    let (serve, loadgen) = (dir.join("serve"), dir.join("loadgen"));
    if !serve.exists() || !loadgen.exists() {
        eprintln!(
            "note: skipping serve_loadgen row ({} not built; run `cargo build --release -p digiq-serve`)",
            if serve.exists() { "loadgen" } else { "serve" }
        );
        return None;
    }
    let mut daemon = std::process::Command::new(&serve)
        .args(["--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| eprintln!("note: skipping serve_loadgen row (cannot spawn serve: {e})"))
        .ok()?;
    // Keep the stdout pipe open until the daemon exits — it prints a
    // drain message on shutdown, and closing the pipe early would turn
    // that into an EPIPE panic inside serve.
    let mut reader = daemon.stdout.take().map(std::io::BufReader::new);
    let mut addr = None;
    if let Some(r) = reader.as_mut() {
        let mut line = String::new();
        while r.read_line(&mut line).is_ok_and(|n| n > 0) {
            if let Some(a) = line.trim_end().strip_prefix("digiq-serve listening on ") {
                addr = Some(a.to_string());
                break;
            }
            line.clear();
        }
    }
    let Some(addr) = addr else {
        eprintln!("note: skipping serve_loadgen row (serve never printed its address)");
        let _ = daemon.kill();
        return None;
    };
    let (output, wall_ns) = timed(|| {
        std::process::Command::new(&loadgen)
            .args(["--addr", &addr, "--clients", "4", "--requests", "2"])
            .args(["--json", "--shutdown"])
            .output()
    });
    let _ = daemon.wait();
    drop(reader);
    let output = output
        .map_err(|e| eprintln!("note: skipping serve_loadgen row (cannot run loadgen: {e})"))
        .ok()?;
    if !output.status.success() {
        eprintln!("note: skipping serve_loadgen row (loadgen failed)");
        return None;
    }
    let text = String::from_utf8_lossy(&output.stdout);
    let j = Json::parse(text.trim())
        .map_err(|e| eprintln!("note: skipping serve_loadgen row (bad loadgen JSON: {e:?})"))
        .ok()?;
    let wave = |name: &str, field: &str| {
        j.get(name)
            .and_then(|w| w.num_field(field, "wave").ok())
            .unwrap_or(f64::NAN)
    };
    Some(Row {
        name: "serve_loadgen",
        wall_ns,
        checks: vec![
            (
                "requests".to_string(),
                ((j.count_field("clients", "loadgen").unwrap_or(0))
                    * (j.count_field("requests_per_client", "loadgen").unwrap_or(0)))
                .to_json(),
            ),
            (
                "mode".to_string(),
                j.str_field("mode", "loadgen").unwrap_or("?").to_json(),
            ),
        ],
        info: vec![
            (
                "cold_req_per_s".to_string(),
                wave("cold", "req_per_s").to_json(),
            ),
            (
                "warm_req_per_s".to_string(),
                wave("warm", "req_per_s").to_json(),
            ),
            ("warm_p99_ns".to_string(), wave("warm", "p99_ns").to_json()),
        ],
    })
}

/// Extracts the e2e rows from a committed record: a full
/// `BENCH_<date>.json` object (its `"e2e"` key), or a bare row array as
/// written by `--json-out`. `Ok(None)` means the record predates the e2e
/// section — the compare passes with a note.
fn baseline_rows(j: &Json) -> Result<Option<&[Json]>, String> {
    match j {
        Json::Arr(items) => Ok(Some(items)),
        Json::Obj(_) => match j.get("e2e") {
            None => Ok(None),
            Some(e2e) => match e2e {
                Json::Arr(items) => Ok(Some(items)),
                _ => Err("`e2e` section is not an array".to_string()),
            },
        },
        _ => Err("benchmark record is neither an array nor an object".to_string()),
    }
}

/// Diffs fresh rows against a committed record. `checks` fields are
/// deterministic, so any mismatch is a hard failure; wall time warns.
fn compare(rows: &[Row], baseline_path: &str, baseline: &Json) -> bool {
    let base = match baseline_rows(baseline) {
        Ok(Some(b)) => b,
        Ok(None) => {
            println!("baseline {baseline_path} predates the e2e section; nothing to compare");
            return true;
        }
        Err(e) => {
            eprintln!("error: cannot read baseline `{baseline_path}`: {e}");
            return false;
        }
    };
    println!("\ne2e comparison vs {baseline_path}:");
    let mut ok = true;
    for row in rows {
        let Some(b) = base
            .iter()
            .find(|b| b.str_field("name", "e2e row") == Ok(row.name))
        else {
            println!("{:<18} (new e2e row, no baseline)", row.name);
            continue;
        };
        let base_wall = b.num_field("wall_ns", "e2e row").unwrap_or(f64::NAN);
        let mut drift: Vec<String> = Vec::new();
        if let Some(Json::Obj(base_checks)) = b.get("checks") {
            for (key, base_val) in base_checks {
                let fresh = row.checks.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                if fresh != Some(base_val) {
                    drift.push(format!(
                        "{key} {} -> {}",
                        base_val.render(),
                        fresh.map_or("<missing>".to_string(), Json::render)
                    ));
                }
            }
        }
        let note = if drift.is_empty() {
            "checks ok".to_string()
        } else {
            ok = false;
            format!("DRIFTED {}", drift.join(", "))
        };
        println!(
            "{:<18} {:>12} -> {:>12} ({:>5.2}x)  {}",
            row.name,
            digiq_bench::timing::fmt_ns(base_wall),
            digiq_bench::timing::fmt_ns(row.wall_ns),
            base_wall / row.wall_ns,
            note
        );
        if row.wall_ns > base_wall * 1.5 {
            eprintln!(
                "warning: {} wall time regressed {:.2}x (warn-only: timing is noisy in CI)",
                row.name,
                row.wall_ns / base_wall
            );
        }
    }
    ok
}

fn main() {
    let workers = digiq_bench::arg_value("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_workers)
        .max(1);
    let mut rows = Vec::new();
    for (name, run) in [
        ("sweep_cold_full", sweep_cold_full as fn(usize) -> Row),
        ("fig7_paper", fig7_paper),
        ("fig10_64q", fig10_64q),
    ] {
        eprintln!("e2e: {name}…");
        rows.push(run(workers));
    }
    if digiq_bench::has_flag("--skip-serve") {
        eprintln!("e2e: serve_loadgen skipped (--skip-serve)");
    } else {
        eprintln!("e2e: serve_loadgen…");
        rows.extend(serve_loadgen());
    }
    println!("\n{:<18} {:>12}  checks", "row", "wall");
    for row in &rows {
        let checks: Vec<String> = row
            .checks
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect();
        println!(
            "{:<18} {:>12}  {}",
            row.name,
            digiq_bench::timing::fmt_ns(row.wall_ns),
            checks.join(" ")
        );
    }
    if let Some(path) = digiq_bench::arg_value("--json-out") {
        let out = Json::Arr(rows.iter().map(Row::to_json).collect());
        std::fs::write(&path, out.render()).unwrap_or_else(|e| {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(1);
        });
        eprintln!("e2e rows written to {path}");
    }
    if let Some(path) = digiq_bench::arg_value("--compare") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse `{path}`: {e:?}");
            std::process::exit(1);
        });
        if !compare(&rows, &path, &baseline) {
            eprintln!("error: deterministic e2e drift vs {path}");
            std::process::exit(1);
        }
        println!("e2e compare OK vs {path}");
    }
}
