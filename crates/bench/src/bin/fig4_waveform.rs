//! Regenerates Fig 4b: the CZ current waveform from 25 staggered SFQ/DC
//! blocks into the R1/C1/R2 + flex-line network.
//!
//! `--json` emits the waveform via `sfq_hw::json` (flags parsed by
//! `digiq_bench::cli`).
use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use sfq_hw::analog::CurrentGenerator;
use sfq_hw::json::{Json, ToJson};

fn main() {
    let args = CommonArgs::parse(default_workers());
    let gen = CurrentGenerator::paper_fig4();
    let wave = gen.simulate(70.0, 0.5);
    if args.json {
        let json = Json::obj([
            ("dt_ns", wave.dt_ns.to_json()),
            ("samples_ma", wave.samples_ma.to_json()),
            ("peak_ma", wave.peak_ma().to_json()),
            ("plateau_ns", wave.plateau_ns().to_json()),
        ]);
        println!("{}", json.render());
        return;
    }
    println!("# t(ns) I(mA)   [25 SFQ/DC blocks, R1=R2=0.05 ohm, C1=10 nF]");
    for (k, i) in wave.samples_ma.iter().enumerate() {
        println!("{:6.2} {:+.4}", k as f64 * wave.dt_ns, i);
    }
    eprintln!(
        "peak {:.3} mA (paper ~1.2), rise {:.1} ns (paper ~10), plateau {:.1} ns",
        wave.peak_ma(),
        wave.rise_time_ns().unwrap_or(f64::NAN),
        wave.plateau_ns()
    );
}
