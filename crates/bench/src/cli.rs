//! Shared CLI parsing for the sweep-shaped bench binaries.
//!
//! Every engine-driven binary accepts the same flag family —
//! `--small`/`--full`/`--smoke` mode selection, `--workers N`,
//! `--seeds N`, `--json`, and the pass-pipeline strategy flags
//! `--router greedy|lookahead` / `--scheduler crosstalk|asap` — and this
//! module parses them once instead of thirteen copy-pasted variants.
//!
//! ```
//! use digiq_bench::cli::CommonArgs;
//!
//! let args = CommonArgs::from_args(&["--small".into(), "--seeds".into(), "3".into()], 4)
//!     .unwrap();
//! assert!(args.small && !args.smoke);
//! assert_eq!(args.seeds, 3);
//! assert_eq!(args.workers, 4); // fallback when --workers is absent
//! ```

use qcircuit::pipeline::{PipelineConfig, RouteStrategy, ScheduleStrategy};

/// The flag family shared by the sweep-shaped bench binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--small`: reduced-scale run.
    pub small: bool,
    /// `--full`: paper-scale run.
    pub full: bool,
    /// `--smoke`: tiny golden-checked run (forces 2 workers).
    pub smoke: bool,
    /// `--json`: machine-readable report on stdout.
    pub json: bool,
    /// `--seeds N`: drift seeds `0..N` (default 1).
    pub seeds: usize,
    /// `--workers N`: worker threads (default: every core; `--smoke`
    /// pins 2 so the golden is reproducible).
    pub workers: usize,
    /// `--router` / `--scheduler`: compile-pipeline strategy selection.
    pub pipeline: PipelineConfig,
}

impl CommonArgs {
    /// Parses the shared flags from an argument slice (`argv` without the
    /// binary name). `default_workers` is used when `--workers` is absent
    /// and the run is not a smoke run.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag and the accepted
    /// values.
    pub fn from_args(args: &[String], default_workers: usize) -> Result<CommonArgs, String> {
        let has = |name: &str| args.iter().any(|a| a == name);
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .map(|i| {
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| format!("`{name}` needs a value"))
                })
                .transpose()
        };
        let count = |name: &str| -> Result<Option<usize>, String> {
            match value(name)? {
                None => Ok(None),
                Some(v) => v
                    .parse::<usize>()
                    .map(Some)
                    .map_err(|_| format!("`{name}` needs a positive integer, got `{v}`")),
            }
        };

        let smoke = has("--smoke");
        let workers = match count("--workers")? {
            _ if smoke => 2,
            Some(n) if n > 0 => n,
            Some(n) => return Err(format!("`--workers` must be at least 1, got {n}")),
            None => default_workers,
        };
        let mut pipeline = PipelineConfig::default();
        if let Some(router) = value("--router")? {
            pipeline.router = RouteStrategy::parse(&router)?;
        }
        if let Some(scheduler) = value("--scheduler")? {
            pipeline.scheduler = ScheduleStrategy::parse(&scheduler)?;
        }
        Ok(CommonArgs {
            small: has("--small"),
            full: has("--full"),
            smoke,
            json: has("--json"),
            seeds: count("--seeds")?.unwrap_or(1).max(1),
            workers,
            pipeline,
        })
    }

    /// Parses the process arguments, exiting with status 2 and a message
    /// on stderr when a flag is malformed.
    pub fn parse(default_workers: usize) -> CommonArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        CommonArgs::from_args(&args, default_workers).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_the_paper_pipeline() {
        let a = CommonArgs::from_args(&[], 8).unwrap();
        assert!(!a.small && !a.full && !a.smoke && !a.json);
        assert_eq!(a.seeds, 1);
        assert_eq!(a.workers, 8);
        assert_eq!(a.pipeline, PipelineConfig::default());
    }

    #[test]
    fn smoke_pins_two_workers() {
        let a = CommonArgs::from_args(&argv(&["--smoke", "--workers", "9"]), 8).unwrap();
        assert!(a.smoke);
        assert_eq!(a.workers, 2);
    }

    #[test]
    fn strategies_parse_and_reject() {
        let a = CommonArgs::from_args(&argv(&["--router", "lookahead", "--scheduler", "asap"]), 1)
            .unwrap();
        assert_eq!(a.pipeline.router.name(), "lookahead");
        assert_eq!(a.pipeline.scheduler.name(), "asap");
        assert!(CommonArgs::from_args(&argv(&["--router", "magic"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--scheduler", "magic"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--router"]), 1).is_err());
    }

    #[test]
    fn counts_parse_and_reject() {
        let a = CommonArgs::from_args(&argv(&["--seeds", "4", "--workers", "3"]), 1).unwrap();
        assert_eq!((a.seeds, a.workers), (4, 3));
        assert!(CommonArgs::from_args(&argv(&["--seeds", "x"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--workers", "0"]), 1).is_err());
        // `--seeds 0` degrades to 1 like the historical parsers did.
        assert_eq!(
            CommonArgs::from_args(&argv(&["--seeds", "0"]), 1)
                .unwrap()
                .seeds,
            1
        );
    }
}
