//! Shared CLI parsing for the bench binaries.
//!
//! Every binary accepts the same flag family — `--small`/`--full`/
//! `--smoke` mode selection, `--workers N`, `--seeds N`, `--json`, the
//! pass-pipeline strategy flags `--router greedy|lookahead` /
//! `--scheduler crosstalk|asap`, and the artifact-store flags
//! `--cache-dir DIR` (persistent cross-process artifact cache),
//! `--resume` (skip sweep jobs already journaled under the cache dir)
//! and `--store-capacity N` (bound the in-memory store, LRU-evicting
//! beyond it) — and this module parses them once instead of thirteen
//! copy-pasted variants. Binaries with a bespoke extra flag (e.g.
//! `table2_parking --max-rows`) read just that one via
//! [`crate::arg_value`]; unknown flags are ignored, so the family is
//! uniform across all binaries even where a flag has no effect.
//!
//! ```
//! use digiq_bench::cli::CommonArgs;
//!
//! let args = CommonArgs::from_args(&["--small".into(), "--seeds".into(), "3".into()], 4)
//!     .unwrap();
//! assert!(args.small && !args.smoke);
//! assert_eq!(args.seeds, 3);
//! assert_eq!(args.workers, 4); // fallback when --workers is absent
//! assert_eq!(args.cache_dir, None); // in-memory store by default
//! ```

use digiq_core::engine::EvalEngine;
use digiq_core::store::StoreConfig;
use qcircuit::pipeline::{PipelineConfig, RouteStrategy, ScheduleStrategy};
use sfq_hw::cost::CostModel;
use std::path::PathBuf;

/// The flag family shared by the bench binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--small`: reduced-scale run.
    pub small: bool,
    /// `--full`: paper-scale run.
    pub full: bool,
    /// `--smoke`: tiny golden-checked run (forces 2 workers).
    pub smoke: bool,
    /// `--json`: machine-readable report on stdout.
    pub json: bool,
    /// `--seeds N`: drift seeds `0..N` (default 1).
    pub seeds: usize,
    /// `--workers N`: worker threads (default: every core; `--smoke`
    /// pins 2 so the golden is reproducible).
    pub workers: usize,
    /// `--router` / `--scheduler`: compile-pipeline strategy selection.
    pub pipeline: PipelineConfig,
    /// `--cache-dir DIR`: persist artifacts (and the sweep journal)
    /// under `DIR` so later runs warm-start across processes.
    pub cache_dir: Option<String>,
    /// `--resume`: skip sweep jobs already completed in the cache dir's
    /// journal (requires `--cache-dir`).
    pub resume: bool,
    /// `--store-capacity N`: bound the in-memory artifact store to `N`
    /// resident entries (LRU eviction beyond; default unbounded).
    pub store_capacity: Option<usize>,
}

impl CommonArgs {
    /// Parses the shared flags from an argument slice (`argv` without the
    /// binary name). `default_workers` is used when `--workers` is absent
    /// and the run is not a smoke run.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag and the accepted
    /// values.
    pub fn from_args(args: &[String], default_workers: usize) -> Result<CommonArgs, String> {
        let has = |name: &str| args.iter().any(|a| a == name);
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .map(|i| {
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| format!("`{name}` needs a value"))
                })
                .transpose()
        };
        let count = |name: &str| -> Result<Option<usize>, String> {
            match value(name)? {
                None => Ok(None),
                Some(v) => v
                    .parse::<usize>()
                    .map(Some)
                    .map_err(|_| format!("`{name}` needs a non-negative integer, got `{v}`")),
            }
        };

        let smoke = has("--smoke");
        let workers = match count("--workers")? {
            _ if smoke => 2,
            Some(n) if n > 0 => n,
            Some(n) => return Err(format!("`--workers` must be at least 1, got {n}")),
            None => default_workers,
        };
        let mut pipeline = PipelineConfig::default();
        if let Some(router) = value("--router")? {
            pipeline.router = RouteStrategy::parse(&router)?;
        }
        if let Some(scheduler) = value("--scheduler")? {
            pipeline.scheduler = ScheduleStrategy::parse(&scheduler)?;
        }
        let cache_dir = value("--cache-dir")?;
        let resume = has("--resume");
        if resume && cache_dir.is_none() {
            return Err("`--resume` needs `--cache-dir` (the journal lives there)".to_string());
        }
        Ok(CommonArgs {
            small: has("--small"),
            full: has("--full"),
            smoke,
            json: has("--json"),
            seeds: count("--seeds")?.unwrap_or(1).max(1),
            workers,
            pipeline,
            cache_dir,
            resume,
            store_capacity: count("--store-capacity")?,
        })
    }

    /// The shared-flag help text, with `extras` — each binary's bespoke
    /// `("--flag VALUE", "what it does")` pairs — appended under their
    /// own heading.
    pub fn help_text(bin: &str, extras: &[(&str, &str)]) -> String {
        let mut out = format!("usage: {bin} [flags]\n\nshared flags:\n");
        for (flag, what) in [
            ("--small", "reduced-scale run"),
            ("--full", "paper-scale run"),
            (
                "--smoke",
                "tiny golden-checked run (pins 2 workers, plain report JSON on stdout)",
            ),
            ("--json", "machine-readable report on stdout"),
            ("--seeds N", "drift seeds 0..N (default 1)"),
            ("--workers N", "worker threads (default: every core)"),
            (
                "--router greedy|lookahead",
                "compile-pipeline routing strategy",
            ),
            (
                "--scheduler crosstalk|asap",
                "compile-pipeline scheduling strategy",
            ),
            (
                "--cache-dir DIR",
                "persist artifacts and the sweep journal under DIR (cross-process warm start)",
            ),
            (
                "--resume",
                "skip sweep jobs already journaled under the cache dir",
            ),
            (
                "--store-capacity N",
                "bound the in-memory artifact store to N entries (LRU eviction)",
            ),
            ("--help, -h", "print this help and exit"),
        ] {
            out.push_str(&format!("  {flag:28} {what}\n"));
        }
        if !extras.is_empty() {
            out.push_str(&format!("\n{bin} flags:\n"));
            for (flag, what) in extras {
                out.push_str(&format!("  {flag:28} {what}\n"));
            }
        }
        out
    }

    /// Parses the process arguments, exiting with status 2 and a message
    /// on stderr when a flag is malformed, and printing help (exit 0) on
    /// `--help`/`-h`.
    pub fn parse(default_workers: usize) -> CommonArgs {
        CommonArgs::parse_for("", &[], default_workers)
    }

    /// [`CommonArgs::parse`] with the binary's name and bespoke extra
    /// flags named in its `--help` output.
    pub fn parse_for(bin: &str, extras: &[(&str, &str)], default_workers: usize) -> CommonArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            let bin = if bin.is_empty() {
                std::env::args()
                    .next()
                    .as_deref()
                    .and_then(|p| p.rsplit('/').next().map(str::to_string))
                    .unwrap_or_else(|| "bench".to_string())
            } else {
                bin.to_string()
            };
            print!("{}", CommonArgs::help_text(&bin, extras));
            std::process::exit(0);
        }
        CommonArgs::from_args(&args, default_workers).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// The artifact-store configuration these flags select.
    pub fn store_config(&self) -> StoreConfig {
        StoreConfig {
            capacity: self.store_capacity,
            cache_dir: self.cache_dir.as_ref().map(PathBuf::from),
        }
    }

    /// An evaluation engine over a store configured from these flags
    /// (in-memory and unbounded by default; persistent under
    /// `--cache-dir`; LRU-bounded under `--store-capacity`).
    pub fn engine(&self) -> EvalEngine {
        EvalEngine::with_store_config(CostModel::default(), self.store_config())
    }

    /// Prints the store's counter snapshot as one machine-greppable
    /// stderr line when `--cache-dir` is active (no-op otherwise). The
    /// CI warm-start check matches `pass_builds=0` here; stderr keeps
    /// the golden-diffed stdout pure. Shared by every engine-driven
    /// binary so the line format cannot drift between them.
    pub fn report_store_stats(&self, engine: &EvalEngine) {
        if self.cache_dir.is_none() {
            return;
        }
        let stats = engine.store_stats();
        let (hits, misses, disk_hits, builds, evictions) = stats.totals();
        eprintln!(
            "store: pass_builds={} hits={hits} misses={misses} disk_hits={disk_hits} \
             builds={builds} evictions={evictions} resident={}",
            stats.pass_builds(),
            stats.resident,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_the_paper_pipeline() {
        let a = CommonArgs::from_args(&[], 8).unwrap();
        assert!(!a.small && !a.full && !a.smoke && !a.json && !a.resume);
        assert_eq!(a.seeds, 1);
        assert_eq!(a.workers, 8);
        assert_eq!(a.pipeline, PipelineConfig::default());
        assert_eq!(a.cache_dir, None);
        assert_eq!(a.store_capacity, None);
        let cfg = a.store_config();
        assert!(cfg.capacity.is_none() && cfg.cache_dir.is_none());
    }

    #[test]
    fn smoke_pins_two_workers() {
        let a = CommonArgs::from_args(&argv(&["--smoke", "--workers", "9"]), 8).unwrap();
        assert!(a.smoke);
        assert_eq!(a.workers, 2);
    }

    #[test]
    fn strategies_parse_and_reject() {
        let a = CommonArgs::from_args(&argv(&["--router", "lookahead", "--scheduler", "asap"]), 1)
            .unwrap();
        assert_eq!(a.pipeline.router.name(), "lookahead");
        assert_eq!(a.pipeline.scheduler.name(), "asap");
        assert!(CommonArgs::from_args(&argv(&["--router", "magic"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--scheduler", "magic"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--router"]), 1).is_err());
    }

    #[test]
    fn counts_parse_and_reject() {
        let a = CommonArgs::from_args(&argv(&["--seeds", "4", "--workers", "3"]), 1).unwrap();
        assert_eq!((a.seeds, a.workers), (4, 3));
        assert!(CommonArgs::from_args(&argv(&["--seeds", "x"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--workers", "0"]), 1).is_err());
        // `--seeds 0` degrades to 1 like the historical parsers did.
        assert_eq!(
            CommonArgs::from_args(&argv(&["--seeds", "0"]), 1)
                .unwrap()
                .seeds,
            1
        );
    }

    #[test]
    fn help_text_covers_the_shared_family_and_extras() {
        let text = CommonArgs::help_text("sweep", &[("--interrupt-after N", "stop after N jobs")]);
        assert!(text.starts_with("usage: sweep [flags]"));
        for flag in [
            "--small",
            "--full",
            "--smoke",
            "--json",
            "--seeds N",
            "--workers N",
            "--router greedy|lookahead",
            "--scheduler crosstalk|asap",
            "--cache-dir DIR",
            "--resume",
            "--store-capacity N",
            "--help, -h",
            "--interrupt-after N",
        ] {
            assert!(text.contains(flag), "help text missing `{flag}`:\n{text}");
        }
        assert!(text.contains("sweep flags:"));
        // No extras, no dangling heading.
        let bare = CommonArgs::help_text("fig3_cycle", &[]);
        assert!(!bare.contains("fig3_cycle flags:"));
    }

    #[test]
    fn store_flags_parse_and_validate() {
        let a = CommonArgs::from_args(
            &argv(&[
                "--cache-dir",
                "/tmp/digiq",
                "--resume",
                "--store-capacity",
                "5",
            ]),
            1,
        )
        .unwrap();
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/digiq"));
        assert!(a.resume);
        assert_eq!(a.store_capacity, Some(5));
        let cfg = a.store_config();
        assert_eq!(cfg.capacity, Some(5));
        assert_eq!(cfg.cache_dir, Some(PathBuf::from("/tmp/digiq")));
        // A zero capacity is allowed (evict-everything stress mode)…
        assert_eq!(
            CommonArgs::from_args(&argv(&["--store-capacity", "0"]), 1)
                .unwrap()
                .store_capacity,
            Some(0)
        );
        // …but malformed values and orphan --resume are not.
        assert!(CommonArgs::from_args(&argv(&["--store-capacity", "x"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--cache-dir"]), 1).is_err());
        assert!(CommonArgs::from_args(&argv(&["--resume"]), 1).is_err());
    }
}
