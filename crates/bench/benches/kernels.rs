//! Timing kernels for the computational hot paths behind every figure:
//! Hamiltonian propagation (Fig 7), bitstream fitness (§V-A step 1), gate
//! decomposition (Fig 10a), routing and synthesis (Figs 8/9).
//!
//! Runs on the std-only harness in `digiq_bench::timing` (no criterion —
//! the workspace is offline and dependency-free). `--quick` shrinks the
//! budgets for CI smoke runs; `--filter SUBSTR` runs only the kernels
//! whose name contains the substring (iterating on one hot path without
//! paying for the rest); `--json-out FILE` additionally writes the
//! collected stats as a JSON array (what `scripts/ci.sh --bench-json`
//! records in `BENCH_<date>.json`).
//!
//! Besides wall time, each kernel is run once under
//! `qsim::counters::counted` to record its deterministic flop and
//! allocation counts. `--compare FILE` diffs the fresh run against a
//! committed `BENCH_<date>.json` record: counter regressions are hard
//! failures (exit 1), wall-time regressions only warn — the CI container
//! timing is too noisy to gate on.

use digiq_bench::timing::{fmt_ns, Harness, Stats};
use qsim::counters::KernelCounters;
use sfq_hw::json::{Json, ToJson};
use std::hint::black_box;

/// The timing harness plus one deterministic counter snapshot per kernel.
struct Bench {
    h: Harness,
    counters: Vec<KernelCounters>,
    /// `--filter SUBSTR`: only kernels whose name contains this run.
    filter: Option<String>,
}

impl Bench {
    fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(fl) = &self.filter {
            if !name.contains(fl.as_str()) {
                return;
            }
        }
        let (_, c) = qsim::counters::counted(|| black_box(f()));
        self.counters.push(c);
        self.h.bench(name, f);
    }
}

fn bench_expm(h: &mut Bench) {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let ham = pair.hamiltonian(-1.8);
    h.bench("expm_9x9_propagator", || {
        qsim::expm::expm_hermitian_propagator(black_box(&ham), 0.25)
    });
    let wf =
        qsim::two_qubit::DetuningWaveform::rounded(pair.cz_resonance_detuning(), 4.0, 35.0, 0.5);
    h.bench("uqq_full_pulse", || pair.propagate(black_box(&wf)));
}

fn bench_bitstream(h: &mut Bench) {
    use qsim::pulse::{SfqParams, SfqPulseSim};
    let sim = SfqPulseSim::new(qsim::transmon::Transmon::new(6.21286), SfqParams::default());
    let bits = sim.resonant_comb(63);
    let target = qsim::gates::ry(std::f64::consts::FRAC_PI_2);
    h.bench("bitstream_frame_gate_253", || {
        sim.frame_gate_qubit(black_box(&bits))
    });
    let m = sim.frame_gate_qubit(&bits);
    h.bench("bitstream_fitness_free_z", || {
        calib::bitstream::fidelity_with_freedom(
            black_box(&m),
            &target,
            calib::bitstream::ZFreedom::PrePost,
        )
    });
}

fn bench_decomposition(h: &mut Bench) {
    let basis = calib::opt_decomp::OptBasis::ideal(255);
    let target = qsim::gates::h();
    h.bench("opt_decompose_L2", || {
        calib::opt_decomp::decompose_opt(black_box(&target), &basis, 0.0, 2, 0.0)
    });
    let min_basis = calib::min_decomp::MinBasis::ideal_ry_t();
    let db = calib::min_decomp::SequenceDb::build(&min_basis, 10);
    h.bench("min_mitm_query_depth20", || {
        calib::min_decomp::decompose_min(black_box(&target), &min_basis, &db, 1e-4)
    });
}

fn bench_compile(h: &mut Bench) {
    use qcircuit::lower::lower_to_cz;
    use qcircuit::mapping::{route, Layout, RouterConfig};
    use qcircuit::topology::Grid;
    let grid = Grid::new(8, 8);
    let circuit = lower_to_cz(&qcircuit::bench::ising_chain(64, 2, 0.3, 0.7));
    let snake = Layout::snake(64, &grid);
    h.bench("route_ising64", || {
        route(
            black_box(&circuit),
            &grid,
            black_box(&snake),
            &RouterConfig::default(),
        )
    });
    let routed = route(&circuit, &grid, &snake, &RouterConfig::default());
    let phys = lower_to_cz(&routed.circuit);
    h.bench("schedule_ising64", || {
        qcircuit::schedule::schedule_crosstalk_aware(black_box(&phys), &grid)
    });

    // The whole pass pipeline (lower → route → lower_swaps → schedule,
    // post-validated per stage) on the same workload, default vs the
    // alternative strategies.
    use qcircuit::pipeline::{
        CompileArtifact, Pipeline, PipelineConfig, RouteStrategy, ScheduleStrategy,
    };
    let logical = qcircuit::bench::ising_chain(64, 2, 0.3, 0.7);
    let mut pipe = |name: &'static str, cfg: PipelineConfig| {
        let pipeline = Pipeline::standard(&cfg);
        h.bench(name, || {
            pipeline
                .run(
                    CompileArtifact::new(black_box(&logical).clone(), snake.clone()),
                    &grid,
                )
                .unwrap()
                .0
                .scheduled()
                .len()
        });
    };
    pipe("pipeline_default_ising64", PipelineConfig::default());
    pipe(
        "pipeline_lookahead_asap_ising64",
        PipelineConfig::default()
            .with_router(RouteStrategy::Lookahead { window: 16 })
            .with_scheduler(ScheduleStrategy::Asap),
    );
}

fn bench_synthesis(h: &mut Bench) {
    h.bench("synthesize_mux16", || {
        let mut nl = sfq_hw::generators::one_hot_mux(16);
        sfq_hw::passes::synthesize(&mut nl);
        nl.stats().total_jj
    });
    let cfg = digiq_core::design::SystemConfig::paper_default(
        digiq_core::design::ControllerDesign::DigiqOpt { bs: 8 },
        2,
    );
    let model = sfq_hw::cost::CostModel::default();
    h.bench("build_hardware_opt_bs8", || {
        digiq_core::hardware::build_hardware(black_box(&cfg), &model)
    });
}

/// One fresh result row: timing stats plus the deterministic counters.
struct Row {
    name: String,
    stats: Stats,
    counters: KernelCounters,
}

/// Extracts the kernel rows from a committed benchmark record — either a
/// full `BENCH_<date>.json` object (`{"kernels": [...]}`) or a bare array
/// as written by `--json-out`.
fn baseline_rows(j: &Json) -> Result<&[Json], String> {
    match j {
        Json::Arr(items) => Ok(items),
        Json::Obj(_) => j.arr_field("kernels", "benchmark record"),
        _ => Err("benchmark record is neither an array nor an object".to_string()),
    }
}

/// Diffs the fresh rows against a committed record. Returns `false` (fail)
/// if any kernel's flop or allocation count exceeds its baseline; wall-time
/// regressions only print a warning.
fn compare(rows: &[Row], baseline_path: &str, baseline: &Json) -> bool {
    let base = match baseline_rows(baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read baseline `{baseline_path}`: {e}");
            return false;
        }
    };
    println!("\ncomparison vs {baseline_path}:");
    println!(
        "{:<32} {:>12} {:>12} {:>8}  counters",
        "kernel", "base median", "median", "speedup"
    );
    let mut ok = true;
    for row in rows {
        let Some(b) = base
            .iter()
            .find(|b| b.str_field("name", "row") == Ok(row.name.as_str()))
        else {
            println!("{:<32} (new kernel, no baseline)", row.name);
            continue;
        };
        let base_median = b.num_field("median_ns", "row").unwrap_or(f64::NAN);
        let speedup = base_median / row.stats.median_ns;
        // Counters are exact and deterministic: any increase is a real
        // regression, not noise. Records predating the counters are
        // skipped (no fields to compare).
        let counter_note = match (
            b.count_field("flops", "row"),
            b.count_field("allocs", "row"),
        ) {
            (Ok(bf), Ok(ba)) => {
                if bf == 0 && ba == 0 && (row.counters.flops > 0 || row.counters.allocs > 0) {
                    // An all-zero baseline against a counting kernel means
                    // the record predates counter coverage of this path
                    // (not a regression from literally zero work); a fresh
                    // record picks up the gate from here.
                    format!(
                        "baseline predates counter coverage (now flops {}, allocs {})",
                        row.counters.flops, row.counters.allocs
                    )
                } else if row.counters.flops > bf || row.counters.allocs > ba {
                    ok = false;
                    format!(
                        "REGRESSED flops {} -> {}, allocs {} -> {}",
                        bf, row.counters.flops, ba, row.counters.allocs
                    )
                } else {
                    format!(
                        "ok (flops {} -> {}, allocs {} -> {})",
                        bf, row.counters.flops, ba, row.counters.allocs
                    )
                }
            }
            _ => "baseline has none".to_string(),
        };
        println!(
            "{:<32} {:>12} {:>12} {:>7.2}x  {}",
            row.name,
            fmt_ns(base_median),
            fmt_ns(row.stats.median_ns),
            speedup,
            counter_note
        );
        if row.stats.median_ns > base_median * 1.5 {
            eprintln!(
                "warning: {} wall time regressed {:.2}x (warn-only: timing is noisy in CI)",
                row.name,
                row.stats.median_ns / base_median
            );
        }
    }
    ok
}

fn main() {
    let mut h = Bench {
        h: if digiq_bench::has_flag("--quick") {
            Harness::quick()
        } else {
            Harness::standard()
        },
        counters: Vec::new(),
        filter: digiq_bench::arg_value("--filter"),
    };
    bench_expm(&mut h);
    bench_bitstream(&mut h);
    bench_decomposition(&mut h);
    bench_compile(&mut h);
    bench_synthesis(&mut h);
    println!("\n{} kernels timed.", h.h.results.len());
    let rows: Vec<Row> =
        h.h.results
            .iter()
            .zip(h.counters.iter())
            .map(|((name, stats), &counters)| Row {
                name: name.clone(),
                stats: *stats,
                counters,
            })
            .collect();
    if let Some(path) = digiq_bench::arg_value("--json-out") {
        let out = Json::Arr(
            rows.iter()
                .map(|row| {
                    let mut fields = vec![("name".to_string(), row.name.to_json())];
                    if let Json::Obj(stat_fields) = row.stats.to_json() {
                        fields.extend(stat_fields);
                    }
                    fields.push(("flops".to_string(), row.counters.flops.to_json()));
                    fields.push(("allocs".to_string(), row.counters.allocs.to_json()));
                    Json::Obj(fields)
                })
                .collect(),
        );
        std::fs::write(&path, out.render()).unwrap_or_else(|e| {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(1);
        });
        eprintln!("kernel stats written to {path}");
    }
    if let Some(path) = digiq_bench::arg_value("--compare") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse `{path}`: {e:?}");
            std::process::exit(1);
        });
        if !compare(&rows, &path, &baseline) {
            eprintln!("error: deterministic counter regression vs {path}");
            std::process::exit(1);
        }
        println!("bench compare OK vs {path}");
    }
}
