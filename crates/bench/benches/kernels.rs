//! Criterion benchmarks for the computational kernels behind every
//! figure: Hamiltonian propagation (Fig 7), bitstream fitness (§V-A
//! step 1), gate decomposition (Fig 10a), routing and synthesis (Figs
//! 8/9).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_expm(c: &mut Criterion) {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let h = pair.hamiltonian(-1.8);
    c.bench_function("expm_9x9_propagator", |b| {
        b.iter(|| qsim::expm::expm_hermitian_propagator(black_box(&h), 0.25))
    });
    let wf = qsim::two_qubit::DetuningWaveform::rounded(
        pair.cz_resonance_detuning(), 4.0, 35.0, 0.5,
    );
    c.bench_function("uqq_full_pulse", |b| b.iter(|| pair.propagate(black_box(&wf))));
}

fn bench_bitstream(c: &mut Criterion) {
    use qsim::pulse::{SfqParams, SfqPulseSim};
    let sim = SfqPulseSim::new(qsim::transmon::Transmon::new(6.21286), SfqParams::default());
    let bits = sim.resonant_comb(63);
    let target = qsim::gates::ry(std::f64::consts::FRAC_PI_2);
    c.bench_function("bitstream_frame_gate_253", |b| {
        b.iter(|| sim.frame_gate_qubit(black_box(&bits)))
    });
    c.bench_function("bitstream_fitness_free_z", |b| {
        let m = sim.frame_gate_qubit(&bits);
        b.iter(|| {
            calib::bitstream::fidelity_with_freedom(
                black_box(&m),
                &target,
                calib::bitstream::ZFreedom::PrePost,
            )
        })
    });
}

fn bench_decomposition(c: &mut Criterion) {
    let basis = calib::opt_decomp::OptBasis::ideal(255);
    let target = qsim::gates::h();
    c.bench_function("opt_decompose_L2", |b| {
        b.iter(|| calib::opt_decomp::decompose_opt(black_box(&target), &basis, 0.0, 2, 0.0))
    });
    let min_basis = calib::min_decomp::MinBasis::ideal_ry_t();
    let db = calib::min_decomp::SequenceDb::build(&min_basis, 10);
    c.bench_function("min_mitm_query_depth20", |b| {
        b.iter(|| calib::min_decomp::decompose_min(black_box(&target), &min_basis, &db, 1e-4))
    });
}

fn bench_compile(c: &mut Criterion) {
    use qcircuit::lower::lower_to_cz;
    use qcircuit::mapping::{route, Layout, RouterConfig};
    use qcircuit::topology::Grid;
    let grid = Grid::new(8, 8);
    let circuit = lower_to_cz(&qcircuit::bench::ising_chain(64, 2, 0.3, 0.7));
    c.bench_function("route_ising64", |b| {
        b.iter(|| {
            route(
                black_box(&circuit),
                &grid,
                Layout::snake(64, &grid),
                &RouterConfig::default(),
            )
        })
    });
    c.bench_function("schedule_ising64", |b| {
        let routed = route(&circuit, &grid, Layout::snake(64, &grid), &RouterConfig::default());
        let phys = lower_to_cz(&routed.circuit);
        b.iter(|| qcircuit::schedule::schedule_crosstalk_aware(black_box(&phys), &grid))
    });
}

fn bench_synthesis(c: &mut Criterion) {
    c.bench_function("synthesize_mux16", |b| {
        b.iter(|| {
            let mut nl = sfq_hw::generators::one_hot_mux(16);
            sfq_hw::passes::synthesize(&mut nl);
            nl.stats().total_jj
        })
    });
    c.bench_function("build_hardware_opt_bs8", |b| {
        let cfg = digiq_core::design::SystemConfig::paper_default(
            digiq_core::design::ControllerDesign::DigiqOpt { bs: 8 },
            2,
        );
        let model = sfq_hw::cost::CostModel::default();
        b.iter(|| digiq_core::hardware::build_hardware(black_box(&cfg), &model))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_expm, bench_bitstream, bench_decomposition, bench_compile, bench_synthesis
}
criterion_main!(kernels);
