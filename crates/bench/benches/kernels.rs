//! Timing kernels for the computational hot paths behind every figure:
//! Hamiltonian propagation (Fig 7), bitstream fitness (§V-A step 1), gate
//! decomposition (Fig 10a), routing and synthesis (Figs 8/9).
//!
//! Runs on the std-only harness in `digiq_bench::timing` (no criterion —
//! the workspace is offline and dependency-free). `--quick` shrinks the
//! budgets for CI smoke runs; `--filter SUBSTR` runs only the kernels
//! whose name contains the substring (iterating on one hot path without
//! paying for the rest); `--json-out FILE` additionally writes the
//! collected stats as a JSON array (what `scripts/ci.sh --bench-json`
//! records in `BENCH_<date>.json`).
//!
//! Besides wall time, each kernel is run once under
//! `qsim::counters::counted` to record its deterministic flop and
//! allocation counts. `--compare FILE` diffs the fresh run against a
//! committed `BENCH_<date>.json` record: counter regressions are hard
//! failures (exit 1), wall-time regressions only warn — the CI container
//! timing is too noisy to gate on.

use digiq_bench::timing::{fmt_ns, Harness, Stats};
use qsim::counters::KernelCounters;
use sfq_hw::counters::SynthCounters;
use sfq_hw::json::{Json, ToJson};
use std::hint::black_box;

/// The timing harness plus one deterministic counter snapshot per kernel
/// (both tiers: qsim flops/allocs and sfq-hw cells/DFFs/allocs).
struct Bench {
    h: Harness,
    counters: Vec<KernelCounters>,
    synth: Vec<SynthCounters>,
    /// `--filter SUBSTR`: only kernels whose name contains this run.
    filter: Option<String>,
}

impl Bench {
    fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(fl) = &self.filter {
            if !name.contains(fl.as_str()) {
                return;
            }
        }
        let ((_, sc), c) = qsim::counters::counted(|| sfq_hw::counters::counted(|| black_box(f())));
        self.counters.push(c);
        self.synth.push(sc);
        self.h.bench(name, f);
    }
}

/// Naive two-pass cyclic Jacobi reference (the pre-workspace `eigh`):
/// allocating `dagger`/`identity`, separate column and row rotation
/// passes, exact O(n²) off-norm rescan at the top of every sweep. Priced
/// here so `eigh_9x9_cold`'s speedup has an in-record denominator.
mod naive_eigen {
    use qsim::complex::C64;
    use qsim::eigen::EigH;
    use qsim::matrix::CMat;

    #[allow(clippy::too_many_arguments)]
    fn rotate_columns(
        data: &mut [C64],
        n: usize,
        p: usize,
        q: usize,
        c: f64,
        s: f64,
        jqp: C64,
        jqq: C64,
    ) {
        for row in data.chunks_exact_mut(n) {
            let (akp, akq) = (row[p], row[q]);
            row[p] = C64::new(
                akp.re * c + (akq.re * jqp.re - akq.im * jqp.im),
                akp.im * c + (akq.re * jqp.im + akq.im * jqp.re),
            );
            row[q] = C64::new(
                -akp.re * s + (akq.re * jqq.re - akq.im * jqq.im),
                -akp.im * s + (akq.re * jqq.im + akq.im * jqq.re),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rotate_rows(
        data: &mut [C64],
        n: usize,
        p: usize,
        q: usize,
        c: f64,
        s: f64,
        jqp: C64,
        jqq: C64,
    ) {
        let (head, tail) = data.split_at_mut(q * n);
        let prow = &mut head[p * n..(p + 1) * n];
        let qrow = &mut tail[..n];
        let (cqp, cqq) = (jqp.conj(), jqq.conj());
        for (ap, aq) in prow.iter_mut().zip(qrow.iter_mut()) {
            let (apk, aqk) = (*ap, *aq);
            *ap = C64::new(
                apk.re * c + (aqk.re * cqp.re - aqk.im * cqp.im),
                apk.im * c + (aqk.re * cqp.im + aqk.im * cqp.re),
            );
            *aq = C64::new(
                -apk.re * s + (aqk.re * cqq.re - aqk.im * cqq.im),
                -apk.im * s + (aqk.re * cqq.im + aqk.im * cqq.re),
            );
        }
    }

    pub fn naive_eigh(a: &CMat) -> EigH {
        let n = a.rows();
        let mut m = a.dagger();
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = (m[(i, j)] + a[(i, j)]) * 0.5;
            }
        }
        let mut v = CMat::identity(n);
        let scale = m.frobenius_norm().max(1.0);
        let tol = (scale * 1e-15).powi(2) * (n * n) as f64;
        let thresh = scale * 1e-16;
        let md = m.as_mut_slice();
        let vd = v.as_mut_slice();
        for _sweep in 0..100 {
            let mut off = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        off += md[i * n + j].abs2();
                    }
                }
            }
            if off <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let beta = md[p * n + q];
                    let b = beta.abs();
                    if b <= thresh {
                        continue;
                    }
                    let phi = beta.arg();
                    let alpha = md[p * n + p].re;
                    let gamma = md[q * n + q].re;
                    let zeta = (alpha - gamma) / (2.0 * b);
                    let t = if zeta >= 0.0 {
                        1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                    } else {
                        -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    let e_m = C64::cis(-phi);
                    let jqp = e_m * s;
                    let jqq = e_m * c;
                    rotate_columns(md, n, p, q, c, s, jqp, jqq);
                    rotate_rows(md, n, p, q, c, s, jqp, jqq);
                    rotate_columns(vd, n, p, q, c, s, jqp, jqq);
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
        order.sort_by(|&i, &j| vals[i].total_cmp(&vals[j]));
        let sorted_vals: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
        let sorted_vecs = CMat::from_fn(n, n, |i, j| v[(i, order[j])]);
        EigH {
            values: sorted_vals,
            vectors: sorted_vecs,
        }
    }
}

fn bench_eigen(h: &mut Bench) {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let ham = pair.hamiltonian(-1.8);
    // "cold" = no eigendecomposition memo in play: the raw workspace
    // Jacobi core, the deepest numeric tier under every propagator.
    h.bench("eigh_9x9_cold", || qsim::eigen::eigh(black_box(&ham)));
    h.bench("eigh_9x9_naive", || {
        naive_eigen::naive_eigh(black_box(&ham))
    });
}

fn bench_expm(h: &mut Bench) {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let ham = pair.hamiltonian(-1.8);
    h.bench("expm_9x9_propagator", || {
        qsim::expm::expm_hermitian_propagator(black_box(&ham), 0.25)
    });
    let wf =
        qsim::two_qubit::DetuningWaveform::rounded(pair.cz_resonance_detuning(), 4.0, 35.0, 0.5);
    h.bench("uqq_full_pulse", || pair.propagate(black_box(&wf)));
}

fn bench_bitstream(h: &mut Bench) {
    use qsim::pulse::{SfqParams, SfqPulseSim};
    let sim = SfqPulseSim::new(qsim::transmon::Transmon::new(6.21286), SfqParams::default());
    let bits = sim.resonant_comb(63);
    let target = qsim::gates::ry(std::f64::consts::FRAC_PI_2);
    h.bench("bitstream_frame_gate_253", || {
        sim.frame_gate_qubit(black_box(&bits))
    });
    let m = sim.frame_gate_qubit(&bits);
    h.bench("bitstream_fitness_free_z", || {
        calib::bitstream::fidelity_with_freedom(
            black_box(&m),
            &target,
            calib::bitstream::ZFreedom::PrePost,
        )
    });
}

fn bench_decomposition(h: &mut Bench) {
    let basis = calib::opt_decomp::OptBasis::ideal(255);
    let target = qsim::gates::h();
    h.bench("opt_decompose_L2", || {
        calib::opt_decomp::decompose_opt(black_box(&target), &basis, 0.0, 2, 0.0)
    });
    let min_basis = calib::min_decomp::MinBasis::ideal_ry_t();
    let db = calib::min_decomp::SequenceDb::build(&min_basis, 10);
    h.bench("min_mitm_query_depth20", || {
        calib::min_decomp::decompose_min(black_box(&target), &min_basis, &db, 1e-4)
    });
}

fn bench_compile(h: &mut Bench) {
    use qcircuit::lower::lower_to_cz;
    use qcircuit::mapping::{route, Layout, RouterConfig};
    use qcircuit::topology::Grid;
    let grid = Grid::new(8, 8);
    let circuit = lower_to_cz(&qcircuit::bench::ising_chain(64, 2, 0.3, 0.7));
    let snake = Layout::snake(64, &grid);
    h.bench("route_ising64", || {
        route(
            black_box(&circuit),
            &grid,
            black_box(&snake),
            &RouterConfig::default(),
        )
    });
    let routed = route(&circuit, &grid, &snake, &RouterConfig::default());
    let phys = lower_to_cz(&routed.circuit);
    h.bench("schedule_ising64", || {
        qcircuit::schedule::schedule_crosstalk_aware(black_box(&phys), &grid)
    });

    // The whole pass pipeline (lower → route → lower_swaps → schedule,
    // post-validated per stage) on the same workload, default vs the
    // alternative strategies.
    use qcircuit::pipeline::{
        CompileArtifact, Pipeline, PipelineConfig, RouteStrategy, ScheduleStrategy,
    };
    let logical = qcircuit::bench::ising_chain(64, 2, 0.3, 0.7);
    let mut pipe = |name: &'static str, cfg: PipelineConfig| {
        let pipeline = Pipeline::standard(&cfg);
        h.bench(name, || {
            pipeline
                .run(
                    CompileArtifact::new(black_box(&logical).clone(), snake.clone()),
                    &grid,
                )
                .unwrap()
                .0
                .scheduled()
                .len()
        });
    };
    pipe("pipeline_default_ising64", PipelineConfig::default());
    pipe(
        "pipeline_lookahead_asap_ising64",
        PipelineConfig::default()
            .with_router(RouteStrategy::Lookahead { window: 16 })
            .with_scheduler(ScheduleStrategy::Asap),
    );
}

fn bench_synthesis(h: &mut Bench) {
    h.bench("synthesize_mux16", || {
        let mut nl = sfq_hw::generators::one_hot_mux(16);
        sfq_hw::passes::synthesize(&mut nl);
        nl.stats().total_jj
    });
    let cfg = digiq_core::design::SystemConfig::paper_default(
        digiq_core::design::ControllerDesign::DigiqOpt { bs: 8 },
        2,
    );
    let model = sfq_hw::cost::CostModel::default();
    // Reset the module memo *outside* the closure: the counted (first)
    // run is then deterministically cold regardless of which kernels ran
    // before, while the timed iterations measure the memoized steady
    // state the Fig 8 sweep actually sees.
    digiq_core::hardware::clear_module_memo();
    h.bench("build_hardware_opt_bs8", || {
        digiq_core::hardware::build_hardware(black_box(&cfg), &model)
    });
    digiq_core::hardware::clear_module_memo();
    h.bench("fig8_sweep_serial", || {
        digiq_core::hardware::fig8_sweep(black_box(&model)).len()
    });
}

/// One fresh result row: timing stats plus the deterministic counters.
struct Row {
    name: String,
    stats: Stats,
    counters: KernelCounters,
    synth: SynthCounters,
}

impl Row {
    /// The deterministic counter fields of this row, in record order —
    /// the single source of truth for both `--json-out` and `--compare`.
    fn counter_fields(&self) -> [(&'static str, u64); 5] {
        [
            ("flops", self.counters.flops),
            ("allocs", self.counters.allocs),
            ("cells", self.synth.cells),
            ("dffs_moved", self.synth.dffs_moved),
            ("synth_allocs", self.synth.allocs),
        ]
    }
}

/// Extracts the kernel rows from a committed benchmark record — either a
/// full `BENCH_<date>.json` object (`{"kernels": [...]}`) or a bare array
/// as written by `--json-out`.
fn baseline_rows(j: &Json) -> Result<&[Json], String> {
    match j {
        Json::Arr(items) => Ok(items),
        Json::Obj(_) => j.arr_field("kernels", "benchmark record"),
        _ => Err("benchmark record is neither an array nor an object".to_string()),
    }
}

/// Diffs the fresh rows against a committed record. Returns `false` (fail)
/// if any kernel's flop or allocation count exceeds its baseline; wall-time
/// regressions only print a warning.
fn compare(rows: &[Row], baseline_path: &str, baseline: &Json) -> bool {
    let base = match baseline_rows(baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read baseline `{baseline_path}`: {e}");
            return false;
        }
    };
    println!("\ncomparison vs {baseline_path}:");
    println!(
        "{:<32} {:>12} {:>12} {:>8}  counters",
        "kernel", "base median", "median", "speedup"
    );
    let mut ok = true;
    for row in rows {
        let Some(b) = base
            .iter()
            .find(|b| b.str_field("name", "row") == Ok(row.name.as_str()))
        else {
            println!("{:<32} (new kernel, no baseline)", row.name);
            continue;
        };
        let base_median = b.num_field("median_ns", "row").unwrap_or(f64::NAN);
        let speedup = base_median / row.stats.median_ns;
        // Counters are exact and deterministic: any increase is a real
        // regression, not noise. Fields the baseline lacks (older records
        // predate the synthesis counters) are skipped — the fresh record
        // picks up the gate from there.
        let covered: Vec<(&str, u64, u64)> = row
            .counter_fields()
            .into_iter()
            .filter_map(|(field, fresh)| {
                b.count_field(field, "row")
                    .ok()
                    .map(|bv| (field, bv, fresh))
            })
            .collect();
        let counter_note = if covered.is_empty() {
            "baseline has none".to_string()
        } else if covered.iter().all(|&(_, bv, _)| bv == 0)
            && row.counter_fields().iter().any(|&(_, fresh)| fresh > 0)
        {
            // An all-zero baseline against a counting kernel means the
            // record predates counter coverage of this path (not a
            // regression from literally zero work); a fresh record picks
            // up the gate from here.
            let now: Vec<String> = row
                .counter_fields()
                .iter()
                .map(|(f, v)| format!("{f} {v}"))
                .collect();
            format!(
                "baseline predates counter coverage (now {})",
                now.join(", ")
            )
        } else if covered.iter().any(|&(_, bv, fresh)| fresh > bv) {
            ok = false;
            let diffs: Vec<String> = covered
                .iter()
                .map(|(f, bv, fresh)| format!("{f} {bv} -> {fresh}"))
                .collect();
            format!("REGRESSED {}", diffs.join(", "))
        } else {
            let diffs: Vec<String> = covered
                .iter()
                .map(|(f, bv, fresh)| format!("{f} {bv} -> {fresh}"))
                .collect();
            format!("ok ({})", diffs.join(", "))
        };
        println!(
            "{:<32} {:>12} {:>12} {:>7.2}x  {}",
            row.name,
            fmt_ns(base_median),
            fmt_ns(row.stats.median_ns),
            speedup,
            counter_note
        );
        if row.stats.median_ns > base_median * 1.5 {
            eprintln!(
                "warning: {} wall time regressed {:.2}x (warn-only: timing is noisy in CI)",
                row.name,
                row.stats.median_ns / base_median
            );
        }
    }
    ok
}

fn main() {
    let mut h = Bench {
        h: if digiq_bench::has_flag("--quick") {
            Harness::quick()
        } else {
            Harness::standard()
        },
        counters: Vec::new(),
        synth: Vec::new(),
        filter: digiq_bench::arg_value("--filter"),
    };
    bench_eigen(&mut h);
    bench_expm(&mut h);
    bench_bitstream(&mut h);
    bench_decomposition(&mut h);
    bench_compile(&mut h);
    bench_synthesis(&mut h);
    println!("\n{} kernels timed.", h.h.results.len());
    let rows: Vec<Row> =
        h.h.results
            .iter()
            .zip(h.counters.iter())
            .zip(h.synth.iter())
            .map(|(((name, stats), &counters), &synth)| Row {
                name: name.clone(),
                stats: *stats,
                counters,
                synth,
            })
            .collect();
    if let Some(path) = digiq_bench::arg_value("--json-out") {
        let out = Json::Arr(
            rows.iter()
                .map(|row| {
                    let mut fields = vec![("name".to_string(), row.name.to_json())];
                    if let Json::Obj(stat_fields) = row.stats.to_json() {
                        fields.extend(stat_fields);
                    }
                    for (field, value) in row.counter_fields() {
                        fields.push((field.to_string(), value.to_json()));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        );
        std::fs::write(&path, out.render()).unwrap_or_else(|e| {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(1);
        });
        eprintln!("kernel stats written to {path}");
    }
    if let Some(path) = digiq_bench::arg_value("--compare") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: cannot parse `{path}`: {e:?}");
            std::process::exit(1);
        });
        if !compare(&rows, &path, &baseline) {
            eprintln!("error: deterministic counter regression vs {path}");
            std::process::exit(1);
        }
        println!("bench compare OK vs {path}");
    }
}
