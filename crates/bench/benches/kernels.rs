//! Timing kernels for the computational hot paths behind every figure:
//! Hamiltonian propagation (Fig 7), bitstream fitness (§V-A step 1), gate
//! decomposition (Fig 10a), routing and synthesis (Figs 8/9).
//!
//! Runs on the std-only harness in `digiq_bench::timing` (no criterion —
//! the workspace is offline and dependency-free). `--quick` shrinks the
//! budgets for CI smoke runs; `--json-out FILE` additionally writes the
//! collected stats as a JSON array (what `scripts/ci.sh --bench-json`
//! records in `BENCH_<date>.json`).

use digiq_bench::timing::Harness;
use sfq_hw::json::{Json, ToJson};
use std::hint::black_box;

fn bench_expm(h: &mut Harness) {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let ham = pair.hamiltonian(-1.8);
    h.bench("expm_9x9_propagator", || {
        qsim::expm::expm_hermitian_propagator(black_box(&ham), 0.25)
    });
    let wf =
        qsim::two_qubit::DetuningWaveform::rounded(pair.cz_resonance_detuning(), 4.0, 35.0, 0.5);
    h.bench("uqq_full_pulse", || pair.propagate(black_box(&wf)));
}

fn bench_bitstream(h: &mut Harness) {
    use qsim::pulse::{SfqParams, SfqPulseSim};
    let sim = SfqPulseSim::new(qsim::transmon::Transmon::new(6.21286), SfqParams::default());
    let bits = sim.resonant_comb(63);
    let target = qsim::gates::ry(std::f64::consts::FRAC_PI_2);
    h.bench("bitstream_frame_gate_253", || {
        sim.frame_gate_qubit(black_box(&bits))
    });
    let m = sim.frame_gate_qubit(&bits);
    h.bench("bitstream_fitness_free_z", || {
        calib::bitstream::fidelity_with_freedom(
            black_box(&m),
            &target,
            calib::bitstream::ZFreedom::PrePost,
        )
    });
}

fn bench_decomposition(h: &mut Harness) {
    let basis = calib::opt_decomp::OptBasis::ideal(255);
    let target = qsim::gates::h();
    h.bench("opt_decompose_L2", || {
        calib::opt_decomp::decompose_opt(black_box(&target), &basis, 0.0, 2, 0.0)
    });
    let min_basis = calib::min_decomp::MinBasis::ideal_ry_t();
    let db = calib::min_decomp::SequenceDb::build(&min_basis, 10);
    h.bench("min_mitm_query_depth20", || {
        calib::min_decomp::decompose_min(black_box(&target), &min_basis, &db, 1e-4)
    });
}

fn bench_compile(h: &mut Harness) {
    use qcircuit::lower::lower_to_cz;
    use qcircuit::mapping::{route, Layout, RouterConfig};
    use qcircuit::topology::Grid;
    let grid = Grid::new(8, 8);
    let circuit = lower_to_cz(&qcircuit::bench::ising_chain(64, 2, 0.3, 0.7));
    h.bench("route_ising64", || {
        route(
            black_box(&circuit),
            &grid,
            Layout::snake(64, &grid),
            &RouterConfig::default(),
        )
    });
    let routed = route(
        &circuit,
        &grid,
        Layout::snake(64, &grid),
        &RouterConfig::default(),
    );
    let phys = lower_to_cz(&routed.circuit);
    h.bench("schedule_ising64", || {
        qcircuit::schedule::schedule_crosstalk_aware(black_box(&phys), &grid)
    });

    // The whole pass pipeline (lower → route → lower_swaps → schedule,
    // post-validated per stage) on the same workload, default vs the
    // alternative strategies.
    use qcircuit::pipeline::{
        CompileArtifact, Pipeline, PipelineConfig, RouteStrategy, ScheduleStrategy,
    };
    let logical = qcircuit::bench::ising_chain(64, 2, 0.3, 0.7);
    let mut pipe = |name: &'static str, cfg: PipelineConfig| {
        let pipeline = Pipeline::standard(&cfg);
        h.bench(name, || {
            pipeline
                .run(
                    CompileArtifact::new(black_box(&logical).clone(), Layout::snake(64, &grid)),
                    &grid,
                )
                .unwrap()
                .0
                .scheduled()
                .len()
        });
    };
    pipe("pipeline_default_ising64", PipelineConfig::default());
    pipe(
        "pipeline_lookahead_asap_ising64",
        PipelineConfig::default()
            .with_router(RouteStrategy::Lookahead { window: 16 })
            .with_scheduler(ScheduleStrategy::Asap),
    );
}

fn bench_synthesis(h: &mut Harness) {
    h.bench("synthesize_mux16", || {
        let mut nl = sfq_hw::generators::one_hot_mux(16);
        sfq_hw::passes::synthesize(&mut nl);
        nl.stats().total_jj
    });
    let cfg = digiq_core::design::SystemConfig::paper_default(
        digiq_core::design::ControllerDesign::DigiqOpt { bs: 8 },
        2,
    );
    let model = sfq_hw::cost::CostModel::default();
    h.bench("build_hardware_opt_bs8", || {
        digiq_core::hardware::build_hardware(black_box(&cfg), &model)
    });
}

fn main() {
    let mut h = if digiq_bench::has_flag("--quick") {
        Harness::quick()
    } else {
        Harness::standard()
    };
    bench_expm(&mut h);
    bench_bitstream(&mut h);
    bench_decomposition(&mut h);
    bench_compile(&mut h);
    bench_synthesis(&mut h);
    println!("\n{} kernels timed.", h.results.len());
    if let Some(path) = digiq_bench::arg_value("--json-out") {
        let rows = Json::Arr(
            h.results
                .iter()
                .map(|(name, stats)| {
                    let mut row = vec![("name".to_string(), name.to_json())];
                    if let Json::Obj(fields) = stats.to_json() {
                        row.extend(fields);
                    }
                    Json::Obj(row)
                })
                .collect(),
        );
        std::fs::write(&path, rows.render()).unwrap_or_else(|e| {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(1);
        });
        eprintln!("kernel stats written to {path}");
    }
}
