//! Property-based tests for the qsim numerical core.
//!
//! Randomized cases are generated with the crate's own seeded RNG (no
//! proptest offline). They pin down the algebraic invariants every other
//! crate relies on: unitarity of propagators, spectral-decomposition
//! consistency, fidelity bounds, and SU(2) group structure.

use qsim::complex::C64;
use qsim::eigen::eigh;
use qsim::expm::expm_hermitian_propagator;
use qsim::fidelity::{average_gate_fidelity, leakage};
use qsim::gates::{self, Su2};
use qsim::matrix::CMat;
use qsim::pulse::{pack_bits, unpack_bits, SfqParams, SfqPulseSim};
use qsim::rng::StdRng;
use qsim::transmon::Transmon;

const CASES: u64 = 64;

fn random_hermitian(rng: &mut StdRng, n: usize) -> CMat {
    let g = CMat::from_fn(n, n, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let gd = g.dagger();
    CMat::from_fn(n, n, |i, j| (g[(i, j)] + gd[(i, j)]) * 0.5)
}

fn random_su2(rng: &mut StdRng) -> CMat {
    gates::u_zyz(
        rng.gen_range(0.0..std::f64::consts::PI),
        rng.gen_range(-3.2..3.2),
        rng.gen_range(-3.2..3.2),
    )
}

fn random_bits(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<bool> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| rng.gen::<bool>()).collect()
}

#[test]
fn complex_field_axioms() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let a = C64::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
        let b = C64::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
        // Commutativity and distributivity.
        assert!((a * b).approx_eq(b * a, 1e-12), "case {case}");
        assert!((a + b).approx_eq(b + a, 1e-12), "case {case}");
        let c = C64::new(1.3, -0.4);
        assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-9), "case {case}");
        // Conjugation is an involution and multiplicative.
        assert!(a.conj().conj().approx_eq(a, 0.0), "case {case}");
        assert!(
            (a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9),
            "case {case}"
        );
        // |ab| = |a||b|.
        assert!(
            ((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn eigh_reconstructs_and_is_unitary() {
    for case in 0..CASES {
        let h = random_hermitian(&mut StdRng::seed_from_u64(case), 5);
        let e = eigh(&h);
        assert!(e.vectors.is_unitary(1e-9), "case {case}");
        assert!(e.reconstruct().approx_eq(&h, 1e-8), "case {case}");
        // Eigenvalues sorted ascending.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-10, "case {case}");
        }
    }
}

#[test]
fn propagator_unitary_and_group_law() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let h = random_hermitian(&mut rng, 4);
        let t1 = rng.gen_range(0.0..3.0);
        let t2 = rng.gen_range(0.0..3.0);
        let u1 = expm_hermitian_propagator(&h, t1);
        let u2 = expm_hermitian_propagator(&h, t2);
        let u12 = expm_hermitian_propagator(&h, t1 + t2);
        assert!(u1.is_unitary(1e-9), "case {case}");
        assert!(u2.matmul(&u1).approx_eq(&u12, 1e-8), "case {case}");
    }
}

#[test]
fn fidelity_bounds_and_phase_invariance() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let u = random_su2(&mut rng);
        let v = random_su2(&mut rng);
        let phase = rng.gen_range(0.0..6.28);
        let f = average_gate_fidelity(&u, &v);
        assert!((0.0..=1.0).contains(&f), "case {case}");
        // Global phase on either argument changes nothing.
        let fp = average_gate_fidelity(&u.scale(C64::cis(phase)), &v);
        assert!((f - fp).abs() < 1e-10, "case {case}");
        // Self-fidelity is 1.
        assert!(
            (average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-10,
            "case {case}"
        );
        // Unitaries have no leakage.
        assert!(leakage(&u) < 1e-10, "case {case}");
    }
}

#[test]
fn su2_group_axioms() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let a = random_su2(&mut rng);
        let b = random_su2(&mut rng);
        let qa = Su2::from_matrix(&a);
        let qb = Su2::from_matrix(&b);
        // Composition matches matrix product (up to phase).
        let qc = qa.compose(qb);
        let m = a.matmul(&b);
        assert!(
            gates::phase_distance(&qc.to_matrix(), &m) < 1e-9,
            "case {case}"
        );
        // Inverse law.
        // The sqrt-based metric amplifies 1e-16 rounding to ~1e-8, hence
        // the 1e-7 tolerances.
        assert!(
            qa.compose(qa.inverse()).distance(Su2::IDENTITY) < 1e-7,
            "case {case}"
        );
        // Distance symmetry and identity.
        assert!(
            (qa.distance(qb) - qb.distance(qa)).abs() < 1e-12,
            "case {case}"
        );
        assert!(qa.distance(qa) < 1e-7, "case {case}");
    }
}

#[test]
fn zyz_decomposition_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let u = random_su2(&mut rng);
        let phase = rng.gen_range(0.0..6.28);
        let phased = u.scale(C64::cis(phase));
        let (theta, phi, lam, g) = gates::zyz_angles(&phased);
        let rebuilt = gates::u_zyz(theta, phi, lam).scale(C64::cis(g));
        assert!(
            rebuilt.approx_eq(&phased, 1e-8),
            "case {case}: err = {}",
            rebuilt.max_abs_diff(&phased)
        );
    }
}

#[test]
fn paper_form_decomposition_roundtrip() {
    for case in 0..CASES {
        let u = random_su2(&mut StdRng::seed_from_u64(case));
        let (p1, p2, p3) = gates::paper_angles(&u);
        let rebuilt = gates::u_paper(p3, p2, p1);
        assert!(gates::phase_distance(&rebuilt, &u) < 1e-8, "case {case}");
    }
}

#[test]
fn bitstream_evolution_is_unitary() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let bits = random_bits(&mut rng, 1, 120);
        let freq = rng.gen_range(4.0..7.0);
        let sim = SfqPulseSim::new(Transmon::new(freq), SfqParams::default());
        let u = sim.frame_gate(&bits);
        assert!(u.is_unitary(1e-8), "case {case}");
        // Projected gate never gains norm.
        let q = sim.frame_gate_qubit(&bits);
        assert!(leakage(&q) >= -1e-12, "case {case}");
        let fid = average_gate_fidelity(&q, &gates::id2());
        assert!((0.0..=1.0).contains(&fid), "case {case}");
    }
}

#[test]
fn bitstream_concatenation_composes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let b1 = random_bits(&mut rng, 1, 40);
        let b2 = random_bits(&mut rng, 1, 40);
        // Frame gates compose with the delay conjugation accounted for:
        // lab gates compose exactly.
        let sim = SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default());
        let mut cat = b1.clone();
        cat.extend_from_slice(&b2);
        let lhs = sim.lab_gate(&cat);
        let rhs = sim.lab_gate(&b2).matmul(&sim.lab_gate(&b1));
        assert!(lhs.approx_eq(&rhs, 1e-9), "case {case}");
    }
}

#[test]
fn pack_unpack_is_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let bits = random_bits(&mut rng, 0, 512);
        let packed = pack_bits(&bits);
        let back = unpack_bits(&packed, bits.len());
        assert_eq!(bits, back, "case {case}");
    }
}

#[test]
fn phase_distance_is_a_pseudometric() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let a = random_su2(&mut rng);
        let b = random_su2(&mut rng);
        let c = random_su2(&mut rng);
        let dab = gates::phase_distance(&a, &b);
        let dba = gates::phase_distance(&b, &a);
        assert!((dab - dba).abs() < 1e-9, "case {case}");
        assert!(gates::phase_distance(&a, &a) < 1e-10, "case {case}");
        // Triangle inequality (with numerical slack).
        let dac = gates::phase_distance(&a, &c);
        let dcb = gates::phase_distance(&c, &b);
        assert!(dab <= dac + dcb + 1e-9, "case {case}");
    }
}
