//! Property-based tests for the qsim numerical core.
//!
//! These pin down the algebraic invariants every other crate relies on:
//! unitarity of propagators, spectral-decomposition consistency, fidelity
//! bounds, and SU(2) group structure.

use proptest::prelude::*;
use qsim::complex::C64;
use qsim::eigen::eigh;
use qsim::expm::expm_hermitian_propagator;
use qsim::fidelity::{average_gate_fidelity, leakage};
use qsim::gates::{self, Su2};
use qsim::matrix::CMat;
use qsim::pulse::{pack_bits, unpack_bits, SfqParams, SfqPulseSim};
use qsim::transmon::Transmon;

fn hermitian_strategy(n: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec(-1.0f64..1.0, n * n * 2).prop_map(move |vals| {
        let g = CMat::from_fn(n, n, |i, j| {
            let k = (i * n + j) * 2;
            C64::new(vals[k], vals[k + 1])
        });
        let gd = g.dagger();
        CMat::from_fn(n, n, |i, j| (g[(i, j)] + gd[(i, j)]) * 0.5)
    })
}

fn su2_strategy() -> impl Strategy<Value = CMat> {
    (0.0f64..std::f64::consts::PI, -3.2f64..3.2, -3.2f64..3.2)
        .prop_map(|(theta, phi, lam)| gates::u_zyz(theta, phi, lam))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(ar in -10.0f64..10.0, ai in -10.0f64..10.0,
                            br in -10.0f64..10.0, bi in -10.0f64..10.0) {
        let a = C64::new(ar, ai);
        let b = C64::new(br, bi);
        // Commutativity and distributivity.
        prop_assert!((a * b).approx_eq(b * a, 1e-12));
        prop_assert!((a + b).approx_eq(b + a, 1e-12));
        let c = C64::new(1.3, -0.4);
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-9));
        // Conjugation is an involution and multiplicative.
        prop_assert!(a.conj().conj().approx_eq(a, 0.0));
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9));
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    #[test]
    fn eigh_reconstructs_and_is_unitary(h in hermitian_strategy(5)) {
        let e = eigh(&h);
        prop_assert!(e.vectors.is_unitary(1e-9));
        prop_assert!(e.reconstruct().approx_eq(&h, 1e-8));
        // Eigenvalues sorted ascending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn propagator_unitary_and_group_law(h in hermitian_strategy(4),
                                        t1 in 0.0f64..3.0, t2 in 0.0f64..3.0) {
        let u1 = expm_hermitian_propagator(&h, t1);
        let u2 = expm_hermitian_propagator(&h, t2);
        let u12 = expm_hermitian_propagator(&h, t1 + t2);
        prop_assert!(u1.is_unitary(1e-9));
        prop_assert!(u2.matmul(&u1).approx_eq(&u12, 1e-8));
    }

    #[test]
    fn fidelity_bounds_and_phase_invariance(u in su2_strategy(), v in su2_strategy(),
                                            phase in 0.0f64..6.28) {
        let f = average_gate_fidelity(&u, &v);
        prop_assert!((0.0..=1.0).contains(&f));
        // Global phase on either argument changes nothing.
        let fp = average_gate_fidelity(&u.scale(C64::cis(phase)), &v);
        prop_assert!((f - fp).abs() < 1e-10);
        // Self-fidelity is 1.
        prop_assert!((average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-10);
        // Unitaries have no leakage.
        prop_assert!(leakage(&u) < 1e-10);
    }

    #[test]
    fn su2_group_axioms(a in su2_strategy(), b in su2_strategy()) {
        let qa = Su2::from_matrix(&a);
        let qb = Su2::from_matrix(&b);
        // Composition matches matrix product (up to phase).
        let qc = qa.compose(qb);
        let m = a.matmul(&b);
        prop_assert!(gates::phase_distance(&qc.to_matrix(), &m) < 1e-9);
        // Inverse law.
        // The sqrt-based metric amplifies 1e-16 rounding to ~1e-8, hence
        // the 1e-7 tolerances.
        prop_assert!(qa.compose(qa.inverse()).distance(Su2::IDENTITY) < 1e-7);
        // Distance symmetry and identity.
        prop_assert!((qa.distance(qb) - qb.distance(qa)).abs() < 1e-12);
        prop_assert!(qa.distance(qa) < 1e-7);
    }

    #[test]
    fn zyz_decomposition_roundtrip(u in su2_strategy(), phase in 0.0f64..6.28) {
        let phased = u.scale(C64::cis(phase));
        let (theta, phi, lam, g) = gates::zyz_angles(&phased);
        let rebuilt = gates::u_zyz(theta, phi, lam).scale(C64::cis(g));
        prop_assert!(rebuilt.approx_eq(&phased, 1e-8),
                     "err = {}", rebuilt.max_abs_diff(&phased));
    }

    #[test]
    fn paper_form_decomposition_roundtrip(u in su2_strategy()) {
        let (p1, p2, p3) = gates::paper_angles(&u);
        let rebuilt = gates::u_paper(p3, p2, p1);
        prop_assert!(gates::phase_distance(&rebuilt, &u) < 1e-8);
    }

    #[test]
    fn bitstream_evolution_is_unitary(bits in proptest::collection::vec(any::<bool>(), 1..120),
                                      freq in 4.0f64..7.0) {
        let sim = SfqPulseSim::new(Transmon::new(freq), SfqParams::default());
        let u = sim.frame_gate(&bits);
        prop_assert!(u.is_unitary(1e-8));
        // Projected gate never gains norm.
        let q = sim.frame_gate_qubit(&bits);
        prop_assert!(leakage(&q) >= -1e-12);
        let fid = average_gate_fidelity(&q, &gates::id2());
        prop_assert!((0.0..=1.0).contains(&fid));
    }

    #[test]
    fn bitstream_concatenation_composes(b1 in proptest::collection::vec(any::<bool>(), 1..40),
                                        b2 in proptest::collection::vec(any::<bool>(), 1..40)) {
        // Frame gates compose with the delay conjugation accounted for:
        // lab gates compose exactly.
        let sim = SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default());
        let mut cat = b1.clone();
        cat.extend_from_slice(&b2);
        let lhs = sim.lab_gate(&cat);
        let rhs = sim.lab_gate(&b2).matmul(&sim.lab_gate(&b1));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn pack_unpack_is_identity(bits in proptest::collection::vec(any::<bool>(), 0..512)) {
        let packed = pack_bits(&bits);
        let back = unpack_bits(&packed, bits.len());
        prop_assert_eq!(bits, back);
    }

    #[test]
    fn phase_distance_is_a_pseudometric(a in su2_strategy(), b in su2_strategy(),
                                        c in su2_strategy()) {
        let dab = gates::phase_distance(&a, &b);
        let dba = gates::phase_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(gates::phase_distance(&a, &a) < 1e-10);
        // Triangle inequality (with numerical slack).
        let dac = gates::phase_distance(&a, &c);
        let dcb = gates::phase_distance(&c, &b);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }
}
