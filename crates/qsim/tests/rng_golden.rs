//! Golden-vector tests pinning the exact output of `qsim::rng`.
//!
//! Every observable draw in the workspace — exec-model delay classes,
//! router tie-breaks, drift populations, derived sweep seeds, cache keys
//! — flows through xoshiro256** or `StableHasher`. These vectors were
//! computed by an independent reference implementation of the published
//! algorithms (SplitMix64 seeding, xoshiro256** by Blackman & Vigna,
//! FNV-1a with a SplitMix64-style finalizer), so a toolchain upgrade, a
//! refactor, or an "optimization" that shifts any stream is caught here
//! before it silently invalidates every golden file downstream.

use qsim::rng::{stable_hash, StableHasher, StdRng};

#[test]
fn xoshiro_streams_are_pinned() {
    let expect: [(u64, [u64; 6]); 3] = [
        (
            0,
            [
                0x99ec_5f36_cb75_f2b4,
                0xbf6e_1f78_4956_452a,
                0x1a5f_849d_4933_e6e0,
                0x6aa5_94f1_262d_2d2c,
                0xbba5_ad4a_1f84_2e59,
                0xffef_8375_d9eb_caca,
            ],
        ),
        (
            42,
            [
                0x1578_0b2e_0c2e_c716,
                0x6104_d986_6d11_3a7e,
                0xae17_5332_39e4_99a1,
                0xecb8_ad47_03b3_60a1,
                0xfde6_dc7f_e2ec_5e64,
                0xc50d_a531_0179_5238,
            ],
        ),
        (
            0xDEAD_BEEF,
            [
                0xc555_5444_a74d_7e83,
                0x65c3_0d37_b4b1_6e38,
                0x54f7_7320_0a4e_fa23,
                0x429a_ed75_fb95_8af7,
                0xfb0e_1dd6_9c25_5b2e,
                0x9d6d_02ec_5881_4a27,
            ],
        ),
    ];
    for (seed, outputs) in expect {
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, want) in outputs.into_iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "seed {seed}, output {i}");
        }
    }
}

#[test]
fn unit_f64_stream_is_pinned() {
    // (next_u64() >> 11) × 2⁻⁵³ — exact in binary, and the decimal
    // literals below round-trip exactly through f64.
    let mut rng = StdRng::seed_from_u64(42);
    let expect: [f64; 4] = [
        0.08386297105988216,
        0.3789802506626686,
        0.6800434110281394,
        0.9246929453253876,
    ];
    for (i, want) in expect.into_iter().enumerate() {
        let got: f64 = rng.gen();
        assert_eq!(got.to_bits(), want.to_bits(), "draw {i}: {got} vs {want}");
    }
}

#[test]
fn gen_range_streams_are_pinned() {
    // Half-open usize range (no rejection at n = 10 for these draws).
    let mut rng = StdRng::seed_from_u64(7);
    let got: Vec<usize> = (0..8).map(|_| rng.gen_range(0usize..10)).collect();
    assert_eq!(got, vec![4, 4, 8, 4, 4, 1, 6, 6]);

    // Inclusive u64 range (span 15, modulo-biased without rejection).
    let mut rng = StdRng::seed_from_u64(9);
    let got: Vec<u64> = (0..6).map(|_| rng.gen_range(3u64..=17)).collect();
    assert_eq!(got, vec![8, 13, 5, 9, 5, 6]);
}

#[test]
fn gen_range_rejection_is_pinned() {
    // n = 2⁶³ + 1 rejects raw draws ≥ 2⁶³ + 1 (the top ~half of the u64
    // space would bias `% n`). Seed 0's first raw output
    // 0x99ec_5f36_cb75_f2b4 falls in the rejection region; the sampler
    // must discard it, then discard 0xbf6e_1f78_4956_452a too, and accept
    // the third draw 0x1a5f_849d_4933_e6e0 (< n, so returned verbatim).
    let n: u64 = (1 << 63) + 1;
    let mut rng = StdRng::seed_from_u64(0);
    let got = rng.gen_range(0..n);
    assert_eq!(got, 0x1a5f_849d_4933_e6e0);
    // A biased (non-rejecting) sampler would have returned the first
    // draw's residue instead.
    assert_ne!(got, 0x99ec_5f36_cb75_f2b4u64 % n);
    // The two rejected draws were consumed: the stream continues at
    // output index 3 of the pinned seed-0 sequence.
    assert_eq!(rng.next_u64(), 0x6aa5_94f1_262d_2d2c);
}

#[test]
fn stable_hash_vectors_are_pinned() {
    // Independent FNV-1a(+avalanche) reference values. These digests feed
    // exec-model draws, `derive_seed`, and both `cache_key`s — changing
    // any of them invalidates every committed golden file.
    assert_eq!(stable_hash(&[]), 0xf52a_15e9_a9b5_e89b);
    assert_eq!(stable_hash(&[0]), 0x813f_0174_a236_7c13);
    assert_eq!(stable_hash(&[1, 2, 3]), 0xb032_0c21_b46a_9760);
    assert_eq!(stable_hash(&[u64::MAX]), 0x9795_737c_4a2d_acd5);
    // The exec model's draw shape: (seed, angle bin, qubit class).
    assert_eq!(stable_hash(&[0xD161_0E0C, 1, 3]), 0xeb89_8bce_3b35_60b2);
}

#[test]
fn stable_hasher_byte_path_is_pinned() {
    let mut h = StableHasher::new();
    h.write_u8(0xAB);
    assert_eq!(h.finish(), 0x014a_caad_8290_4369);
    // Incremental word writes equal the one-shot digest.
    let mut h = StableHasher::new();
    h.write_u64(1);
    h.write_u64(2);
    h.write_u64(3);
    assert_eq!(h.finish(), stable_hash(&[1, 2, 3]));
    // u64 writes are little-endian bytes: writing the 8 bytes of a word
    // one at a time lands on the same digest.
    let mut bytes = StableHasher::new();
    for b in 0x0102_0304_0506_0708u64.to_le_bytes() {
        bytes.write_u8(b);
    }
    assert_eq!(bytes.finish(), stable_hash(&[0x0102_0304_0506_0708]));
}

#[test]
fn downstream_seed_derivations_are_stable() {
    // The engine's derive_seed is stable_hash(&[base, salt]); pin the
    // composition used by every sweep (base_seed 0xD161_5EED, drift seed
    // 0) so sweep goldens cannot drift silently.
    let derived = stable_hash(&[0xD161_5EED, 0]);
    assert_eq!(derived, stable_hash(&[0xD161_5EED, 0]));
    let mut h = StableHasher::new();
    h.write_u64(0xD161_5EED);
    h.write_u64(0);
    assert_eq!(h.finish(), derived);
}
