//! Differential suite for the workspace/fused/fixed-N Jacobi eigensolver.
//!
//! `qsim::eigen::eigh` is an optimization of the textbook two-pass cyclic
//! Jacobi iteration: reusable workspace buffers, the column/row rotation
//! halves fused into one pass, a monomorphized 9×9 core, and an
//! incremental off-norm tally that only *skips* redundant convergence
//! rescans. All of it is a pure reordering — identical f64 expressions
//! over identical inputs — so the decomposition must match the naive
//! reference **bitwise** on every family here: random Hermitian, generic
//! complex (exercising the symmetrization), degenerate spectra (exercising
//! stable-sort tie handling), and NaN-poisoned matrices (exercising the
//! never-converges path). A NaN run through a workspace must not poison
//! the next clean decomposition.

use qsim::complex::C64;
use qsim::counters;
use qsim::eigen::{eigh, eigh_into, EigH, EighWorkspace};
use qsim::matrix::CMat;
use qsim::rng::StdRng;

// ------------------------------------------------------------------
// Naive reference: frozen copy of the pre-workspace implementation —
// allocating dagger/identity, separate column and row rotation passes,
// exact O(n²) off-norm rescan at the top of every sweep.
// ------------------------------------------------------------------

fn off_diag_sq(a: &CMat) -> f64 {
    let n = a.rows();
    let d = a.as_slice();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += d[i * n + j].abs2();
            }
        }
    }
    s
}

#[allow(clippy::too_many_arguments)]
fn rotate_columns(
    data: &mut [C64],
    n: usize,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    jqp: C64,
    jqq: C64,
) {
    for row in data.chunks_exact_mut(n) {
        let (akp, akq) = (row[p], row[q]);
        row[p] = C64::new(
            akp.re * c + (akq.re * jqp.re - akq.im * jqp.im),
            akp.im * c + (akq.re * jqp.im + akq.im * jqp.re),
        );
        row[q] = C64::new(
            -akp.re * s + (akq.re * jqq.re - akq.im * jqq.im),
            -akp.im * s + (akq.re * jqq.im + akq.im * jqq.re),
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn rotate_rows(data: &mut [C64], n: usize, p: usize, q: usize, c: f64, s: f64, jqp: C64, jqq: C64) {
    let (head, tail) = data.split_at_mut(q * n);
    let prow = &mut head[p * n..(p + 1) * n];
    let qrow = &mut tail[..n];
    let (cqp, cqq) = (jqp.conj(), jqq.conj());
    for (ap, aq) in prow.iter_mut().zip(qrow.iter_mut()) {
        let (apk, aqk) = (*ap, *aq);
        *ap = C64::new(
            apk.re * c + (aqk.re * cqp.re - aqk.im * cqp.im),
            apk.im * c + (aqk.re * cqp.im + aqk.im * cqp.re),
        );
        *aq = C64::new(
            -apk.re * s + (aqk.re * cqq.re - aqk.im * cqq.im),
            -apk.im * s + (aqk.re * cqq.im + aqk.im * cqq.re),
        );
    }
}

fn naive_eigh(a: &CMat) -> EigH {
    assert!(a.is_square());
    let n = a.rows();
    let mut m = a.dagger();
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = (m[(i, j)] + a[(i, j)]) * 0.5;
        }
    }
    let mut v = CMat::identity(n);

    let scale = m.frobenius_norm().max(1.0);
    let tol = (scale * 1e-15).powi(2) * (n * n) as f64;
    let thresh = scale * 1e-16;

    let md = m.as_mut_slice();
    let vd = v.as_mut_slice();
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    off += md[i * n + j].abs2();
                }
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let beta = md[p * n + q];
                let b = beta.abs();
                if b <= thresh {
                    continue;
                }
                let phi = beta.arg();
                let alpha = md[p * n + p].re;
                let gamma = md[q * n + q].re;
                let zeta = (alpha - gamma) / (2.0 * b);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                let e_m = C64::cis(-phi);
                let jqp = e_m * s;
                let jqq = e_m * c;
                rotate_columns(md, n, p, q, c, s, jqp, jqq);
                rotate_rows(md, n, p, q, c, s, jqp, jqq);
                rotate_columns(vd, n, p, q, c, s, jqp, jqq);
            }
        }
    }
    let _ = off_diag_sq(&m);

    let mut order: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| vals[i].total_cmp(&vals[j]));
    let sorted_vals: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
    let sorted_vecs = CMat::from_fn(n, n, |i, j| v[(i, order[j])]);
    EigH {
        values: sorted_vals,
        vectors: sorted_vecs,
    }
}

// ------------------------------------------------------------------
// Matrix families.
// ------------------------------------------------------------------

fn rand_c64(rng: &mut StdRng) -> C64 {
    C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
}

fn random_matrix(n: usize, rng: &mut StdRng) -> CMat {
    let data: Vec<C64> = (0..n * n).map(|_| rand_c64(rng)).collect();
    CMat::from_slice(n, n, &data)
}

fn random_hermitian(n: usize, rng: &mut StdRng) -> CMat {
    let a = random_matrix(n, rng);
    (&a + &a.dagger()).scale(C64::real(0.5))
}

/// Block-degenerate spectrum: a Hermitian similarity of a diagonal with
/// repeated entries, so the sort sees exact ties on top of round-off ones.
fn degenerate_spectrum(n: usize, rng: &mut StdRng) -> CMat {
    let mut m = random_hermitian(n, rng);
    let d = m.as_mut_slice();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d[i * n + j] = d[i * n + j] * 1e-3;
            }
        }
        d[i * n + i] = C64::real(((i / 2) as f64) * 2.0);
    }
    m
}

fn random_with_nan(n: usize, rng: &mut StdRng) -> CMat {
    let mut m = random_hermitian(n, rng);
    let (i, j) = (
        rng.gen_range(0..n as u64) as usize,
        rng.gen_range(0..n as u64) as usize,
    );
    let d = m.as_mut_slice();
    d[i * n + j] = C64::new(f64::NAN, 0.0);
    m
}

// ------------------------------------------------------------------
// Bitwise assertions.
// ------------------------------------------------------------------

fn assert_bitwise_eq(opt: &EigH, reference: &EigH, what: &str) {
    assert_eq!(opt.values.len(), reference.values.len(), "{what}: dim");
    for (k, (a, b)) in opt.values.iter().zip(reference.values.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: value[{k}] {a:e} != {b:e}"
        );
    }
    for (k, (a, b)) in opt
        .vectors
        .as_slice()
        .iter()
        .zip(reference.vectors.as_slice().iter())
        .enumerate()
    {
        assert_eq!(
            (a.re.to_bits(), a.im.to_bits()),
            (b.re.to_bits(), b.im.to_bits()),
            "{what}: vector entry {k} ({a:?} != {b:?})"
        );
    }
}

fn check(m: &CMat, what: &str) {
    let reference = naive_eigh(m);
    assert_bitwise_eq(&eigh(m), &reference, what);
    // The explicit-workspace entry point takes the identical path.
    let mut ws = EighWorkspace::new();
    assert_bitwise_eq(&eigh_into(m, &mut ws), &reference, what);
}

#[test]
fn hermitian_family_bitwise() {
    let mut rng = StdRng::seed_from_u64(0x51c1);
    for n in [2usize, 3, 4, 5, 7, 9, 12, 16] {
        for rep in 0..4 {
            let m = random_hermitian(n, &mut rng);
            check(&m, &format!("hermitian n={n} rep={rep}"));
        }
    }
}

#[test]
fn generic_complex_family_bitwise() {
    // Non-Hermitian input exercises the (A + A†)/2 symmetrization path.
    let mut rng = StdRng::seed_from_u64(0xbead);
    for n in [2usize, 4, 9, 11] {
        for rep in 0..3 {
            let m = random_matrix(n, &mut rng);
            check(&m, &format!("generic n={n} rep={rep}"));
        }
    }
}

#[test]
fn degenerate_spectrum_family_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    for n in [3usize, 4, 8, 9] {
        let m = degenerate_spectrum(n, &mut rng);
        check(&m, &format!("degenerate n={n}"));
    }
    // Fully degenerate: scaled identities break ties purely by index.
    for n in [2usize, 9] {
        let m = CMat::identity(n).scale(C64::real(2.5));
        check(&m, &format!("scaled identity n={n}"));
    }
    check(&CMat::zeros(6, 6), "zero matrix");
}

#[test]
fn nan_family_bitwise() {
    let mut rng = StdRng::seed_from_u64(0x7aff);
    for n in [2usize, 5, 9] {
        let m = random_with_nan(n, &mut rng);
        check(&m, &format!("nan n={n}"));
    }
}

#[test]
fn workspace_reuse_is_not_poisoned_by_nan() {
    let mut rng = StdRng::seed_from_u64(0x90a7);
    let bad = random_with_nan(9, &mut rng);
    let clean = random_hermitian(9, &mut rng);

    let mut fresh = EighWorkspace::new();
    let expect = eigh_into(&clean, &mut fresh);

    let mut reused = EighWorkspace::new();
    let _ = eigh_into(&bad, &mut reused); // leaves NaNs in every buffer
    let got = eigh_into(&clean, &mut reused);
    assert_bitwise_eq(&got, &expect, "post-NaN workspace reuse");

    // And the thread-local path recovers identically.
    let _ = eigh(&bad);
    assert_bitwise_eq(&eigh(&clean), &expect, "post-NaN thread-local reuse");
}

// ------------------------------------------------------------------
// Exact counter contracts (bench-compare gate inputs).
// ------------------------------------------------------------------

#[test]
fn eigh_counters_output_only_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x33);
    let m = random_hermitian(9, &mut rng);
    let (_, cold) = counters::counted(|| eigh(&m));
    // Steady-state allocation contract: the output `vectors` matrix only
    // (workspace buffers are reused scratch and never tallied).
    assert_eq!(cold.allocs, 1, "eigh allocates exactly the output");
    assert!(cold.flops > 0, "rotations must tally flops");
    let (_, warm) = counters::counted(|| eigh(&m));
    assert_eq!(cold, warm, "eigh counters must be state-independent");

    // The flop tally (48·n per applied rotation) is identical to the
    // reference trajectory: same rotations, same order.
    let mut ws = EighWorkspace::new();
    let (_, explicit) = counters::counted(|| eigh_into(&m, &mut ws));
    assert_eq!(explicit, warm, "eigh_into tallies match eigh");
}
