//! Differential property suite for the optimized numeric kernels.
//!
//! Every in-place / restructured hot-path kernel is pinned against a
//! naive textbook reference implementation over seeded random matrix
//! families — generic complex, Hermitian, non-normal, and NaN-containing —
//! to 1e-12 (or exactly, where the optimized path is a pure reordering).
//! The deterministic flop/allocation counters are asserted *exactly*: the
//! counts are part of the bench-compare contract in `scripts/ci.sh`, so a
//! drive-by allocation shows up here before it shows up in CI.

use qsim::complex::C64;
use qsim::counters;
use qsim::matrix::CMat;
use qsim::rng::StdRng;

fn rand_c64(rng: &mut StdRng) -> C64 {
    C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
}

/// A generic dense complex matrix.
fn random_matrix(n: usize, rng: &mut StdRng) -> CMat {
    let data: Vec<C64> = (0..n * n).map(|_| rand_c64(rng)).collect();
    CMat::from_slice(n, n, &data)
}

/// A Hermitian matrix (`A + A†` halved).
fn random_hermitian(n: usize, rng: &mut StdRng) -> CMat {
    let a = random_matrix(n, rng);
    (&a + &a.dagger()).scale(C64::real(0.5))
}

/// A deliberately non-normal matrix: strictly upper triangular with a
/// scaled diagonal, far from commuting with its adjoint.
fn random_non_normal(n: usize, rng: &mut StdRng) -> CMat {
    CMat::from_fn(n, n, |i, j| {
        if j > i {
            rand_c64(rng) * C64::real(3.0)
        } else if i == j {
            C64::real(0.1 * (i as f64 + 1.0))
        } else {
            C64::ZERO
        }
    })
}

/// A random matrix with a NaN planted at a random position.
fn random_with_nan(n: usize, rng: &mut StdRng) -> CMat {
    let mut m = random_matrix(n, rng);
    let (i, j) = (
        rng.gen_range(0..n as u64) as usize,
        rng.gen_range(0..n as u64) as usize,
    );
    let nan = C64::new(f64::NAN, 0.0);
    let d = m.as_mut_slice();
    d[i * n + j] = nan;
    m
}

/// Textbook i-j-k matmul, no zero-skips, scalar accumulator.
fn naive_matmul(a: &CMat, b: &CMat) -> CMat {
    let (r, k, c) = (a.rows(), a.cols(), b.cols());
    CMat::from_fn(r, c, |i, j| {
        let mut acc = C64::ZERO;
        for x in 0..k {
            acc = acc + a[(i, x)] * b[(x, j)];
        }
        acc
    })
}

/// Naive allocating Taylor series for `exp(A)` (no scaling — callers pass
/// small-norm matrices).
fn naive_expm_small(a: &CMat) -> CMat {
    let n = a.rows();
    let mut result = CMat::identity(n);
    let mut term = CMat::identity(n);
    for k in 1..64 {
        term = term.matmul(a).scale(C64::real(1.0 / k as f64));
        result = &result + &term;
        if term.frobenius_norm() < 1e-18 {
            break;
        }
    }
    result
}

fn max_abs_diff(a: &CMat, b: &CMat) -> f64 {
    a.max_abs_diff(b)
}

#[test]
fn matmul_matches_naive_reference_across_families() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0001);
    for n in [1, 2, 3, 5, 8] {
        for family in 0..3 {
            let (a, b) = match family {
                0 => (random_matrix(n, &mut rng), random_matrix(n, &mut rng)),
                1 => (random_hermitian(n, &mut rng), random_hermitian(n, &mut rng)),
                _ => (
                    random_non_normal(n, &mut rng),
                    random_non_normal(n, &mut rng),
                ),
            };
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-12,
                "matmul diverged at n={n} family={family}"
            );
        }
    }
}

#[test]
fn matmul_into_is_bitwise_equal_to_matmul() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0002);
    for n in [2, 4, 7] {
        let a = random_matrix(n, &mut rng);
        let b = random_matrix(n, &mut rng);
        let owned = a.matmul(&b);
        // Start from a poisoned buffer: matmul_into must fully overwrite.
        let mut out = CMat::from_fn(n, n, |_, _| C64::new(f64::NAN, f64::INFINITY));
        a.matmul_into(&b, &mut out);
        assert_eq!(owned, out, "in-place product differs at n={n}");
    }
}

#[test]
fn matmul_propagates_nan_through_zero_entries() {
    // The historical zero-skip silently dropped NaN/Inf columns; the
    // contract now is IEEE propagation: 0·NaN = NaN reaches the output.
    let mut rng = StdRng::seed_from_u64(0xD1FF_0003);
    for n in [2, 3, 6] {
        let a = CMat::zeros(n, n);
        let b = random_with_nan(n, &mut rng);
        let p = a.matmul(&b);
        assert!(
            p.as_slice().iter().any(|e| e.re.is_nan() || e.im.is_nan()),
            "NaN swallowed by zero matrix at n={n}"
        );
    }
}

#[test]
fn apply_into_matches_naive_matvec() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0004);
    for n in [2, 5, 9] {
        let m = random_matrix(n, &mut rng);
        let v: Vec<C64> = (0..n).map(|_| rand_c64(&mut rng)).collect();
        let naive: Vec<C64> = (0..n)
            .map(|i| {
                let mut acc = C64::ZERO;
                for j in 0..n {
                    acc = acc + m[(i, j)] * v[j];
                }
                acc
            })
            .collect();
        let fast = m.apply(&v);
        let mut out = vec![C64::ZERO; n];
        m.apply_into(&v, &mut out);
        for i in 0..n {
            assert!((fast[i] - naive[i]).abs() < 1e-12);
            assert_eq!(fast[i], out[i], "apply_into differs from apply at {i}");
        }
    }
}

#[test]
fn expm_taylor_matches_naive_series() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0005);
    for n in [2, 4, 6] {
        // Small norm so the naive (unscaled) series converges directly.
        let a = random_matrix(n, &mut rng).scale(C64::real(0.1));
        let fast = qsim::expm::expm_taylor(&a);
        let slow = naive_expm_small(&a);
        assert!(
            max_abs_diff(&fast, &slow) < 1e-12,
            "expm_taylor diverged at n={n}"
        );
        // Non-normal input too (the Taylor path is the general one).
        let nn = random_non_normal(n, &mut rng).scale(C64::real(0.05));
        assert!(max_abs_diff(&qsim::expm::expm_taylor(&nn), &naive_expm_small(&nn)) < 1e-12);
    }
}

#[test]
fn spectral_propagator_matches_taylor_on_hermitian() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0006);
    for n in [2, 3, 5, 9] {
        let h = random_hermitian(n, &mut rng);
        let t = 0.37;
        let spectral = qsim::expm::expm_hermitian_propagator(&h, t);
        let taylor = qsim::expm::expm_taylor(&h.scale(C64::new(0.0, -t)));
        assert!(
            max_abs_diff(&spectral, &taylor) < 1e-9,
            "propagator paths diverged at n={n}: {}",
            max_abs_diff(&spectral, &taylor)
        );
        assert!(spectral.is_unitary(1e-10));
    }
}

#[test]
fn eigh_reconstructs_random_hermitians() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0007);
    for n in [2, 4, 6, 9] {
        let h = random_hermitian(n, &mut rng);
        let e = qsim::eigen::eigh(&h);
        assert!(
            max_abs_diff(&e.reconstruct(), &h) < 1e-10,
            "eigh reconstruction failed at n={n}"
        );
        // Eigenvalues must come out sorted (total order, satellite of the
        // NaN-sort fix).
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

#[test]
fn eigh_does_not_panic_on_nan_input() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0008);
    for n in [2, 4] {
        let m = random_with_nan(n, &mut rng);
        let h = (&m + &m.dagger()).scale(C64::real(0.5));
        let e = qsim::eigen::eigh(&h); // must not panic in the NaN sort
        assert_eq!(e.values.len(), n);
    }
}

#[test]
fn fidelity_matches_naive_trace_chain() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0009);
    for n in [2, 4, 6] {
        let m = random_matrix(n, &mut rng);
        let v = random_matrix(n, &mut rng);
        let d = n as f64;
        let mdm = m.dagger().matmul(&m).trace().re;
        let ov = v.dagger().matmul(&m).trace().abs2();
        let naive = ((mdm + ov) / (d * (d + 1.0))).clamp(0.0, 1.0);
        let fast = qsim::fidelity::average_gate_fidelity(&m, &v);
        assert!(
            (fast - naive).abs() < 1e-12,
            "fidelity diverged at n={n}: {fast} vs {naive}"
        );
        let leak_naive = (1.0 - mdm / d).max(0.0);
        assert!((qsim::fidelity::leakage(&m) - leak_naive).abs() < 1e-12);
    }
}

// ------------------------------------------------------------------
// Exact, deterministic counter contracts (bench-compare gate inputs).
// ------------------------------------------------------------------

#[test]
fn matmul_counters_are_exact() {
    let a = CMat::identity(3);
    let b = CMat::identity(3);
    let (_, c) = counters::counted(|| a.matmul(&b));
    assert_eq!(c.flops, 8 * 3 * 3 * 3, "matmul flop count");
    assert_eq!(c.allocs, 1, "matmul allocates exactly the output");

    let mut out = CMat::zeros(3, 3);
    let (_, c) = counters::counted(|| a.matmul_into(&b, &mut out));
    assert_eq!(c.flops, 8 * 3 * 3 * 3);
    assert_eq!(c.allocs, 0, "matmul_into must not allocate");
}

#[test]
fn propagator_counters_are_exact_and_deterministic() {
    let pair = qsim::two_qubit::CoupledTransmons::paper_pair(6.21286, 4.14238);
    let ham = pair.hamiltonian(-1.8);
    let run = || counters::counted(|| qsim::expm::expm_hermitian_propagator(&ham, 0.25)).1;
    qsim::expm::clear_eigh_memo();
    let cold = run();
    // eigh: one output `vectors` matrix (workspace-resident otherwise);
    // map_spectrum: one output.
    assert_eq!(cold.allocs, 2, "cold spectral propagator allocation budget");
    assert!(cold.flops > 0);
    // A repeat propagator of the bitwise-same Hamiltonian hits the
    // process-wide eigendecomposition memo: only the spectral reassembly
    // (one output allocation) remains.
    let warm = run();
    assert_eq!(warm.allocs, 1, "warm propagator re-runs only map_spectrum");
    assert!(warm.flops < cold.flops);
    let again = run();
    assert_eq!(
        warm, again,
        "warm counters must be run-to-run deterministic"
    );
}

#[test]
fn in_place_pipelines_do_not_allocate_per_step() {
    // lab_gate ping-pongs two buffers over 253 steps: the allocation count
    // must stay O(1), not O(steps).
    use qsim::pulse::{SfqParams, SfqPulseSim};
    let sim = SfqPulseSim::new(qsim::transmon::Transmon::new(6.21286), SfqParams::default());
    let bits = sim.resonant_comb(63);
    let (_, warm) = counters::counted(|| sim.frame_gate_qubit(&bits));
    let (_, again) = counters::counted(|| sim.frame_gate_qubit(&bits));
    assert_eq!(warm, again, "frame_gate counters deterministic");
    assert!(
        warm.allocs < 40,
        "per-step allocation crept back in: {} allocs",
        warm.allocs
    );
}
