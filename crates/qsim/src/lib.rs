//! # qsim — quantum physics substrate for the DigiQ reproduction
//!
//! This crate provides everything the DigiQ controller evaluation needs to
//! *physically model* superconducting qubits under SFQ control, built from
//! scratch with no external linear-algebra dependencies:
//!
//! * [`complex`] / [`matrix`] — complex arithmetic and small dense matrices
//!   with allocation-free in-place kernels ([`counters`] tallies their
//!   flops/allocations deterministically for perf regression tests);
//! * [`eigen`] / [`expm`] — Hermitian eigendecomposition (Jacobi) and
//!   matrix exponentials for exact piecewise-constant propagation;
//! * [`gates`] — ideal gate targets, ZYZ/paper-form Euler decomposition,
//!   canonical SU(2) quaternions;
//! * [`transmon`] — 6-level Duffing transmons and flux-tunable asymmetric
//!   transmons (§II-B of the paper);
//! * [`pulse`] — SFQ bitstream-driven evolution (§II-C, Fig 2) including
//!   the DigiQ_opt delay-as-Rz mechanism (§IV-A2, Fig 3);
//! * [`two_qubit`] — coupled transmon pairs and flux-pulse CZ gates
//!   (§IV-A3, §V-B, Fig 7);
//! * [`fidelity`] — average gate fidelity with leakage accounting
//!   (refs [44], [45]);
//! * [`optimize`] — Nelder–Mead, differential evolution and a genetic
//!   bitstring search used by the software-calibration layer.
//!
//! ## Units
//!
//! Frequencies are linear **GHz**, times are **ns**; a level of energy `E`
//! accumulates `e^{−i·2π·E·t}` of phase. The SFQ clock defaults to the
//! paper's 40 ps period.
//!
//! ## Quickstart
//!
//! ```
//! use qsim::transmon::Transmon;
//! use qsim::pulse::{SfqParams, SfqPulseSim};
//!
//! // Drive a 6.21286 GHz transmon with a resonant SFQ comb…
//! let sim = SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default());
//! let bits = sim.resonant_comb(63);
//! let gate = sim.frame_gate_qubit(&bits);
//! // …and the projected evolution stays (nearly) norm-preserving: leakage
//! // is small for the gentle default tip angle.
//! assert!(qsim::fidelity::leakage(&gate) < 0.05);
//! ```

pub mod complex;
pub mod counters;
pub mod eigen;
pub mod expm;
pub mod fidelity;
pub mod gates;
pub mod matrix;
pub mod optimize;
pub mod pulse;
pub mod rng;
pub mod transmon;
pub mod two_qubit;

pub use complex::C64;
pub use matrix::CMat;
