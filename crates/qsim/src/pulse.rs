//! SFQ bitstream-driven qubit evolution (§II-C, Fig 2).
//!
//! An SFQ controller drives a qubit with a train of quantized flux pulses,
//! one candidate slot per SFQ clock cycle (40 ps in the paper). Each pulse
//! is orders of magnitude shorter than a qubit period and is modelled as an
//! instantaneous tip `exp(−i·(δθ/2)·Y)` about the y-axis (McDermott–Vavilov
//! model), where `Y = i(a†−a)` couples neighbouring transmon levels and
//! thus captures leakage into non-computational states. Between pulse slots
//! the qubit evolves freely.
//!
//! A *bitstream* `b ∈ {0,1}^L` therefore produces the lab-frame unitary
//!
//! ```text
//! U_lab(b) = Π_k  F · K^{b_k}      (k = L−1 … 0, earliest bit first)
//! ```
//!
//! with `F` the one-clock free propagator and `K` the kick. Gates are
//! defined in the qubit rotating frame: `U(b) = R(L·T_clk)† · U_lab(b)`.
//!
//! Delaying a stored bitstream by `d` clock cycles (the DigiQ_opt `Rz`
//! mechanism, §IV-A2) conjugates the frame gate by `Rz(θ_d)` with
//! `θ_d = 2π·f·d·T_clk mod 2π` — the coverage of these phases over
//! `d ∈ [0, N]` is exactly the Table II parking-frequency analysis.
//!
//! # Examples
//!
//! ```
//! use qsim::transmon::Transmon;
//! use qsim::pulse::{SfqParams, SfqPulseSim};
//!
//! let q = Transmon::new(6.21286);
//! let sim = SfqPulseSim::new(q, SfqParams::default());
//! // A resonant comb rotates the qubit about y.
//! let bits = sim.resonant_comb(100);
//! let u = sim.frame_gate(&bits);
//! assert!(u.is_unitary(1e-10));
//! ```

use crate::complex::C64;
use crate::expm::expm_hermitian_propagator;
use crate::matrix::CMat;
use crate::transmon::Transmon;
use std::f64::consts::PI;

/// SFQ pulse-train parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfqParams {
    /// SFQ chip clock period in ns. The paper synthesizes a worst stage
    /// delay of 34.5 ps and chooses a 40 ps clock (§VI-A2).
    pub clock_period_ns: f64,
    /// Tip angle per SFQ pulse in radians. Set so a π/2 rotation fits a
    /// ≤300-bit stream: with pulses every ~4 clock ticks at 6.2 GHz,
    /// δθ = (π/2)/63 uses 63 pulses ≈ 253 ticks.
    pub delta_theta: f64,
}

impl Default for SfqParams {
    fn default() -> Self {
        SfqParams {
            clock_period_ns: 0.040,
            delta_theta: (PI / 2.0) / 63.0,
        }
    }
}

/// Precomputed propagators for bitstream evolution of one transmon.
#[derive(Debug, Clone)]
pub struct SfqPulseSim {
    transmon: Transmon,
    params: SfqParams,
    /// Lab-frame one-clock free propagator.
    free: CMat,
    /// Lab-frame one-clock propagator with a kick at the start: `F·K`.
    free_kick: CMat,
}

impl SfqPulseSim {
    /// Builds the simulator, precomputing the per-clock propagators.
    pub fn new(transmon: Transmon, params: SfqParams) -> Self {
        let free = transmon.free_propagator(params.clock_period_ns);
        let kick = expm_hermitian_propagator(&transmon.drive_y(), params.delta_theta / 2.0);
        let free_kick = free.matmul(&kick);
        SfqPulseSim {
            transmon,
            params,
            free,
            free_kick,
        }
    }

    /// The underlying transmon model.
    pub fn transmon(&self) -> &Transmon {
        &self.transmon
    }

    /// The pulse parameters.
    pub fn params(&self) -> &SfqParams {
        &self.params
    }

    /// Lab-frame unitary of a bitstream (earliest bit applied first).
    ///
    /// The per-tick products ping-pong between the accumulator and one
    /// scratch matrix, so a 253-tick stream costs two allocations instead
    /// of one per tick.
    pub fn lab_gate(&self, bits: &[bool]) -> CMat {
        let n = self.transmon.levels;
        let mut u = CMat::identity(n);
        let mut tmp = CMat::zeros(n, n);
        for &b in bits {
            let step = if b { &self.free_kick } else { &self.free };
            step.matmul_into(&u, &mut tmp);
            std::mem::swap(&mut u, &mut tmp);
        }
        u
    }

    /// Rotating-frame gate of a bitstream at the qubit's own frequency:
    /// `R(L·T)† · U_lab`.
    pub fn frame_gate(&self, bits: &[bool]) -> CMat {
        let t_total = bits.len() as f64 * self.params.clock_period_ns;
        let r = self
            .transmon
            .frame_propagator(self.transmon.frequency_ghz, t_total);
        r.dagger().matmul(&self.lab_gate(bits))
    }

    /// Rotating-frame gate projected onto the two-level computational
    /// subspace (the object whose fidelity §V-A evaluates; leakage shows up
    /// as sub-unitarity).
    pub fn frame_gate_qubit(&self, bits: &[bool]) -> CMat {
        self.frame_gate(bits).top_left_block(2)
    }

    /// Phase advance per clock tick: `2π·f·T_clk mod 2π`.
    pub fn phase_per_tick(&self) -> f64 {
        (2.0 * PI * self.transmon.frequency_ghz * self.params.clock_period_ns).rem_euclid(2.0 * PI)
    }

    /// The Rz angle reachable by delaying a stored bitstream by `d` clock
    /// cycles: `θ_d = d·2π·f·T_clk mod 2π` (§IV-A2).
    pub fn delay_phase(&self, d: usize) -> f64 {
        (d as f64 * self.phase_per_tick()).rem_euclid(2.0 * PI)
    }

    /// The frame gate resulting from broadcasting the stored bitstream
    /// delayed by `d` clock cycles: `Rz(−θ_d) · U(b) · Rz(θ_d)` on the full
    /// multi-level space (diagonal conjugation), matching the timing
    /// picture of Fig 3.
    pub fn delayed_frame_gate(&self, base: &CMat, d: usize) -> CMat {
        let theta = self.delay_phase(d);
        let n = base.rows();
        let conj = CMat::diag(
            &(0..n)
                .map(|k| C64::cis(-(k as f64) * theta))
                .collect::<Vec<_>>(),
        );
        conj.dagger().matmul(base).matmul(&conj)
    }

    /// A deterministic resonant comb: pulses as close as possible to once
    /// per qubit oscillation period, for `n_pulses` pulses. This is the
    /// intuitive Fig 2 drive and the seed for the genetic bitstream search.
    pub fn resonant_comb(&self, n_pulses: usize) -> Vec<bool> {
        let ticks_per_period = 1.0 / (self.transmon.frequency_ghz * self.params.clock_period_ns);
        let len = (ticks_per_period * n_pulses as f64).ceil() as usize;
        let mut bits = vec![false; len];
        for k in 0..n_pulses {
            let pos = (k as f64 * ticks_per_period).round() as usize;
            if pos < len {
                bits[pos] = true;
            }
        }
        bits
    }

    /// Evolves `|0⟩` under a bitstream, returning the Bloch vector
    /// `(x, y, z)` of the qubit-subspace projection after every clock tick
    /// (lab frame). Regenerates the trajectories of Fig 2(b).
    pub fn bloch_trajectory(&self, bits: &[bool]) -> Vec<(f64, f64, f64)> {
        let mut state = vec![C64::ZERO; self.transmon.levels];
        state[0] = C64::ONE;
        let mut scratch = state.clone();
        let mut out = Vec::with_capacity(bits.len());
        for &b in bits {
            let step = if b { &self.free_kick } else { &self.free };
            step.apply_into(&state, &mut scratch);
            std::mem::swap(&mut state, &mut scratch);
            let c0 = state[0];
            let c1 = state[1];
            let cross = c0.conj() * c1;
            out.push((2.0 * cross.re, 2.0 * cross.im, c0.abs2() - c1.abs2()));
        }
        out
    }
}

/// Packs a bool bitstream into bytes, LSB-first — the on-chip register
/// image (§IV-B describes loading bitstreams over the data cables).
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks a byte image back into `len` bools, inverse of [`pack_bits`].
pub fn unpack_bits(bytes: &[u8], len: usize) -> Vec<bool> {
    (0..len)
        .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::average_gate_error;
    use crate::gates;

    fn sim() -> SfqPulseSim {
        SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default())
    }

    #[test]
    fn empty_bitstream_is_identity() {
        let s = sim();
        let u = s.frame_gate(&[]);
        assert!(u.approx_eq(&CMat::identity(6), 1e-14));
    }

    #[test]
    fn all_zero_bitstream_is_identity_on_qubit_subspace() {
        let s = sim();
        let u = s.frame_gate_qubit(&vec![false; 100]);
        // Free evolution in the qubit's own frame: diagonal, no qubit
        // rotation; phases on |0⟩,|1⟩ levels are trivial.
        assert!(
            gates::phase_distance(&u, &gates::id2()) < 1e-10,
            "dist = {}",
            gates::phase_distance(&u, &gates::id2())
        );
    }

    #[test]
    fn lab_gate_is_unitary() {
        let s = sim();
        let bits = s.resonant_comb(20);
        assert!(s.lab_gate(&bits).is_unitary(1e-10));
        assert!(s.frame_gate(&bits).is_unitary(1e-10));
    }

    #[test]
    fn resonant_comb_rotates_towards_ry() {
        // 63 resonant pulses at δθ = (π/2)/63 ≈ a π/2 y-rotation, with some
        // residual error from timing granularity and leakage.
        let s = sim();
        let bits = s.resonant_comb(63);
        let u = s.frame_gate_qubit(&bits);
        // Compare up to a z-phase before/after (timing offsets):
        let mut best = f64::INFINITY;
        for i in 0..64 {
            for j in 0..64 {
                let a = i as f64 / 64.0 * 2.0 * PI;
                let b = j as f64 / 64.0 * 2.0 * PI;
                let target = gates::rz(a)
                    .matmul(&gates::ry(PI / 2.0))
                    .matmul(&gates::rz(b));
                best = best.min(average_gate_error(&u, &target));
            }
        }
        assert!(best < 0.05, "comb far from Ry(π/2): err = {best}");
    }

    #[test]
    fn single_pulse_tips_by_delta_theta() {
        let s = sim();
        let traj = s.bloch_trajectory(&[true]);
        let (_, _, z) = traj[0];
        // z = cos(δθ) after one kick.
        assert!((z - s.params().delta_theta.cos()).abs() < 1e-6);
    }

    #[test]
    fn trajectory_free_evolution_keeps_z() {
        let s = sim();
        let bits = [true, false, false, false, false];
        let traj = s.bloch_trajectory(&bits);
        let z1 = traj[0].2;
        for p in &traj[1..] {
            assert!((p.2 - z1).abs() < 1e-9, "free evolution changed z");
        }
        // And xy precesses: consecutive points differ.
        assert!((traj[1].0 - traj[2].0).abs() > 1e-3);
    }

    #[test]
    fn delay_phase_wraps_correctly() {
        let s = sim();
        let per = s.phase_per_tick();
        assert!((s.delay_phase(1) - per).abs() < 1e-12);
        let d3 = s.delay_phase(3);
        assert!((d3 - (3.0 * per).rem_euclid(2.0 * PI)).abs() < 1e-12);
        assert_eq!(s.delay_phase(0), 0.0);
    }

    #[test]
    fn delayed_gate_matches_explicit_timing() {
        // Conjugation identity: gate of (d zeros + bits) over the combined
        // window equals Rz-conjugated base gate times trivial delay parts.
        let s = sim();
        let bits = s.resonant_comb(10);
        let d = 7usize;

        let mut padded = vec![false; d];
        padded.extend_from_slice(&bits);
        let direct = s.frame_gate(&padded);

        let base = s.frame_gate(&bits);
        let conj = s.delayed_frame_gate(&base, d);
        // The delay segment itself contributes only anharmonic phases on
        // leakage levels; on the computational subspace the two must agree.
        let a = direct.top_left_block(2);
        let b = conj.top_left_block(2);
        assert!(
            gates::phase_distance(&a, &b) < 1e-9,
            "delay conjugation mismatch: {}",
            gates::phase_distance(&a, &b)
        );
    }

    #[test]
    fn frame_at_actual_frequency_tracks_drift() {
        // A drifted qubit driven by the same bitstream yields a different
        // frame gate — the basis-operation drift that software calibration
        // must absorb (§V-A).
        let nominal = sim();
        let drifted = SfqPulseSim::new(Transmon::new(6.21286 + 0.006), SfqParams::default());
        let bits = nominal.resonant_comb(63);
        let u0 = nominal.frame_gate_qubit(&bits);
        let u1 = drifted.frame_gate_qubit(&bits);
        assert!(gates::phase_distance(&u0, &u1) > 1e-3);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let packed = pack_bits(&bits);
        assert_eq!(packed.len(), 38);
        let back = unpack_bits(&packed, 300);
        assert_eq!(bits, back);
    }

    #[test]
    fn leakage_grows_with_aggressive_drive() {
        // Much larger tip angles per pulse leak more into level 2.
        let q = Transmon::new(6.21286);
        let gentle = SfqPulseSim::new(
            q,
            SfqParams {
                delta_theta: (PI / 2.0) / 63.0,
                ..SfqParams::default()
            },
        );
        let harsh = SfqPulseSim::new(
            q,
            SfqParams {
                delta_theta: (PI / 2.0) / 8.0,
                ..SfqParams::default()
            },
        );
        let lg = crate::fidelity::leakage(&gentle.frame_gate_qubit(&gentle.resonant_comb(63)));
        let lh = crate::fidelity::leakage(&harsh.frame_gate_qubit(&harsh.resonant_comb(8)));
        assert!(lh > lg, "harsh leakage {lh} should exceed gentle {lg}");
    }
}
