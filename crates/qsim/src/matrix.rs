//! Dense complex matrices and state vectors.
//!
//! All quantum objects in this crate — unitaries, Hamiltonians, projected
//! evolutions — are small dense matrices (dimension ≤ 36 for two 6-level
//! transmons), so a straightforward row-major `Vec<C64>` representation with
//! cache-friendly triple-loop multiplication is both simple and fast enough
//! for every experiment in the paper.
//!
//! # Examples
//!
//! ```
//! use qsim::matrix::CMat;
//! use qsim::complex::C64;
//!
//! let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
//! let id = &x * &x;
//! assert!(id.approx_eq(&CMat::identity(2), 1e-12));
//! assert!(x.is_unitary(1e-12));
//! ```

use crate::complex::C64;
use crate::counters;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
///
/// Supports the linear-algebra vocabulary required by Hamiltonian
/// simulation: products, adjoints, Kronecker products, traces, norms, and
/// sub-block extraction/embedding for leakage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

/// Fixed-size core of [`CMat::matmul_into`] for `N × N` operands.
///
/// Same i-k-j order and f64-pair multiply-adds as the generic loop — the
/// results are bit-for-bit identical — but with `N` a compile-time constant
/// the k/j loops fully unroll and the output row lives in registers.
#[inline]
fn matmul_fixed<const N: usize>(a: &[C64], b: &[C64], out: &mut [C64]) {
    for i in 0..N {
        let arow = &a[i * N..i * N + N];
        let orow = &mut out[i * N..i * N + N];
        orow.fill(C64::ZERO);
        for k in 0..N {
            let (ar, ai) = (arow[k].re, arow[k].im);
            let brow = &b[k * N..k * N + N];
            for (o, r) in orow.iter_mut().zip(brow.iter()) {
                let (rr, ri) = (r.re, r.im);
                o.re += ar * rr - ai * ri;
                o.im += ar * ri + ai * rr;
            }
        }
    }
}

impl CMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        counters::tally_alloc();
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[C64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        counters::tally_alloc();
        CMat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a matrix from a row-major slice of real entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_real(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols);
        counters::tally_alloc();
        CMat {
            rows,
            cols,
            data: data.iter().map(|&r| C64::real(r)).collect(),
        }
    }

    /// Wraps an already-filled row-major buffer without copying it. The
    /// buffer's allocation is tallied like any other materialized matrix
    /// (the caller must not have tallied it separately).
    ///
    /// Panics if `data.len() != rows * cols`.
    pub(crate) fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        counters::tally_alloc();
        CMat { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = CMat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable row-major view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// Every entry participates unconditionally — there is no zero-skip
    /// fast path — so IEEE non-finite semantics hold (`0 · ∞` and `0 · NaN`
    /// produce NaN) and the running time depends only on the shapes.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Writes `self · rhs` into `out` without allocating.
    ///
    /// `out` is overwritten (it may hold anything, but must not alias the
    /// operands — the borrow checker enforces that). The i-k-j loop order
    /// streams `rhs` rows for row-major locality, and the inner loop is
    /// expressed as explicit f64-pair multiply-adds the autovectorizer can
    /// split into re/im lanes.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &CMat, out: &mut CMat) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "matmul_into: output is {}x{}, expected {}x{}",
            out.rows,
            out.cols,
            self.rows,
            rhs.cols
        );
        counters::tally_flops(8 * (self.rows * self.cols * rhs.cols) as u64);
        let inner = self.cols;
        let n = rhs.cols;
        if n == 0 {
            return;
        }
        // The hot shapes (3×3 transmon frames, 4×4 computational blocks,
        // 9×9 two-qubit propagators) go through monomorphized cores where
        // the loop bounds are compile-time constants: the optimizer keeps
        // the whole output row in registers across the k loop instead of
        // round-tripping through memory. Identical accumulation order to
        // the generic loop below, so results are bit-for-bit equal.
        if self.rows == n && inner == n {
            match n {
                2 => return matmul_fixed::<2>(&self.data, &rhs.data, &mut out.data),
                3 => return matmul_fixed::<3>(&self.data, &rhs.data, &mut out.data),
                4 => return matmul_fixed::<4>(&self.data, &rhs.data, &mut out.data),
                9 => return matmul_fixed::<9>(&self.data, &rhs.data, &mut out.data),
                _ => {}
            }
        }
        for i in 0..self.rows {
            let arow = &self.data[i * inner..(i + 1) * inner];
            let orow = &mut out.data[i * n..(i + 1) * n];
            orow.fill(C64::ZERO);
            for (k, &a) in arow.iter().enumerate() {
                let (ar, ai) = (a.re, a.im);
                let rrow = &rhs.data[k * n..(k + 1) * n];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    let (rr, ri) = (r.re, r.im);
                    o.re += ar * rr - ai * ri;
                    o.im += ar * ri + ai * rr;
                }
            }
        }
    }

    /// Writes `A†` into `out` (shape `cols × rows`) without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong shape.
    pub fn dagger_into(&self, out: &mut CMat) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "dagger_into: output is {}x{}, expected {}x{}",
            out.rows,
            out.cols,
            self.cols,
            self.rows
        );
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * out.cols + i] = self.data[i * self.cols + j].conj();
            }
        }
    }

    /// Copies `src`'s entries into `self` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, src: &CMat) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from: shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Scales every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: C64) {
        let (sr, si) = (s.re, s.im);
        for z in &mut self.data {
            let (zr, zi) = (z.re, z.im);
            z.re = zr * sr - zi * si;
            z.im = zr * si + zi * sr;
        }
    }

    /// Entry-wise sum `self += other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &CMat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign: shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            a.re += b.re;
            a.im += b.im;
        }
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMat {
        counters::tally_alloc();
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, s: C64) -> CMat {
        counters::tally_alloc();
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√Σ|a_ij|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs2()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise absolute difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &CMat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &CMat, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }

    /// Tests `A†A ≈ I` within `tol` (max-abs entry deviation).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.dagger()
            .matmul(self)
            .approx_eq(&CMat::identity(self.rows), tol)
    }

    /// Tests `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.approx_eq(&self.dagger(), tol)
    }

    /// Applies the matrix to a state vector, returning `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn apply(&self, v: &[C64]) -> Vec<C64> {
        counters::tally_alloc();
        let mut out = vec![C64::ZERO; self.rows];
        self.apply_into(v, &mut out);
        out
    }

    /// Writes `A·v` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn apply_into(&self, v: &[C64], out: &mut [C64]) {
        assert_eq!(v.len(), self.cols, "apply: vector length mismatch");
        assert_eq!(out.len(), self.rows, "apply_into: output length mismatch");
        counters::tally_flops(8 * (self.rows * self.cols) as u64);
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let (mut acc_re, mut acc_im) = (0.0, 0.0);
            for (&a, &x) in row.iter().zip(v.iter()) {
                acc_re += a.re * x.re - a.im * x.im;
                acc_im += a.re * x.im + a.im * x.re;
            }
            *o = C64::new(acc_re, acc_im);
        }
    }

    /// Extracts the leading `dim × dim` block (projection onto the lowest
    /// `dim` levels — the computational subspace in leakage analysis).
    ///
    /// # Panics
    ///
    /// Panics if `dim` exceeds either dimension.
    pub fn top_left_block(&self, dim: usize) -> CMat {
        assert!(dim <= self.rows && dim <= self.cols);
        CMat::from_fn(dim, dim, |i, j| self[(i, j)])
    }

    /// Extracts an arbitrary sub-block given row and column index lists.
    ///
    /// Used to project multi-level two-qubit evolutions onto the
    /// computational basis {|00⟩,|01⟩,|10⟩,|11⟩} which is *not* contiguous
    /// in the tensor-product level ordering.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> CMat {
        CMat::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// Embeds a small square matrix into an `n × n` identity, acting on the
    /// listed basis indices. The complement is untouched (identity).
    ///
    /// # Panics
    ///
    /// Panics if `small` is not square of dimension `idx.len()`, or if any
    /// index is out of bounds / repeated.
    pub fn embed(small: &CMat, n: usize, idx: &[usize]) -> CMat {
        assert!(small.is_square() && small.rows() == idx.len());
        let mut seen = vec![false; n];
        for &i in idx {
            assert!(i < n, "embed index {i} out of bounds {n}");
            assert!(!seen[i], "embed index {i} repeated");
            seen[i] = true;
        }
        let mut out = CMat::identity(n);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                out[(i, j)] = small[(a, b)];
            }
        }
        out
    }

    /// Matrix power by repeated squaring (square matrices only).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn powi(&self, mut n: u32) -> CMat {
        assert!(self.is_square());
        let mut acc = CMat::identity(self.rows);
        let mut base = self.clone();
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.matmul(&base);
            }
            base = base.matmul(&base);
            n >>= 1;
        }
        acc
    }

    /// Removes the global phase: multiplies by `e^{-i·arg(a)}` where `a` is
    /// the largest-magnitude entry, making that entry real-positive.
    ///
    /// Quantum gates are equivalence classes under global phase; this
    /// canonicalizes a representative for comparisons and hashing.
    pub fn strip_global_phase(&self) -> CMat {
        let mut best = C64::ZERO;
        for &z in &self.data {
            if z.abs2() > best.abs2() {
                best = z;
            }
        }
        if best.abs2() == 0.0 {
            return self.clone();
        }
        self.scale(C64::cis(-best.arg()))
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        counters::tally_alloc();
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        counters::tally_alloc();
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scale(C64::real(-1.0))
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                let z = self[(i, j)];
                write!(f, "{:.4}{:+.4}i", z.re, z.im)?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Normalizes a state vector in place to unit 2-norm.
///
/// Returns the original norm. A zero vector is left untouched and `0.0` is
/// returned.
pub fn normalize(v: &mut [C64]) -> f64 {
    let norm = v.iter().map(|z| z.abs2()).sum::<f64>().sqrt();
    if norm > 0.0 {
        for z in v.iter_mut() {
            *z = *z / norm;
        }
    }
    norm
}

/// Inner product `⟨a|b⟩ = Σ conj(aᵢ)·bᵢ`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn inner(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x.conj() * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> CMat {
        CMat::from_slice(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO])
    }

    fn pauli_z() -> CMat {
        CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let id = CMat::identity(2);
        assert!(x.matmul(&id).approx_eq(&x, 0.0));
        assert!(id.matmul(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!(x.matmul(&y).approx_eq(&z.scale(C64::I), 1e-15));
        // X² = I
        assert!(x.matmul(&x).approx_eq(&CMat::identity(2), 1e-15));
        // Anticommutation {X, Z} = 0
        let anti = &x.matmul(&z) + &z.matmul(&x);
        assert!(anti.approx_eq(&CMat::zeros(2, 2), 1e-15));
    }

    #[test]
    fn matmul_propagates_nan_and_inf() {
        // 0·∞ must yield NaN. The retired zero-skip fast path silently
        // dropped non-finite entries multiplied by exact zeros, hiding
        // divergent Hamiltonians; the semantics are pinned here.
        let a = pauli_x();
        let b = CMat::from_real(2, 2, &[f64::INFINITY, 0.0, 0.0, 1.0]);
        let p = a.matmul(&b);
        assert!(p[(1, 0)].re.is_infinite(), "1·∞ must stay ∞");
        assert!(p[(0, 0)].re.is_nan(), "0·∞ must yield NaN, not be skipped");
        let nan = CMat::from_real(2, 2, &[f64::NAN, 0.0, 0.0, 0.0]);
        let q = CMat::zeros(2, 2).matmul(&nan);
        assert!(q[(0, 0)].re.is_nan(), "0·NaN must yield NaN");
    }

    #[test]
    fn in_place_kernels_match_allocating_ops() {
        let x = pauli_x();
        let y = pauli_y();
        let mut out = CMat::zeros(2, 2);
        x.matmul_into(&y, &mut out);
        assert_eq!(out, x.matmul(&y));
        y.dagger_into(&mut out);
        assert_eq!(out, y.dagger());
        let mut s = x.clone();
        s.add_assign(&y);
        assert_eq!(s, &x + &y);
        s.copy_from(&x);
        assert_eq!(s, x);
        s.scale_in_place(C64::new(0.5, -1.5));
        assert_eq!(s, x.scale(C64::new(0.5, -1.5)));
        let v = [C64::ONE, C64::I];
        let mut w = [C64::ZERO; 2];
        x.apply_into(&v, &mut w);
        assert_eq!(w.to_vec(), x.apply(&v));
    }

    #[test]
    fn dagger_and_transpose() {
        let m = CMat::from_slice(
            2,
            2,
            &[
                C64::new(1.0, 1.0),
                C64::new(2.0, 0.0),
                C64::new(0.0, 3.0),
                C64::new(4.0, -1.0),
            ],
        );
        let d = m.dagger();
        assert_eq!(d[(0, 1)], C64::new(0.0, -3.0));
        assert_eq!(d[(1, 0)], C64::new(2.0, 0.0));
        assert!(m.transpose().conj().approx_eq(&d, 0.0));
    }

    #[test]
    fn kron_dims_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz[(0, 2)], C64::ONE);
        assert_eq!(xz[(1, 3)], C64::real(-1.0));
        assert_eq!(xz[(0, 0)], C64::ZERO);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMat::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn trace_and_norm() {
        let z = pauli_z();
        assert_eq!(z.trace(), C64::ZERO);
        assert_eq!(CMat::identity(3).trace(), C64::real(3.0));
        assert!((pauli_x().frobenius_norm() - 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn unitary_and_hermitian_checks() {
        assert!(pauli_y().is_unitary(1e-14));
        assert!(pauli_y().is_hermitian(1e-14));
        let not_u = CMat::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(!not_u.is_unitary(1e-10));
        assert!(!not_u.is_hermitian(1e-10));
    }

    #[test]
    fn apply_to_state() {
        let x = pauli_x();
        let v = vec![C64::ONE, C64::ZERO];
        let w = x.apply(&v);
        assert_eq!(w, vec![C64::ZERO, C64::ONE]);
    }

    #[test]
    fn submatrix_and_embed_roundtrip() {
        let m = CMat::from_fn(4, 4, |i, j| C64::new((i * 4 + j) as f64, 0.0));
        let sub = m.submatrix(&[1, 3], &[1, 3]);
        assert_eq!(sub[(0, 0)], C64::real(5.0));
        assert_eq!(sub[(1, 1)], C64::real(15.0));

        let emb = CMat::embed(&sub, 4, &[1, 3]);
        assert_eq!(emb[(1, 1)], C64::real(5.0));
        assert_eq!(emb[(3, 3)], C64::real(15.0));
        assert_eq!(emb[(0, 0)], C64::ONE);
        assert_eq!(emb[(2, 2)], C64::ONE);
        assert_eq!(emb[(0, 2)], C64::ZERO);
    }

    #[test]
    #[should_panic]
    fn embed_rejects_duplicate_indices() {
        let s = CMat::identity(2);
        let _ = CMat::embed(&s, 4, &[1, 1]);
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let h = CMat::from_real(2, 2, &[1.0, 1.0, 1.0, -1.0]).scale(C64::real(1.0 / 2f64.sqrt()));
        let h4 = h.powi(4);
        assert!(h4.approx_eq(&CMat::identity(2), 1e-12));
        assert!(h.powi(0).approx_eq(&CMat::identity(2), 0.0));
        assert!(h.powi(1).approx_eq(&h, 0.0));
    }

    #[test]
    fn strip_global_phase_canonicalizes() {
        let x = pauli_x();
        let phased = x.scale(C64::cis(1.234));
        let stripped = phased.strip_global_phase();
        assert!(stripped.approx_eq(&x, 1e-12));
    }

    #[test]
    fn top_left_block_projects() {
        let m = CMat::from_fn(3, 3, |i, j| C64::new((i + j) as f64, 0.0));
        let b = m.top_left_block(2);
        assert_eq!(b.rows(), 2);
        assert_eq!(b[(1, 1)], C64::real(2.0));
    }

    #[test]
    fn vector_helpers() {
        let mut v = vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((v.iter().map(|z| z.abs2()).sum::<f64>() - 1.0).abs() < 1e-15);

        let a = vec![C64::ONE, C64::I];
        let b = vec![C64::I, C64::ONE];
        // ⟨a|b⟩ = conj(1)·i + conj(i)·1 = i − i = 0
        assert!(inner(&a, &b).approx_eq(C64::ZERO, 1e-15));
    }

    #[test]
    fn diag_constructor() {
        let d = CMat::diag(&[C64::ONE, C64::I]);
        assert_eq!(d[(0, 0)], C64::ONE);
        assert_eq!(d[(1, 1)], C64::I);
        assert_eq!(d[(0, 1)], C64::ZERO);
    }

    #[test]
    fn operator_overloads() {
        let x = pauli_x();
        let z = pauli_z();
        let s = &x + &z;
        assert_eq!(s[(0, 0)], C64::ONE);
        assert_eq!(s[(0, 1)], C64::ONE);
        let d = &s - &z;
        assert!(d.approx_eq(&x, 0.0));
        let p = &x * &x;
        assert!(p.approx_eq(&CMat::identity(2), 0.0));
        let n = -&x;
        assert_eq!(n[(0, 1)], C64::real(-1.0));
    }
}
