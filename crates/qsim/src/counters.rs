//! Deterministic flop/allocation counters for the numeric kernel core.
//!
//! Perf regressions in allocation-free kernels are invisible to ordinary
//! tests: a stray `.clone()` or a helper that quietly allocates again
//! keeps every result bit-identical while destroying the speedup. These
//! counters make that testable — every fresh `CMat` buffer and every
//! counted kernel records into thread-local tallies that tests (and the
//! kernels bench via `--json-out`) can assert exactly.
//!
//! Counting policy (deterministic for a fixed input):
//!
//! * **allocs** — one per fresh matrix/state buffer: `CMat` constructors,
//!   operator results (`+`, `-`, `conj`, `scale`, …) and `apply`. `Clone`
//!   is not counted (derived impl), nor are transient `Vec<f64>` scratch
//!   vectors outside the matrix type.
//! * **flops** — 8 per complex multiply-accumulate:
//!   `matmul`/`matmul_into` count `8·rows·inner·cols`, `apply`/
//!   `apply_into` count `8·rows·cols`, one Jacobi plane rotation counts
//!   `48·n` (three n-length two-output updates of two complex MACs
//!   each), and the fused spectral apply counts `8·n³ + 6·n²`.
//! * **compile passes** (qcircuit routers/schedulers) — one alloc per
//!   **materialized output artifact**, exactly: a route is 2 (the
//!   routed circuit plus the final layout), a schedule is 1 (the slot
//!   list). Workspace scratch — trial layouts, candidate buffers,
//!   moment levels, colour-group pools — is reused across calls and
//!   never tallied (the same rule that keeps transient `Vec` scratch
//!   uncounted in the numeric core), and `Circuit::moments` is an
//!   untallied query. Flops are unchanged: 2 per f64 lookahead term
//!   (divide + accumulate) and 4 per randomized candidate score
//!   (weight multiply, two adds, one tie-break scale). Because only
//!   outputs count, a pass's cold and warm tallies are identical.
//!
//! The tallies are **thread-local**, so the parallel test runner and
//! scoped worker threads never race and exact-equality asserts are safe;
//! snapshot and reset on the same thread that runs the kernel under test.

use std::cell::Cell;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time snapshot of this thread's kernel tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Floating-point operations (8 per complex MAC; see module docs).
    pub flops: u64,
    /// Fresh matrix/state buffer allocations.
    pub allocs: u64,
}

/// Adds `n` flops to this thread's tally.
#[inline]
pub fn tally_flops(n: u64) {
    FLOPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Records one buffer allocation on this thread.
#[inline]
pub fn tally_alloc() {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Records `n` buffer allocations on this thread (batch accounting for
/// callers that materialize several output buffers in one step, e.g. a
/// router's circuit + final-layout pair).
#[inline]
pub fn tally_allocs(n: u64) {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Reads this thread's tallies without resetting them.
pub fn snapshot() -> KernelCounters {
    KernelCounters {
        flops: FLOPS.with(Cell::get),
        allocs: ALLOCS.with(Cell::get),
    }
}

/// Zeroes this thread's tallies.
pub fn reset() {
    FLOPS.with(|c| c.set(0));
    ALLOCS.with(|c| c.set(0));
}

/// Runs `f` with freshly reset tallies and returns its result together
/// with the counters it accrued (equivalent to `reset(); f(); snapshot()`).
pub fn counted<T>(f: impl FnOnce() -> T) -> (T, KernelCounters) {
    reset();
    let out = f();
    (out, snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_and_reset() {
        reset();
        tally_flops(16);
        tally_flops(4);
        tally_alloc();
        let c = snapshot();
        assert_eq!(c.flops, 20);
        assert_eq!(c.allocs, 1);
        reset();
        assert_eq!(snapshot(), KernelCounters::default());
    }

    #[test]
    fn counted_scopes_a_closure() {
        tally_flops(999); // stale tally from an earlier kernel
        let (val, c) = counted(|| {
            tally_flops(8);
            tally_alloc();
            42
        });
        assert_eq!(val, 42);
        assert_eq!(
            c,
            KernelCounters {
                flops: 8,
                allocs: 1
            }
        );
    }
}
