//! Deterministic, seedable pseudo-random numbers with no external deps.
//!
//! The DigiQ evaluation needs randomness in exactly four shapes — uniform
//! `f64` in `[0, 1)`, uniform floats over a box, uniform integers below a
//! bound, and fair coin flips — all of which must be **reproducible
//! run-to-run given a seed** so that GA/annealing searches and drift
//! populations are stable across machines and sessions.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 so that consecutive `u64` seeds yield well-separated streams.
//! The API deliberately mirrors the subset of the `rand` crate the seed
//! code used (`StdRng::seed_from_u64`, `gen`, `gen_range`), so call sites
//! port mechanically — only the `use` line changes.
//!
//! ```
//! use qsim::rng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! // Same seed ⇒ same stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.gen::<f64>(), x);
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator with a `rand`-shaped API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny stable streaming hasher: FNV-1a over the little-endian bytes of
/// each written word, finished through a SplitMix64-style avalanche.
///
/// Unlike `std::collections::hash_map::DefaultHasher` — whose algorithm
/// is explicitly unspecified between Rust releases — this hash is a fixed
/// part of the repo and identical across runs, processes, platforms and
/// toolchains. Use it wherever a hash value becomes an observable result
/// (derived seeds, cache keys, golden-file outputs).
///
/// ```
/// use qsim::rng::{stable_hash, StableHasher};
///
/// let mut h = StableHasher::new();
/// h.write_u64(1);
/// h.write_u64(2);
/// assert_eq!(h.finish(), stable_hash(&[1, 2]));
/// assert_ne!(stable_hash(&[1, 2]), stable_hash(&[2, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher(Self::FNV_OFFSET)
    }

    /// Absorbs one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(Self::FNV_PRIME);
    }

    /// Absorbs a 64-bit word (little-endian bytes).
    #[inline]
    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs a `usize` (widened to 64 bits, so 32- and 64-bit targets
    /// agree).
    #[inline]
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Absorbs a raw byte run, length-prefixed so adjacent runs cannot
    /// alias (`"ab" + "c"` hashes apart from `"a" + "bc"`).
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// The avalanched 64-bit digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stable digest of a word sequence (see [`StableHasher`]).
pub fn stable_hash(parts: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

/// Stable digest of a string plus a word sequence — the store/cache-key
/// helper for values addressed by a name and numeric parameters (see
/// [`StableHasher`]).
pub fn stable_hash_str(name: &str, parts: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(name.as_bytes());
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

impl StdRng {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in s.iter_mut() {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for safety.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, n)` via threshold rejection (unbiased).
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // 2^64 mod n; values >= 2^64 - m would bias `% n`, so reject them.
        let m = (u64::MAX % n + 1) % n;
        let threshold = 0u64.wrapping_sub(m);
        loop {
            let v = self.next_u64();
            if m == 0 || v < threshold {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]` (both endpoints reachable).
    #[inline]
    fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`, `bool` → fair coin, integers → full range).
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `lo..hi` or `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Types samplable by [`StdRng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        rng.unit_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Range shapes accepted by [`StdRng::gen_range`].
pub trait UniformRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl UniformRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = rng.unit_f64();
        // Lerp form: each term is bounded by the endpoints, so spans like
        // MIN..MAX cannot overflow the way `end - start` would.
        let v = self.start * (1.0 - u) + self.end * u;
        if v < self.end {
            // `max` also maps a NaN from inf·0 edge cases back in range.
            v.max(self.start)
        } else {
            // Rounding landed on (or past) the excluded endpoint; return
            // the largest value strictly below it.
            self.end.next_down().max(self.start)
        }
    }
}

impl UniformRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + rng.unit_f64_inclusive() * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl UniformRange<i64> for Range<i64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> i64 {
        assert!(self.start < self.end, "gen_range: empty integer range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn int_range_respects_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            seen[k - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn inclusive_int_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let k = rng.gen_range(0u64..=3);
            assert!(k <= 3);
            lo_seen |= k == 0;
            hi_seen |= k == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn extreme_float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..1_000 {
            // Span overflows `end - start`; lerp form must stay finite.
            let v = rng.gen_range(f64::MIN..f64::MAX);
            assert!(v.is_finite() && (f64::MIN..f64::MAX).contains(&v));
            // Ulp-narrow range: only the start is a valid draw.
            let lo = 1.0f64;
            let hi = lo.next_up();
            assert_eq!(rng.gen_range(lo..hi), lo);
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(17);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn below_is_unbiased_chi_square_sanity() {
        // 6-sided die over 60k rolls: each face within 5% of expected.
        let mut rng = StdRng::seed_from_u64(23);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for &c in &counts {
            assert!((9_500..10_500).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(29);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    const PINNED_EMPTY: u64 = 0xf52a_15e9_a9b5_e89b;
    const PINNED_123: u64 = 0xb032_0c21_b46a_9760;

    #[test]
    fn stable_hash_is_pinned_and_sensitive() {
        // Pin concrete digests: the whole point of this hash is that it
        // never changes — if this test fails, golden files and cached
        // sweep reports born under the old value are invalidated.
        assert_eq!(stable_hash(&[]), StableHasher::new().finish());
        assert_eq!(stable_hash(&[]), PINNED_EMPTY);
        assert_eq!(stable_hash(&[1, 2, 3]), PINNED_123);
        // Order, value and length sensitivity.
        assert_ne!(stable_hash(&[1, 2]), stable_hash(&[2, 1]));
        assert_ne!(stable_hash(&[1]), stable_hash(&[1, 0]));
        assert_ne!(stable_hash(&[1]), stable_hash(&[2]));
        // usize widening matches u64 writes.
        let mut h = StableHasher::new();
        h.write_usize(77);
        assert_eq!(h.finish(), stable_hash(&[77]));
    }

    #[test]
    fn stable_hash_str_is_length_prefixed_and_sensitive() {
        assert_eq!(stable_hash_str("ns", &[1]), stable_hash_str("ns", &[1]));
        assert_ne!(stable_hash_str("ns", &[1]), stable_hash_str("ns", &[2]));
        assert_ne!(stable_hash_str("a", &[]), stable_hash_str("b", &[]));
        // The length prefix keeps adjacent byte runs from aliasing.
        let digest = |a: &str, b: &str| {
            let mut h = StableHasher::new();
            h.write_bytes(a.as_bytes());
            h.write_bytes(b.as_bytes());
            h.finish()
        };
        assert_ne!(digest("ab", "c"), digest("a", "bc"));
        // And the empty string hashes apart from writing nothing at all.
        let mut empty = StableHasher::new();
        empty.write_bytes(b"");
        assert_ne!(empty.finish(), StableHasher::new().finish());
    }
}
