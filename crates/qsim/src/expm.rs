//! Matrix exponentials for quantum propagation.
//!
//! Two paths are provided:
//!
//! * [`expm_hermitian_propagator`] — the workhorse. For a Hermitian `H` it
//!   computes `U = exp(−i·H·t)` exactly through the spectral decomposition
//!   (`qsim::eigen`), which is unconditionally stable for the
//!   piecewise-constant Hamiltonians used in the CZ flux-pulse simulation.
//! * [`expm_taylor`] — a scaled-and-squared Taylor series for *general*
//!   matrices, used in tests as an independent cross-check of the spectral
//!   path and for small non-Hermitian experiments.
//!
//! # Examples
//!
//! ```
//! use qsim::matrix::CMat;
//! use qsim::expm::expm_hermitian_propagator;
//! use std::f64::consts::PI;
//!
//! // exp(-i·X·π/2) = -i·X (a π rotation about x, up to phase)
//! let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
//! let u = expm_hermitian_propagator(&x, PI / 2.0);
//! assert!(u.is_unitary(1e-12));
//! ```

use crate::complex::C64;
use crate::eigen::eigh;
use crate::matrix::CMat;

/// Computes the unitary propagator `U = exp(−i·H·t)` for Hermitian `H`.
///
/// `t` is the evolution time in the same units that make `H·t`
/// dimensionless (this crate uses angular frequency × seconds).
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_hermitian_propagator(h: &CMat, t: f64) -> CMat {
    let e = eigh(h);
    e.map_spectrum(|lambda| C64::cis(-lambda * t))
}

/// Computes `exp(A)` for a general complex square matrix using a
/// scaling-and-squaring Taylor expansion.
///
/// The matrix is scaled by `2^−s` so its norm is below 0.5, the series is
/// summed to machine precision, and the result squared `s` times. Accuracy
/// degrades for highly non-normal matrices; for Hermitian propagation prefer
/// [`expm_hermitian_propagator`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn expm_taylor(a: &CMat) -> CMat {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.frobenius_norm();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(C64::real(1.0 / f64::powi(2.0, s as i32)));

    let mut result = CMat::identity(n);
    let mut term = CMat::identity(n);
    for k in 1..64 {
        term = term.matmul(&scaled).scale(C64::real(1.0 / k as f64));
        let tn = term.frobenius_norm();
        result = &result + &term;
        if tn < 1e-18 {
            break;
        }
    }
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn pauli_x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_z() -> CMat {
        CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn propagator_of_zero_time_is_identity() {
        let u = expm_hermitian_propagator(&pauli_x(), 0.0);
        assert!(u.approx_eq(&CMat::identity(2), 1e-14));
    }

    #[test]
    fn x_rotation_formula() {
        // exp(-i·X·θ/2) = cos(θ/2)·I − i·sin(θ/2)·X
        let theta = 0.73;
        let u = expm_hermitian_propagator(&pauli_x(), theta / 2.0);
        let expect = &CMat::identity(2).scale(C64::real((theta / 2.0).cos()))
            + &pauli_x().scale(C64::new(0.0, -(theta / 2.0).sin()));
        assert!(u.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn z_rotation_is_diagonal_phases() {
        let u = expm_hermitian_propagator(&pauli_z(), PI / 4.0);
        assert!(u[(0, 0)].approx_eq(C64::cis(-PI / 4.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(C64::cis(PI / 4.0), 1e-12));
        assert_eq!(u[(0, 1)], C64::ZERO);
    }

    #[test]
    fn propagator_is_always_unitary() {
        for k in 1..8 {
            let t = k as f64 * 0.37;
            let h = CMat::from_slice(
                3,
                3,
                &[
                    C64::real(1.0),
                    C64::new(0.2, 0.1),
                    C64::ZERO,
                    C64::new(0.2, -0.1),
                    C64::real(-0.5),
                    C64::new(0.0, 0.3),
                    C64::ZERO,
                    C64::new(0.0, -0.3),
                    C64::real(2.0),
                ],
            );
            let u = expm_hermitian_propagator(&h, t);
            assert!(u.is_unitary(1e-11), "not unitary at t={t}");
        }
    }

    #[test]
    fn group_property_composition() {
        // U(t1+t2) = U(t2)·U(t1) for time-independent H.
        let h = pauli_x();
        let u1 = expm_hermitian_propagator(&h, 0.3);
        let u2 = expm_hermitian_propagator(&h, 0.9);
        let u12 = expm_hermitian_propagator(&h, 1.2);
        assert!(u2.matmul(&u1).approx_eq(&u12, 1e-11));
    }

    #[test]
    fn taylor_matches_spectral_path() {
        let h = CMat::from_slice(
            4,
            4,
            &[
                C64::real(0.5),
                C64::new(0.1, 0.2),
                C64::ZERO,
                C64::ZERO,
                C64::new(0.1, -0.2),
                C64::real(-1.0),
                C64::new(0.3, 0.0),
                C64::ZERO,
                C64::ZERO,
                C64::new(0.3, 0.0),
                C64::real(0.0),
                C64::new(0.0, 0.4),
                C64::ZERO,
                C64::ZERO,
                C64::new(0.0, -0.4),
                C64::real(1.5),
            ],
        );
        let t = 2.1;
        let spectral = expm_hermitian_propagator(&h, t);
        let taylor = expm_taylor(&h.scale(C64::new(0.0, -t)));
        assert!(
            spectral.approx_eq(&taylor, 1e-9),
            "diff = {}",
            spectral.max_abs_diff(&taylor)
        );
    }

    #[test]
    fn taylor_of_nilpotent() {
        // exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
        let n = CMat::from_real(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        let e = expm_taylor(&n);
        let expect = CMat::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(e.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn taylor_handles_large_norm_via_scaling() {
        let a = pauli_z().scale(C64::real(20.0));
        let e = expm_taylor(&a);
        assert!((e[(0, 0)].re - 20f64.exp()).abs() / 20f64.exp() < 1e-10);
        assert!((e[(1, 1)].re - (-20f64).exp()).abs() < 1e-10);
    }
}
