//! Matrix exponentials for quantum propagation.
//!
//! Two paths are provided:
//!
//! * [`expm_hermitian_propagator`] — the workhorse. For a Hermitian `H` it
//!   computes `U = exp(−i·H·t)` exactly through the spectral decomposition
//!   (`qsim::eigen`), which is unconditionally stable for the
//!   piecewise-constant Hamiltonians used in the CZ flux-pulse simulation.
//! * [`expm_taylor`] — a scaled-and-squared Taylor series for *general*
//!   matrices, used in tests as an independent cross-check of the spectral
//!   path and for small non-Hermitian experiments.
//!
//! # Examples
//!
//! ```
//! use qsim::matrix::CMat;
//! use qsim::expm::expm_hermitian_propagator;
//! use std::f64::consts::PI;
//!
//! // exp(-i·X·π/2) = -i·X (a π rotation about x, up to phase)
//! let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
//! let u = expm_hermitian_propagator(&x, PI / 2.0);
//! assert!(u.is_unitary(1e-12));
//! ```

use crate::complex::C64;
use crate::eigen::{eigh, EigH};
use crate::matrix::CMat;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on memoized eigendecompositions; the memo is cleared
/// wholesale when a new entry would exceed it (a sweep that churns through
/// more distinct Hamiltonians than this gets cache misses, never wrong
/// results or unbounded memory).
const EIGH_MEMO_CAP: usize = 512;

/// Process-wide memo of Hermitian eigendecompositions, keyed by the exact
/// bit pattern of the input matrix.
///
/// Pulse workloads exponentiate the *same* Hamiltonian at many evolution
/// times (hold-time scans, piecewise-constant waveforms with repeated
/// samples), and the O(n³)-per-sweep Jacobi iteration dominates each call.
/// Because the key is the full bitwise contents — not a lossy hash — a hit
/// returns exactly what [`eigh`] would recompute, so memoization is
/// invisible to results (bit-for-bit) and only changes wall time.
fn eigh_memo() -> &'static Mutex<HashMap<Vec<u64>, Arc<EigH>>> {
    static MEMO: OnceLock<Mutex<HashMap<Vec<u64>, Arc<EigH>>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The exact-content key: dimension followed by every entry's re/im bits.
fn eigh_key(h: &CMat) -> Vec<u64> {
    let mut key = Vec::with_capacity(1 + 2 * h.as_slice().len());
    key.push(h.rows() as u64);
    for z in h.as_slice() {
        key.push(z.re.to_bits());
        key.push(z.im.to_bits());
    }
    key
}

/// Returns the memoized eigendecomposition of `h`, computing it on a miss.
fn memoized_eigh(h: &CMat) -> Arc<EigH> {
    let key = eigh_key(h);
    if let Some(e) = eigh_memo().lock().unwrap().get(&key) {
        return e.clone();
    }
    // Decompose outside the lock: eigh is the expensive part, and a rare
    // duplicate build is cheaper than serializing every caller through it.
    let e = Arc::new(eigh(h));
    let mut memo = eigh_memo().lock().unwrap();
    if memo.len() >= EIGH_MEMO_CAP {
        memo.clear();
    }
    memo.entry(key).or_insert(e).clone()
}

/// Empties the process-wide eigendecomposition memo.
///
/// Only needed by tests and benchmarks that assert on cold-path behavior
/// (e.g. the exact allocation counters of an uncached propagator build).
pub fn clear_eigh_memo() {
    eigh_memo().lock().unwrap().clear();
}

/// Number of Hamiltonians currently held in the eigendecomposition memo.
pub fn eigh_memo_len() -> usize {
    eigh_memo().lock().unwrap().len()
}

/// Computes the unitary propagator `U = exp(−i·H·t)` for Hermitian `H`.
///
/// `t` is the evolution time in the same units that make `H·t`
/// dimensionless (this crate uses angular frequency × seconds).
///
/// The eigendecomposition is memoized process-wide by the exact bitwise
/// contents of `h` (see [`clear_eigh_memo`]): repeated propagators of the
/// same Hamiltonian — the dominant pattern in piecewise-constant pulse
/// simulation and hold-time calibration scans — pay the Jacobi iteration
/// once and only the spectral reassembly per call. Results are identical
/// to the uncached path to the bit.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_hermitian_propagator(h: &CMat, t: f64) -> CMat {
    let e = memoized_eigh(h);
    e.map_spectrum(|lambda| C64::cis(-lambda * t))
}

/// Computes `exp(A)` for a general complex square matrix using a
/// scaling-and-squaring Taylor expansion.
///
/// The matrix is scaled by `2^−s` so its norm is below 0.5, the series is
/// summed to machine precision, and the result squared `s` times. Accuracy
/// degrades for highly non-normal matrices; for Hermitian propagation prefer
/// [`expm_hermitian_propagator`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn expm_taylor(a: &CMat) -> CMat {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.frobenius_norm();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(C64::real(1.0 / f64::powi(2.0, s as i32)));

    // The series and the squaring chain ping-pong between `result`/`term`
    // and one scratch buffer — three allocations total, none per term.
    let mut result = CMat::identity(n);
    let mut term = CMat::identity(n);
    let mut tmp = CMat::zeros(n, n);
    for k in 1..64 {
        term.matmul_into(&scaled, &mut tmp);
        tmp.scale_in_place(C64::real(1.0 / k as f64));
        std::mem::swap(&mut term, &mut tmp);
        let tn = term.frobenius_norm();
        result.add_assign(&term);
        if tn < 1e-18 {
            break;
        }
    }
    for _ in 0..s {
        result.matmul_into(&result, &mut tmp);
        std::mem::swap(&mut result, &mut tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn pauli_x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_z() -> CMat {
        CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn propagator_of_zero_time_is_identity() {
        let u = expm_hermitian_propagator(&pauli_x(), 0.0);
        assert!(u.approx_eq(&CMat::identity(2), 1e-14));
    }

    #[test]
    fn x_rotation_formula() {
        // exp(-i·X·θ/2) = cos(θ/2)·I − i·sin(θ/2)·X
        let theta = 0.73;
        let u = expm_hermitian_propagator(&pauli_x(), theta / 2.0);
        let expect = &CMat::identity(2).scale(C64::real((theta / 2.0).cos()))
            + &pauli_x().scale(C64::new(0.0, -(theta / 2.0).sin()));
        assert!(u.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn z_rotation_is_diagonal_phases() {
        let u = expm_hermitian_propagator(&pauli_z(), PI / 4.0);
        assert!(u[(0, 0)].approx_eq(C64::cis(-PI / 4.0), 1e-12));
        assert!(u[(1, 1)].approx_eq(C64::cis(PI / 4.0), 1e-12));
        assert_eq!(u[(0, 1)], C64::ZERO);
    }

    #[test]
    fn propagator_is_always_unitary() {
        for k in 1..8 {
            let t = k as f64 * 0.37;
            let h = CMat::from_slice(
                3,
                3,
                &[
                    C64::real(1.0),
                    C64::new(0.2, 0.1),
                    C64::ZERO,
                    C64::new(0.2, -0.1),
                    C64::real(-0.5),
                    C64::new(0.0, 0.3),
                    C64::ZERO,
                    C64::new(0.0, -0.3),
                    C64::real(2.0),
                ],
            );
            let u = expm_hermitian_propagator(&h, t);
            assert!(u.is_unitary(1e-11), "not unitary at t={t}");
        }
    }

    #[test]
    fn group_property_composition() {
        // U(t1+t2) = U(t2)·U(t1) for time-independent H.
        let h = pauli_x();
        let u1 = expm_hermitian_propagator(&h, 0.3);
        let u2 = expm_hermitian_propagator(&h, 0.9);
        let u12 = expm_hermitian_propagator(&h, 1.2);
        assert!(u2.matmul(&u1).approx_eq(&u12, 1e-11));
    }

    #[test]
    fn taylor_matches_spectral_path() {
        let h = CMat::from_slice(
            4,
            4,
            &[
                C64::real(0.5),
                C64::new(0.1, 0.2),
                C64::ZERO,
                C64::ZERO,
                C64::new(0.1, -0.2),
                C64::real(-1.0),
                C64::new(0.3, 0.0),
                C64::ZERO,
                C64::ZERO,
                C64::new(0.3, 0.0),
                C64::real(0.0),
                C64::new(0.0, 0.4),
                C64::ZERO,
                C64::ZERO,
                C64::new(0.0, -0.4),
                C64::real(1.5),
            ],
        );
        let t = 2.1;
        let spectral = expm_hermitian_propagator(&h, t);
        let taylor = expm_taylor(&h.scale(C64::new(0.0, -t)));
        assert!(
            spectral.approx_eq(&taylor, 1e-9),
            "diff = {}",
            spectral.max_abs_diff(&taylor)
        );
    }

    #[test]
    fn taylor_of_nilpotent() {
        // exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
        let n = CMat::from_real(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        let e = expm_taylor(&n);
        let expect = CMat::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(e.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn taylor_handles_large_norm_via_scaling() {
        let a = pauli_z().scale(C64::real(20.0));
        let e = expm_taylor(&a);
        assert!((e[(0, 0)].re - 20f64.exp()).abs() / 20f64.exp() < 1e-10);
        assert!((e[(1, 1)].re - (-20f64).exp()).abs() < 1e-10);
    }
}
