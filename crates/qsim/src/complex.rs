//! Double-precision complex arithmetic.
//!
//! The DigiQ physics layer needs a small, dependency-free complex type with
//! the handful of operations used by Hamiltonian simulation: field
//! arithmetic, conjugation, polar conversion and the complex exponential.
//! [`C64`] is a `Copy` value type mirroring `num_complex::Complex64`'s
//! behaviour for that subset.
//!
//! # Examples
//!
//! ```
//! use qsim::complex::C64;
//!
//! let z = C64::new(3.0, 4.0);
//! assert_eq!(z.abs(), 5.0);
//! assert_eq!((z * z.conj()).re, 25.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// Implements the full field arithmetic (`+`, `-`, `*`, `/`) against both
/// `C64` and `f64` operands, plus the transcendental helpers needed for
/// quantum evolution ([`C64::exp`], [`C64::from_polar`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r · e^{iθ}`.
    ///
    /// ```
    /// use qsim::complex::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{iθ}`, a unit phase. Ubiquitous in rotating-frame physics.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`, cheaper than [`C64::abs`].
    #[inline]
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z = e^{re}·(cos im + i sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() * 0.5)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Does not panic; returns non-finite parts if `z == 0`, matching IEEE
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs2();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Multiplies by the imaginary unit: `i·z` without a full complex multiply.
    #[inline]
    pub fn mul_i(self) -> Self {
        C64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `−i`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        C64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n < 0 {
            return self.recip().powi(-n);
        }
        let mut base = self;
        let mut acc = C64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<C64> for f64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        rhs + self
    }
}

impl Sub<C64> for f64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs * self
    }
}

impl Div<C64> for f64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        C64::real(self) / rhs
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn constructors_and_accessors() {
        let z = C64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(C64::real(3.0), C64::new(3.0, 0.0));
        assert_eq!(C64::from(2.0), C64::real(2.0));
    }

    #[test]
    fn field_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn scalar_mixed_ops() {
        let a = C64::new(1.0, 2.0);
        assert_eq!(a + 1.0, C64::new(2.0, 2.0));
        assert_eq!(1.0 + a, C64::new(2.0, 2.0));
        assert_eq!(a * 2.0, C64::new(2.0, 4.0));
        assert_eq!(2.0 * a, C64::new(2.0, 4.0));
        assert_eq!(a - 1.0, C64::new(0.0, 2.0));
        assert_eq!(1.0 - a, C64::new(0.0, -2.0));
        assert!((2.0 / a).approx_eq(C64::real(2.0) / a, 1e-15));
    }

    #[test]
    fn conj_abs_arg() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.abs2(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((C64::I.arg() - PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let th = k as f64 * PI / 8.0;
            assert!((C64::cis(th).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_matches_euler() {
        let z = C64::new(0.0, PI);
        assert!(z.exp().approx_eq(C64::real(-1.0), 1e-12));
        let w = C64::new(1.0, 0.0);
        assert!(w.exp().approx_eq(C64::real(std::f64::consts::E), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-12));
    }

    #[test]
    fn recip_and_powi() {
        let z = C64::new(2.0, -1.0);
        assert!((z * z.recip()).approx_eq(C64::ONE, 1e-12));
        assert!(z.powi(3).approx_eq(z * z * z, 1e-12));
        assert!(z.powi(-2).approx_eq((z * z).recip(), 1e-12));
        assert_eq!(z.powi(0), C64::ONE);
    }

    #[test]
    fn mul_i_shortcuts() {
        let z = C64::new(2.0, 5.0);
        assert_eq!(z.mul_i(), z * C64::I);
        assert_eq!(z.mul_neg_i(), z * -C64::I);
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::ONE;
        z -= C64::I;
        z *= C64::new(0.0, 2.0);
        z /= C64::new(2.0, 0.0);
        assert!(z.approx_eq(C64::new(0.0, 2.0), 1e-12));
        z *= 2.0;
        assert!(z.approx_eq(C64::new(0.0, 4.0), 1e-12));
    }

    #[test]
    fn sum_iterator() {
        let s: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(s, C64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finite_check() {
        assert!(C64::ONE.is_finite());
        assert!(!(C64::ONE / 0.0).is_finite());
    }
}
