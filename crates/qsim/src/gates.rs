//! Standard quantum gate constructors and SU(2) utilities.
//!
//! Provides the ideal (two-level) gate matrices used as *targets* by the
//! DigiQ calibration layer, the ZYZ Euler decomposition, and the paper's
//! `U(φ3, φ2, φ1) = Rz(φ3)·Ry(π/2)·Rz(φ2)·Ry(π/2)·Rz(φ1)` form (§IV-A2),
//! plus a canonical quaternion representation of SU(2) used by the
//! DigiQ_min meet-in-the-middle sequence search.
//!
//! # Examples
//!
//! ```
//! use qsim::gates;
//!
//! let h = gates::h();
//! let (phi1, phi2, phi3) = gates::paper_angles(&h);
//! let rebuilt = gates::u_paper(phi3, phi2, phi1);
//! // Equal up to global phase:
//! assert!(gates::phase_distance(&rebuilt, &h) < 1e-12);
//! ```

use crate::complex::C64;
use crate::matrix::CMat;
use std::f64::consts::{FRAC_PI_2, PI};

/// 2×2 identity.
pub fn id2() -> CMat {
    CMat::identity(2)
}

/// Pauli X.
pub fn x() -> CMat {
    CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
}

/// Pauli Y.
pub fn y() -> CMat {
    CMat::from_slice(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO])
}

/// Pauli Z.
pub fn z() -> CMat {
    CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
}

/// Hadamard.
pub fn h() -> CMat {
    let s = 1.0 / 2f64.sqrt();
    CMat::from_real(2, 2, &[s, s, s, -s])
}

/// Phase gate S = diag(1, i).
pub fn s() -> CMat {
    CMat::from_slice(2, 2, &[C64::ONE, C64::ZERO, C64::ZERO, C64::I])
}

/// S†.
pub fn sdg() -> CMat {
    s().dagger()
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> CMat {
    CMat::from_slice(2, 2, &[C64::ONE, C64::ZERO, C64::ZERO, C64::cis(PI / 4.0)])
}

/// T†.
pub fn tdg() -> CMat {
    t().dagger()
}

/// Rotation about x: `exp(−i·θ·X/2)`.
pub fn rx(theta: f64) -> CMat {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMat::from_slice(
        2,
        2,
        &[
            C64::real(c),
            C64::new(0.0, -s),
            C64::new(0.0, -s),
            C64::real(c),
        ],
    )
}

/// Rotation about y: `exp(−i·θ·Y/2)`.
pub fn ry(theta: f64) -> CMat {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMat::from_real(2, 2, &[c, -s, s, c])
}

/// Rotation about z: `exp(−i·θ·Z/2) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> CMat {
    CMat::diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)])
}

/// General single-qubit unitary in ZYZ form:
/// `U(θ, φ, λ) = Rz(φ)·Ry(θ)·Rz(λ)` (up to global phase, the universal
/// parameterization used by OpenQASM's `u3` modulo phase conventions).
pub fn u_zyz(theta: f64, phi: f64, lam: f64) -> CMat {
    rz(phi).matmul(&ry(theta)).matmul(&rz(lam))
}

/// The paper's DigiQ_opt gate form (§IV-A2):
/// `U(φ3, φ2, φ1) = Rz(φ3)·Ry(π/2)·Rz(φ2)·Ry(π/2)·Rz(φ1)`.
pub fn u_paper(phi3: f64, phi2: f64, phi1: f64) -> CMat {
    rz(phi3)
        .matmul(&ry(FRAC_PI_2))
        .matmul(&rz(phi2))
        .matmul(&ry(FRAC_PI_2))
        .matmul(&rz(phi1))
}

/// CZ on two qubits = diag(1, 1, 1, −1).
pub fn cz() -> CMat {
    CMat::diag(&[C64::ONE, C64::ONE, C64::ONE, C64::real(-1.0)])
}

/// CNOT with qubit 0 as control (big-endian: basis |q0 q1⟩).
pub fn cx() -> CMat {
    CMat::from_real(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0,
        ],
    )
}

/// SWAP on two qubits.
pub fn swap() -> CMat {
    CMat::from_real(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0,
        ],
    )
}

/// ZYZ Euler angles of an arbitrary 2×2 unitary.
///
/// Returns `(theta, phi, lam, phase)` such that
/// `U = e^{i·phase} · Rz(phi) · Ry(theta) · Rz(lam)`, with
/// `theta ∈ [0, π]`.
///
/// # Panics
///
/// Panics if `u` is not 2×2.
pub fn zyz_angles(u: &CMat) -> (f64, f64, f64, f64) {
    assert_eq!((u.rows(), u.cols()), (2, 2), "zyz_angles requires 2x2");
    // Normalize to SU(2): V = U / sqrt(det U).
    let det = u[(0, 0)] * u[(1, 1)] - u[(0, 1)] * u[(1, 0)];
    let root = det.sqrt();
    let v00 = u[(0, 0)] / root;
    let v10 = u[(1, 0)] / root;

    // V = [[e^{-i(φ+λ)/2} c, -e^{-i(φ-λ)/2} s], [e^{i(φ-λ)/2} s, ...]]
    let c = v00.abs().min(1.0);
    let theta = 2.0 * c.acos();
    let (phi, lam) = if v00.abs() > 1e-12 && v10.abs() > 1e-12 {
        let sum = -2.0 * v00.arg(); // φ+λ
        let diff = 2.0 * v10.arg(); // φ−λ
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    } else if v00.abs() > 1e-12 {
        // θ ≈ 0: only φ+λ matters.
        (-2.0 * v00.arg(), 0.0)
    } else {
        // θ ≈ π: only φ−λ matters; V ≈ [[0, -e^{-i(φ-λ)/2} s], ...]
        (2.0 * v10.arg(), 0.0)
    };
    // Global phase: e^{i·phase} = root adjusted so reconstruction matches.
    let rebuilt = u_zyz(theta, phi, lam);
    // Find phase from the largest entry.
    let mut phase = 0.0;
    let mut best = 0.0;
    for i in 0..2 {
        for j in 0..2 {
            let m = rebuilt[(i, j)].abs();
            if m > best {
                best = m;
                phase = (u[(i, j)] / rebuilt[(i, j)]).arg();
            }
        }
    }
    (theta, phi, lam, phase)
}

/// DigiQ_opt decomposition angles (§IV-A2): returns `(φ1, φ2, φ3)` with
/// `U ∝ Rz(φ3)·Ry(π/2)·Rz(φ2)·Ry(π/2)·Rz(φ1)` up to global phase.
///
/// Derivation: with ZYZ angles `(θ, φ, λ)`, the identity
/// `Ry(π/2)·Rz(π−θ)·Ry(π/2) = ±Rz(π/2)·Ry(θ)·Rz(π/2)` yields
/// `φ1 = λ − π/2`, `φ2 = π − θ`, `φ3 = φ − π/2`.
///
/// # Panics
///
/// Panics if `u` is not 2×2.
pub fn paper_angles(u: &CMat) -> (f64, f64, f64) {
    let (theta, phi, lam, _) = zyz_angles(u);
    (lam - FRAC_PI_2, PI - theta, phi - FRAC_PI_2)
}

/// Phase-insensitive distance between two equal-shaped matrices:
/// `min_φ ‖A − e^{iφ}B‖_F / √dim`. Zero iff the gates are identical up to
/// global phase.
///
/// # Panics
///
/// Panics if shapes differ or matrices are not square.
pub fn phase_distance(a: &CMat, b: &CMat) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let n = a.rows() as f64;
    // ‖A − e^{iφ}B‖ is minimized at e^{iφ} = tr(B†A)/|tr(B†A)|; subtracting
    // directly (rather than expanding the square) avoids catastrophic
    // cancellation when the distance is near zero.
    let ip = b.dagger().matmul(a).trace();
    let phase = if ip.abs() > 0.0 {
        C64::cis(ip.arg())
    } else {
        C64::ONE
    };
    (a - &b.scale(phase)).frobenius_norm() / n.sqrt()
}

/// An element of SU(2) in unit-quaternion form.
///
/// `U = w·I − i(x·X + y·Y + z·Z)` with `w² + x² + y² + z² = 1`. The sign
/// ambiguity (`q` and `−q` encode the same physical gate) is resolved by
/// [`Su2::canonicalize`], enabling use as a spatial-hash key in the
/// DigiQ_min sequence database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Su2 {
    /// Scalar (identity) component.
    pub w: f64,
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Su2 {
    /// The identity gate.
    pub const IDENTITY: Su2 = Su2 {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Builds from a 2×2 unitary, stripping global phase (projecting U(2)
    /// onto SU(2) and canonicalizing the quaternion sign).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not 2×2.
    pub fn from_matrix(u: &CMat) -> Su2 {
        assert_eq!((u.rows(), u.cols()), (2, 2));
        let det = u[(0, 0)] * u[(1, 1)] - u[(0, 1)] * u[(1, 0)];
        let root = det.sqrt();
        let a = u[(0, 0)] / root; // = w − i z
        let b = u[(0, 1)] / root; // = −i x − y
        Su2 {
            w: a.re,
            x: -b.im,
            y: -b.re,
            z: -a.im,
        }
        .canonicalize()
    }

    /// Builds the rotation `exp(−i·θ/2·(n̂·σ))` about axis `(nx, ny, nz)`
    /// (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if the axis is the zero vector.
    pub fn from_axis_angle(nx: f64, ny: f64, nz: f64, theta: f64) -> Su2 {
        let n = (nx * nx + ny * ny + nz * nz).sqrt();
        assert!(n > 0.0, "rotation axis must be nonzero");
        let (s, c) = ((theta / 2.0).sin(), (theta / 2.0).cos());
        Su2 {
            w: c,
            x: s * nx / n,
            y: s * ny / n,
            z: s * nz / n,
        }
        .canonicalize()
    }

    /// Converts back to the 2×2 matrix representation.
    pub fn to_matrix(self) -> CMat {
        CMat::from_slice(
            2,
            2,
            &[
                C64::new(self.w, -self.z),
                C64::new(-self.y, -self.x),
                C64::new(self.y, -self.x),
                C64::new(self.w, self.z),
            ],
        )
    }

    /// Group composition: `self · rhs` (apply `rhs` first). Quaternion
    /// multiplication, then sign canonicalization.
    pub fn compose(self, rhs: Su2) -> Su2 {
        let (w1, x1, y1, z1) = (self.w, self.x, self.y, self.z);
        let (w2, x2, y2, z2) = (rhs.w, rhs.x, rhs.y, rhs.z);
        Su2 {
            w: w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            x: w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            y: w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            z: w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        }
        .canonicalize()
    }

    /// Group inverse (adjoint).
    pub fn inverse(self) -> Su2 {
        Su2 {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
        .canonicalize()
    }

    /// Fixes the `±q` ambiguity: flips sign so the first component of
    /// `(w, x, y, z)` with magnitude above 1e-12 is positive, and
    /// renormalizes to exactly unit length.
    pub fn canonicalize(self) -> Su2 {
        let n = (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt();
        let mut q = Su2 {
            w: self.w / n,
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        };
        let flip = if q.w.abs() > 1e-12 {
            q.w < 0.0
        } else if q.x.abs() > 1e-12 {
            q.x < 0.0
        } else if q.y.abs() > 1e-12 {
            q.y < 0.0
        } else {
            q.z < 0.0
        };
        if flip {
            q = Su2 {
                w: -q.w,
                x: -q.x,
                y: -q.y,
                z: -q.z,
            };
        }
        q
    }

    /// Phase-insensitive gate distance in `[0, √2]`:
    /// `√(1 − |⟨q1, q2⟩|)·√2`, monotone in the average-gate-infidelity.
    pub fn distance(self, other: Su2) -> f64 {
        let dot = self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z;
        (2.0 * (1.0 - dot.abs()).max(0.0)).sqrt()
    }

    /// `|tr(U†V)|/2 ∈ [0, 1]`; 1 iff equal up to global phase.
    pub fn trace_overlap(self, other: Su2) -> f64 {
        (self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paulis_from_rotations() {
        // Rx(π) = −iX, Ry(π) = −iY, Rz(π) = −iZ (up to phase).
        assert!(phase_distance(&rx(PI), &x()) < 1e-12);
        assert!(phase_distance(&ry(PI), &y()) < 1e-12);
        assert!(phase_distance(&rz(PI), &z()) < 1e-12);
    }

    #[test]
    fn hadamard_properties() {
        let hh = h().matmul(&h());
        assert!(hh.approx_eq(&id2(), 1e-14));
        // HXH = Z
        let hxh = h().matmul(&x()).matmul(&h());
        assert!(hxh.approx_eq(&z(), 1e-14));
    }

    #[test]
    fn t_squared_is_s() {
        assert!(t().matmul(&t()).approx_eq(&s(), 1e-14));
        assert!(s().matmul(&sdg()).approx_eq(&id2(), 1e-14));
        assert!(t().matmul(&tdg()).approx_eq(&id2(), 1e-14));
    }

    #[test]
    fn all_standard_gates_unitary() {
        for g in [id2(), x(), y(), z(), h(), s(), sdg(), t(), tdg()] {
            assert!(g.is_unitary(1e-13));
        }
        for g in [rx(0.4), ry(1.3), rz(-2.1), u_zyz(0.5, 1.1, -0.7)] {
            assert!(g.is_unitary(1e-13));
        }
        for g in [cz(), cx(), swap()] {
            assert!(g.is_unitary(1e-13));
        }
    }

    #[test]
    fn cx_from_cz_and_hadamards() {
        // CX = (I⊗H)·CZ·(I⊗H)
        let ih = id2().kron(&h());
        let built = ih.matmul(&cz()).matmul(&ih);
        assert!(built.approx_eq(&cx(), 1e-13));
    }

    #[test]
    fn zyz_roundtrip_standard_gates() {
        for g in [x(), y(), z(), h(), s(), t(), rx(0.3), ry(2.0), rz(1.2)] {
            let (theta, phi, lam, phase) = zyz_angles(&g);
            let rebuilt = u_zyz(theta, phi, lam).scale(C64::cis(phase));
            assert!(
                rebuilt.approx_eq(&g, 1e-10),
                "zyz roundtrip failed, err={}",
                rebuilt.max_abs_diff(&g)
            );
        }
    }

    #[test]
    fn zyz_roundtrip_random_unitaries() {
        for k in 0..32 {
            let a = 0.1 + 0.37 * k as f64;
            let g = u_zyz(a % PI, (1.7 * a) % (2.0 * PI), (0.9 * a) % (2.0 * PI))
                .scale(C64::cis(0.23 * a));
            let (theta, phi, lam, phase) = zyz_angles(&g);
            let rebuilt = u_zyz(theta, phi, lam).scale(C64::cis(phase));
            assert!(rebuilt.approx_eq(&g, 1e-9));
            assert!((0.0..=PI + 1e-9).contains(&theta));
        }
    }

    #[test]
    fn paper_form_reproduces_gates() {
        for g in [
            id2(),
            x(),
            y(),
            z(),
            h(),
            s(),
            t(),
            rx(0.7),
            ry(2.4),
            rz(-1.3),
            u_zyz(1.0, 0.5, -2.0),
        ] {
            let (p1, p2, p3) = paper_angles(&g);
            let rebuilt = u_paper(p3, p2, p1);
            assert!(
                phase_distance(&rebuilt, &g) < 1e-9,
                "paper form failed: dist={}",
                phase_distance(&rebuilt, &g)
            );
        }
    }

    #[test]
    fn phase_distance_detects_difference() {
        assert!(phase_distance(&x(), &x().scale(C64::cis(1.0))) < 1e-12);
        assert!(phase_distance(&x(), &y()) > 0.5);
        assert!(phase_distance(&id2(), &z()) > 0.5);
    }

    #[test]
    fn su2_matrix_roundtrip() {
        for g in [x(), y(), z(), h(), s(), t(), rx(0.3), ry(1.1)] {
            let q = Su2::from_matrix(&g);
            assert!(
                phase_distance(&q.to_matrix(), &g) < 1e-12,
                "su2 roundtrip failed"
            );
        }
    }

    #[test]
    fn su2_composition_matches_matrix_product() {
        let a = Su2::from_matrix(&h());
        let b = Su2::from_matrix(&t());
        let c = a.compose(b);
        let m = h().matmul(&t());
        assert!(phase_distance(&c.to_matrix(), &m) < 1e-12);
    }

    #[test]
    fn su2_inverse() {
        let q = Su2::from_matrix(&u_zyz(0.9, 0.4, 1.8));
        let prod = q.compose(q.inverse());
        assert!(prod.distance(Su2::IDENTITY) < 1e-12);
    }

    #[test]
    fn su2_distance_properties() {
        let a = Su2::from_matrix(&h());
        assert!(a.distance(a) < 1e-12);
        let b = Su2::from_matrix(&t());
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-14);
        assert!(a.trace_overlap(a) > 1.0 - 1e-12);
    }

    #[test]
    fn su2_axis_angle() {
        let q = Su2::from_axis_angle(0.0, 1.0, 0.0, FRAC_PI_2);
        assert!(phase_distance(&q.to_matrix(), &ry(FRAC_PI_2)) < 1e-12);
        let r = Su2::from_axis_angle(0.0, 0.0, 2.0, PI);
        assert!(phase_distance(&r.to_matrix(), &z()) < 1e-12);
    }

    #[test]
    fn su2_canonical_sign_is_stable() {
        let q = Su2::from_matrix(&t());
        let negated = Su2 {
            w: -q.w,
            x: -q.x,
            y: -q.y,
            z: -q.z,
        }
        .canonicalize();
        assert!((q.w - negated.w).abs() < 1e-14);
        assert!((q.z - negated.z).abs() < 1e-14);
    }
}
