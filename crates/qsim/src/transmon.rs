//! Transmon qubit models.
//!
//! Units convention for the whole crate: frequencies in **GHz** (linear, as
//! quoted in the paper, e.g. the 6.21286 GHz parking frequency of Table II)
//! and times in **ns**. A level with energy `E` (GHz) accumulates phase
//! `e^{−i·2π·E·t}` over `t` ns.
//!
//! The transmon is modelled as a Duffing oscillator truncated to a small
//! number of levels (six for single-qubit calibration, per §V-A; three per
//! qubit in the two-qubit simulation):
//!
//! ```text
//! E_n = n·f − (η/2)·n·(n−1)
//! ```
//!
//! with `f` the 0→1 transition frequency and `η` the anharmonicity
//! (250 MHz in the paper's evaluation).
//!
//! Flux-tunable *asymmetric* transmons (§II-B) additionally expose a
//! frequency-vs-flux curve used by the CZ flux pulse, and a Josephson-energy
//! parameterization used by the Monte-Carlo variability model (§VI-B).

use crate::complex::C64;
use crate::matrix::CMat;
use std::f64::consts::PI;

/// Default anharmonicity used throughout the paper's evaluation (§V-B).
pub const DEFAULT_ANHARMONICITY_GHZ: f64 = 0.250;

/// Number of levels retained for single-qubit leakage-aware simulation
/// (§V-A: "we model transmons using six energy levels").
pub const SINGLE_QUBIT_LEVELS: usize = 6;

/// A fixed-frequency transmon truncated to `levels` energy levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmon {
    /// 0→1 transition frequency in GHz.
    pub frequency_ghz: f64,
    /// Anharmonicity `η` in GHz (positive; the 1→2 transition sits at
    /// `f − η`).
    pub anharmonicity_ghz: f64,
    /// Number of retained levels (≥ 2).
    pub levels: usize,
}

impl Transmon {
    /// Creates a transmon with the paper's default anharmonicity and six
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_ghz` is not positive.
    pub fn new(frequency_ghz: f64) -> Self {
        Self::with_params(
            frequency_ghz,
            DEFAULT_ANHARMONICITY_GHZ,
            SINGLE_QUBIT_LEVELS,
        )
    }

    /// Creates a transmon with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_ghz <= 0` or `levels < 2`.
    pub fn with_params(frequency_ghz: f64, anharmonicity_ghz: f64, levels: usize) -> Self {
        assert!(frequency_ghz > 0.0, "qubit frequency must be positive");
        assert!(levels >= 2, "need at least 2 levels for a qubit");
        Transmon {
            frequency_ghz,
            anharmonicity_ghz,
            levels,
        }
    }

    /// Energy of level `n` in GHz: `E_n = n·f − (η/2)·n(n−1)`.
    pub fn energy(&self, n: usize) -> f64 {
        let nf = n as f64;
        nf * self.frequency_ghz - 0.5 * self.anharmonicity_ghz * nf * (nf - 1.0)
    }

    /// All level energies.
    pub fn energies(&self) -> Vec<f64> {
        (0..self.levels).map(|n| self.energy(n)).collect()
    }

    /// The diagonal Hamiltonian (GHz units) in the energy basis.
    pub fn hamiltonian(&self) -> CMat {
        CMat::diag(
            &self
                .energies()
                .iter()
                .map(|&e| C64::real(e))
                .collect::<Vec<_>>(),
        )
    }

    /// Lowering operator `a` with `⟨n−1|a|n⟩ = √n`.
    pub fn lowering(&self) -> CMat {
        let mut m = CMat::zeros(self.levels, self.levels);
        for n in 1..self.levels {
            m[(n - 1, n)] = C64::real((n as f64).sqrt());
        }
        m
    }

    /// Charge-coupling drive generator `Y = i(a† − a)`, the multilevel
    /// analogue of Pauli Y. An instantaneous SFQ pulse applies
    /// `exp(−i·(δθ/2)·Y)` (McDermott–Vavilov model, §II-C).
    pub fn drive_y(&self) -> CMat {
        let a = self.lowering();
        let ad = a.dagger();
        (&ad - &a).scale(C64::I)
    }

    /// Free-evolution propagator over `t_ns` in the lab frame:
    /// `diag(e^{−i·2π·E_n·t})`.
    pub fn free_propagator(&self, t_ns: f64) -> CMat {
        CMat::diag(
            &self
                .energies()
                .iter()
                .map(|&e| C64::cis(-2.0 * PI * e * t_ns))
                .collect::<Vec<_>>(),
        )
    }

    /// Rotating-frame transformation `R(t) = diag(e^{−i·2π·n·f_frame·t})`
    /// at frame frequency `f_frame` (GHz). A lab-frame evolution `U`
    /// over duration `t` becomes `R(t)† · U` in the frame.
    pub fn frame_propagator(&self, f_frame_ghz: f64, t_ns: f64) -> CMat {
        CMat::diag(
            &(0..self.levels)
                .map(|n| C64::cis(-2.0 * PI * n as f64 * f_frame_ghz * t_ns))
                .collect::<Vec<_>>(),
        )
    }

    /// Detunes the transmon by `delta_ghz`, returning a new model.
    pub fn detuned(&self, delta_ghz: f64) -> Transmon {
        Transmon {
            frequency_ghz: self.frequency_ghz + delta_ghz,
            ..*self
        }
    }
}

/// A flux-tunable asymmetric transmon (§II-B).
///
/// The two parallel Josephson junctions with energies `ej1`, `ej2` give a
/// flux-dependent effective Josephson energy
///
/// ```text
/// EJ(Φ) = (EJ1+EJ2) · |cos(πΦ/Φ₀)| · √(1 + d²·tan²(πΦ/Φ₀))
/// d = (EJ2−EJ1)/(EJ1+EJ2)
/// ```
///
/// and transmon frequency `f(Φ) ≈ √(8·EJ(Φ)·EC) − EC`. The charging energy
/// `EC` equals the anharmonicity in the transmon limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymmetricTransmon {
    /// Josephson energy of junction 1 in GHz.
    pub ej1_ghz: f64,
    /// Josephson energy of junction 2 in GHz.
    pub ej2_ghz: f64,
    /// Charging energy `EC` in GHz (≈ anharmonicity).
    pub ec_ghz: f64,
    /// Number of retained levels.
    pub levels: usize,
}

impl AsymmetricTransmon {
    /// Designs an asymmetric transmon hitting `target_freq_ghz` at zero
    /// flux, with junction asymmetry `d` and charging energy `ec_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if the target frequency or `ec_ghz` is not positive, or if
    /// `d` is outside `[0, 1)`.
    pub fn design(target_freq_ghz: f64, asymmetry: f64, ec_ghz: f64, levels: usize) -> Self {
        assert!(target_freq_ghz > 0.0 && ec_ghz > 0.0);
        assert!((0.0..1.0).contains(&asymmetry));
        // f = sqrt(8·EJΣ·EC) − EC at Φ=0 ⇒ EJΣ = (f+EC)²/(8·EC).
        let ej_sum = (target_freq_ghz + ec_ghz).powi(2) / (8.0 * ec_ghz);
        let ej1 = ej_sum * (1.0 - asymmetry) / 2.0;
        let ej2 = ej_sum * (1.0 + asymmetry) / 2.0;
        AsymmetricTransmon {
            ej1_ghz: ej1,
            ej2_ghz: ej2,
            ec_ghz,
            levels,
        }
    }

    /// Junction asymmetry `d = (EJ2−EJ1)/(EJ1+EJ2)`.
    pub fn asymmetry(&self) -> f64 {
        (self.ej2_ghz - self.ej1_ghz) / (self.ej1_ghz + self.ej2_ghz)
    }

    /// Effective Josephson energy at reduced flux `phi = Φ/Φ₀`.
    pub fn effective_ej(&self, phi: f64) -> f64 {
        let d = self.asymmetry();
        let x = PI * phi;
        let c = x.cos().abs();
        let t2 = if x.cos().abs() < 1e-12 {
            f64::INFINITY
        } else {
            (x.tan()).powi(2)
        };
        let sum = self.ej1_ghz + self.ej2_ghz;
        if t2.is_infinite() {
            sum * d.abs()
        } else {
            sum * c * (1.0 + d * d * t2).sqrt()
        }
    }

    /// Qubit 0→1 frequency at reduced flux `phi` (GHz).
    pub fn frequency_at(&self, phi: f64) -> f64 {
        (8.0 * self.effective_ej(phi) * self.ec_ghz).sqrt() - self.ec_ghz
    }

    /// The fixed-frequency [`Transmon`] model at reduced flux `phi`.
    pub fn at_flux(&self, phi: f64) -> Transmon {
        Transmon::with_params(self.frequency_at(phi), self.ec_ghz, self.levels)
    }

    /// Finds the reduced flux (within `[0, 0.5)`) that detunes the qubit to
    /// `target_freq_ghz`, by bisection on the monotone branch.
    ///
    /// Returns `None` if the target is outside the tunable band.
    pub fn flux_for_frequency(&self, target_freq_ghz: f64) -> Option<f64> {
        let f0 = self.frequency_at(0.0);
        let fmin = self.frequency_at(0.5);
        if target_freq_ghz > f0 || target_freq_ghz < fmin {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, 0.5f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.frequency_at(mid) > target_freq_ghz {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Applies multiplicative Josephson-energy variation (the paper's
    /// σ=0.2% Monte-Carlo model, §VI-B): each junction energy is scaled by
    /// the given factors.
    pub fn with_ej_variation(&self, scale1: f64, scale2: f64) -> Self {
        AsymmetricTransmon {
            ej1_ghz: self.ej1_ghz * scale1,
            ej2_ghz: self.ej2_ghz * scale2,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_ladder_with_anharmonicity() {
        let t = Transmon::new(6.0);
        assert_eq!(t.energy(0), 0.0);
        assert_eq!(t.energy(1), 6.0);
        // E2 = 2f − η = 12 − 0.25
        assert!((t.energy(2) - 11.75).abs() < 1e-12);
        // 1→2 transition is f − η.
        assert!((t.energy(2) - t.energy(1) - (6.0 - 0.25)).abs() < 1e-12);
    }

    #[test]
    fn lowering_operator_elements() {
        let t = Transmon::with_params(5.0, 0.3, 4);
        let a = t.lowering();
        assert_eq!(a[(0, 1)], C64::ONE);
        assert!((a[(1, 2)].re - 2f64.sqrt()).abs() < 1e-15);
        assert!((a[(2, 3)].re - 3f64.sqrt()).abs() < 1e-15);
        assert_eq!(a[(1, 0)], C64::ZERO);
    }

    #[test]
    fn drive_y_is_hermitian_and_pauli_like() {
        let t = Transmon::new(6.0);
        let y = t.drive_y();
        assert!(y.is_hermitian(1e-14));
        // Top 2×2 block is Pauli Y.
        let block = y.top_left_block(2);
        assert!(block.approx_eq(&crate::gates::y(), 1e-14));
    }

    #[test]
    fn free_propagator_is_unitary_and_periodic() {
        let t = Transmon::with_params(4.0, 0.25, 3);
        let u = t.free_propagator(0.125);
        assert!(u.is_unitary(1e-14));
        // After one full period of the 0→1 transition the qubit subspace
        // phase difference returns: e^{-i2πf t} with t = 1/f.
        let period = 1.0 / t.frequency_ghz;
        let up = t.free_propagator(period);
        let rel = up[(1, 1)] / up[(0, 0)];
        assert!(rel.approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn frame_removes_qubit_phase() {
        let t = Transmon::new(6.21286);
        let dt = 0.04; // one 40 ps SFQ clock tick
        let lab = t.free_propagator(dt);
        let rot = t
            .frame_propagator(t.frequency_ghz, dt)
            .dagger()
            .matmul(&lab);
        // In the qubit frame, the 0→1 relative phase vanishes.
        let rel = rot[(1, 1)] / rot[(0, 0)];
        assert!(rel.approx_eq(C64::ONE, 1e-12));
        // Higher levels keep anharmonic phase.
        let rel2 = rot[(2, 2)] / rot[(0, 0)];
        let expect = C64::cis(2.0 * PI * t.anharmonicity_ghz * dt);
        assert!(rel2.approx_eq(expect, 1e-12));
    }

    #[test]
    fn asymmetric_transmon_design_hits_target() {
        let a = AsymmetricTransmon::design(6.21286, 0.3, 0.25, 6);
        assert!((a.frequency_at(0.0) - 6.21286).abs() < 1e-9);
        assert!((a.asymmetry() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn frequency_decreases_with_flux() {
        let a = AsymmetricTransmon::design(6.0, 0.2, 0.25, 6);
        let f0 = a.frequency_at(0.0);
        let f1 = a.frequency_at(0.2);
        let f2 = a.frequency_at(0.4);
        assert!(f0 > f1 && f1 > f2);
        // Sweet spot: derivative ≈ 0 at Φ=0 (quadratic dependence).
        let df = (a.frequency_at(1e-4) - f0).abs();
        assert!(df < 1e-5);
    }

    #[test]
    fn flux_for_frequency_inverts_curve() {
        let a = AsymmetricTransmon::design(6.21286, 0.3, 0.25, 6);
        let target = 4.392;
        let phi = a.flux_for_frequency(target).expect("in band");
        assert!((a.frequency_at(phi) - target).abs() < 1e-9);
        // Out-of-band requests return None.
        assert!(a.flux_for_frequency(7.0).is_none());
    }

    #[test]
    fn ej_variation_shifts_frequency_as_expected() {
        // σ = 0.2% on each junction ⇒ ~0.1% frequency shift ≈ 6 MHz at
        // 6.2 GHz (paper §VI-B: "about ±6 MHz fluctuation").
        let a = AsymmetricTransmon::design(6.21286, 0.3, 0.25, 6);
        let v = a.with_ej_variation(1.002, 1.002);
        let shift = (v.frequency_at(0.0) - a.frequency_at(0.0)).abs();
        assert!(shift > 0.004 && shift < 0.009, "shift = {shift} GHz");
    }

    #[test]
    fn detuned_transmon() {
        let t = Transmon::new(6.0).detuned(0.01);
        assert!((t.frequency_ghz - 6.01).abs() < 1e-12);
        assert_eq!(t.levels, SINGLE_QUBIT_LEVELS);
    }
}
