//! Coupled-transmon simulation for flux-tunable CZ gates (§IV-A3, §V-B).
//!
//! Two capacitively coupled, flux-tunable asymmetric transmons with
//! Hamiltonian (GHz units, 3 levels each → 9-dimensional):
//!
//! ```text
//! H(t) = Σᵢ [ ωᵢ(t)·nᵢ − (ηᵢ/2)·nᵢ(nᵢ−1) ]  +  g·(a†b + a b†)
//! ```
//!
//! The CZ gate detunes qubit 1 (via the SFQ/DC current generator of Fig 4)
//! to the |11⟩ ↔ |20⟩ avoided crossing at `ω₁ = ω₂ + η₁`; holding there for
//! half a (√2·g) Rabi period returns the |11⟩ population with a −1 phase.
//! The paper computes the resulting `Uqq` "by numerically integrating the
//! Schrödinger equation" — here propagation is piecewise-constant over the
//! sampled current waveform using exact Hermitian matrix exponentials.
//!
//! # Examples
//!
//! ```
//! use qsim::two_qubit::{CoupledTransmons, DetuningWaveform};
//!
//! let pair = CoupledTransmons::paper_pair(6.21286, 4.14238);
//! let wf = DetuningWaveform::square(pair.cz_resonance_detuning(), 35.0, 0.25);
//! let u = pair.propagate(&wf);
//! assert!(u.is_unitary(1e-9));
//! ```

use crate::complex::C64;
use crate::expm::expm_hermitian_propagator;
use crate::matrix::CMat;
use crate::transmon::Transmon;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of levels per transmon in the two-qubit model. Three levels
/// suffice to capture the |20⟩ state that mediates the CZ interaction and
/// its leakage channel (see DESIGN.md substitution #6).
pub const TWO_QUBIT_LEVELS: usize = 3;

/// Basis indices of the computational subspace {|00⟩,|01⟩,|10⟩,|11⟩} in the
/// row-major |n₁ n₂⟩ ordering with 3 levels per qubit.
pub const COMPUTATIONAL_IDX: [usize; 4] = [0, 1, 3, 4];

/// Default capacitive coupling strength in GHz (paper §V-B: 10 MHz).
pub const DEFAULT_COUPLING_GHZ: f64 = 0.010;

/// A piecewise-constant detuning waveform applied to qubit 1.
///
/// Sample `k` holds detuning `deltas[k]` (GHz, negative = downward) for
/// `dt_ns`. Generated either synthetically ([`DetuningWaveform::square`],
/// [`DetuningWaveform::rounded`]) or from the `sfq_hw` analog simulation of
/// the SFQ/DC current generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DetuningWaveform {
    /// Duration of each sample in ns.
    pub dt_ns: f64,
    /// Detuning of qubit 1 during each sample, in GHz.
    pub deltas: Vec<f64>,
}

impl DetuningWaveform {
    /// An ideal square pulse: `hold_ns` at `delta_ghz`, sampled every
    /// `dt_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0` or `hold_ns < 0`.
    pub fn square(delta_ghz: f64, hold_ns: f64, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0 && hold_ns >= 0.0);
        let n = (hold_ns / dt_ns).round() as usize;
        DetuningWaveform {
            dt_ns,
            deltas: vec![delta_ghz; n],
        }
    }

    /// A pulse with raised-cosine rise and fall edges (closer to the RC
    /// shape of Fig 4b): `rise_ns` up, `hold_ns` flat, `rise_ns` down.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0`.
    pub fn rounded(delta_ghz: f64, rise_ns: f64, hold_ns: f64, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0);
        let nr = (rise_ns / dt_ns).round() as usize;
        let nh = (hold_ns / dt_ns).round() as usize;
        let mut deltas = Vec::with_capacity(2 * nr + nh);
        for k in 0..nr {
            let x = (k as f64 + 0.5) / nr as f64;
            deltas.push(delta_ghz * 0.5 * (1.0 - (PI * x).cos()));
        }
        deltas.extend(std::iter::repeat(delta_ghz).take(nh));
        // The raised-cosine fall is the rise mirrored in time; copying the
        // stored rise samples (rather than re-evaluating the cosine) makes
        // the symmetry exact to the bit, so the propagator memo in
        // `propagate` reuses every edge sample instead of recomputing an
        // expm for each fall step.
        for k in (0..nr).rev() {
            deltas.push(deltas[k]);
        }
        DetuningWaveform { dt_ns, deltas }
    }

    /// Builds a waveform from current samples through a flux-curve map
    /// `current → detuning` (used to couple the `sfq_hw` analog output to
    /// the physics).
    pub fn from_current_samples(
        dt_ns: f64,
        currents: &[f64],
        mut current_to_detuning: impl FnMut(f64) -> f64,
    ) -> Self {
        DetuningWaveform {
            dt_ns,
            deltas: currents.iter().map(|&i| current_to_detuning(i)).collect(),
        }
    }

    /// Total duration in ns.
    pub fn duration_ns(&self) -> f64 {
        self.dt_ns * self.deltas.len() as f64
    }

    /// Scales every sample by `factor` — models the σ=1% current-generator
    /// amplitude error of §VI-B.
    pub fn scaled(&self, factor: f64) -> Self {
        DetuningWaveform {
            dt_ns: self.dt_ns,
            deltas: self.deltas.iter().map(|d| d * factor).collect(),
        }
    }
}

/// A pair of capacitively coupled transmons.
#[derive(Debug, Clone)]
pub struct CoupledTransmons {
    /// Qubit 1 (the flux-tuned qubit; higher idle frequency).
    pub q1: Transmon,
    /// Qubit 2 (static during the CZ).
    pub q2: Transmon,
    /// Capacitive coupling strength `g` in GHz.
    pub coupling_ghz: f64,
}

impl CoupledTransmons {
    /// Creates a pair with explicit transmons (forced to
    /// [`TWO_QUBIT_LEVELS`] levels).
    pub fn new(q1: Transmon, q2: Transmon, coupling_ghz: f64) -> Self {
        CoupledTransmons {
            q1: Transmon::with_params(q1.frequency_ghz, q1.anharmonicity_ghz, TWO_QUBIT_LEVELS),
            q2: Transmon::with_params(q2.frequency_ghz, q2.anharmonicity_ghz, TWO_QUBIT_LEVELS),
            coupling_ghz,
        }
    }

    /// The paper's evaluation pair: given idle frequencies (GHz), both with
    /// 250 MHz anharmonicity and 10 MHz coupling (§V-B).
    pub fn paper_pair(f1_ghz: f64, f2_ghz: f64) -> Self {
        Self::new(
            Transmon::with_params(f1_ghz, 0.25, TWO_QUBIT_LEVELS),
            Transmon::with_params(f2_ghz, 0.25, TWO_QUBIT_LEVELS),
            DEFAULT_COUPLING_GHZ,
        )
    }

    /// Hilbert-space dimension (9).
    pub fn dim(&self) -> usize {
        TWO_QUBIT_LEVELS * TWO_QUBIT_LEVELS
    }

    /// The detuning that brings |11⟩ and |20⟩ on resonance:
    /// `Δ = (f₂ + η₁) − f₁` (negative when tuning q1 downward).
    pub fn cz_resonance_detuning(&self) -> f64 {
        (self.q2.frequency_ghz + self.q1.anharmonicity_ghz) - self.q1.frequency_ghz
    }

    /// The full 9×9 Hamiltonian with qubit 1 detuned by `delta1_ghz`.
    pub fn hamiltonian(&self, delta1_ghz: f64) -> CMat {
        let d = self.dim();
        let mut h = CMat::zeros(d, d);
        let f1 = self.q1.frequency_ghz + delta1_ghz;
        for n1 in 0..TWO_QUBIT_LEVELS {
            for n2 in 0..TWO_QUBIT_LEVELS {
                let i = n1 * TWO_QUBIT_LEVELS + n2;
                let e1 = n1 as f64 * f1
                    - 0.5 * self.q1.anharmonicity_ghz * (n1 * (n1.max(1) - 1)) as f64;
                let e2 = n2 as f64 * self.q2.frequency_ghz
                    - 0.5 * self.q2.anharmonicity_ghz * (n2 * (n2.max(1) - 1)) as f64;
                h[(i, i)] = C64::real(e1 + e2);
            }
        }
        // g·(a†b + a b†): couples |n1, n2⟩ ↔ |n1+1, n2−1⟩.
        for n1 in 0..TWO_QUBIT_LEVELS - 1 {
            for n2 in 1..TWO_QUBIT_LEVELS {
                let i = n1 * TWO_QUBIT_LEVELS + n2;
                let j = (n1 + 1) * TWO_QUBIT_LEVELS + (n2 - 1);
                let amp = ((n1 + 1) as f64).sqrt() * (n2 as f64).sqrt() * self.coupling_ghz;
                h[(j, i)] = C64::real(amp);
                h[(i, j)] = C64::real(amp);
            }
        }
        h
    }

    /// Doubly-rotating-frame transformation at the idle frequencies over
    /// time `t_ns`.
    pub fn frame(&self, t_ns: f64) -> CMat {
        let d = self.dim();
        CMat::from_fn(d, d, |i, j| {
            if i != j {
                return C64::ZERO;
            }
            let n1 = (i / TWO_QUBIT_LEVELS) as f64;
            let n2 = (i % TWO_QUBIT_LEVELS) as f64;
            C64::cis(-2.0 * PI * (n1 * self.q1.frequency_ghz + n2 * self.q2.frequency_ghz) * t_ns)
        })
    }

    /// The exact-content identity of this pair for the process-wide
    /// propagator cache registry: every physical parameter's bit pattern.
    fn cache_key(&self) -> [u64; 5] {
        [
            self.q1.frequency_ghz.to_bits(),
            self.q1.anharmonicity_ghz.to_bits(),
            self.q2.frequency_ghz.to_bits(),
            self.q2.anharmonicity_ghz.to_bits(),
            self.coupling_ghz.to_bits(),
        ]
    }

    /// The process-wide step-propagator cache for this pair's exact
    /// physical parameters (created on first use).
    ///
    /// [`CoupledTransmons::propagate`] routes through this registry so that
    /// repeated propagation of the same pair — pulse sweeps, calibration
    /// scans, benchmarks — reuses every step propagator across calls
    /// without the caller having to thread a [`PropagatorCache`] through.
    /// Keys are exact bit patterns, so two pairs share a cache only when
    /// they are physically identical; the registry is cleared wholesale if
    /// more than 32 distinct pairs accumulate.
    pub fn shared_cache(&self) -> Arc<PropagatorCache> {
        static REGISTRY: OnceLock<Mutex<HashMap<[u64; 5], Arc<PropagatorCache>>>> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = registry.lock().unwrap();
        if map.len() >= 32 && !map.contains_key(&self.cache_key()) {
            map.clear();
        }
        map.entry(self.cache_key()).or_default().clone()
    }

    /// Propagates the pair through a detuning waveform and returns the
    /// rotating-frame evolution `Uqq = R(T)† · U_lab` (9×9 unitary).
    ///
    /// Step propagators are memoized by the exact bit pattern of the
    /// detuning — in the pair's [`CoupledTransmons::shared_cache`], so the
    /// memo persists across calls — and a symmetric pulse (rise mirrored
    /// into the fall, long plateau) costs one `expm` per *distinct* sample,
    /// not per sample; the per-step products ping-pong between two reused
    /// buffers.
    pub fn propagate(&self, waveform: &DetuningWaveform) -> CMat {
        self.propagate_with_cache(waveform, &self.shared_cache())
    }

    /// [`CoupledTransmons::propagate`] with a caller-owned step-propagator
    /// cache, for workloads that sweep many waveforms sharing samples
    /// (e.g. a CZ hold-time calibration scan). The cache is only valid for
    /// one physical pair — key it per `CoupledTransmons` instance.
    pub fn propagate_with_cache(
        &self,
        waveform: &DetuningWaveform,
        cache: &PropagatorCache,
    ) -> CMat {
        let d = self.dim();
        let mut u = CMat::identity(d);
        let mut tmp = CMat::zeros(d, d);
        let mut last: Option<(u64, Arc<CMat>)> = None;
        for &delta in &waveform.deltas {
            let bits = delta.to_bits();
            let step: Arc<CMat> = match &last {
                Some((b, s)) if *b == bits => s.clone(),
                _ => {
                    let s = cache.get_or_build(bits, waveform.dt_ns, || {
                        expm_hermitian_propagator(
                            &self.hamiltonian(delta),
                            2.0 * PI * waveform.dt_ns,
                        )
                    });
                    last = Some((bits, s.clone()));
                    s
                }
            };
            step.matmul_into(&u, &mut tmp);
            std::mem::swap(&mut u, &mut tmp);
        }
        // R(T) is diagonal by construction, so R†·U is a per-row scaling by
        // conj(R[i][i]) — O(d²) instead of a dagger allocation and a matmul.
        let r = self.frame(waveform.duration_ns());
        let (rd, ud) = (r.as_slice(), u.as_mut_slice());
        for i in 0..d {
            let s = rd[i * d + i].conj();
            for z in &mut ud[i * d..(i + 1) * d] {
                let (zr, zi) = (z.re, z.im);
                z.re = s.re * zr - s.im * zi;
                z.im = s.re * zi + s.im * zr;
            }
        }
        u
    }

    /// Projects a 9×9 evolution onto the 4-dimensional computational
    /// subspace (leakage becomes sub-unitarity, counted as error by
    /// `qsim::fidelity`).
    pub fn computational_block(&self, u9: &CMat) -> CMat {
        u9.submatrix(&COMPUTATIONAL_IDX, &COMPUTATIONAL_IDX)
    }

    /// Convenience: propagate and project in one call.
    pub fn uqq(&self, waveform: &DetuningWaveform) -> CMat {
        self.computational_block(&self.propagate(waveform))
    }

    /// [`CoupledTransmons::uqq`] with a caller-owned propagator cache (see
    /// [`CoupledTransmons::propagate_with_cache`]).
    pub fn uqq_with_cache(&self, waveform: &DetuningWaveform, cache: &PropagatorCache) -> CMat {
        self.computational_block(&self.propagate_with_cache(waveform, cache))
    }
}

/// Memo of piecewise-constant step propagators, keyed by the exact bit
/// patterns of `(delta_ghz, dt_ns)`.
///
/// Each entry is `exp(−i·H(δ)·2π·dt)` for one physical pair; scope a cache
/// per [`CoupledTransmons`] instance (the key does not include the pair's
/// frequencies). Shared behind a `Mutex` so a calibration scan can be
/// parallelized over `std::thread::scope` workers without duplicating
/// `expm` work.
#[derive(Debug, Default)]
pub struct PropagatorCache {
    steps: Mutex<HashMap<(u64, u64), Arc<CMat>>>,
}

impl PropagatorCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct `(delta, dt)` propagators built so far.
    pub fn len(&self) -> usize {
        self.steps.lock().unwrap().len()
    }

    /// Returns `true` if no propagator has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_build(&self, delta_bits: u64, dt_ns: f64, build: impl FnOnce() -> CMat) -> Arc<CMat> {
        let key = (delta_bits, dt_ns.to_bits());
        if let Some(step) = self.steps.lock().unwrap().get(&key) {
            return step.clone();
        }
        // Built outside the lock: expm is the expensive part, and a rare
        // duplicate build is cheaper than holding the mutex through it.
        let step = Arc::new(build());
        let mut steps = self.steps.lock().unwrap();
        // Bound the memo: a sweep over thousands of distinct amplitudes
        // degrades to cache misses instead of unbounded growth (each 9×9
        // entry is ~1.3 KB). Clearing never changes results, only timing.
        if steps.len() >= 1024 {
            steps.clear();
        }
        steps.entry(key).or_insert(step).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::average_gate_error;
    use crate::gates;

    fn pair() -> CoupledTransmons {
        CoupledTransmons::paper_pair(6.21286, 4.14238)
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let p = pair();
        assert!(p.hamiltonian(0.0).is_hermitian(1e-12));
        assert!(p.hamiltonian(-1.82).is_hermitian(1e-12));
    }

    #[test]
    fn resonance_detuning_value() {
        let p = pair();
        // (4.14238 + 0.25) − 6.21286 = −1.82048
        assert!((p.cz_resonance_detuning() + 1.82048).abs() < 1e-9);
    }

    #[test]
    fn idle_evolution_is_diagonal_in_frame() {
        let p = pair();
        let wf = DetuningWaveform::square(0.0, 10.0, 0.5);
        let u = p.propagate(&wf);
        assert!(u.is_unitary(1e-9));
        // Off-diagonal leakage from the static coupling is tiny at
        // 2 GHz detuning vs 10 MHz coupling.
        let mut off = 0.0f64;
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    off = off.max(u[(i, j)].abs());
                }
            }
        }
        assert!(off < 0.02, "off-diagonal {off}");
    }

    #[test]
    fn rabi_oscillation_at_avoided_crossing() {
        let p = pair();
        let delta = p.cz_resonance_detuning();
        // Half Rabi period of the √2·g coupling: |11⟩ fully transfers to
        // |20⟩ and back at t = 1/(2·√2·g).
        let t_full = 1.0 / (2.0 * 2f64.sqrt() * p.coupling_ghz);
        let wf_half = DetuningWaveform::square(delta, t_full / 2.0, 0.05);
        let u_half = p.propagate(&wf_half);
        // |11⟩ is basis index 4; |20⟩ is index 6.
        let p11 = u_half[(4, 4)].abs2();
        assert!(p11 < 0.1, "should have left |11⟩, p11 = {p11}");

        let wf_full = DetuningWaveform::square(delta, t_full, 0.05);
        let u_full = p.propagate(&wf_full);
        let p11 = u_full[(4, 4)].abs2();
        assert!(p11 > 0.9, "should have returned to |11⟩, p11 = {p11}");
    }

    #[test]
    fn full_rabi_cycle_acquires_cz_phase() {
        let p = pair();
        let delta = p.cz_resonance_detuning();
        let t_full = 1.0 / (2.0 * 2f64.sqrt() * p.coupling_ghz);
        let u = p.propagate(&DetuningWaveform::square(delta, t_full, 0.02));
        let m = p.computational_block(&u);
        // Strip single-qubit z-phases: the CZ invariant is
        // φ00 − φ01 − φ10 + φ11 = π.
        let phase = m[(0, 0)].arg() - m[(1, 1)].arg() - m[(2, 2)].arg() + m[(3, 3)].arg();
        let wrapped = (phase - PI)
            .rem_euclid(2.0 * PI)
            .min((PI - phase).rem_euclid(2.0 * PI));
        assert!(
            wrapped < 0.15,
            "conditional phase should be ≈π, got {phase} (dev {wrapped})"
        );
    }

    #[test]
    fn off_resonance_square_pulse_does_nothing_entangling() {
        let p = pair();
        // Detune the wrong way: no crossing encountered.
        let u = p.propagate(&DetuningWaveform::square(0.3, 35.0, 0.25));
        let m = p.computational_block(&u);
        let phase = m[(0, 0)].arg() - m[(1, 1)].arg() - m[(2, 2)].arg() + m[(3, 3)].arg();
        let dev_from_0 = phase
            .rem_euclid(2.0 * PI)
            .min(2.0 * PI - phase.rem_euclid(2.0 * PI));
        assert!(dev_from_0 < 0.3, "unexpected conditional phase {phase}");
    }

    #[test]
    fn waveform_constructors() {
        let s = DetuningWaveform::square(-1.8, 30.0, 0.25);
        assert_eq!(s.deltas.len(), 120);
        assert!((s.duration_ns() - 30.0).abs() < 1e-12);

        let r = DetuningWaveform::rounded(-1.8, 5.0, 30.0, 0.25);
        assert!((r.duration_ns() - 40.0).abs() < 1e-12);
        // Monotone rise to the plateau.
        assert!(r.deltas[0].abs() < r.deltas[10].abs());
        let mid = r.deltas[r.deltas.len() / 2];
        assert!((mid + 1.8).abs() < 1e-9);

        let scaled = r.scaled(1.01);
        assert!((scaled.deltas[30] - r.deltas[30] * 1.01).abs() < 1e-12);
    }

    #[test]
    fn rounded_fall_mirrors_rise_bitwise() {
        // The fall edge must be the rise edge reversed *to the bit* — the
        // propagator memo keys on f64 bit patterns, so an ulp of asymmetry
        // would silently double the expm count.
        let r = DetuningWaveform::rounded(-1.82048, 4.0, 35.0, 0.5);
        let n = r.deltas.len();
        for k in 0..8 {
            assert_eq!(r.deltas[k].to_bits(), r.deltas[n - 1 - k].to_bits());
        }
    }

    #[test]
    fn cached_propagation_matches_uncached() {
        let p = pair();
        let wf = DetuningWaveform::rounded(p.cz_resonance_detuning(), 4.0, 20.0, 0.5);
        let cache = PropagatorCache::new();
        let u1 = p.propagate_with_cache(&wf, &cache);
        let distinct = cache.len();
        // 8 distinct rise samples + 1 plateau value, for 56 samples total.
        assert_eq!(distinct, 9);
        assert_eq!(u1, p.propagate(&wf));
        // A second pass builds nothing new and reproduces the result.
        let u3 = p.propagate_with_cache(&wf, &cache);
        assert_eq!(cache.len(), distinct);
        assert_eq!(u1, u3);
    }

    #[test]
    fn from_current_samples_applies_flux_map() {
        let wf = DetuningWaveform::from_current_samples(0.5, &[0.0, 0.6, 1.2], |i| {
            -1.82 * (i / 1.2) * (i / 1.2)
        });
        assert!((wf.deltas[0]).abs() < 1e-12);
        assert!((wf.deltas[2] + 1.82).abs() < 1e-9);
    }

    #[test]
    fn computational_block_shape_and_content() {
        let p = pair();
        let u = CMat::identity(9);
        let m = p.computational_block(&u);
        assert_eq!(m.rows(), 4);
        assert!(m.approx_eq(&CMat::identity(4), 1e-14));
    }

    #[test]
    fn near_cz_after_ideal_pulse_with_phase_freedom() {
        // With optimal local Z rotations, an ideal resonant pulse should
        // approximate CZ well (the Fig 7(a) zero-drift point, before the
        // 1q-gate optimization refines it further).
        let p = pair();
        let delta = p.cz_resonance_detuning();
        let t_full = 1.0 / (2.0 * 2f64.sqrt() * p.coupling_ghz);
        let m = p.uqq(&DetuningWaveform::square(delta, t_full, 0.02));
        // Optimize the four local-Z phases coarsely.
        let mut best = f64::INFINITY;
        let n = 24;
        for a in 0..n {
            for b in 0..n {
                let pa = a as f64 / n as f64 * 2.0 * PI;
                let pb = b as f64 / n as f64 * 2.0 * PI;
                let zz = CMat::diag(&[C64::ONE, C64::cis(pb), C64::cis(pa), C64::cis(pa + pb)]);
                let err = average_gate_error(&zz.matmul(&m), &gates::cz());
                best = best.min(err);
            }
        }
        assert!(best < 0.02, "CZ error too high: {best}");
    }
}
