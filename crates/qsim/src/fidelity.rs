//! Gate and state fidelity measures with leakage accounting.
//!
//! DigiQ (§V) reports gate errors as `ε = 1 − F̄` where `F̄` is the *average
//! gate fidelity* of the evolution projected onto the computational
//! subspace. Projection makes the evolution sub-unitary, and the standard
//! formula (Nielsen [44], extended to non-unitary maps by Ghosh/Pedersen
//! [45]) then automatically counts leakage out of the subspace as error:
//!
//! ```text
//! F̄(M, V) = [ Tr(M†M) + |Tr(V†M)|² ] / (d(d+1))
//! ```
//!
//! with `M` the projected evolution, `V` the `d × d` unitary target.
//!
//! # Examples
//!
//! ```
//! use qsim::gates;
//! use qsim::fidelity::average_gate_fidelity;
//!
//! let f = average_gate_fidelity(&gates::x(), &gates::x());
//! assert!((f - 1.0).abs() < 1e-12);
//! ```

use crate::complex::C64;
use crate::matrix::CMat;

/// `Tr(M†M)` as a direct O(d²) column sum — no dagger/product matrices.
///
/// Accumulation order matches the historical `m.dagger().matmul(m).trace()`
/// chain exactly (diagonal index ascending, inner index ascending, real
/// part at the end), so results are bitwise-identical to the allocating
/// path — the golden files depend on that.
fn trace_mdm(m: &CMat) -> f64 {
    let n = m.rows();
    let d = m.as_slice();
    let mut tr = 0.0;
    for i in 0..n {
        let mut di = 0.0;
        for k in 0..n {
            let a = d[k * n + i];
            di += a.re * a.re + a.im * a.im;
        }
        tr += di;
    }
    tr
}

/// `Tr(V†M)` as a direct O(d²) column sum (same ordering contract as
/// [`trace_mdm`]).
fn trace_vdm(v: &CMat, m: &CMat) -> C64 {
    let n = m.rows();
    let (vd, md) = (v.as_slice(), m.as_slice());
    let mut tr = C64::ZERO;
    for i in 0..n {
        let mut di = C64::ZERO;
        for k in 0..n {
            let a = vd[k * n + i]; // V†[i][k] = conj(V[k][i])
            let b = md[k * n + i];
            di.re += a.re * b.re + a.im * b.im;
            di.im += a.re * b.im - a.im * b.re;
        }
        tr += di;
    }
    tr
}

/// Average gate fidelity of (possibly sub-unitary) evolution `m` against
/// unitary target `v`, both `d × d`.
///
/// Returns a value in `[0, 1]`; equals 1 iff `m = e^{iφ}·v`.
///
/// # Panics
///
/// Panics if shapes differ or are not square.
pub fn average_gate_fidelity(m: &CMat, v: &CMat) -> f64 {
    assert!(m.is_square() && v.is_square());
    assert_eq!(m.rows(), v.rows(), "fidelity: dimension mismatch");
    let d = m.rows() as f64;
    let mdm = trace_mdm(m);
    let ov = trace_vdm(v, m).abs2();
    ((mdm + ov) / (d * (d + 1.0))).clamp(0.0, 1.0)
}

/// Average gate **error** `ε = 1 − F̄`, the quantity plotted throughout the
/// paper's evaluation (Figs 7 and 10).
pub fn average_gate_error(m: &CMat, v: &CMat) -> f64 {
    1.0 - average_gate_fidelity(m, v)
}

/// Leakage of a projected evolution: `1 − Tr(M†M)/d`, the average
/// population escaping the computational subspace.
///
/// Zero for exactly unitary `M`; positive once amplitude leaks to higher
/// levels.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn leakage(m: &CMat) -> f64 {
    assert!(m.is_square());
    let d = m.rows() as f64;
    (1.0 - trace_mdm(m) / d).max(0.0)
}

/// State overlap fidelity `|⟨a|b⟩|²` for pure states.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn state_fidelity(a: &[C64], b: &[C64]) -> f64 {
    crate::matrix::inner(a, b).abs2()
}

/// Entanglement (process) fidelity `|Tr(V†M)|²/d²` — related to the average
/// gate fidelity by `F̄ = (d·F_pro + Tr(M†M)/d) / (d+1)`.
///
/// # Panics
///
/// Panics if shapes differ or are not square.
pub fn process_fidelity(m: &CMat, v: &CMat) -> f64 {
    assert!(m.is_square() && v.is_square());
    assert_eq!(m.rows(), v.rows());
    let d = m.rows() as f64;
    (trace_vdm(v, m).abs2() / (d * d)).clamp(0.0, 1.0)
}

/// Combines per-gate errors into a circuit error estimate by fidelity
/// product: `ε_circuit = 1 − Π(1 − εᵢ)` (paper §VI-B2).
pub fn circuit_error<I: IntoIterator<Item = f64>>(gate_errors: I) -> f64 {
    let mut f = 1.0f64;
    for e in gate_errors {
        f *= (1.0 - e).clamp(0.0, 1.0);
    }
    1.0 - f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn perfect_gate_has_unit_fidelity() {
        for g in [gates::x(), gates::h(), gates::t(), gates::cz()] {
            assert!((average_gate_fidelity(&g, &g) - 1.0).abs() < 1e-12);
            assert!(average_gate_error(&g, &g) < 1e-12);
        }
    }

    #[test]
    fn global_phase_is_ignored() {
        let g = gates::h();
        let phased = g.scale(C64::cis(0.917));
        assert!((average_gate_fidelity(&phased, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_gates_have_known_fidelity() {
        // F̄(X, Z) for d=2: Tr(M†M)=2, |Tr(Z†X)|²=0 → F̄ = 2/6 = 1/3.
        let f = average_gate_fidelity(&gates::x(), &gates::z());
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn small_rotation_error_is_quadratic() {
        // ε(Rz(δ) vs I) = (2/3)·sin²(δ/2) ≈ δ²/6.
        for delta in [1e-2, 1e-3, 1e-4] {
            let e = average_gate_error(&gates::rz(delta), &gates::id2());
            let expect = (2.0 / 3.0) * (delta / 2.0).sin().powi(2);
            assert!((e - expect).abs() < 1e-12, "delta={delta}");
        }
    }

    #[test]
    fn leakage_of_unitary_is_zero() {
        assert!(leakage(&gates::h()) < 1e-12);
        assert!(leakage(&gates::cz()) < 1e-12);
    }

    #[test]
    fn leakage_of_damped_evolution() {
        // M = diag(1, 0.8): Tr(M†M) = 1.64, leakage = 1 − 0.82 = 0.18.
        let m = CMat::diag(&[C64::ONE, C64::real(0.8)]);
        assert!((leakage(&m) - 0.18).abs() < 1e-12);
        // And fidelity against identity drops accordingly.
        let f = average_gate_fidelity(&m, &gates::id2());
        assert!(f < 1.0);
        assert!(f > 0.8);
    }

    #[test]
    fn state_fidelity_basics() {
        let zero = vec![C64::ONE, C64::ZERO];
        let one = vec![C64::ZERO, C64::ONE];
        let plus = vec![C64::real(1.0 / 2f64.sqrt()); 2];
        assert!((state_fidelity(&zero, &zero) - 1.0).abs() < 1e-12);
        assert!(state_fidelity(&zero, &one) < 1e-12);
        assert!((state_fidelity(&zero, &plus) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn process_vs_average_fidelity_relation() {
        let m = gates::rz(0.3);
        let v = gates::id2();
        let d = 2.0;
        let fpro = process_fidelity(&m, &v);
        let favg = average_gate_fidelity(&m, &v);
        let expect = (d * d * fpro / d + 1.0) / (d + 1.0);
        assert!((favg - expect).abs() < 1e-12);
    }

    #[test]
    fn direct_trace_sums_match_allocating_chain_bitwise() {
        // The golden files pin decomposition scores that flow through these
        // traces, so the O(d²) sums must match the dagger/matmul/trace
        // chain to the last bit, not just approximately.
        let m = CMat::from_fn(6, 6, |i, j| {
            C64::new(
                ((i * 7 + j) as f64 * 0.37).sin(),
                ((i + 3 * j) as f64 * 0.23).cos(),
            )
        });
        let v = CMat::from_fn(6, 6, |i, j| {
            C64::new(
                ((i * 5 + j) as f64 * 0.19).cos(),
                ((2 * i + j) as f64 * 0.41).sin(),
            )
        });
        let mdm_naive = m.dagger().matmul(&m).trace().re;
        assert_eq!(trace_mdm(&m).to_bits(), mdm_naive.to_bits());
        let ov_naive = v.dagger().matmul(&m).trace();
        let ov = trace_vdm(&v, &m);
        assert_eq!(ov.re.to_bits(), ov_naive.re.to_bits());
        assert_eq!(ov.im.to_bits(), ov_naive.im.to_bits());
    }

    #[test]
    fn circuit_error_composition() {
        assert!(circuit_error([0.0, 0.0]) < 1e-15);
        let e = circuit_error([0.1, 0.1]);
        assert!((e - 0.19).abs() < 1e-12);
        // Small-error regime ≈ sum.
        let e2 = circuit_error(vec![1e-4; 10]);
        assert!((e2 - 1e-3).abs() < 1e-5);
    }
}
