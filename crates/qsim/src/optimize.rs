//! Derivative-free optimizers used by the calibration layer.
//!
//! Three tools cover all the numerical search in the paper:
//!
//! * [`nelder_mead`] — local simplex descent over continuous parameters
//!   (interleaved single-qubit gates in the CZ echo sequences, §V-B);
//! * [`differential_evolution`] — global search with box bounds (pulse
//!   calibration);
//! * [`ga_bitstring`] — a genetic algorithm over fixed-length bitstrings
//!   (SFQ bitstream discovery, the approach of refs [13] and [35]).
//!
//! All optimizers are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use qsim::optimize::nelder_mead;
//!
//! let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
//! let r = nelder_mead(sphere, &[1.0, -2.0], 0.5, 500, 1e-12);
//! assert!(r.value < 1e-8);
//! ```

use crate::rng::StdRng;

/// Result of a continuous optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct OptResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Minimizes `f` with the Nelder–Mead simplex method starting at `x0`.
///
/// `step` sets the initial simplex size, `max_iter` bounds the number of
/// iterations, and the search stops early when the simplex's value spread
/// falls below `tol`.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iter: usize,
    tol: f64,
) -> OptResult {
    assert!(
        !x0.is_empty(),
        "nelder_mead requires at least one parameter"
    );
    let n = x0.len();
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evals = 0usize;

    // Initial simplex: x0 plus n perturbed points.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += step;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex
        .iter()
        .map(|p| {
            evals += 1;
            f(p)
        })
        .collect();

    for _ in 0..max_iter {
        // Sort simplex by value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
        let simplex_sorted: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let values_sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        simplex = simplex_sorted;
        values = values_sorted;

        if (values[n] - values[0]).abs() < tol {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for p in simplex.iter().take(n) {
            for (c, v) in centroid.iter_mut().zip(p.iter()) {
                *c += v / n as f64;
            }
        }

        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(worst.iter())
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        evals += 1;
        let fr = f(&reflect);

        if fr < values[0] {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(worst.iter())
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            evals += 1;
            let fe = f(&expand);
            if fe < fr {
                simplex[n] = expand;
                values[n] = fe;
            } else {
                simplex[n] = reflect;
                values[n] = fr;
            }
        } else if fr < values[n - 1] {
            simplex[n] = reflect;
            values[n] = fr;
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(worst.iter())
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            evals += 1;
            let fc = f(&contract);
            if fc < values[n] {
                simplex[n] = contract;
                values[n] = fc;
            } else {
                // Shrink towards the best point.
                let best = simplex[0].clone();
                for i in 1..=n {
                    for j in 0..n {
                        simplex[i][j] = best[j] + sigma * (simplex[i][j] - best[j]);
                    }
                    evals += 1;
                    values[i] = f(&simplex[i]);
                }
            }
        }
    }

    let mut best = 0;
    for i in 1..=n {
        if values[i] < values[best] {
            best = i;
        }
    }
    OptResult {
        x: simplex[best].clone(),
        value: values[best],
        evals,
    }
}

/// Runs [`nelder_mead`] from several random starting points inside box
/// `bounds` and keeps the best result. A pragmatic global strategy for the
/// low-dimensional, multi-modal landscapes of gate calibration.
///
/// # Panics
///
/// Panics if `bounds` is empty or any bound is inverted.
pub fn multistart_nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &[(f64, f64)],
    starts: usize,
    max_iter: usize,
    seed: u64,
) -> OptResult {
    assert!(!bounds.is_empty());
    for &(lo, hi) in bounds {
        assert!(lo <= hi, "inverted bound");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<OptResult> = None;
    let mut total_evals = 0usize;
    for s in 0..starts.max(1) {
        let x0: Vec<f64> = if s == 0 {
            bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect()
        } else {
            bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                .collect()
        };
        let span = bounds
            .iter()
            .map(|&(lo, hi)| hi - lo)
            .fold(f64::INFINITY, f64::min)
            .max(1e-6);
        let r = nelder_mead(&mut f, &x0, span * 0.25, max_iter, 1e-14);
        total_evals += r.evals;
        if best.as_ref().map_or(true, |b| r.value < b.value) {
            best = Some(r);
        }
    }
    let mut out = best.expect("at least one start");
    out.evals = total_evals;
    out
}

/// Minimizes `f` over a box with differential evolution (rand/1/bin).
///
/// # Panics
///
/// Panics if `bounds` is empty, any bound is inverted, or `pop < 4`.
pub fn differential_evolution(
    mut f: impl FnMut(&[f64]) -> f64,
    bounds: &[(f64, f64)],
    pop: usize,
    generations: usize,
    seed: u64,
) -> OptResult {
    assert!(!bounds.is_empty());
    assert!(pop >= 4, "differential evolution needs population >= 4");
    for &(lo, hi) in bounds {
        assert!(lo <= hi, "inverted bound");
    }
    let n = bounds.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let (cr, fw) = (0.9, 0.7);
    let mut evals = 0usize;

    let mut population: Vec<Vec<f64>> = (0..pop)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                .collect()
        })
        .collect();
    let mut values: Vec<f64> = population
        .iter()
        .map(|p| {
            evals += 1;
            f(p)
        })
        .collect();

    for _ in 0..generations {
        for i in 0..pop {
            // Pick three distinct partners.
            let (mut a, mut b, mut c);
            loop {
                a = rng.gen_range(0..pop);
                b = rng.gen_range(0..pop);
                c = rng.gen_range(0..pop);
                if a != b && b != c && a != c && a != i && b != i && c != i {
                    break;
                }
            }
            let jrand = rng.gen_range(0..n);
            let mut trial = population[i].clone();
            for j in 0..n {
                if rng.gen::<f64>() < cr || j == jrand {
                    let v = population[a][j] + fw * (population[b][j] - population[c][j]);
                    trial[j] = v.clamp(bounds[j].0, bounds[j].1);
                }
            }
            evals += 1;
            let fv = f(&trial);
            if fv <= values[i] {
                population[i] = trial;
                values[i] = fv;
            }
        }
    }

    let best = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    OptResult {
        x: population[best].clone(),
        value: values[best],
        evals,
    }
}

/// Result of a bitstring genetic search.
#[derive(Debug, Clone, PartialEq)]
pub struct GaResult {
    /// Best bitstring found.
    pub bits: Vec<bool>,
    /// Fitness of the best bitstring (higher is better).
    pub fitness: f64,
    /// Generations actually run.
    pub generations: usize,
}

/// Configuration for [`ga_bitstring`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size (≥ 4).
    pub population: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Number of elite individuals copied unchanged.
    pub elitism: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 48,
            generations: 120,
            mutation_rate: 0.01,
            elitism: 4,
            tournament: 3,
            seed: 0xD161_0001,
        }
    }
}

/// Maximizes `fitness` over `{0,1}^len` with a seeded genetic algorithm
/// (tournament selection, uniform crossover, bit-flip mutation, elitism).
///
/// `seeds` provides optional initial individuals (e.g. the resonant comb of
/// [`crate::pulse::SfqPulseSim::resonant_comb`]); the rest of the population
/// is random. This mirrors the genetic bitstream search of the paper's
/// ref [13].
///
/// # Panics
///
/// Panics if `len == 0`, `cfg.population < 4`, or any seed has the wrong
/// length.
pub fn ga_bitstring(
    mut fitness: impl FnMut(&[bool]) -> f64,
    len: usize,
    seeds: &[Vec<bool>],
    cfg: GaConfig,
) -> GaResult {
    assert!(len > 0, "bitstring length must be positive");
    assert!(cfg.population >= 4, "population too small");
    for s in seeds {
        assert_eq!(s.len(), len, "seed length mismatch");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut population: Vec<Vec<bool>> = Vec::with_capacity(cfg.population);
    for s in seeds.iter().take(cfg.population) {
        population.push(s.clone());
    }
    while population.len() < cfg.population {
        // Mutated copies of seeds (if any) plus pure random fill.
        if !seeds.is_empty() && population.len() < cfg.population / 2 {
            let base = &seeds[population.len() % seeds.len()];
            let mut ind = base.clone();
            for b in ind.iter_mut() {
                if rng.gen::<f64>() < 0.05 {
                    *b = !*b;
                }
            }
            population.push(ind);
        } else {
            population.push((0..len).map(|_| rng.gen::<bool>()).collect());
        }
    }
    let mut scores: Vec<f64> = population.iter().map(|p| fitness(p)).collect();

    let mut best_idx = 0;
    for gen in 0..cfg.generations {
        // Track best.
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best_idx] {
                best_idx = i;
            }
        }
        if gen + 1 == cfg.generations {
            break;
        }

        let mut order: Vec<usize> = (0..cfg.population).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());

        let mut next: Vec<Vec<bool>> = order
            .iter()
            .take(cfg.elitism)
            .map(|&i| population[i].clone())
            .collect();

        let tournament_pick = |rng: &mut StdRng, scores: &[f64]| -> usize {
            let mut best = rng.gen_range(0..cfg.population);
            for _ in 1..cfg.tournament {
                let c = rng.gen_range(0..cfg.population);
                if scores[c] > scores[best] {
                    best = c;
                }
            }
            best
        };

        while next.len() < cfg.population {
            let p1 = tournament_pick(&mut rng, &scores);
            let p2 = tournament_pick(&mut rng, &scores);
            let mut child: Vec<bool> = (0..len)
                .map(|j| {
                    if rng.gen::<bool>() {
                        population[p1][j]
                    } else {
                        population[p2][j]
                    }
                })
                .collect();
            for b in child.iter_mut() {
                if rng.gen::<f64>() < cfg.mutation_rate {
                    *b = !*b;
                }
            }
            next.push(child);
        }
        population = next;
        scores = population.iter().map(|p| fitness(p)).collect();
        best_idx = 0;
    }

    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best_idx] {
            best_idx = i;
        }
    }
    GaResult {
        bits: population[best_idx].clone(),
        fitness: scores[best_idx],
        generations: cfg.generations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_minimizes_sphere() {
        let r = nelder_mead(
            |x| x.iter().map(|v| v * v).sum(),
            &[2.0, -3.0, 1.0],
            0.5,
            1000,
            1e-14,
        );
        assert!(r.value < 1e-10, "value = {}", r.value);
        for v in &r.x {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn nelder_mead_rosenbrock_2d() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(rosen, &[-1.0, 1.0], 0.5, 5000, 1e-16);
        assert!(r.value < 1e-8, "value = {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Rastrigin-lite in 2D: many local minima, global at origin.
        let f = |x: &[f64]| {
            x.iter()
                .map(|v| v * v - 2.0 * (5.0 * v).cos() + 2.0)
                .sum::<f64>()
        };
        let r = multistart_nelder_mead(f, &[(-3.0, 3.0), (-3.0, 3.0)], 12, 400, 7);
        assert!(r.value < 0.2, "value = {}", r.value);
    }

    #[test]
    fn de_finds_global_minimum_of_shifted_sphere() {
        let f = |x: &[f64]| (x[0] - 0.7).powi(2) + (x[1] + 0.3).powi(2) + 1.5;
        let r = differential_evolution(f, &[(-2.0, 2.0), (-2.0, 2.0)], 20, 80, 42);
        assert!((r.value - 1.5).abs() < 1e-4);
        assert!((r.x[0] - 0.7).abs() < 1e-2);
        assert!((r.x[1] + 0.3).abs() < 1e-2);
    }

    #[test]
    fn de_is_deterministic_given_seed() {
        let f = |x: &[f64]| x[0].powi(2);
        let a = differential_evolution(f, &[(-1.0, 1.0)], 8, 20, 5);
        let b = differential_evolution(f, &[(-1.0, 1.0)], 8, 20, 5);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn ga_maximizes_ones_count() {
        let r = ga_bitstring(
            |b| b.iter().filter(|&&x| x).count() as f64,
            48,
            &[],
            GaConfig {
                generations: 80,
                ..GaConfig::default()
            },
        );
        assert!(r.fitness >= 44.0, "fitness = {}", r.fitness);
    }

    #[test]
    fn ga_uses_seed_individuals() {
        // Fitness rewards matching a secret pattern; seeding with the
        // pattern itself must yield a perfect score immediately.
        let secret: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let sc = secret.clone();
        let r = ga_bitstring(
            move |b| b.iter().zip(sc.iter()).filter(|(x, y)| x == y).count() as f64,
            32,
            &[secret.clone()],
            GaConfig {
                generations: 2,
                ..GaConfig::default()
            },
        );
        assert_eq!(r.fitness, 32.0);
    }

    #[test]
    fn ga_deterministic_given_seed() {
        let f = |b: &[bool]| b.iter().filter(|&&x| x).count() as f64;
        let a = ga_bitstring(f, 16, &[], GaConfig::default());
        let b = ga_bitstring(f, 16, &[], GaConfig::default());
        assert_eq!(a.bits, b.bits);
    }

    #[test]
    #[should_panic]
    fn ga_rejects_bad_seed_length() {
        let _ = ga_bitstring(|_| 0.0, 8, &[vec![true; 4]], GaConfig::default());
    }
}
