//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! Hamiltonians in this crate are small (≤ 36×36) complex Hermitian
//! matrices. The classical Jacobi algorithm — repeatedly zeroing the largest
//! off-diagonal entries with complex plane rotations — converges
//! quadratically, is numerically backward-stable, and needs no external
//! LAPACK, which keeps the workspace dependency-free.
//!
//! Each complex rotation in the `(p, q)` plane first removes the phase of
//! `A[p][q]` (reducing the 2×2 block to a real symmetric one), then applies
//! the standard real Jacobi angle `tan 2θ = 2|A_pq| / (A_pp − A_qq)`.
//!
//! # Examples
//!
//! ```
//! use qsim::matrix::CMat;
//! use qsim::eigen::eigh;
//!
//! let h = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]); // Pauli X
//! let eig = eigh(&h);
//! assert!((eig.values[0] + 1.0).abs() < 1e-12);
//! assert!((eig.values[1] - 1.0).abs() < 1e-12);
//! ```

use crate::complex::C64;
use crate::matrix::CMat;

/// Result of a Hermitian eigendecomposition `A = V · diag(values) · V†`.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose `k`-th *column* is the eigenvector of
    /// `values[k]`.
    pub vectors: CMat,
}

impl EigH {
    /// Reconstructs the original matrix `V · diag(values) · V†`.
    ///
    /// Mostly useful in tests to verify decomposition accuracy.
    pub fn reconstruct(&self) -> CMat {
        self.map_spectrum(C64::real)
    }

    /// Applies `f` to each eigenvalue and reassembles `V · diag(f(λ)) · V†`.
    ///
    /// This is the spectral calculus used for the matrix exponential. The
    /// triple product is fused into one pass — `out[i][j] = Σ_k (V[i][k] ·
    /// f(λ_k)) · conj(V[j][k])` over contiguous rows of `V` — so a single
    /// output matrix is allocated instead of the diag/dagger/two-matmul
    /// chain of the naive formulation.
    pub fn map_spectrum(&self, mut f: impl FnMut(f64) -> C64) -> CMat {
        let n = self.values.len();
        let fv: Vec<C64> = self.values.iter().map(|&v| f(v)).collect();
        let v = self.vectors.as_slice();
        let mut out = CMat::zeros(n, n);
        crate::counters::tally_flops((8 * n * n * n + 6 * n * n) as u64);
        let od = out.as_mut_slice();
        // Hot dimensions go through monomorphized cores (same trick as
        // `CMat::matmul_into`): with `N` a compile-time constant the scaled
        // row lives on the stack and the k loop fully unrolls. Identical
        // operation order, bit-for-bit equal output.
        match n {
            3 => {
                map_spectrum_fixed::<3>(&fv, v, od);
                return out;
            }
            4 => {
                map_spectrum_fixed::<4>(&fv, v, od);
                return out;
            }
            9 => {
                map_spectrum_fixed::<9>(&fv, v, od);
                return out;
            }
            _ => {}
        }
        let mut wrow = vec![C64::ZERO; n];
        for i in 0..n {
            let vrow = &v[i * n..(i + 1) * n];
            for ((w, &vik), &fk) in wrow.iter_mut().zip(vrow.iter()).zip(fv.iter()) {
                w.re = vik.re * fk.re - vik.im * fk.im;
                w.im = vik.re * fk.im + vik.im * fk.re;
            }
            for (j, o) in od[i * n..(i + 1) * n].iter_mut().enumerate() {
                let vjrow = &v[j * n..(j + 1) * n];
                let (mut acc_re, mut acc_im) = (0.0, 0.0);
                for (&w, &vjk) in wrow.iter().zip(vjrow.iter()) {
                    acc_re += w.re * vjk.re + w.im * vjk.im;
                    acc_im += w.im * vjk.re - w.re * vjk.im;
                }
                *o = C64::new(acc_re, acc_im);
            }
        }
        out
    }
}

/// Fixed-size core of [`EigH::map_spectrum`]: `out[i][j] = Σ_k (V[i][k] ·
/// fv[k]) · conj(V[j][k])` with the dimension known at compile time. The
/// loop structure and operation order match the generic path exactly.
#[inline]
fn map_spectrum_fixed<const N: usize>(fv: &[C64], v: &[C64], od: &mut [C64]) {
    let mut wrow = [C64::ZERO; N];
    for i in 0..N {
        let vrow = &v[i * N..(i + 1) * N];
        for ((w, &vik), &fk) in wrow.iter_mut().zip(vrow.iter()).zip(fv.iter()) {
            w.re = vik.re * fk.re - vik.im * fk.im;
            w.im = vik.re * fk.im + vik.im * fk.re;
        }
        for (j, o) in od[i * N..(i + 1) * N].iter_mut().enumerate() {
            let vjrow = &v[j * N..(j + 1) * N];
            let (mut acc_re, mut acc_im) = (0.0, 0.0);
            for (&w, &vjk) in wrow.iter().zip(vjrow.iter()) {
                acc_re += w.re * vjk.re + w.im * vjk.im;
                acc_im += w.im * vjk.re - w.re * vjk.im;
            }
            *o = C64::new(acc_re, acc_im);
        }
    }
}

/// Off-diagonal Frobenius norm squared (the Jacobi convergence quantity).
fn off_diag_sq(a: &CMat) -> f64 {
    let n = a.rows();
    let d = a.as_slice();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += d[i * n + j].abs2();
            }
        }
    }
    s
}

/// Applies the plane rotation to columns `p`, `q` of a row-major `n × n`
/// buffer: `(a_kp, a_kq) ← (a_kp·c + a_kq·j_qp, −a_kp·s + a_kq·j_qq)`.
///
/// The `c`/`s` factors are real (J_pp = c, J_pq = −s), so the update is
/// hoisted to explicit f64-pair arithmetic with no complex temporaries.
#[inline]
fn rotate_columns(
    data: &mut [C64],
    n: usize,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    jqp: C64,
    jqq: C64,
) {
    for row in data.chunks_exact_mut(n) {
        let (akp, akq) = (row[p], row[q]);
        row[p] = C64::new(
            akp.re * c + (akq.re * jqp.re - akq.im * jqp.im),
            akp.im * c + (akq.re * jqp.im + akq.im * jqp.re),
        );
        row[q] = C64::new(
            -akp.re * s + (akq.re * jqq.re - akq.im * jqq.im),
            -akp.im * s + (akq.re * jqq.im + akq.im * jqq.re),
        );
    }
}

/// Applies the conjugate rotation to rows `p < q`: `A ← J†·A`. The two rows
/// are split out of the buffer once (`split_at_mut`) so the inner loop runs
/// over a pair of contiguous slices.
#[inline]
fn rotate_rows(data: &mut [C64], n: usize, p: usize, q: usize, c: f64, s: f64, jqp: C64, jqq: C64) {
    debug_assert!(p < q);
    let (head, tail) = data.split_at_mut(q * n);
    let prow = &mut head[p * n..(p + 1) * n];
    let qrow = &mut tail[..n];
    let (cqp, cqq) = (jqp.conj(), jqq.conj());
    for (ap, aq) in prow.iter_mut().zip(qrow.iter_mut()) {
        let (apk, aqk) = (*ap, *aq);
        *ap = C64::new(
            apk.re * c + (aqk.re * cqp.re - aqk.im * cqp.im),
            apk.im * c + (aqk.re * cqp.im + aqk.im * cqp.re),
        );
        *aq = C64::new(
            -apk.re * s + (aqk.re * cqq.re - aqk.im * cqq.im),
            -apk.im * s + (aqk.re * cqq.im + aqk.im * cqq.re),
        );
    }
}

/// Computes the eigendecomposition of a complex Hermitian matrix.
///
/// The input is symmetrized as `(A + A†)/2` first, so tiny Hermiticity
/// violations from accumulated arithmetic are tolerated.
///
/// # Panics
///
/// Panics if `a` is not square, or if the iteration fails to converge
/// (which for Hermitian input does not happen in practice; the limit is a
/// defensive bound of 100 sweeps).
pub fn eigh(a: &CMat) -> EigH {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    // Symmetrize defensively.
    let mut m = a.dagger();
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = (m[(i, j)] + a[(i, j)]) * 0.5;
        }
    }
    let mut v = CMat::identity(n);

    let scale = m.frobenius_norm().max(1.0);
    let tol = (scale * 1e-15).powi(2) * (n * n) as f64;
    let thresh = scale * 1e-16;

    let md = m.as_mut_slice();
    let vd = v.as_mut_slice();
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    off += md[i * n + j].abs2();
                }
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let beta = md[p * n + q];
                let b = beta.abs();
                if b <= thresh {
                    continue;
                }
                let phi = beta.arg();
                let alpha = md[p * n + p].re;
                let gamma = md[q * n + q].re;
                // Real Jacobi angle on the de-phased block: solves
                // b·(c²−s²) + (γ−α)·c·s = 0, i.e. tan 2θ = 2b/(α−γ).
                let zeta = (alpha - gamma) / (2.0 * b);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // J acts on the (p,q) plane:
                //   J_pp = c            J_pq = −s
                //   J_qp = s·e^{−iφ}    J_qq = c·e^{−iφ}
                let e_m = C64::cis(-phi);
                let jqp = e_m * s;
                let jqq = e_m * c;

                crate::counters::tally_flops(48 * n as u64);
                // A ← A·J (columns p, q), A ← J†·A (rows p, q), V ← V·J.
                rotate_columns(md, n, p, q, c, s, jqp, jqq);
                rotate_rows(md, n, p, q, c, s, jqp, jqq);
                rotate_columns(vd, n, p, q, c, s, jqp, jqq);
            }
        }
    }

    // NaN input never converges (every |A_pq| comparison is false); the
    // non-finite guard keeps debug builds panic-free so callers can sort
    // the NaN spectrum out themselves.
    debug_assert!(
        !off_diag_sq(&m).is_finite() || off_diag_sq(&m) <= tol * 100.0,
        "jacobi did not converge: off = {}",
        off_diag_sq(&m)
    );

    // Extract and sort ascending, permuting columns of V accordingly.
    // `total_cmp` keeps a NaN eigenvalue (pathological input) from
    // panicking the sort: NaNs order after every finite value.
    let mut order: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| vals[i].total_cmp(&vals[j]));

    let sorted_vals: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
    let sorted_vecs = CMat::from_fn(n, n, |i, j| v[(i, order[j])]);

    EigH {
        values: sorted_vals,
        vectors: sorted_vecs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> CMat {
        // Tiny xorshift so the test has no external deps.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let g = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
        let mut h = g.dagger();
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] = (h[(i, j)] + g[(i, j)]) * 0.5;
            }
        }
        h
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = CMat::diag(&[C64::real(3.0), C64::real(-1.0), C64::real(2.0)]);
        let e = eigh(&d);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 2.0).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = CMat::from_slice(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO]);
        let e = eigh(&y);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-12));
    }

    #[test]
    fn reconstruction_of_random_hermitians() {
        for (n, seed) in [(2usize, 7u64), (4, 42), (6, 3), (9, 99), (12, 1234)] {
            let h = random_hermitian(n, seed);
            let e = eigh(&h);
            let r = e.reconstruct();
            assert!(
                r.approx_eq(&h, 1e-10),
                "reconstruction failed for n={n}: err={}",
                r.max_abs_diff(&h)
            );
            assert!(e.vectors.is_unitary(1e-10));
            // Eigenvalues ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigenvector_equation_holds() {
        let h = random_hermitian(5, 17);
        let e = eigh(&h);
        for k in 0..5 {
            let vk: Vec<C64> = (0..5).map(|i| e.vectors[(i, k)]).collect();
            let hv = h.apply(&vk);
            for i in 0..5 {
                let expect = vk[i] * e.values[k];
                assert!((hv[i] - expect).abs() < 1e-9, "H v != λ v at ({i},{k})");
            }
        }
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let h = random_hermitian(7, 5);
        let e = eigh(&h);
        let sum: f64 = e.values.iter().sum();
        assert!((h.trace().re - sum).abs() < 1e-10);
    }

    #[test]
    fn map_spectrum_identity_function() {
        let h = random_hermitian(4, 8);
        let e = eigh(&h);
        let again = e.map_spectrum(C64::real);
        assert!(again.approx_eq(&h, 1e-10));
    }

    #[test]
    fn nan_input_does_not_panic() {
        // A pathological (non-finite) matrix must come back with a NaN
        // spectrum, not panic in the eigenvalue sort or the convergence
        // check — `total_cmp` orders NaN after every finite value.
        let mut h = CMat::identity(3);
        h[(0, 1)] = C64::new(f64::NAN, 0.0);
        h[(1, 0)] = C64::new(f64::NAN, 0.0);
        let e = eigh(&h);
        assert_eq!(e.values.len(), 3);
        assert!(e.values.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn degenerate_spectrum_handled() {
        // 2·I has a fully degenerate spectrum.
        let h = CMat::identity(4).scale(C64::real(2.0));
        let e = eigh(&h);
        for v in &e.values {
            assert!((v - 2.0).abs() < 1e-14);
        }
        assert!(e.vectors.is_unitary(1e-12));
    }
}
