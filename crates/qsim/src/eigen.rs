//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! Hamiltonians in this crate are small (≤ 36×36) complex Hermitian
//! matrices. The classical Jacobi algorithm — repeatedly zeroing the largest
//! off-diagonal entries with complex plane rotations — converges
//! quadratically, is numerically backward-stable, and needs no external
//! LAPACK, which keeps the workspace dependency-free.
//!
//! Each complex rotation in the `(p, q)` plane first removes the phase of
//! `A[p][q]` (reducing the 2×2 block to a real symmetric one), then applies
//! the standard real Jacobi angle `tan 2θ = 2|A_pq| / (A_pp − A_qq)`.
//!
//! The hot path is allocation-free after warmup: [`eigh_into`] runs the
//! whole iteration inside a caller-owned [`EighWorkspace`] (the
//! module-level [`eigh`] keeps one per thread), and the 9×9 shape that
//! dominates `expm` goes through a monomorphized (literal-dimension)
//! core. Scanning costs are cut without touching the trajectory: a
//! conservative `|β|²` screen skips the libm `hypot` on
//! already-converged pairs, a branch-free row pre-check skips whole
//! screened rows, per-row off-diagonal tallies let sweeps skip the
//! O(n²) convergence rescan while provably far from converged, and
//! still-identity rows of the eigenvector accumulator skip their
//! (provably bit-identity) update. The rotation itself keeps the
//! reference two-pass shape — uniform full-length column then row
//! passes, measured faster than a "fused" single visit built from
//! runtime-bounded segment loops — with the eigenvector column update
//! interleaved into the first pass. Every output f64 is produced by the
//! same expression over the same inputs as the naive formulation, so
//! results are bit-for-bit identical (pinned by
//! `tests/eigh_differential.rs`).
//!
//! # Examples
//!
//! ```
//! use qsim::matrix::CMat;
//! use qsim::eigen::eigh;
//!
//! let h = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]); // Pauli X
//! let eig = eigh(&h);
//! assert!((eig.values[0] + 1.0).abs() < 1e-12);
//! assert!((eig.values[1] - 1.0).abs() < 1e-12);
//! ```

use crate::complex::C64;
use crate::matrix::CMat;
use std::cell::Cell;

/// Result of a Hermitian eigendecomposition `A = V · diag(values) · V†`.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose `k`-th *column* is the eigenvector of
    /// `values[k]`.
    pub vectors: CMat,
}

impl EigH {
    /// Reconstructs the original matrix `V · diag(values) · V†`.
    ///
    /// Mostly useful in tests to verify decomposition accuracy.
    pub fn reconstruct(&self) -> CMat {
        self.map_spectrum(C64::real)
    }

    /// Applies `f` to each eigenvalue and reassembles `V · diag(f(λ)) · V†`.
    ///
    /// This is the spectral calculus used for the matrix exponential. The
    /// triple product is fused into one pass — `out[i][j] = Σ_k (V[i][k] ·
    /// f(λ_k)) · conj(V[j][k])` over contiguous rows of `V` — so a single
    /// output matrix is allocated instead of the diag/dagger/two-matmul
    /// chain of the naive formulation.
    pub fn map_spectrum(&self, mut f: impl FnMut(f64) -> C64) -> CMat {
        let n = self.values.len();
        let fv: Vec<C64> = self.values.iter().map(|&v| f(v)).collect();
        let v = self.vectors.as_slice();
        let mut out = CMat::zeros(n, n);
        crate::counters::tally_flops((8 * n * n * n + 6 * n * n) as u64);
        let od = out.as_mut_slice();
        // Hot dimensions go through monomorphized cores (same trick as
        // `CMat::matmul_into`): with `N` a compile-time constant the scaled
        // row lives on the stack and the k loop fully unrolls. Identical
        // operation order, bit-for-bit equal output.
        match n {
            3 => {
                map_spectrum_fixed::<3>(&fv, v, od);
                return out;
            }
            4 => {
                map_spectrum_fixed::<4>(&fv, v, od);
                return out;
            }
            9 => {
                map_spectrum_fixed::<9>(&fv, v, od);
                return out;
            }
            _ => {}
        }
        let mut wrow = vec![C64::ZERO; n];
        for i in 0..n {
            let vrow = &v[i * n..(i + 1) * n];
            for ((w, &vik), &fk) in wrow.iter_mut().zip(vrow.iter()).zip(fv.iter()) {
                w.re = vik.re * fk.re - vik.im * fk.im;
                w.im = vik.re * fk.im + vik.im * fk.re;
            }
            for (j, o) in od[i * n..(i + 1) * n].iter_mut().enumerate() {
                let vjrow = &v[j * n..(j + 1) * n];
                let (mut acc_re, mut acc_im) = (0.0, 0.0);
                for (&w, &vjk) in wrow.iter().zip(vjrow.iter()) {
                    acc_re += w.re * vjk.re + w.im * vjk.im;
                    acc_im += w.im * vjk.re - w.re * vjk.im;
                }
                *o = C64::new(acc_re, acc_im);
            }
        }
        out
    }
}

/// Fixed-size core of [`EigH::map_spectrum`]: `out[i][j] = Σ_k (V[i][k] ·
/// fv[k]) · conj(V[j][k])` with the dimension known at compile time. The
/// loop structure and operation order match the generic path exactly.
#[inline]
fn map_spectrum_fixed<const N: usize>(fv: &[C64], v: &[C64], od: &mut [C64]) {
    let mut wrow = [C64::ZERO; N];
    for i in 0..N {
        let vrow = &v[i * N..(i + 1) * N];
        for ((w, &vik), &fk) in wrow.iter_mut().zip(vrow.iter()).zip(fv.iter()) {
            w.re = vik.re * fk.re - vik.im * fk.im;
            w.im = vik.re * fk.im + vik.im * fk.re;
        }
        for (j, o) in od[i * N..(i + 1) * N].iter_mut().enumerate() {
            let vjrow = &v[j * N..(j + 1) * N];
            let (mut acc_re, mut acc_im) = (0.0, 0.0);
            for (&w, &vjk) in wrow.iter().zip(vjrow.iter()) {
                acc_re += w.re * vjk.re + w.im * vjk.im;
                acc_im += w.im * vjk.re - w.re * vjk.im;
            }
            *o = C64::new(acc_re, acc_im);
        }
    }
}

/// Reusable buffers for [`eigh_into`]: the working copy of the matrix, the
/// accumulated eigenvector rotations, the per-row off-diagonal tallies used
/// for the cheap convergence pre-check, and the sort scratch.
///
/// All buffers are plain `Vec`s (never tallied by `qsim::counters` — the
/// allocation contract counts materialized *outputs* only), fully
/// overwritten at the start of every decomposition, so a workspace that
/// just processed a pathological (NaN) matrix produces bit-identical
/// results on the next clean input (pinned by the non-poisoning test in
/// `tests/eigh_differential.rs`).
#[derive(Debug, Default)]
pub struct EighWorkspace {
    m: Vec<C64>,
    v: Vec<C64>,
    row_off: Vec<f64>,
    order: Vec<usize>,
    vals: Vec<f64>,
}

impl EighWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    // `Cell<Option<Box<…>>>` take/put instead of a `RefCell`: the
    // workspace is stolen for the duration of the call and put back after,
    // which is a plain pointer swap on each side (no borrow-flag
    // bookkeeping). A (currently impossible) re-entrant call would simply
    // see an empty slot and run on a fresh workspace.
    static EIGH_WS: Cell<Option<Box<EighWorkspace>>> = const { Cell::new(None) };
}

/// Off-diagonal Frobenius norm squared of a row-major `n × n` buffer (the
/// Jacobi convergence quantity).
#[cfg(debug_assertions)]
fn off_diag_sq(d: &[C64], n: usize) -> f64 {
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += d[i * n + j].abs2();
            }
        }
    }
    s
}

/// Applies the plane rotation to columns `p`, `q`:
/// `(a_kp, a_kq) ← (a_kp·c + a_kq·j_qp, −a_kp·s + a_kq·j_qq)` — the
/// column halves over the working matrix (`A·J`) and the eigenvector
/// accumulator (`V·J`) in one zipped loop: the two updates touch
/// disjoint buffers, so interleaving them is a pure
/// instruction-scheduling win (two independent dependency chains per
/// iteration) with element-wise identical arithmetic.
///
/// `vskip`: `V` starts as the identity, so rows outside every rotation
/// plane seen so far hold exact `+0.0` bits in columns `p` and `q`. For
/// such a row each output component combines signed zeros: with `c > 0`
/// the `a_kp` components' first addend `(+0)·c` is `+0`, and
/// `+0 + (±0) = +0` in round-to-nearest, so they reproduce `+0`
/// bit-exactly. The `a_kq` components start from `(−0)·s`, whose result
/// can be `−0` — [`jacobi_sweep`] sets `vskip` only after checking the
/// coefficients are finite, `c > 0`, and the one sign pattern that
/// yields a `−0` output (`s` non-negative with `j_qq.re`
/// negative-signed) is absent. Under `vskip` the update is therefore
/// the bit-level identity on all-`+0` rows (`to_bits` check: a `−0` or
/// NaN entry fails it and takes the computed path), and the skip is
/// exact — pinned, like everything here, by
/// `tests/eigh_differential.rs`.
#[inline(always)]
fn rotate_columns2(
    md: &mut [C64],
    vd: &mut [C64],
    n: usize,
    p: usize,
    q: usize,
    r: RotCoeffs,
    vskip: bool,
) {
    for (row, vrow) in md.chunks_exact_mut(n).zip(vd.chunks_exact_mut(n)) {
        let (nkp, nkq) = col_pair(row[p], row[q], r);
        row[p] = nkp;
        row[q] = nkq;
        let (a, b) = (vrow[p], vrow[q]);
        if vskip && (a.re.to_bits() | a.im.to_bits() | b.re.to_bits() | b.im.to_bits()) == 0 {
            continue;
        }
        let (vkp, vkq) = col_pair(a, b, r);
        vrow[p] = vkp;
        vrow[q] = vkq;
    }
}

/// Row half of the similarity update: `(a_pk, a_qk) ← J†-side` rotation
/// over *all* columns `k` of rows `p` and `q` (conjugated coefficients),
/// reading the column-updated values — the exact second pass of the
/// reference two-pass formulation, as two contiguous zipped row slices.
///
/// The same loop rebuilds `row_off[p]` / `row_off[q]` (the per-row
/// off-diagonal tallies) from the freshly written values: the full-row
/// sums minus the diagonal entry. Spectator tallies are carried unchanged
/// across rotations, because the column half is a unitary rotation of
/// each `(A_kp, A_kq)` pair — `|A_kp|² + |A_kq|²` is conserved in exact
/// arithmetic, so a stored tally only drifts by rounding (absorbed by the
/// `guard` margin in [`eigh_into`]). The tallies are estimates only: not
/// flop-tallied, summed in whatever order is fastest, and never feeding a
/// pinned output.
#[inline(always)]
fn rotate_rows(data: &mut [C64], n: usize, p: usize, q: usize, rc: RotCoeffs, row_off: &mut [f64]) {
    let (head, tail) = data.split_at_mut(q * n);
    let prow = &mut head[p * n..p * n + n];
    let qrow = &mut tail[..n];
    let (mut sp, mut sq) = (0.0, 0.0);
    for (ap, aq) in prow.iter_mut().zip(qrow.iter_mut()) {
        let (npk, nqk) = col_pair(*ap, *aq, rc);
        *ap = npk;
        *aq = nqk;
        sp += npk.abs2();
        sq += nqk.abs2();
    }
    row_off[p] = sp - prow[p].abs2();
    row_off[q] = sq - qrow[q].abs2();
}

/// Coefficients of one `(p,q)` plane rotation (the row half passes the
/// conjugated `j_qp`/`j_qq`).
#[derive(Clone, Copy)]
struct RotCoeffs {
    c: f64,
    s: f64,
    jqp: C64,
    jqq: C64,
}

impl RotCoeffs {
    #[inline(always)]
    fn new(c: f64, s: f64, jqp: C64, jqq: C64) -> Self {
        Self { c, s, jqp, jqq }
    }
}

/// Applies the `(p,q)`-plane rotation to one `(a_kp, a_kq)` element pair:
/// the shared kernel of [`rotate_columns2`] and [`rotate_rows`].
///
/// The component expressions are kept *verbatim* in the reference shape —
/// no `x − y` → `x + (−y)` style rewrites. Such rewrites are
/// value-preserving for every number, but a negation flips the sign bit
/// of a NaN operand, so they change which NaN payload bits propagate;
/// keeping the literal shape makes even the NaN spectrum of pathological
/// inputs match the naive formulation bit-for-bit in every build mode.
#[inline(always)]
fn col_pair(akp: C64, akq: C64, r: RotCoeffs) -> (C64, C64) {
    (
        C64::new(
            akp.re * r.c + (akq.re * r.jqp.re - akq.im * r.jqp.im),
            akp.im * r.c + (akq.re * r.jqp.im + akq.im * r.jqp.re),
        ),
        C64::new(
            -akp.re * r.s + (akq.re * r.jqq.re - akq.im * r.jqq.im),
            -akp.im * r.s + (akq.re * r.jqq.im + akq.im * r.jqq.re),
        ),
    )
}

/// One cyclic sweep over all `(p, q)` pairs; returns the number of
/// rotations applied. `#[inline(always)]` so [`eigh_into`]'s literal-`n`
/// call sites const-propagate the dimension into the rotation kernels
/// (fully unrolled inner loops for the hot 9×9 shape) while keeping a
/// single source of truth for the operation order.
#[inline(always)]
fn jacobi_sweep(md: &mut [C64], vd: &mut [C64], row_off: &mut [f64], n: usize, thresh: f64) -> u32 {
    // Conservative hypot screen: `|β|²` computed in f64 has relative
    // error ≤ ~3ε, and `hypot` another ulp, so `β.abs2() ≤ thresh²·(1 −
    // 1e-10)` *proves* `β.abs() ≤ thresh` — the pair skips without paying
    // the libm `hypot` call, the dominant cost of scanning a nearly
    // converged matrix. Pairs above the screen (and NaN entries: the
    // comparison fails) fall through to the exact test, so the
    // rotate/skip decision — and every `b` actually used — is bitwise
    // identical to the naive reference.
    let screen = thresh * thresh * (1.0 - 1e-10);
    let mut rotations = 0u32;
    for p in 0..n {
        // Row pre-check: the pairs of row `p` read the contiguous tail
        // `md[p·n+p+1 .. p·n+n]`, and if *every* entry passes the screen,
        // every pair takes the screen `continue` without touching the
        // matrix — so the whole row can be skipped after one branch-free
        // (non-short-circuiting `&`, hence vectorizable) scan. Any entry
        // above the screen — or NaN, which fails `<=` — routes the row
        // through the scalar pair loop below, whose per-pair decisions are
        // the reference ones. Either way the trajectory is bit-identical.
        let tail = &md[p * n + p + 1..p * n + n];
        if tail
            .iter()
            .map(|z| z.abs2() <= screen)
            .fold(true, |a, b| a & b)
        {
            continue;
        }
        for q in (p + 1)..n {
            let beta = md[p * n + q];
            if beta.abs2() <= screen {
                continue;
            }
            let b = beta.abs();
            if b <= thresh {
                continue;
            }
            let phi = beta.arg();
            let alpha = md[p * n + p].re;
            let gamma = md[q * n + q].re;
            // Real Jacobi angle on the de-phased block: solves
            // b·(c²−s²) + (γ−α)·c·s = 0, i.e. tan 2θ = 2b/(α−γ).
            let zeta = (alpha - gamma) / (2.0 * b);
            let t = if zeta >= 0.0 {
                1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
            } else {
                -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
            };
            let c = 1.0 / (1.0 + t * t).sqrt();
            let s = t * c;
            // J acts on the (p,q) plane:
            //   J_pp = c            J_pq = −s
            //   J_qp = s·e^{−iφ}    J_qq = c·e^{−iφ}
            let e_m = C64::cis(-phi);
            let jqp = e_m * s;
            let jqq = e_m * c;
            let r = RotCoeffs::new(c, s, jqp, jqq);
            let rc = RotCoeffs::new(c, s, jqp.conj(), jqq.conj());
            // All-`+0` rows of V may skip the update only when the
            // rotation provably maps them to `+0` at the bit level: every
            // coefficient finite (a NaN/∞ would propagate through `0·x`),
            // `c` finite and positive (pins the `a_kp` lanes' first addend
            // to `+0`), and the one sign pattern whose signed zeros sum to
            // `−0` absent. On all-`+0` inputs `a_kq.re` is
            // `(−0)·s + ((+0)·j_qq.re − (+0)·j_qq.im)` and `a_kq.im` is
            // `(−0)·s + ((+0)·j_qq.im + (+0)·j_qq.re)`: a `−0` result
            // needs every addend negative-signed, which requires `s`
            // non-negative-signed *and* `j_qq.re` negative-signed. See
            // [`rotate_columns2`] for the skip itself.
            let vskip = c.is_finite()
                && c > 0.0
                && s.is_finite()
                && jqp.re.is_finite()
                && jqp.im.is_finite()
                && jqq.re.is_finite()
                && jqq.im.is_finite()
                && !(!s.is_sign_negative() && jqq.re.is_sign_negative());

            // A ← J†·(A·J) — reference two-pass order, every pass a
            // uniform full-length loop (runtime-bounded segment loops
            // measured strictly slower than the extra 4-element touch) —
            // with V ← V·J interleaved into the column pass.
            rotate_columns2(md, vd, n, p, q, r, vskip);
            rotate_rows(md, n, p, q, rc, row_off);
            rotations += 1;
        }
    }
    // One tally for the whole sweep (48n flops per rotation): the same
    // total the per-rotation form reports, without a thread-local access
    // inside the hot loop.
    crate::counters::tally_flops(48 * n as u64 * rotations as u64);
    rotations
}

/// Computes the eigendecomposition of a complex Hermitian matrix.
///
/// The input is symmetrized as `(A + A†)/2` first, so tiny Hermiticity
/// violations from accumulated arithmetic are tolerated.
///
/// Runs inside a per-thread [`EighWorkspace`]; steady-state allocations
/// are the output only (one `vectors` matrix). Use [`eigh_into`] to manage
/// the workspace explicitly.
///
/// # Panics
///
/// Panics if `a` is not square, or if the iteration fails to converge
/// (which for Hermitian input does not happen in practice; the limit is a
/// defensive bound of 100 sweeps).
pub fn eigh(a: &CMat) -> EigH {
    EIGH_WS.with(|slot| {
        let mut ws = slot.take().unwrap_or_default();
        let out = eigh_into(a, &mut ws);
        slot.set(Some(ws));
        out
    })
}

/// [`eigh`] with a caller-owned workspace: allocation-free after warmup
/// except for the output `EigH` itself.
///
/// # Panics
///
/// Same contract as [`eigh`].
pub fn eigh_into(a: &CMat, ws: &mut EighWorkspace) -> EigH {
    assert!(a.is_square(), "eigh requires a square matrix");
    // Literal-`n` call sites: `eigh_body` is `#[inline(always)]`, so each
    // arm clones the whole body with the dimension const-propagated —
    // every loop below gets compile-time trip counts (unrolled,
    // bounds-check-free, vectorizable) for the hot shapes. Same single
    // source of truth, identical operation order, bit-identical results.
    match a.rows() {
        9 => eigh_body(a, ws, 9),
        3 => eigh_body(a, ws, 3),
        4 => eigh_body(a, ws, 4),
        n => eigh_body(a, ws, n),
    }
}

/// The monomorphizable body of [`eigh_into`]; `n == a.rows()`.
#[inline(always)]
fn eigh_body(a: &CMat, ws: &mut EighWorkspace, n: usize) -> EigH {
    let ad = a.as_slice();
    // Symmetrize defensively: m = (A† + A) / 2, element order identical to
    // the naive dagger-then-average formulation. The same pass accumulates
    // the Frobenius norm (all elements, row-major — the summation order of
    // the naive `iter().map(abs2).sum()`), the initial off-diagonal norm,
    // and the per-row tallies (off-diagonal elements in the same row-major
    // order the rescan below uses), so no separate O(n²) passes are needed
    // before the first sweep. Every accumulated f64 is the same value in
    // the same order as the multi-pass formulation: bitwise identical.
    ws.m.clear();
    ws.m.resize(n * n, C64::ZERO);
    ws.row_off.clear();
    ws.row_off.resize(n, 0.0);
    let mut fro2 = 0.0;
    let mut off0 = 0.0;
    for i in 0..n {
        let mut rsum = 0.0;
        for j in 0..n {
            let z = (ad[j * n + i].conj() + ad[i * n + j]) * 0.5;
            ws.m[i * n + j] = z;
            let t = z.abs2();
            fro2 += t;
            if i != j {
                off0 += t;
                rsum += t;
            }
        }
        ws.row_off[i] = rsum;
    }
    ws.v.clear();
    ws.v.resize(n * n, C64::ZERO);
    for i in 0..n {
        ws.v[i * n + i] = C64::ONE;
    }

    let scale = fro2.sqrt().max(1.0);
    let tol = (scale * 1e-15).powi(2) * (n * n) as f64;
    let thresh = scale * 1e-16;
    // Spectator rows carry their tally across rotations (the column half
    // conserves |A_kp|² + |A_kq|² exactly in exact arithmetic), so the
    // estimate drifts from the true off-norm only by rounding — at most
    // ~n³·ε·scale² per sweep, ≤ 1e-11·scale² for n ≤ 36, three orders
    // below this guard. `est > guard` therefore *proves* `off > tol`
    // (tol ~ 1e-28·scale²), so skipping the exact rescan can never skip a
    // convergence exit the reference algorithm would take.
    let guard = scale * scale * 1e-8;

    let md = ws.m.as_mut_slice();
    let vd = ws.v.as_mut_slice();
    let row_off = ws.row_off.as_mut_slice();
    // `off_exact` holds the initial off-norm computed during setup; later
    // iterations rescan only when the cheap estimate cannot prove
    // non-convergence. A sweep that applied zero rotations leaves the
    // matrix untouched while proving every |A_pq| ≤ thresh — which implies
    // off ≤ n(n−1)·thresh² < tol — so it forces the exact rescan that
    // takes the convergence exit, exactly where the always-rescan
    // reference takes it. (A NaN estimate fails `est > guard` and falls
    // through to the rescan.)
    let mut off_exact = Some(off0);
    let mut force_rescan = false;
    for _sweep in 0..100 {
        let off = match off_exact.take() {
            Some(o) => o,
            None => {
                let est: f64 = row_off.iter().sum();
                if !force_rescan && est > guard {
                    // Provably far from convergence: skip the O(n²)
                    // rescan. The reference would have computed some
                    // off > tol and swept anyway.
                    f64::INFINITY
                } else {
                    let mut off = 0.0;
                    for i in 0..n {
                        let mut rsum = 0.0;
                        for j in 0..n {
                            if i != j {
                                let t = md[i * n + j].abs2();
                                off += t;
                                rsum += t;
                            }
                        }
                        row_off[i] = rsum;
                    }
                    off
                }
            }
        };
        if off <= tol {
            break;
        }
        let rotations = jacobi_sweep(md, vd, row_off, n, thresh);
        force_rescan = rotations == 0;
    }

    // NaN input never converges (every |A_pq| comparison is false); the
    // non-finite guard keeps debug builds panic-free so callers can sort
    // the NaN spectrum out themselves.
    #[cfg(debug_assertions)]
    {
        let off = off_diag_sq(md, n);
        debug_assert!(
            !off.is_finite() || off <= tol * 100.0,
            "jacobi did not converge: off = {off}"
        );
    }

    // Extract and sort ascending, permuting columns of V accordingly.
    // `total_cmp` keeps a NaN eigenvalue (pathological input) from
    // panicking the sort: NaNs order after every finite value. The sort
    // must stay *stable* so degenerate spectra keep the reference column
    // permutation.
    ws.vals.clear();
    ws.vals.extend((0..n).map(|i| md[i * n + i].re));
    ws.order.clear();
    ws.order.extend(0..n);
    let vals = &ws.vals;
    // Stable insertion sort by `total_cmp` (shift only on strictly
    // greater). A stable sort's output permutation is unique, so this
    // yields exactly the permutation `sort_by` would — without the
    // general-purpose driver around a ≤ 36-element sort.
    let order = &mut ws.order;
    for i in 1..n {
        let oi = order[i];
        let vi = vals[oi];
        let mut j = i;
        while j > 0 && vals[order[j - 1]].total_cmp(&vi) == std::cmp::Ordering::Greater {
            order[j] = order[j - 1];
            j -= 1;
        }
        order[j] = oi;
    }

    let sorted_vals: Vec<f64> = ws.order.iter().map(|&i| vals[i]).collect();
    // Permute V's columns into the output with one contiguous gather per
    // row (plain copies — trivially the same values `from_fn` would
    // produce element by element), filling the buffer directly so no
    // zero-initialization pass runs first.
    let mut out = Vec::with_capacity(n * n);
    for vrow in ws.v.chunks_exact(n) {
        out.extend(ws.order.iter().map(|&j| vrow[j]));
    }
    let sorted_vecs = CMat::from_vec(n, n, out);

    EigH {
        values: sorted_vals,
        vectors: sorted_vecs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> CMat {
        // Tiny xorshift so the test has no external deps.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let g = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
        let mut h = g.dagger();
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] = (h[(i, j)] + g[(i, j)]) * 0.5;
            }
        }
        h
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = CMat::diag(&[C64::real(3.0), C64::real(-1.0), C64::real(2.0)]);
        let e = eigh(&d);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 2.0).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = CMat::from_slice(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO]);
        let e = eigh(&y);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-12));
    }

    #[test]
    fn reconstruction_of_random_hermitians() {
        for (n, seed) in [(2usize, 7u64), (4, 42), (6, 3), (9, 99), (12, 1234)] {
            let h = random_hermitian(n, seed);
            let e = eigh(&h);
            let r = e.reconstruct();
            assert!(
                r.approx_eq(&h, 1e-10),
                "reconstruction failed for n={n}: err={}",
                r.max_abs_diff(&h)
            );
            assert!(e.vectors.is_unitary(1e-10));
            // Eigenvalues ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigenvector_equation_holds() {
        let h = random_hermitian(5, 17);
        let e = eigh(&h);
        for k in 0..5 {
            let vk: Vec<C64> = (0..5).map(|i| e.vectors[(i, k)]).collect();
            let hv = h.apply(&vk);
            for i in 0..5 {
                let expect = vk[i] * e.values[k];
                assert!((hv[i] - expect).abs() < 1e-9, "H v != λ v at ({i},{k})");
            }
        }
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let h = random_hermitian(7, 5);
        let e = eigh(&h);
        let sum: f64 = e.values.iter().sum();
        assert!((h.trace().re - sum).abs() < 1e-10);
    }

    #[test]
    fn map_spectrum_identity_function() {
        let h = random_hermitian(4, 8);
        let e = eigh(&h);
        let again = e.map_spectrum(C64::real);
        assert!(again.approx_eq(&h, 1e-10));
    }

    #[test]
    fn nan_input_does_not_panic() {
        // A pathological (non-finite) matrix must come back with a NaN
        // spectrum, not panic in the eigenvalue sort or the convergence
        // check — `total_cmp` orders NaN after every finite value.
        let mut h = CMat::identity(3);
        h[(0, 1)] = C64::new(f64::NAN, 0.0);
        h[(1, 0)] = C64::new(f64::NAN, 0.0);
        let e = eigh(&h);
        assert_eq!(e.values.len(), 3);
        assert!(e.values.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn degenerate_spectrum_handled() {
        // 2·I has a fully degenerate spectrum.
        let h = CMat::identity(4).scale(C64::real(2.0));
        let e = eigh(&h);
        for v in &e.values {
            assert!((v - 2.0).abs() < 1e-14);
        }
        assert!(e.vectors.is_unitary(1e-12));
    }

    #[test]
    fn explicit_workspace_matches_thread_local() {
        let h = random_hermitian(9, 21);
        let mut ws = EighWorkspace::new();
        let a = eigh_into(&h, &mut ws);
        let b = eigh(&h);
        assert_eq!(a.values, b.values);
        assert_eq!(a.vectors.as_slice(), b.vectors.as_slice());
        // Reuse across sizes must not leak state.
        let h2 = random_hermitian(5, 22);
        let c = eigh_into(&h2, &mut ws);
        assert_eq!(c.values, eigh(&h2).values);
    }
}
