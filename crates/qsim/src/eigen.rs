//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! Hamiltonians in this crate are small (≤ 36×36) complex Hermitian
//! matrices. The classical Jacobi algorithm — repeatedly zeroing the largest
//! off-diagonal entries with complex plane rotations — converges
//! quadratically, is numerically backward-stable, and needs no external
//! LAPACK, which keeps the workspace dependency-free.
//!
//! Each complex rotation in the `(p, q)` plane first removes the phase of
//! `A[p][q]` (reducing the 2×2 block to a real symmetric one), then applies
//! the standard real Jacobi angle `tan 2θ = 2|A_pq| / (A_pp − A_qq)`.
//!
//! # Examples
//!
//! ```
//! use qsim::matrix::CMat;
//! use qsim::eigen::eigh;
//!
//! let h = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]); // Pauli X
//! let eig = eigh(&h);
//! assert!((eig.values[0] + 1.0).abs() < 1e-12);
//! assert!((eig.values[1] - 1.0).abs() < 1e-12);
//! ```

use crate::complex::C64;
use crate::matrix::CMat;

/// Result of a Hermitian eigendecomposition `A = V · diag(values) · V†`.
#[derive(Debug, Clone)]
pub struct EigH {
    /// Real eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose `k`-th *column* is the eigenvector of
    /// `values[k]`.
    pub vectors: CMat,
}

impl EigH {
    /// Reconstructs the original matrix `V · diag(values) · V†`.
    ///
    /// Mostly useful in tests to verify decomposition accuracy.
    pub fn reconstruct(&self) -> CMat {
        self.map_spectrum(C64::real)
    }

    /// Applies `f` to each eigenvalue and reassembles `V · diag(f(λ)) · V†`.
    ///
    /// This is the spectral calculus used for the matrix exponential.
    pub fn map_spectrum(&self, mut f: impl FnMut(f64) -> C64) -> CMat {
        let d = CMat::diag(&self.values.iter().map(|&v| f(v)).collect::<Vec<_>>());
        self.vectors.matmul(&d).matmul(&self.vectors.dagger())
    }
}

/// Off-diagonal Frobenius norm squared (the Jacobi convergence quantity).
fn off_diag_sq(a: &CMat) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)].abs2();
            }
        }
    }
    s
}

/// Computes the eigendecomposition of a complex Hermitian matrix.
///
/// The input is symmetrized as `(A + A†)/2` first, so tiny Hermiticity
/// violations from accumulated arithmetic are tolerated.
///
/// # Panics
///
/// Panics if `a` is not square, or if the iteration fails to converge
/// (which for Hermitian input does not happen in practice; the limit is a
/// defensive bound of 100 sweeps).
pub fn eigh(a: &CMat) -> EigH {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    // Symmetrize defensively.
    let mut m = a.dagger();
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = (m[(i, j)] + a[(i, j)]) * 0.5;
        }
    }
    let mut v = CMat::identity(n);

    let scale = m.frobenius_norm().max(1.0);
    let tol = (scale * 1e-15).powi(2) * (n * n) as f64;

    for _sweep in 0..100 {
        if off_diag_sq(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let beta = m[(p, q)];
                let b = beta.abs();
                if b <= scale * 1e-16 {
                    continue;
                }
                let phi = beta.arg();
                let alpha = m[(p, p)].re;
                let gamma = m[(q, q)].re;
                // Real Jacobi angle on the de-phased block: solves
                // b·(c²−s²) + (γ−α)·c·s = 0, i.e. tan 2θ = 2b/(α−γ).
                let zeta = (alpha - gamma) / (2.0 * b);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // J acts on the (p,q) plane:
                //   J_pp = c            J_pq = −s
                //   J_qp = s·e^{−iφ}    J_qq = c·e^{−iφ}
                let e_m = C64::cis(-phi);
                let jpp = C64::real(c);
                let jpq = C64::real(-s);
                let jqp = e_m * s;
                let jqq = e_m * c;

                // Columns update: A ← A·J (only columns p and q change).
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = akp * jpp + akq * jqp;
                    m[(k, q)] = akp * jpq + akq * jqq;
                }
                // Rows update: A ← J†·A (only rows p and q change).
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = apk * jpp.conj() + aqk * jqp.conj();
                    m[(q, k)] = apk * jpq.conj() + aqk * jqq.conj();
                }
                // Accumulate eigenvectors: V ← V·J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * jpp + vkq * jqp;
                    v[(k, q)] = vkp * jpq + vkq * jqq;
                }
            }
        }
    }

    debug_assert!(
        off_diag_sq(&m) <= tol * 100.0,
        "jacobi did not converge: off = {}",
        off_diag_sq(&m)
    );

    // Extract and sort ascending, permuting columns of V accordingly.
    let mut order: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| vals[i].partial_cmp(&vals[j]).unwrap());

    let sorted_vals: Vec<f64> = order.iter().map(|&i| vals[i]).collect();
    let sorted_vecs = CMat::from_fn(n, n, |i, j| v[(i, order[j])]);

    EigH {
        values: sorted_vals,
        vectors: sorted_vecs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> CMat {
        // Tiny xorshift so the test has no external deps.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let g = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
        let mut h = g.dagger();
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] = (h[(i, j)] + g[(i, j)]) * 0.5;
            }
        }
        h
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = CMat::diag(&[C64::real(3.0), C64::real(-1.0), C64::real(2.0)]);
        let e = eigh(&d);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 2.0).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = CMat::from_slice(2, 2, &[C64::ZERO, -C64::I, C64::I, C64::ZERO]);
        let e = eigh(&y);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-12));
    }

    #[test]
    fn reconstruction_of_random_hermitians() {
        for (n, seed) in [(2usize, 7u64), (4, 42), (6, 3), (9, 99), (12, 1234)] {
            let h = random_hermitian(n, seed);
            let e = eigh(&h);
            let r = e.reconstruct();
            assert!(
                r.approx_eq(&h, 1e-10),
                "reconstruction failed for n={n}: err={}",
                r.max_abs_diff(&h)
            );
            assert!(e.vectors.is_unitary(1e-10));
            // Eigenvalues ascending.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigenvector_equation_holds() {
        let h = random_hermitian(5, 17);
        let e = eigh(&h);
        for k in 0..5 {
            let vk: Vec<C64> = (0..5).map(|i| e.vectors[(i, k)]).collect();
            let hv = h.apply(&vk);
            for i in 0..5 {
                let expect = vk[i] * e.values[k];
                assert!((hv[i] - expect).abs() < 1e-9, "H v != λ v at ({i},{k})");
            }
        }
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let h = random_hermitian(7, 5);
        let e = eigh(&h);
        let sum: f64 = e.values.iter().sum();
        assert!((h.trace().re - sum).abs() < 1e-10);
    }

    #[test]
    fn map_spectrum_identity_function() {
        let h = random_hermitian(4, 8);
        let e = eigh(&h);
        let again = e.map_spectrum(C64::real);
        assert!(again.approx_eq(&h, 1e-10));
    }

    #[test]
    fn degenerate_spectrum_handled() {
        // 2·I has a fully degenerate spectrum.
        let h = CMat::identity(4).scale(C64::real(2.0));
        let e = eigh(&h);
        for v in &e.values {
            assert!((v - 2.0).abs() < 1e-14);
        }
        assert!(e.vectors.is_unitary(1e-12));
    }
}
