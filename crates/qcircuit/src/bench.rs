//! NISQ benchmark circuit generators (paper Table IV).
//!
//! | Name   | Paper description                                  | Generator |
//! |--------|-----------------------------------------------------|-----------|
//! | QGAN   | quantum generative adversarial network [59]         | [`qgan`] |
//! | Ising  | linear Ising-model spin-chain simulation [60]       | [`ising_chain`] |
//! | BV     | 1024-bit Bernstein–Vazirani [61]                    | [`bernstein_vazirani`] |
//! | Add1   | 256-bit ripple-carry adder [62]                     | [`cuccaro_adder`] |
//! | Add2   | 256-bit parallel carry-lookahead adder [63]         | [`block_lookahead_adder`] |
//! | Sqrt10 | 10-bit square root via Grover search [64]–[66]      | [`grover_sqrt`] |
//!
//! All circuits are "algorithmically generated" (§VI-B) and validated by
//! statevector simulation on small instances. `Add2` substitutes a
//! block-carry-lookahead structure for Draper's prefix adder: same
//! contract (a parallel adder whose depth is ~6× shallower than
//! ripple-carry at 256 bits, with matching gate parallelism profile) with
//! a fraction of the ancilla bookkeeping (see DESIGN.md).

use crate::ir::Circuit;
use qsim::rng::StdRng;
use std::f64::consts::PI;

/// Identifies one of the paper's six benchmarks; used by the evaluation
/// harnesses to iterate the full Table IV suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Quantum GAN ansatz.
    Qgan,
    /// Linear Ising chain Trotterization.
    Ising,
    /// Bernstein–Vazirani.
    Bv,
    /// Cuccaro ripple-carry adder.
    Add1,
    /// Block carry-lookahead adder.
    Add2,
    /// Grover square root.
    Sqrt10,
}

/// All benchmarks in the paper's presentation order (Fig 9's x-axis).
pub const ALL_BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Qgan,
    Benchmark::Ising,
    Benchmark::Bv,
    Benchmark::Add1,
    Benchmark::Add2,
    Benchmark::Sqrt10,
];

impl Benchmark {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Qgan => "QGAN",
            Benchmark::Ising => "Ising",
            Benchmark::Bv => "BV",
            Benchmark::Add1 => "Add1",
            Benchmark::Add2 => "Add2",
            Benchmark::Sqrt10 => "Sqrt10",
        }
    }

    /// Parses a display name (as printed by [`Benchmark::name`],
    /// case-insensitive) back into the benchmark; used by the sweep
    /// harnesses' CLI and report readers.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        ALL_BENCHMARKS
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Generates a reduced instance of the benchmark that fits within
    /// `max_qubits` qubits, with a deterministic seed — the engine's
    /// small-grid sweeps (`digiq_core::engine`) use this so the whole
    /// Table IV suite runs in seconds on test grids.
    ///
    /// # Panics
    ///
    /// Panics if `max_qubits < 8`.
    pub fn scaled(self, max_qubits: usize, seed: u64) -> Circuit {
        assert!(max_qubits >= 8, "scaled benchmarks need at least 8 qubits");
        match self {
            Benchmark::Qgan => qgan(max_qubits, 2, seed),
            Benchmark::Ising => ising_chain(max_qubits, 2, 0.3, 0.7),
            Benchmark::Bv => {
                let secret: Vec<bool> = (0..max_qubits - 1)
                    .map(|i| (i as u64 * 7 + 3 + seed) % 5 < 2)
                    .collect();
                bernstein_vazirani(&secret)
            }
            Benchmark::Add1 => cuccaro_adder(((max_qubits - 2) / 2).max(1)),
            Benchmark::Add2 => {
                // Block 4; shrink the width until the ancilla layout fits.
                let mut bits = ((max_qubits / 3).max(4) / 4) * 4;
                loop {
                    let c = block_lookahead_adder(bits, 4);
                    if c.n_qubits() <= max_qubits || bits == 4 {
                        return c;
                    }
                    bits -= 4;
                }
            }
            Benchmark::Sqrt10 => {
                let mut bits = 6;
                loop {
                    let target = ((1u64 << (bits / 2)) - 1).pow(2);
                    let c = grover_sqrt(bits, target);
                    if c.n_qubits() <= max_qubits || bits == 2 {
                        return c;
                    }
                    bits -= 2;
                }
            }
        }
    }

    /// Generates the benchmark at (near-)paper scale for a 1024-qubit
    /// machine, with a deterministic seed.
    pub fn paper_scale(self) -> Circuit {
        match self {
            // 1024 qubits of variational ansatz, 2 layers.
            Benchmark::Qgan => qgan(1024, 2, 0xD161_0B00),
            // 1024-spin chain, 3 Trotter steps.
            Benchmark::Ising => ising_chain(1024, 3, 0.3, 0.7),
            // 1023 secret bits + ancilla = 1024 qubits.
            Benchmark::Bv => {
                let secret: Vec<bool> = (0..1023).map(|i| (i * 7 + 3) % 5 < 2).collect();
                bernstein_vazirani(&secret)
            }
            // 256-bit ripple carry: 2·256+2 = 514 qubits.
            Benchmark::Add1 => cuccaro_adder(256),
            // 256-bit block lookahead (block 16): ≈ 820 qubits.
            Benchmark::Add2 => block_lookahead_adder(256, 16),
            // 10-bit square (5-bit search).
            Benchmark::Sqrt10 => grover_sqrt(10, 225),
        }
    }
}

/// Bernstein–Vazirani over `secret` (one data qubit per secret bit plus a
/// single oracle ancilla, which ends in |1⟩; the data register ends in the
/// secret).
///
/// # Panics
///
/// Panics if `secret` is empty.
pub fn bernstein_vazirani(secret: &[bool]) -> Circuit {
    assert!(!secret.is_empty());
    let n = secret.len();
    let anc = n;
    let mut c = Circuit::new(n + 1);
    // Ancilla to |−⟩.
    c.x(anc);
    c.h(anc);
    for q in 0..n {
        c.h(q);
    }
    // Oracle: f(x) = s·x.
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.cx(q, anc);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Digitized-adiabatic linear Ising chain (ref [60]): `steps` first-order
/// Trotter slices of `H = −J·Σ ZᵢZᵢ₊₁ − h·Σ Xᵢ`, with per-slice angles
/// `theta_zz = 2·J·dt`, `theta_x = 2·h·dt` folded into the two arguments.
///
/// Even-indexed bonds execute together, then odd-indexed bonds — exactly
/// the commuting-gate grouping that gives the benchmark its high
/// parallelism.
///
/// # Panics
///
/// Panics if `n < 2` or `steps == 0`.
pub fn ising_chain(n: usize, steps: usize, theta_zz: f64, theta_x: f64) -> Circuit {
    assert!(n >= 2 && steps > 0);
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        // Transverse field on every spin.
        for q in 0..n {
            c.rx(q, theta_x);
        }
        // ZZ(θ) = CX·Rz(θ)·CX on even bonds, then odd bonds.
        for parity in 0..2 {
            let mut q = parity;
            while q + 1 < n {
                c.cx(q, q + 1);
                c.rz(q + 1, theta_zz);
                c.cx(q, q + 1);
                q += 2;
            }
        }
    }
    c
}

/// Hardware-efficient QGAN ansatz (ref [59]): `layers` of per-qubit
/// `Ry(θ)·Rz(φ)` rotations (angles drawn from a seeded RNG, as a trained
/// generator would supply) followed by a brick-work CZ entangler.
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
pub fn qgan(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 2 && layers > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.ry(q, rng.gen_range(-PI..PI));
            c.rz(q, rng.gen_range(-PI..PI));
        }
        let parity = layer % 2;
        let mut q = parity;
        while q + 1 < n {
            c.cz(q, q + 1);
            q += 2;
        }
    }
    c
}

/// Cuccaro ripple-carry adder (ref [62]) on `n`-bit operands.
///
/// Qubit layout: `cin` at 0, then interleaved `b_i` (at `1 + 2i`) and
/// `a_i` (at `2 + 2i`), and `cout` last — `2n + 2` qubits. Computes
/// `b ← a + b`, restores `a` and `cin`, writes the carry into `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n > 0);
    let mut c = Circuit::new(2 * n + 2);
    let cin = 0usize;
    let b = |i: usize| 1 + 2 * i;
    let a = |i: usize| 2 + 2 * i;
    let cout = 2 * n + 1;

    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Qubit map for [`block_lookahead_adder`], exposed so tests and the
/// evaluation harness can find registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAdderLayout {
    /// Operand width in bits.
    pub n: usize,
    /// Block width in bits.
    pub block: usize,
    /// Total qubits.
    pub qubits: usize,
}

impl BlockAdderLayout {
    /// Builds the layout for `n`-bit operands with `block`-bit blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of `block`.
    pub fn new(n: usize, block: usize) -> Self {
        assert!(
            block > 0 && n > 0 && n % block == 0,
            "n must be a multiple of block"
        );
        let nb = n / block;
        // a[n], b[n], per-block generate G[nb], propagate P[nb],
        // AND-chain ancillas (block−1 per block), true carries c[nb+1].
        let qubits = 2 * n + nb + nb + nb * (block - 1) + (nb + 1);
        BlockAdderLayout { n, block, qubits }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.n / self.block
    }

    /// Qubit of operand bit `a_i` (LSB first).
    pub fn a(&self, i: usize) -> usize {
        i
    }

    /// Qubit of operand bit `b_i` (receives the sum).
    pub fn b(&self, i: usize) -> usize {
        self.n + i
    }

    /// Block-generate ancilla of block `k`.
    pub fn g(&self, k: usize) -> usize {
        2 * self.n + k
    }

    /// Block-propagate ancilla of block `k`.
    pub fn p(&self, k: usize) -> usize {
        2 * self.n + self.n_blocks() + k
    }

    /// AND-chain ancilla `j` of block `k` (`j < block − 1`).
    pub fn chain(&self, k: usize, j: usize) -> usize {
        2 * self.n + 2 * self.n_blocks() + k * (self.block - 1) + j
    }

    /// True carry into block `k` (`k ≤ n_blocks`; the last is carry-out).
    pub fn carry(&self, k: usize) -> usize {
        2 * self.n + 2 * self.n_blocks() + self.n_blocks() * (self.block - 1) + k
    }
}

/// Block carry-lookahead adder: the `Add2` benchmark. Computes
/// `b ← a + b` (with carry-out in the top carry ancilla) in four phases:
///
/// 1. **Parallel per block**: compute block generate `G_k` (MAJ-chain up,
///    copy carry, MAJ-chain down) and block propagate `P_k` (XOR bits,
///    AND-chain, un-XOR).
/// 2. **Short sequential ripple over blocks**: true carries
///    `c_{k+1} = G_k ⊕ P_k·c_k`.
/// 3. **Parallel per block**: full Cuccaro add within each block using its
///    true carry-in.
///
/// Generate/propagate/chain ancillas are left dirty (they hold classical
/// garbage; the `(a, b)` registers carry the exact sum — verified by
/// exhaustive simulation in the tests).
///
/// # Panics
///
/// Panics if `n` is not a positive multiple of `block`.
pub fn block_lookahead_adder(n: usize, block: usize) -> Circuit {
    let lay = BlockAdderLayout::new(n, block);
    let nb = lay.n_blocks();
    let mut c = Circuit::new(lay.qubits);

    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let maj_inv = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(z, y);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    // ---- Phase 1: per-block G_k and P_k (parallel across blocks) ----
    for k in 0..nb {
        let lo = k * block;
        // Generate: MAJ chain with zero carry-in (the G ancilla plays the
        // cin role and ends holding the block carry after the chain; we
        // run the chain, copy the carry-out…, then reverse).
        // Chain: MAJ(g_k, b_lo, a_lo); MAJ(a_lo, b_lo+1, a_lo+1); …
        maj(&mut c, lay.g(k), lay.b(lo), lay.a(lo));
        for i in 1..block {
            maj(&mut c, lay.a(lo + i - 1), lay.b(lo + i), lay.a(lo + i));
        }
        // The block carry-out now sits on a_{hi}; stash it.
        // (Temporarily borrow the carry ancilla c_{k+1}? No — G_k must
        // survive; copy onto the *chain* top… simplest: copy to G via the
        // spare: G was consumed as cin (zero), so copy carry-out to the
        // true-carry scratch is wrong; instead copy to P? P needed too.)
        // Copy carry-out into the chain ancilla slot block−2 is also
        // wrong. Use the dedicated G ancilla: since cin was |0⟩, G input
        // is restored by the reverse chain, so copy out first:
        c.cx(lay.a(lo + block - 1), lay.carry(k + 1));
        // Reverse the MAJ chain to restore a, b.
        for i in (1..block).rev() {
            maj_inv(&mut c, lay.a(lo + i - 1), lay.b(lo + i), lay.a(lo + i));
        }
        maj_inv(&mut c, lay.g(k), lay.b(lo), lay.a(lo));
        // Move the stashed generate from carry scratch into G_k.
        c.cx(lay.carry(k + 1), lay.g(k));
        c.cx(lay.g(k), lay.carry(k + 1)); // clear scratch (G==scratch)

        // Propagate: p_i = a_i ⊕ b_i formed in b, AND-chained into P_k.
        for i in 0..block {
            c.cx(lay.a(lo + i), lay.b(lo + i));
        }
        if block == 1 {
            c.cx(lay.b(lo), lay.p(k));
        } else {
            c.ccx(lay.b(lo), lay.b(lo + 1), lay.chain(k, 0));
            for i in 2..block {
                c.ccx(lay.chain(k, i - 2), lay.b(lo + i), lay.chain(k, i - 1));
            }
            c.cx(lay.chain(k, block - 2), lay.p(k));
        }
        // Restore b.
        for i in 0..block {
            c.cx(lay.a(lo + i), lay.b(lo + i));
        }
    }

    // ---- Phase 2: ripple true carries across blocks ----
    // c_0 = 0 (adder has no external carry-in); c_{k+1} = G_k ⊕ P_k·c_k.
    for k in 0..nb {
        c.cx(lay.g(k), lay.carry(k + 1));
        c.ccx(lay.p(k), lay.carry(k), lay.carry(k + 1));
    }

    // ---- Phase 3: per-block Cuccaro with true carry-in (parallel) ----
    for k in 0..nb {
        let lo = k * block;
        maj(&mut c, lay.carry(k), lay.b(lo), lay.a(lo));
        for i in 1..block {
            maj(&mut c, lay.a(lo + i - 1), lay.b(lo + i), lay.a(lo + i));
        }
        for i in (1..block).rev() {
            uma(&mut c, lay.a(lo + i - 1), lay.b(lo + i), lay.a(lo + i));
        }
        uma(&mut c, lay.carry(k), lay.b(lo), lay.a(lo));
    }
    c
}

/// Appends a multi-controlled Z over `controls` using a CCX V-chain into
/// `ancillas` (needs `controls.len().saturating_sub(2)` clean ancillas;
/// they are returned clean).
///
/// # Panics
///
/// Panics if `controls` is empty or too few ancillas are supplied.
pub fn multi_controlled_z(c: &mut Circuit, controls: &[usize], ancillas: &[usize]) {
    match controls.len() {
        0 => panic!("MCZ needs at least one control"),
        1 => c.z(controls[0]),
        2 => c.cz(controls[0], controls[1]),
        k => {
            assert!(
                ancillas.len() >= k - 2,
                "MCZ over {k} controls needs {} ancillas",
                k - 2
            );
            // V-chain: and-accumulate controls pairwise.
            c.ccx(controls[0], controls[1], ancillas[0]);
            for i in 2..k - 1 {
                c.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            c.cz(controls[k - 1], ancillas[k - 3]);
            for i in (2..k - 1).rev() {
                c.ccx(controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            c.ccx(controls[0], controls[1], ancillas[0]);
        }
    }
}

/// Qubit map for [`grover_sqrt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroverSqrtLayout {
    /// Bits of the radicand (`target < 2^bits`).
    pub bits: usize,
    /// Bits of the search register (`bits / 2`).
    pub x_bits: usize,
    /// Total qubits.
    pub qubits: usize,
}

impl GroverSqrtLayout {
    /// Builds the layout for a `bits`-bit radicand.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or odd.
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0 && bits % 2 == 0, "radicand width must be even");
        let x_bits = bits / 2;
        // x | acc(bits) | y shifted-copy (bits) | cin+cout | mcz ancillas
        let qubits = x_bits + bits + bits + 2 + bits.saturating_sub(2);
        GroverSqrtLayout {
            bits,
            x_bits,
            qubits,
        }
    }

    /// Search-register qubit `i` (LSB first).
    pub fn x(&self, i: usize) -> usize {
        i
    }

    /// Accumulator qubit `i` (holds x²).
    pub fn acc(&self, i: usize) -> usize {
        self.x_bits + i
    }

    /// Shifted-copy scratch qubit `i`.
    pub fn y(&self, i: usize) -> usize {
        self.x_bits + self.bits + i
    }

    /// Adder carry-in scratch.
    pub fn cin(&self) -> usize {
        self.x_bits + 2 * self.bits
    }

    /// Adder carry-out scratch.
    pub fn cout(&self) -> usize {
        self.x_bits + 2 * self.bits + 1
    }

    /// MCZ ancilla `i`.
    pub fn mcz(&self, i: usize) -> usize {
        self.x_bits + 2 * self.bits + 2 + i
    }
}

/// Appends an in-place ripple add `acc ← acc + y` (both `bits` wide) using
/// the Cuccaro MAJ/UMA chains with the layout's scratch carries.
fn append_ripple_add(c: &mut Circuit, lay: &GroverSqrtLayout) {
    let n = lay.bits;
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };
    maj(c, lay.cin(), lay.acc(0), lay.y(0));
    for i in 1..n {
        maj(c, lay.y(i - 1), lay.acc(i), lay.y(i));
    }
    c.cx(lay.y(n - 1), lay.cout());
    for i in (1..n).rev() {
        uma(c, lay.y(i - 1), lay.acc(i), lay.y(i));
    }
    uma(c, lay.cin(), lay.acc(0), lay.y(0));
    // cout accumulates overflow; harmless (x² < 2^bits by construction,
    // but intermediate partial sums cannot overflow either since the
    // final value bounds them).
}

/// Appends the squarer: `acc ← acc ⊕⁺ x²` via, for each search bit `i`, a
/// masked shifted copy `y = (x·x_i) << i` and a ripple addition.
fn append_squarer(c: &mut Circuit, lay: &GroverSqrtLayout, inverse: bool) {
    let steps: Vec<usize> = (0..lay.x_bits).collect();
    for &i in steps.iter() {
        if !inverse {
            // y = (x AND x_i) << i : for j: y_{i+j} = x_j · x_i; the
            // diagonal term j == i is just a copy of x_i.
            for j in 0..lay.x_bits {
                if j == i {
                    c.cx(lay.x(i), lay.y(i + j));
                } else {
                    c.ccx(lay.x(i), lay.x(j), lay.y(i + j));
                }
            }
            append_ripple_add(c, lay);
            // Uncompute y.
            for j in (0..lay.x_bits).rev() {
                if j == i {
                    c.cx(lay.x(i), lay.y(i + j));
                } else {
                    c.ccx(lay.x(i), lay.x(j), lay.y(i + j));
                }
            }
        }
    }
    if inverse {
        // Reverse order: subtract by running the exact inverse gate list.
        // Build the forward list in a scratch circuit and append reversed
        // inverses (every gate here is self-inverse).
        let mut fwd = Circuit::new(c.n_qubits());
        append_squarer(&mut fwd, lay, false);
        let gates: Vec<_> = fwd.gates().to_vec();
        for g in gates.into_iter().rev() {
            c.push(g);
        }
    }
}

/// Grover search for the square root: finds `x` with `x² = target` in a
/// `bits`-bit register (the paper's `Sqrt10` with `bits = 10`; refs
/// [64]–[66]). Uses ⌊π/4·√(2^(bits/2))⌋ iterations of
/// square → compare-phase-flip → unsquare → diffusion.
///
/// # Panics
///
/// Panics if `bits` is zero or odd, or `target ≥ 2^bits`.
pub fn grover_sqrt(bits: usize, target: u64) -> Circuit {
    let lay = GroverSqrtLayout::new(bits);
    assert!(target < (1u64 << bits), "target out of range");
    let mut c = Circuit::new(lay.qubits);

    // Uniform superposition over x.
    for i in 0..lay.x_bits {
        c.h(lay.x(i));
    }

    let iterations = ((PI / 4.0) * ((1usize << lay.x_bits) as f64).sqrt()).floor() as usize;
    let iterations = iterations.max(1);

    for _ in 0..iterations {
        // Oracle: acc ← x²; phase-flip when acc == target; acc ← 0.
        append_squarer(&mut c, &lay, false);
        // Mask: X on acc bits where target bit is 0 so the match is
        // all-ones.
        for i in 0..lay.bits {
            if target & (1 << i) == 0 {
                c.x(lay.acc(i));
            }
        }
        let controls: Vec<usize> = (0..lay.bits).map(|i| lay.acc(i)).collect();
        let ancillas: Vec<usize> = (0..lay.bits.saturating_sub(2))
            .map(|i| lay.mcz(i))
            .collect();
        multi_controlled_z(&mut c, &controls, &ancillas);
        for i in 0..lay.bits {
            if target & (1 << i) == 0 {
                c.x(lay.acc(i));
            }
        }
        append_squarer(&mut c, &lay, true);

        // Diffusion on x.
        for i in 0..lay.x_bits {
            c.h(lay.x(i));
            c.x(lay.x(i));
        }
        let xc: Vec<usize> = (0..lay.x_bits).map(|i| lay.x(i)).collect();
        let anc: Vec<usize> = (0..lay.x_bits.saturating_sub(2))
            .map(|i| lay.mcz(i))
            .collect();
        multi_controlled_z(&mut c, &xc, &anc);
        for i in 0..lay.x_bits {
            c.x(lay.x(i));
            c.h(lay.x(i));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::StateVector;

    /// Loads integer `val` into the qubits `bit(i)` (LSB first) of a
    /// zero-initialized state by listing X positions.
    fn x_load(c: &mut Circuit, val: u64, bit: impl Fn(usize) -> usize, n: usize) {
        for i in 0..n {
            if val & (1 << i) != 0 {
                c.x(bit(i));
            }
        }
    }

    #[test]
    fn bv_recovers_secret() {
        let secret = [true, false, true, true, false];
        let c = bernstein_vazirani(&secret);
        let mut sv = StateVector::zero(c.n_qubits());
        sv.apply_circuit(&c);
        // Data register must read the secret with certainty.
        for (q, &bit) in secret.iter().enumerate() {
            let p1 = sv.prob_one(q);
            if bit {
                assert!(p1 > 1.0 - 1e-9, "q{q} should be 1, p={p1}");
            } else {
                assert!(p1 < 1e-9, "q{q} should be 0, p={p1}");
            }
        }
    }

    #[test]
    fn bv_gate_count_scales_with_weight() {
        let light = bernstein_vazirani(&[true, false, false, false]);
        let heavy = bernstein_vazirani(&[true, true, true, true]);
        assert_eq!(heavy.two_qubit_count() - light.two_qubit_count(), 3);
    }

    #[test]
    fn cuccaro_adds_exhaustively() {
        let n = 3;
        for a_val in 0..8u64 {
            for b_val in 0..8u64 {
                let mut c = Circuit::new(2 * n + 2);
                // Load operands (a at 2+2i, b at 1+2i).
                x_load(&mut c, a_val, |i| 2 + 2 * i, n);
                x_load(&mut c, b_val, |i| 1 + 2 * i, n);
                c.extend(&cuccaro_adder(n));
                let mut sv = StateVector::zero(c.n_qubits());
                sv.apply_circuit(&c);
                let (idx, p) = sv.argmax();
                assert!(p > 1.0 - 1e-9);
                // Decode: big-endian bit order over qubits.
                let nq = c.n_qubits();
                let bit = |q: usize| (idx >> (nq - 1 - q)) & 1;
                let mut sum = 0u64;
                for i in 0..n {
                    sum |= (bit(1 + 2 * i) as u64) << i;
                }
                let carry = bit(2 * n + 1) as u64;
                assert_eq!(sum, (a_val + b_val) & 7, "sum a={a_val} b={b_val}");
                assert_eq!(carry, (a_val + b_val) >> 3, "carry a={a_val} b={b_val}");
                // a restored.
                let mut a_after = 0u64;
                for i in 0..n {
                    a_after |= (bit(2 + 2 * i) as u64) << i;
                }
                assert_eq!(a_after, a_val, "a not restored");
            }
        }
    }

    #[test]
    fn block_adder_adds_exhaustively() {
        // 4-bit operands, 2-bit blocks: 18 qubits — exhaustive over 256
        // operand pairs.
        let n = 4;
        let lay = BlockAdderLayout::new(n, 2);
        for a_val in 0..16u64 {
            for b_val in 0..16u64 {
                let mut c = Circuit::new(lay.qubits);
                x_load(&mut c, a_val, |i| lay.a(i), n);
                x_load(&mut c, b_val, |i| lay.b(i), n);
                c.extend(&block_lookahead_adder(n, 2));
                let mut sv = StateVector::zero(lay.qubits);
                sv.apply_circuit(&c);
                let (idx, p) = sv.argmax();
                assert!(p > 1.0 - 1e-9, "state not classical");
                let bit = |q: usize| (idx >> (lay.qubits - 1 - q)) & 1;
                let mut sum = 0u64;
                for i in 0..n {
                    sum |= (bit(lay.b(i)) as u64) << i;
                }
                let carry = bit(lay.carry(lay.n_blocks())) as u64;
                assert_eq!(sum, (a_val + b_val) & 15, "sum a={a_val} b={b_val}");
                assert_eq!(carry, (a_val + b_val) >> 4, "carry a={a_val} b={b_val}");
                let mut a_after = 0u64;
                for i in 0..n {
                    a_after |= (bit(lay.a(i)) as u64) << i;
                }
                assert_eq!(a_after, a_val, "a not restored");
            }
        }
    }

    #[test]
    fn block_adder_is_shallower_than_ripple() {
        let ripple = cuccaro_adder(64);
        let block = block_lookahead_adder(64, 8);
        assert!(
            (block.depth() as f64) < (ripple.depth() as f64) * 0.6,
            "block depth {} vs ripple {}",
            block.depth(),
            ripple.depth()
        );
        // And correspondingly more parallel.
        assert!(block.parallelism() > ripple.parallelism() * 1.5);
    }

    #[test]
    fn ising_structure() {
        let c = ising_chain(6, 2, 0.3, 0.7);
        // Per step: 6 Rx + 5 bonds × (2 CX + 1 Rz).
        assert_eq!(c.len(), 2 * (6 + 5 * 3));
        // High parallelism: brickwork executes in few moments.
        assert!(c.parallelism() > 2.0);
    }

    #[test]
    fn ising_preserves_norm_and_entangles() {
        let c = ising_chain(4, 2, 0.5, 0.9);
        let mut sv = StateVector::zero(4);
        sv.apply_circuit(&c);
        assert!((sv.norm() - 1.0).abs() < 1e-9);
        // Transverse field must move population off |0000⟩.
        assert!(sv.probability(0) < 0.99);
    }

    #[test]
    fn qgan_deterministic_by_seed() {
        let a = qgan(8, 2, 42);
        let b = qgan(8, 2, 42);
        let c = qgan(8, 2, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Layer structure: 2 rotations per qubit per layer + CZ brickwork.
        assert_eq!(a.one_qubit_count(), 8 * 2 * 2);
    }

    #[test]
    fn mcz_flips_only_all_ones() {
        // 4 controls: verify phase on |1111⟩ only.
        let mut c = Circuit::new(6);
        multi_controlled_z(&mut c, &[0, 1, 2, 3], &[4, 5]);
        for basis in 0..16usize {
            let bits: Vec<bool> = (0..6)
                .map(|q| q < 4 && (basis >> (3 - q)) & 1 == 1)
                .collect();
            let mut sv = StateVector::basis(&bits);
            sv.apply_circuit(&c);
            let idx = sv.argmax().0;
            let amp = sv.amps[idx];
            if basis == 15 {
                assert!(amp.re < -0.99, "missing phase flip on |1111⟩");
            } else {
                assert!(amp.re > 0.99, "spurious flip on {basis:04b}");
            }
        }
    }

    #[test]
    fn grover_finds_square_root() {
        // 4-bit radicand: search x ∈ [0,4) with x² = 9 → x = 3.
        let c = grover_sqrt(4, 9);
        let mut sv = StateVector::zero(c.n_qubits());
        sv.apply_circuit(&c);
        // Marginal over the 2 search qubits: x=3 must dominate.
        let p3 = sv.prob_one(0) + sv.prob_one(1);
        assert!(
            sv.prob_one(0) > 0.5 && sv.prob_one(1) > 0.5,
            "search register not at |11⟩: p0={}, p1={} (sum {p3})",
            sv.prob_one(0),
            sv.prob_one(1)
        );
    }

    #[test]
    fn grover_sqrt_6bit() {
        // 6-bit radicand: x ∈ [0,8) with x² = 25 → x = 5 (101).
        let c = grover_sqrt(6, 25);
        let mut sv = StateVector::zero(c.n_qubits());
        sv.apply_circuit(&c);
        assert!(sv.prob_one(0) > 0.5, "x bit0 (MSB=1 of 101)");
        assert!(sv.prob_one(1) < 0.5, "x bit1 (0 of 101)");
        assert!(sv.prob_one(2) > 0.5, "x bit2 (1 of 101)");
    }

    #[test]
    fn paper_scale_shapes() {
        // Cheap structural checks (no simulation at 1024 qubits).
        let bv = Benchmark::Bv.paper_scale();
        assert_eq!(bv.n_qubits(), 1024);
        let add1 = Benchmark::Add1.paper_scale();
        assert_eq!(add1.n_qubits(), 514);
        let add2 = Benchmark::Add2.paper_scale();
        assert!(add2.n_qubits() <= 1024, "Add2 must fit the grid");
        let qg = Benchmark::Qgan.paper_scale();
        assert_eq!(qg.n_qubits(), 1024);
        let is = Benchmark::Ising.paper_scale();
        assert_eq!(is.n_qubits(), 1024);
        let sq = Benchmark::Sqrt10.paper_scale();
        assert!(sq.n_qubits() < 64);
        // Parallel benchmarks really are more parallel (Fig 9 grouping).
        assert!(qg.parallelism() > 5.0 * bv.parallelism() || qg.parallelism() > 100.0);
        assert!(add2.parallelism() > add1.parallelism());
    }

    #[test]
    fn benchmark_names() {
        assert_eq!(Benchmark::Qgan.name(), "QGAN");
        assert_eq!(ALL_BENCHMARKS.len(), 6);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for b in ALL_BENCHMARKS {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn scaled_instances_fit_their_budget() {
        for budget in [16usize, 64] {
            for b in ALL_BENCHMARKS {
                let c = b.scaled(budget, 7);
                assert!(
                    c.n_qubits() <= budget,
                    "{} at budget {budget} used {} qubits",
                    b.name(),
                    c.n_qubits()
                );
                assert!(!c.is_empty());
            }
        }
    }

    #[test]
    fn scaled_is_deterministic_per_seed() {
        let a = Benchmark::Qgan.scaled(32, 11);
        let b = Benchmark::Qgan.scaled(32, 11);
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Benchmark::Qgan.scaled(32, 12);
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
