//! Lowering to the DigiQ hardware gate set {single-qubit, CZ}.
//!
//! "Each circuit is then decomposed into CZ and single-qubit gates"
//! (§VI-B). The rewrites are the textbook identities:
//!
//! * `CX(c,t) = H(t)·CZ(c,t)·H(t)`
//! * `SWAP(a,b) = CX(a,b)·CX(b,a)·CX(a,b)`
//! * `CCX =` the standard 6-CX + T/T† network (Barenco et al. [23])
//!
//! Lowering is *semantic-preserving by construction* and verified by
//! statevector equivalence in the tests.
//!
//! # Examples
//!
//! ```
//! use qcircuit::ir::Circuit;
//! use qcircuit::lower::lower_to_cz;
//!
//! let mut c = Circuit::new(3);
//! c.ccx(0, 1, 2);
//! let low = lower_to_cz(&c);
//! assert!(low.gates().iter().all(|g| !matches!(g,
//!     qcircuit::ir::Gate::Cx{..} | qcircuit::ir::Gate::Swap{..} |
//!     qcircuit::ir::Gate::Ccx{..})));
//! ```

use crate::ir::{Circuit, Gate, OneQ};

/// Appends `CX(c,t)` as `H(t)·CZ·H(t)`.
fn emit_cx(out: &mut Circuit, c: usize, t: usize) {
    out.h(t);
    out.cz(c, t);
    out.h(t);
}

/// Appends the standard Toffoli decomposition (6 CX, 7 T/T†, 2 H), with
/// each CX further lowered to CZ form.
fn emit_ccx(out: &mut Circuit, c1: usize, c2: usize, t: usize) {
    out.h(t);
    emit_cx(out, c2, t);
    out.tdg(t);
    emit_cx(out, c1, t);
    out.t(t);
    emit_cx(out, c2, t);
    out.tdg(t);
    emit_cx(out, c1, t);
    out.t(c2);
    out.t(t);
    out.h(t);
    emit_cx(out, c1, c2);
    out.t(c1);
    out.tdg(c2);
    emit_cx(out, c1, c2);
}

/// Lowers a circuit to {1q, CZ}: the output contains only
/// [`Gate::OneQ`] and [`Gate::Cz`].
pub fn lower_to_cz(c: &Circuit) -> Circuit {
    let mut out = Circuit::new(c.n_qubits());
    for g in c.gates() {
        match *g {
            Gate::OneQ { q, kind } => out.push(Gate::OneQ { q, kind }),
            Gate::Cz { a, b } => out.cz(a, b),
            Gate::Cx { c: ctl, t } => emit_cx(&mut out, ctl, t),
            Gate::Swap { a, b } => {
                emit_cx(&mut out, a, b);
                emit_cx(&mut out, b, a);
                emit_cx(&mut out, a, b);
            }
            Gate::Ccx { c1, c2, t } => emit_ccx(&mut out, c1, c2, t),
        }
    }
    out
}

/// Returns true when the circuit is already in hardware form.
pub fn is_lowered(c: &Circuit) -> bool {
    c.gates()
        .iter()
        .all(|g| matches!(g, Gate::OneQ { .. } | Gate::Cz { .. }))
}

/// Asserts that a circuit is in hardware form ({1q, CZ} only) — the
/// shared entry guard of every pass that consumes lowered circuits
/// (routing, scheduling, fusion, both execution engines).
///
/// # Panics
///
/// Panics with a typed message naming the offending pass, gate, and gate
/// index when the circuit contains `CX`/`SWAP`/`CCX` gates; run
/// [`lower_to_cz`] first.
pub fn assert_lowered(c: &Circuit, who: &str) {
    if let Some((i, g)) = c
        .gates()
        .iter()
        .enumerate()
        .find(|(_, g)| !matches!(g, Gate::OneQ { .. } | Gate::Cz { .. }))
    {
        panic!("{who} requires a lowered circuit ({{1q, CZ}} only), but gate {i} is `{g}` — run lower_to_cz first");
    }
}

/// Fuses runs of adjacent single-qubit gates on the same qubit into one
/// `U(θ,φ,λ)` gate (the per-cycle unit DigiQ executes, §IV-A2). CZ gates
/// act as barriers. Returns the fused circuit.
pub fn fuse_single_qubit_runs(c: &Circuit) -> Circuit {
    assert_lowered(c, "fuse_single_qubit_runs");
    let mut out = Circuit::new(c.n_qubits());
    // Pending accumulated unitary per qubit.
    let mut pending: Vec<Option<qsim::CMat>> = vec![None; c.n_qubits()];

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<qsim::CMat>>, q: usize| {
        if let Some(m) = pending[q].take() {
            let (theta, phi, lam, _) = qsim::gates::zyz_angles(&m);
            out.push(Gate::OneQ {
                q,
                kind: OneQ::U { theta, phi, lam },
            });
        }
    };

    for g in c.gates() {
        match *g {
            Gate::OneQ { q, kind } => {
                let m = kind.matrix();
                pending[q] = Some(match pending[q].take() {
                    Some(prev) => m.matmul(&prev),
                    None => m,
                });
            }
            Gate::Cz { a, b } => {
                flush(&mut out, &mut pending, a);
                flush(&mut out, &mut pending, b);
                out.cz(a, b);
            }
            _ => panic!("fuse_single_qubit_runs requires a lowered circuit"),
        }
    }
    for q in 0..c.n_qubits() {
        flush(&mut out, &mut pending, q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::StateVector;

    /// Statevector equivalence over all computational basis inputs.
    fn assert_equivalent(a: &Circuit, b: &Circuit, n: usize) {
        for basis in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|q| (basis >> (n - 1 - q)) & 1 == 1).collect();
            let mut sa = StateVector::basis(&bits);
            let mut sb = StateVector::basis(&bits);
            sa.apply_circuit(a);
            sb.apply_circuit(b);
            // Compare up to global phase: find largest amp and align.
            let (ia, _) = sa.argmax();
            let phase = if sb.amps[ia].abs() > 1e-12 {
                sa.amps[ia] / sb.amps[ia]
            } else {
                qsim::C64::ONE
            };
            for i in 0..sa.amps.len() {
                let diff = (sa.amps[i] - sb.amps[i] * phase).abs();
                assert!(diff < 1e-9, "basis {basis}: amp {i} differs by {diff}");
            }
        }
    }

    #[test]
    fn cx_lowering_equivalent() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let low = lower_to_cz(&c);
        assert!(is_lowered(&low));
        assert_equivalent(&c, &low, 2);
    }

    #[test]
    fn swap_lowering_equivalent() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let low = lower_to_cz(&c);
        assert!(is_lowered(&low));
        assert_equivalent(&c, &low, 2);
    }

    #[test]
    fn ccx_lowering_equivalent() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let low = lower_to_cz(&c);
        assert!(is_lowered(&low));
        assert_equivalent(&c, &low, 3);
        // 6 CX → 6 CZ.
        assert_eq!(low.two_qubit_count(), 6);
    }

    #[test]
    fn mixed_circuit_lowering() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.ccx(0, 1, 2);
        c.swap(1, 2);
        c.rz(2, 0.7);
        let low = lower_to_cz(&c);
        assert!(is_lowered(&low));
        assert_equivalent(&c, &low, 3);
    }

    #[test]
    fn lowering_is_idempotent() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cz(0, 1);
        let low = lower_to_cz(&c);
        assert_eq!(low, lower_to_cz(&low));
    }

    #[test]
    fn fusion_reduces_gate_count_and_preserves_semantics() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.t(0);
        c.h(0);
        c.s(1);
        c.cz(0, 1);
        c.x(0);
        c.z(0);
        let low = lower_to_cz(&c);
        let fused = fuse_single_qubit_runs(&low);
        // h,t,h fuse to one U; s stays one U; x,z fuse to one U.
        assert_eq!(fused.len(), 4);
        assert_equivalent(&low, &fused, 2);
    }

    #[test]
    fn fusion_flushes_before_cz() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cz(0, 1);
        let fused = fuse_single_qubit_runs(&c);
        // The H must appear before the CZ.
        assert!(matches!(fused.gates()[0], Gate::OneQ { q: 0, .. }));
        assert!(matches!(fused.gates()[1], Gate::Cz { .. }));
    }

    #[test]
    fn benchmark_lowering_smoke() {
        let add = crate::bench::cuccaro_adder(2);
        let low = lower_to_cz(&add);
        assert!(is_lowered(&low));
        assert_equivalent(&add, &low, add.n_qubits());
    }
}
