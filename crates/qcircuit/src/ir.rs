//! Quantum circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered gate list over `n` qubits, rich enough to
//! express the paper's NISQ benchmarks (Table IV) before compilation:
//! named single-qubit gates, arbitrary rotations, `CX`/`CZ`/`SWAP`, and
//! Toffoli. The DigiQ lowering pass (`crate::lower`) rewrites everything
//! into the hardware set {1q, CZ}.
//!
//! # Examples
//!
//! ```
//! use qcircuit::ir::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cx(0, 1); // Bell pair
//! assert_eq!(c.len(), 2);
//! assert_eq!(c.two_qubit_count(), 1);
//! ```

use std::f64::consts::PI;
use std::fmt;

/// A single-qubit gate kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQ {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate √Z.
    S,
    /// Inverse phase gate.
    Sdg,
    /// π/8 gate √S.
    T,
    /// Inverse π/8 gate.
    Tdg,
    /// Rotation about x by the angle.
    Rx(f64),
    /// Rotation about y by the angle.
    Ry(f64),
    /// Rotation about z by the angle.
    Rz(f64),
    /// General ZYZ unitary `Rz(phi)·Ry(theta)·Rz(lam)`.
    U {
        /// Middle Y-rotation angle.
        theta: f64,
        /// Leading Z-rotation angle.
        phi: f64,
        /// Trailing Z-rotation angle.
        lam: f64,
    },
}

impl OneQ {
    /// The 2×2 matrix of this gate.
    pub fn matrix(self) -> qsim::CMat {
        use qsim::gates as g;
        match self {
            OneQ::H => g::h(),
            OneQ::X => g::x(),
            OneQ::Y => g::y(),
            OneQ::Z => g::z(),
            OneQ::S => g::s(),
            OneQ::Sdg => g::sdg(),
            OneQ::T => g::t(),
            OneQ::Tdg => g::tdg(),
            OneQ::Rx(a) => g::rx(a),
            OneQ::Ry(a) => g::ry(a),
            OneQ::Rz(a) => g::rz(a),
            OneQ::U { theta, phi, lam } => g::u_zyz(theta, phi, lam),
        }
    }

    /// True for gates that are diagonal in the computational basis
    /// (virtualizable as frame updates on microwave hardware; performed by
    /// free-evolution delay on DigiQ, §IV-A2).
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            OneQ::Z | OneQ::S | OneQ::Sdg | OneQ::T | OneQ::Tdg | OneQ::Rz(_)
        )
    }
}

/// A circuit gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Single-qubit gate on `q`.
    OneQ {
        /// Target qubit.
        q: usize,
        /// Gate kind.
        kind: OneQ,
    },
    /// Controlled-X with control `c` and target `t`.
    Cx {
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
    /// Controlled-Z (symmetric).
    Cz {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Swap of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Toffoli (CCX) with controls `c1`, `c2` and target `t`.
    Ccx {
        /// First control.
        c1: usize,
        /// Second control.
        c2: usize,
        /// Target.
        t: usize,
    },
}

/// The qubits of one gate, held inline (no heap allocation) — what the
/// compile-path hot loops (`moments`, the schedulers, the validators)
/// iterate instead of the `Vec` returned by [`Gate::qubits`].
#[derive(Debug, Clone, Copy)]
pub struct GateQubits {
    buf: [usize; 3],
    len: u8,
}

impl GateQubits {
    /// The qubits as a slice (1–3 entries).
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a GateQubits {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Gate {
    /// The qubits this gate touches.
    pub fn qubits(&self) -> Vec<usize> {
        self.qubits_inline().as_slice().to_vec()
    }

    /// The qubits this gate touches, without allocating.
    pub fn qubits_inline(&self) -> GateQubits {
        let (buf, len) = match *self {
            Gate::OneQ { q, .. } => ([q, 0, 0], 1),
            Gate::Cx { c, t } => ([c, t, 0], 2),
            Gate::Cz { a, b } => ([a, b, 0], 2),
            Gate::Swap { a, b } => ([a, b, 0], 2),
            Gate::Ccx { c1, c2, t } => ([c1, c2, t], 3),
        };
        GateQubits { buf, len }
    }

    /// True for any multi-qubit gate.
    pub fn is_multi_qubit(&self) -> bool {
        !matches!(self, Gate::OneQ { .. })
    }
}

fn hash_oneq(kind: OneQ, h: &mut qsim::rng::StableHasher) {
    match kind {
        OneQ::H => h.write_u8(0),
        OneQ::X => h.write_u8(1),
        OneQ::Y => h.write_u8(2),
        OneQ::Z => h.write_u8(3),
        OneQ::S => h.write_u8(4),
        OneQ::Sdg => h.write_u8(5),
        OneQ::T => h.write_u8(6),
        OneQ::Tdg => h.write_u8(7),
        OneQ::Rx(a) => {
            h.write_u8(8);
            h.write_u64(a.to_bits());
        }
        OneQ::Ry(a) => {
            h.write_u8(9);
            h.write_u64(a.to_bits());
        }
        OneQ::Rz(a) => {
            h.write_u8(10);
            h.write_u64(a.to_bits());
        }
        OneQ::U { theta, phi, lam } => {
            h.write_u8(11);
            h.write_u64(theta.to_bits());
            h.write_u64(phi.to_bits());
            h.write_u64(lam.to_bits());
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::OneQ { q, kind } => write!(f, "{kind:?} q{q}"),
            Gate::Cx { c, t } => write!(f, "CX q{c},q{t}"),
            Gate::Cz { a, b } => write!(f, "CZ q{a},q{b}"),
            Gate::Swap { a, b } => write!(f, "SWAP q{a},q{b}"),
            Gate::Ccx { c1, c2, t } => write!(f, "CCX q{c1},q{c2},q{t}"),
        }
    }
}

/// An ordered gate list over a fixed set of qubits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when no gates have been added.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Clears the circuit in place for reuse as a builder over
    /// `n_qubits`, keeping the gate buffer's capacity (the workspace
    /// idiom of the routers: repeated compiles stop reallocating once
    /// the buffer has grown to the largest circuit seen).
    pub fn reset(&mut self, n_qubits: usize) {
        self.n_qubits = n_qubits;
        self.gates.clear();
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any referenced qubit is out of range, or a multi-qubit
    /// gate repeats a qubit.
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits_inline();
        let qs = qs.as_slice();
        for &q in qs {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range {}",
                self.n_qubits
            );
        }
        for i in 0..qs.len() {
            for j in i + 1..qs.len() {
                assert_ne!(qs[i], qs[j], "gate repeats qubit {}", qs[i]);
            }
        }
        self.gates.push(gate);
    }

    /// Structural fingerprint of the circuit, stable across runs,
    /// processes, and toolchains (`qsim::rng::StableHasher`, not std's
    /// release-dependent `DefaultHasher`): qubit count plus every gate
    /// (kind, operands, exact angle bits). Two circuits share a key iff
    /// they are gate-for-gate identical, so the evaluation engine can use
    /// it to memoize compiled artifacts (`digiq_core::engine`).
    pub fn cache_key(&self) -> u64 {
        let mut h = qsim::rng::StableHasher::new();
        h.write_usize(self.n_qubits);
        for g in &self.gates {
            match *g {
                Gate::OneQ { q, kind } => {
                    h.write_u8(0);
                    h.write_usize(q);
                    hash_oneq(kind, &mut h);
                }
                Gate::Cx { c, t } => {
                    h.write_u8(1);
                    h.write_usize(c);
                    h.write_usize(t);
                }
                Gate::Cz { a, b } => {
                    h.write_u8(2);
                    h.write_usize(a);
                    h.write_usize(b);
                }
                Gate::Swap { a, b } => {
                    h.write_u8(3);
                    h.write_usize(a);
                    h.write_usize(b);
                }
                Gate::Ccx { c1, c2, t } => {
                    h.write_u8(4);
                    h.write_usize(c1);
                    h.write_usize(c2);
                    h.write_usize(t);
                }
            }
        }
        h.finish()
    }

    /// Appends every gate of `other` (qubit indices unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend(&mut self, other: &Circuit) {
        assert!(other.n_qubits <= self.n_qubits);
        for &g in other.gates() {
            self.push(g);
        }
    }

    // -- builder conveniences ------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::H });
    }

    /// Pauli X on `q`.
    pub fn x(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::X });
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::Y });
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::Z });
    }

    /// S on `q`.
    pub fn s(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::S });
    }

    /// T on `q`.
    pub fn t(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::T });
    }

    /// T† on `q`.
    pub fn tdg(&mut self, q: usize) {
        self.push(Gate::OneQ { q, kind: OneQ::Tdg });
    }

    /// Rx(angle) on `q`.
    pub fn rx(&mut self, q: usize, angle: f64) {
        self.push(Gate::OneQ {
            q,
            kind: OneQ::Rx(angle),
        });
    }

    /// Ry(angle) on `q`.
    pub fn ry(&mut self, q: usize, angle: f64) {
        self.push(Gate::OneQ {
            q,
            kind: OneQ::Ry(angle),
        });
    }

    /// Rz(angle) on `q`.
    pub fn rz(&mut self, q: usize, angle: f64) {
        self.push(Gate::OneQ {
            q,
            kind: OneQ::Rz(angle),
        });
    }

    /// CX with control `c`, target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.push(Gate::Cx { c, t });
    }

    /// CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.push(Gate::Cz { a, b });
    }

    /// SWAP between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.push(Gate::Swap { a, b });
    }

    /// Toffoli.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) {
        self.push(Gate::Ccx { c1, c2, t });
    }

    // -- analysis ------------------------------------------------------

    /// Count of multi-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_multi_qubit()).count()
    }

    /// Count of single-qubit gates.
    pub fn one_qubit_count(&self) -> usize {
        self.len() - self.two_qubit_count()
    }

    /// ASAP depth: the number of parallel layers when gates on disjoint
    /// qubits may run simultaneously.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits_inline();
            let l = qs.as_slice().iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// ASAP layering: partitions gate indices into parallel moments.
    pub fn moments(&self) -> Vec<Vec<usize>> {
        let mut scratch = MomentScratch::default();
        self.moments_into(&mut scratch);
        scratch.moments.truncate(scratch.active);
        scratch.moments
    }

    /// ASAP layering into reusable scratch buffers: the workspace form
    /// of [`Circuit::moments`] the schedulers run so repeated compiles
    /// stop allocating per dependency level. Read the result with
    /// [`MomentScratch::slots`].
    pub fn moments_into(&self, scratch: &mut MomentScratch) {
        scratch.level.clear();
        scratch.level.resize(self.n_qubits, 0);
        scratch.active = 0;
        for (i, g) in self.gates.iter().enumerate() {
            let qs = g.qubits_inline();
            let l = qs
                .as_slice()
                .iter()
                .map(|&q| scratch.level[q])
                .max()
                .unwrap_or(0);
            for &q in &qs {
                scratch.level[q] = l + 1;
            }
            while scratch.active <= l {
                if scratch.active == scratch.moments.len() {
                    scratch.moments.push(Vec::new());
                } else {
                    scratch.moments[scratch.active].clear();
                }
                scratch.active += 1;
            }
            scratch.moments[l].push(i);
        }
    }

    /// Average gate parallelism: gates per moment.
    pub fn parallelism(&self) -> f64 {
        let d = self.depth();
        if d == 0 {
            0.0
        } else {
            self.len() as f64 / d as f64
        }
    }
}

/// Reusable scratch for [`Circuit::moments_into`]: per-qubit dependency
/// levels plus a pool of moment buckets that grows to the deepest
/// circuit seen and is then reused allocation-free.
#[derive(Debug, Default)]
pub struct MomentScratch {
    level: Vec<usize>,
    moments: Vec<Vec<usize>>,
    active: usize,
}

impl MomentScratch {
    /// The moments of the last [`Circuit::moments_into`] call (gate
    /// indices per parallel layer, in program order).
    pub fn slots(&self) -> &[Vec<usize>] {
        &self.moments[..self.active]
    }
}

/// Statevector simulation of small circuits — the correctness oracle for
/// the benchmark generators (adders add, Grover finds, BV recovers its
/// secret). Practical up to ~20 qubits.
#[derive(Debug, Clone)]
pub struct StateVector {
    n_qubits: usize,
    /// Amplitudes indexed by basis state; qubit 0 is the **most
    /// significant bit** (big-endian, matching `|q0 q1 …⟩` notation).
    pub amps: Vec<qsim::C64>,
}

impl StateVector {
    /// The all-zeros computational basis state.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 26` (amplitude vector would exceed memory).
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 26, "statevector too large");
        let mut amps = vec![qsim::C64::ZERO; 1 << n_qubits];
        amps[0] = qsim::C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// A computational basis state given per-qubit bits (big-endian).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() > 26`.
    pub fn basis(bits: &[bool]) -> Self {
        let mut sv = Self::zero(bits.len());
        sv.amps[0] = qsim::C64::ZERO;
        let mut idx = 0usize;
        for &b in bits {
            idx = (idx << 1) | b as usize;
        }
        sv.amps[idx] = qsim::C64::ONE;
        sv
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn bit_of(&self, q: usize) -> usize {
        // Big-endian: qubit 0 owns the top bit.
        self.n_qubits - 1 - q
    }

    /// Applies a 2×2 unitary to qubit `q`.
    pub fn apply_1q(&mut self, q: usize, m: &qsim::CMat) {
        let bit = 1usize << self.bit_of(q);
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = m00 * a0 + m01 * a1;
                self.amps[j] = m10 * a0 + m11 * a1;
            }
        }
    }

    /// Applies a full circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert!(c.n_qubits() <= self.n_qubits);
        for g in c.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies one gate.
    pub fn apply_gate(&mut self, g: &Gate) {
        match *g {
            Gate::OneQ { q, kind } => self.apply_1q(q, &kind.matrix()),
            Gate::Cx { c, t } => {
                let cb = 1usize << self.bit_of(c);
                let tb = 1usize << self.bit_of(t);
                for i in 0..self.amps.len() {
                    if i & cb != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
            Gate::Cz { a, b } => {
                let ab = 1usize << self.bit_of(a);
                let bb = 1usize << self.bit_of(b);
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb != 0 {
                        self.amps[i] = -self.amps[i];
                    }
                }
            }
            Gate::Swap { a, b } => {
                let ab = 1usize << self.bit_of(a);
                let bb = 1usize << self.bit_of(b);
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ab) | bb);
                    }
                }
            }
            Gate::Ccx { c1, c2, t } => {
                let c1b = 1usize << self.bit_of(c1);
                let c2b = 1usize << self.bit_of(c2);
                let tb = 1usize << self.bit_of(t);
                for i in 0..self.amps.len() {
                    if i & c1b != 0 && i & c2b != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
        }
    }

    /// Probability of measuring basis state `idx` (big-endian).
    pub fn probability(&self, idx: usize) -> f64 {
        self.amps[idx].abs2()
    }

    /// The most likely basis state and its probability.
    pub fn argmax(&self) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.abs2();
            if p > best.1 {
                best = (i, p);
            }
        }
        best
    }

    /// Marginal probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << self.bit_of(q);
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.abs2())
            .sum()
    }

    /// Total norm (should stay 1 under unitary circuits).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.abs2()).sum::<f64>().sqrt()
    }
}

/// Returns angle wrapped into `(−π, π]` — convenient when comparing
/// compiled rotation parameters.
pub fn wrap_angle(a: f64) -> f64 {
    let mut x = a.rem_euclid(2.0 * PI);
    if x > PI {
        x -= 2.0 * PI;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.ccx(0, 1, 2);
        c.rz(2, 0.5);
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.one_qubit_count(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_qubit_rejected() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    #[should_panic]
    fn repeated_qubit_rejected() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn depth_and_moments() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.h(1); // same moment as h(0)
        c.cx(0, 1); // moment 2
        c.h(2); // moment 1
        c.cx(2, 3); // moment 2
        assert_eq!(c.depth(), 2);
        let m = c.moments();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], vec![0, 1, 3]);
        assert_eq!(m[1], vec![2, 4]);
        assert!((c.parallelism() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let mut sv = StateVector::zero(2);
        sv.apply_circuit(&c);
        assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(sv.probability(0b01) < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cz_phase_and_symmetry() {
        // |11⟩ acquires −1; order of arguments irrelevant.
        let mut a = StateVector::basis(&[true, true]);
        a.apply_gate(&Gate::Cz { a: 0, b: 1 });
        assert!((a.amps[3].re + 1.0).abs() < 1e-12);

        let mut b = StateVector::basis(&[true, true]);
        b.apply_gate(&Gate::Cz { a: 1, b: 0 });
        assert!((b.amps[3].re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_truth_table() {
        for (c_in, t_in, t_out) in [
            (false, false, false),
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            let mut sv = StateVector::basis(&[c_in, t_in]);
            sv.apply_gate(&Gate::Cx { c: 0, t: 1 });
            let expect = ((c_in as usize) << 1) | t_out as usize;
            assert!((sv.probability(expect) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ccx_truth_table() {
        for x in 0..8usize {
            let bits = [(x & 4) != 0, (x & 2) != 0, (x & 1) != 0];
            let mut sv = StateVector::basis(&bits);
            sv.apply_gate(&Gate::Ccx { c1: 0, c2: 1, t: 2 });
            let flip = bits[0] && bits[1];
            let expect = (x & !1) | ((bits[2] ^ flip) as usize);
            assert!((sv.probability(expect) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut sv = StateVector::basis(&[true, false]);
        sv.apply_gate(&Gate::Swap { a: 0, b: 1 });
        assert!((sv.probability(0b01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut c1 = Circuit::new(2);
        c1.swap(0, 1);
        let mut c2 = Circuit::new(2);
        c2.cx(0, 1);
        c2.cx(1, 0);
        c2.cx(0, 1);
        for basis in 0..4usize {
            let bits = [(basis & 2) != 0, (basis & 1) != 0];
            let mut a = StateVector::basis(&bits);
            let mut b = StateVector::basis(&bits);
            a.apply_circuit(&c1);
            b.apply_circuit(&c2);
            for i in 0..4 {
                assert!(a.amps[i].approx_eq(b.amps[i], 1e-12));
            }
        }
    }

    #[test]
    fn rotations_behave() {
        // Rx(π)|0⟩ = −i|1⟩.
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::OneQ {
            q: 0,
            kind: OneQ::Rx(PI),
        });
        assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);
        // T is diagonal.
        assert!(OneQ::T.is_diagonal());
        assert!(!OneQ::H.is_diagonal());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn argmax_finds_peak() {
        let mut c = Circuit::new(3);
        c.x(1);
        let mut sv = StateVector::zero(3);
        sv.apply_circuit(&c);
        let (idx, p) = sv.argmax();
        assert_eq!(idx, 0b010);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-PI / 2.0) + PI / 2.0).abs() < 1e-12);
        assert!((wrap_angle(2.0 * PI)).abs() < 1e-12);
    }

    #[test]
    fn cache_key_distinguishes_structure() {
        let mut a = Circuit::new(3);
        a.h(0);
        a.cz(0, 1);
        let mut b = Circuit::new(3);
        b.h(0);
        b.cz(0, 1);
        assert_eq!(a.cache_key(), b.cache_key());

        // Different operand order, gate kind, angle, or width all differ.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cz(1, 0);
        assert_ne!(a.cache_key(), c.cache_key());
        let mut d = Circuit::new(3);
        d.h(0);
        d.cx(0, 1);
        assert_ne!(a.cache_key(), d.cache_key());
        let mut e = Circuit::new(3);
        e.rx(0, 0.5);
        let mut f = Circuit::new(3);
        f.rx(0, 0.5 + 1e-15);
        assert_ne!(e.cache_key(), f.cache_key());
        assert_ne!(
            Circuit::new(2).cache_key(),
            Circuit::new(3).cache_key(),
            "width must be part of the key"
        );
    }
}
