//! Qubit layout and stochastic SWAP routing (§VI-B).
//!
//! Benchmarks are "mapped to a 32×32 square grid via SWAP-gate insertion
//! using the stochastic transpiler pass packaged with Qiskit Terra". This
//! module substitutes our own seeded stochastic router (DESIGN.md
//! substitution #3) with the same contract: after routing, every CZ acts
//! on grid-adjacent physical qubits, and the logical gate sequence is
//! preserved under the evolving layout.
//!
//! The algorithm processes gates in order, and for each non-adjacent CZ
//! greedily inserts SWAPs chosen among the neighbours of the two endpoints
//! — each SWAP must strictly shrink the endpoint distance, with a
//! lookahead bonus for pending gates and seeded random tie-breaking.
//! Multiple trials with different seeds keep the best result.
//!
//! # Examples
//!
//! ```
//! use qcircuit::ir::Circuit;
//! use qcircuit::topology::Grid;
//! use qcircuit::mapping::{Layout, RouterConfig, route};
//!
//! let mut c = Circuit::new(4);
//! c.cz(0, 3);
//! let grid = Grid::new(2, 2);
//! let routed = route(&c, &grid, &Layout::identity(4, 4), &RouterConfig::default());
//! // All CZs now nearest-neighbour.
//! assert!(routed.is_hardware_compliant(&grid));
//! ```

use crate::ir::{Circuit, Gate};
use crate::topology::Grid;
use qsim::rng::StdRng;

/// A logical→physical qubit assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    log_to_phys: Vec<usize>,
    phys_to_log: Vec<Option<usize>>,
}

impl Layout {
    /// Identity layout: logical `i` on physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n_logical > n_physical`.
    pub fn identity(n_logical: usize, n_physical: usize) -> Self {
        assert!(n_logical <= n_physical);
        let mut phys_to_log = vec![None; n_physical];
        for (l, slot) in phys_to_log.iter_mut().take(n_logical).enumerate() {
            *slot = Some(l);
        }
        Layout {
            log_to_phys: (0..n_logical).collect(),
            phys_to_log,
        }
    }

    /// Snake layout: logical `i` on the `i`-th qubit of the grid's
    /// boustrophedon path, so linear-chain circuits need no routing.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the grid has.
    pub fn snake(n_logical: usize, grid: &Grid) -> Self {
        assert!(n_logical <= grid.n_qubits());
        let snake = grid.snake_order();
        let mut phys_to_log = vec![None; grid.n_qubits()];
        let mut log_to_phys = Vec::with_capacity(n_logical);
        for l in 0..n_logical {
            log_to_phys.push(snake[l]);
            phys_to_log[snake[l]] = Some(l);
        }
        Layout {
            log_to_phys,
            phys_to_log,
        }
    }

    /// Builds a layout from an explicit logical→physical table.
    ///
    /// # Panics
    ///
    /// Panics if the table maps two logical qubits to one physical qubit
    /// or indexes out of `n_physical`.
    pub fn from_assignment(log_to_phys: Vec<usize>, n_physical: usize) -> Self {
        let mut phys_to_log = vec![None; n_physical];
        for (l, &p) in log_to_phys.iter().enumerate() {
            assert!(p < n_physical, "physical index out of range");
            assert!(
                phys_to_log[p].is_none(),
                "physical qubit {p} assigned twice"
            );
            phys_to_log[p] = Some(l);
        }
        Layout {
            log_to_phys,
            phys_to_log,
        }
    }

    /// Number of logical qubits.
    pub fn n_logical(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Size of the physical register this layout maps into.
    pub fn n_physical(&self) -> usize {
        self.phys_to_log.len()
    }

    /// The full logical→physical table (`assignment()[l]` is the physical
    /// home of logical qubit `l`) — with [`Layout::n_physical`], enough to
    /// reconstruct the layout via [`Layout::from_assignment`], which is
    /// how the artifact store serializes compiled pipeline stages.
    pub fn assignment(&self) -> &[usize] {
        &self.log_to_phys
    }

    /// Physical home of logical qubit `l`.
    pub fn phys(&self, l: usize) -> usize {
        self.log_to_phys[l]
    }

    /// Logical occupant of physical qubit `p`, if any.
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.phys_to_log[p]
    }

    /// Structural fingerprint of the assignment, stable across runs,
    /// processes, and toolchains (`qsim::rng::StableHasher` over the
    /// logical→physical table and the physical register size). Used with
    /// [`Circuit::cache_key`] by the evaluation engine to memoize routed
    /// circuits.
    pub fn cache_key(&self) -> u64 {
        let mut h = qsim::rng::StableHasher::new();
        h.write_usize(self.phys_to_log.len());
        h.write_usize(self.log_to_phys.len());
        for &p in &self.log_to_phys {
            h.write_usize(p);
        }
        h.finish()
    }

    /// Overwrites `self` with `src`, reusing the existing buffers — the
    /// workspace idiom: once capacities have grown to the largest layout
    /// seen, repeated copies allocate nothing.
    pub fn copy_from(&mut self, src: &Layout) {
        self.log_to_phys.clear();
        self.log_to_phys.extend_from_slice(&src.log_to_phys);
        self.phys_to_log.clear();
        self.phys_to_log.extend_from_slice(&src.phys_to_log);
    }

    /// Applies a SWAP between two physical qubits (either may be empty).
    /// Involutive: applying the same swap twice restores the layout —
    /// the routers score trial swaps with an apply/undo pair instead of
    /// cloning.
    pub fn swap_physical(&mut self, pa: usize, pb: usize) {
        let la = self.phys_to_log[pa];
        let lb = self.phys_to_log[pb];
        if let Some(l) = la {
            self.log_to_phys[l] = pb;
        }
        if let Some(l) = lb {
            self.log_to_phys[l] = pa;
        }
        self.phys_to_log.swap(pa, pb);
    }
}

/// Router options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// RNG seed for tie-breaking.
    pub seed: u64,
    /// Independent routing attempts; the lowest-SWAP result wins.
    pub trials: usize,
    /// How many upcoming 2q gates contribute to the lookahead score.
    pub lookahead: usize,
    /// Weight of the lookahead term.
    pub lookahead_weight: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            seed: 0xD161_0A11,
            trials: 2,
            lookahead: 8,
            lookahead_weight: 0.5,
        }
    }
}

/// A routed circuit: gates rewritten over *physical* qubit indices with
/// explicit SWAPs inserted.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// The physical circuit (indices are grid qubits).
    pub circuit: Circuit,
    /// Layout after the last gate.
    pub final_layout: Layout,
    /// Number of SWAPs inserted.
    pub swap_count: usize,
}

impl RoutedCircuit {
    /// True when every multi-qubit gate acts on grid-adjacent qubits.
    pub fn is_hardware_compliant(&self, grid: &Grid) -> bool {
        self.circuit.gates().iter().all(|g| match *g {
            Gate::OneQ { .. } => true,
            Gate::Cz { a, b } | Gate::Swap { a, b } => grid.are_adjacent(a, b),
            Gate::Cx { c, t } => grid.are_adjacent(c, t),
            Gate::Ccx { .. } => false,
        })
    }
}

/// Reusable scratch for the routers — the allocation-free hot-loop
/// contract of the compile path. Holds the upcoming two-qubit endpoint
/// list, the per-SWAP-iteration window of precomputed front-gate
/// distances, the trial layout driven by [`Layout::swap_physical`]
/// apply/undo pairs, and the output circuit under construction. Buffers
/// grow to the largest circuit routed and are then reused; only the
/// returned [`RoutedCircuit`] (circuit + final layout) is materialized
/// fresh, so a warm route call performs O(1) heap allocations.
///
/// The plain [`route`] / [`route_lookahead`] entry points keep one
/// workspace per thread; [`route_with`] / [`route_lookahead_with`] take
/// an explicit workspace (what the pass pipeline threads through its
/// stages).
#[derive(Debug)]
pub struct RouteWorkspace {
    upcoming: Vec<(usize, usize)>,
    base_d: Vec<usize>,
    layout: Layout,
    out: Circuit,
}

impl Default for RouteWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteWorkspace {
    /// An empty workspace; buffers grow on first use and stay allocated.
    pub fn new() -> Self {
        RouteWorkspace {
            upcoming: Vec::new(),
            base_d: Vec::new(),
            layout: Layout::identity(0, 0),
            out: Circuit::new(0),
        }
    }

    /// Refills the upcoming two-qubit endpoint list and sizes the
    /// window buffer, without allocating once grown.
    fn prepare(&mut self, c: &Circuit, window: usize) {
        self.upcoming.clear();
        self.upcoming
            .extend(c.gates().iter().filter_map(|g| match *g {
                Gate::Cz { a, b } => Some((a, b)),
                _ => None,
            }));
        if self.base_d.len() < window {
            self.base_d.resize(window, 0);
        }
    }
}

thread_local! {
    static ROUTE_WS: std::cell::RefCell<RouteWorkspace> =
        std::cell::RefCell::new(RouteWorkspace::new());
}

/// Routes a lowered circuit onto the grid (see module docs). Runs
/// `cfg.trials` seeded attempts and returns the one with the fewest
/// SWAPs. Uses a per-thread [`RouteWorkspace`], so repeated calls are
/// allocation-free apart from the returned artifact.
///
/// # Panics
///
/// Panics if the circuit contains un-lowered `CX`/`CCX`/`SWAP` gates, or
/// needs more qubits than the grid provides.
pub fn route(c: &Circuit, grid: &Grid, initial: &Layout, cfg: &RouterConfig) -> RoutedCircuit {
    ROUTE_WS.with(|ws| match ws.try_borrow_mut() {
        Ok(mut ws) => route_with(&mut ws, c, grid, initial, cfg),
        // Re-entrant call (route inside route): fall back to a fresh
        // workspace rather than panicking on the double borrow.
        Err(_) => route_with(&mut RouteWorkspace::new(), c, grid, initial, cfg),
    })
}

/// [`route`] with an explicit workspace (the pipeline's form).
///
/// # Panics
///
/// Same contract as [`route`].
pub fn route_with(
    ws: &mut RouteWorkspace,
    c: &Circuit,
    grid: &Grid,
    initial: &Layout,
    cfg: &RouterConfig,
) -> RoutedCircuit {
    crate::lower::assert_lowered(c, "route");
    assert!(c.n_qubits() <= grid.n_qubits());
    ws.prepare(c, cfg.lookahead);
    let mut best: Option<RoutedCircuit> = None;
    for t in 0..cfg.trials.max(1) {
        let swap_count =
            route_once_into(ws, c, grid, initial, cfg.seed.wrapping_add(t as u64), cfg);
        // Strictly-fewer-swaps keeps the FIRST minimal trial, matching
        // the historical selection; only improving trials materialize.
        if best.as_ref().map_or(true, |b| swap_count < b.swap_count) {
            best = Some(RoutedCircuit {
                circuit: ws.out.clone(),
                final_layout: ws.layout.clone(),
                swap_count,
            });
        }
    }
    // Exactly the two materialized output buffers (routed circuit +
    // final layout) per call — losing trials live in the workspace.
    qsim::counters::tally_allocs(2);
    best.expect("at least one trial")
}

/// The deterministic lookahead-window router: the alternative
/// [`RouteStrategy`](crate::pipeline::RouteStrategy) of the pass
/// pipeline.
///
/// Like [`route`] it inserts strictly distance-reducing SWAPs among the
/// neighbours of the current CZ's endpoints (so termination is
/// guaranteed), but the candidate score is dominated by the next `window`
/// pending two-qubit gates (harmonically decayed) instead of the current
/// gate's residual distance, there is no random tie-breaking and no
/// multi-trial search — one fully deterministic attempt.
///
/// # Panics
///
/// Panics if the circuit contains un-lowered `CX`/`CCX`/`SWAP` gates, or
/// needs more qubits than the grid provides.
pub fn route_lookahead(c: &Circuit, grid: &Grid, initial: &Layout, window: usize) -> RoutedCircuit {
    ROUTE_WS.with(|ws| match ws.try_borrow_mut() {
        Ok(mut ws) => route_lookahead_with(&mut ws, c, grid, initial, window),
        Err(_) => route_lookahead_with(&mut RouteWorkspace::new(), c, grid, initial, window),
    })
}

/// [`route_lookahead`] with an explicit workspace (the pipeline's form).
///
/// # Panics
///
/// Same contract as [`route_lookahead`].
pub fn route_lookahead_with(
    ws: &mut RouteWorkspace,
    c: &Circuit,
    grid: &Grid,
    initial: &Layout,
    window: usize,
) -> RoutedCircuit {
    crate::lower::assert_lowered(c, "route");
    assert!(c.n_qubits() <= grid.n_qubits());
    ws.prepare(c, window);
    let RouteWorkspace {
        upcoming,
        base_d,
        layout,
        out,
    } = ws;
    layout.copy_from(initial);
    out.reset(grid.n_qubits());
    let mut swap_count = 0usize;
    let mut next_2q = 0usize;

    for g in c.gates() {
        match *g {
            Gate::OneQ { q, kind } => out.push(Gate::OneQ {
                q: layout.phys(q),
                kind,
            }),
            Gate::Cz { a, b } => {
                loop {
                    let (pa, pb) = (layout.phys(a), layout.phys(b));
                    let d = grid.distance(pa, pb);
                    if d == 1 {
                        break;
                    }
                    // Window front-gate distances, computed once per SWAP
                    // iteration; candidates below patch only the gates
                    // whose endpoints ride the swapped pair.
                    let mut window_len = 0usize;
                    for k in 0..window {
                        let idx = next_2q + 1 + k;
                        if idx >= upcoming.len() {
                            break;
                        }
                        let (x, y) = upcoming[idx];
                        base_d[k] = grid.distance(layout.phys(x), layout.phys(y));
                        window_len = k + 1;
                    }
                    // Best candidate under the window score; ties break on
                    // the (endpoint, neighbour) pair for full determinism.
                    let mut best: Option<(usize, usize, f64)> = None;
                    for &(end, other) in &[(pa, pb), (pb, pa)] {
                        for n in grid.neighbors_iter(end) {
                            let d_after = grid.distance(n, other);
                            if d_after >= d {
                                continue;
                            }
                            // Trial swap applied in place and undone below
                            // (swap_physical is involutive) — no clone.
                            let occ_end = layout.logical(end);
                            let occ_n = layout.logical(n);
                            layout.swap_physical(end, n);
                            // Window cost: the current gate counts as the
                            // window's head, pending gates decay harmonically.
                            let mut score = d_after as f64;
                            for (k, &bd) in base_d.iter().enumerate().take(window_len) {
                                let (x, y) = upcoming[next_2q + 1 + k];
                                let moved = occ_end == Some(x)
                                    || occ_end == Some(y)
                                    || occ_n == Some(x)
                                    || occ_n == Some(y);
                                let dk = if moved {
                                    grid.distance(layout.phys(x), layout.phys(y))
                                } else {
                                    bd
                                };
                                score += dk as f64 / (k + 2) as f64;
                                qsim::counters::tally_flops(2); // divide + accumulate
                            }
                            layout.swap_physical(end, n); // undo
                            let better = match best {
                                None => true,
                                Some((be, bn, bs)) => {
                                    score < bs || (score == bs && (end, n) < (be, bn))
                                }
                            };
                            if better {
                                best = Some((end, n, score));
                            }
                        }
                    }
                    let (x, y, _) = best.expect("a distance-reducing swap always exists on a grid");
                    out.swap(x, y);
                    layout.swap_physical(x, y);
                    swap_count += 1;
                }
                out.cz(layout.phys(a), layout.phys(b));
                next_2q += 1;
            }
            _ => panic!("route requires a lowered circuit (1q + CZ only)"),
        }
    }

    qsim::counters::tally_allocs(2); // materialized routed circuit + final layout
    RoutedCircuit {
        circuit: out.clone(),
        final_layout: layout.clone(),
        swap_count,
    }
}

/// One greedy trial, built into the workspace's `out`/`layout` buffers.
/// Returns the trial's SWAP count; the caller materializes the winner.
fn route_once_into(
    ws: &mut RouteWorkspace,
    c: &Circuit,
    grid: &Grid,
    initial: &Layout,
    seed: u64,
    cfg: &RouterConfig,
) -> usize {
    let RouteWorkspace {
        upcoming,
        base_d,
        layout,
        out,
    } = ws;
    let mut rng = StdRng::seed_from_u64(seed);
    layout.copy_from(initial);
    out.reset(grid.n_qubits());
    let mut swap_count = 0usize;
    let mut next_2q = 0usize; // index into `upcoming` of the current gate

    for g in c.gates() {
        match *g {
            Gate::OneQ { q, kind } => out.push(Gate::OneQ {
                q: layout.phys(q),
                kind,
            }),
            Gate::Cz { a, b } => {
                // Insert SWAPs until adjacent.
                loop {
                    let (pa, pb) = (layout.phys(a), layout.phys(b));
                    let d = grid.distance(pa, pb);
                    if d == 1 {
                        break;
                    }
                    // Window front-gate distances, once per SWAP iteration
                    // instead of once per candidate.
                    let mut window_len = 0usize;
                    for k in 0..cfg.lookahead {
                        let idx = next_2q + 1 + k;
                        if idx >= upcoming.len() {
                            break;
                        }
                        let (x, y) = upcoming[idx];
                        base_d[k] = grid.distance(layout.phys(x), layout.phys(y));
                        window_len = k + 1;
                    }
                    // Candidate swaps: neighbours of either endpoint that
                    // strictly reduce the endpoint distance. The running
                    // strictly-less best keeps the FIRST minimal score —
                    // exactly what `min_by` over the candidate list
                    // returned — and the RNG draws stay in candidate
                    // order, so results are bit-identical.
                    let mut best: Option<(usize, usize, f64)> = None;
                    for &(end, other) in &[(pa, pb), (pb, pa)] {
                        for n in grid.neighbors_iter(end) {
                            let d_after = grid.distance(n, other);
                            if d_after < d {
                                // Lookahead: how do pending gates like it?
                                // Trial swap applied in place, undone after
                                // scoring (swap_physical is involutive).
                                let occ_end = layout.logical(end);
                                let occ_n = layout.logical(n);
                                layout.swap_physical(end, n);
                                let mut la = 0.0;
                                for (k, &bd) in base_d.iter().enumerate().take(window_len) {
                                    let (x, y) = upcoming[next_2q + 1 + k];
                                    let moved = occ_end == Some(x)
                                        || occ_end == Some(y)
                                        || occ_n == Some(x)
                                        || occ_n == Some(y);
                                    let dk = if moved {
                                        grid.distance(layout.phys(x), layout.phys(y))
                                    } else {
                                        bd
                                    };
                                    la += dk as f64 / (k + 1) as f64;
                                    qsim::counters::tally_flops(2); // divide + accumulate
                                }
                                layout.swap_physical(end, n); // undo
                                let score = d_after as f64
                                    + cfg.lookahead_weight * la
                                    + rng.gen::<f64>() * 1e-3;
                                // Weight multiply, two adds, tie-break scale.
                                qsim::counters::tally_flops(4);
                                if best.map_or(true, |(_, _, bs)| score < bs) {
                                    best = Some((end, n, score));
                                }
                            }
                        }
                    }
                    let (x, y, _) = best.expect("a distance-reducing swap always exists on a grid");
                    out.swap(x, y);
                    layout.swap_physical(x, y);
                    swap_count += 1;
                }
                out.cz(layout.phys(a), layout.phys(b));
                next_2q += 1;
            }
            _ => panic!("route requires a lowered circuit (1q + CZ only)"),
        }
    }

    swap_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::lower::lower_to_cz;

    #[test]
    fn layout_identity_and_snake() {
        let grid = Grid::new(4, 4);
        let id = Layout::identity(8, 16);
        assert_eq!(id.phys(3), 3);
        assert_eq!(id.logical(3), Some(3));
        assert_eq!(id.logical(12), None);

        let snake = Layout::snake(8, &grid);
        // Consecutive logical qubits are physically adjacent.
        for l in 0..7 {
            assert!(grid.are_adjacent(snake.phys(l), snake.phys(l + 1)));
        }
    }

    #[test]
    fn layout_swap_physical() {
        let mut l = Layout::identity(2, 4);
        l.swap_physical(0, 3);
        assert_eq!(l.phys(0), 3);
        assert_eq!(l.logical(3), Some(0));
        assert_eq!(l.logical(0), None);
        // Swapping two empties is a no-op.
        l.swap_physical(0, 2);
        assert_eq!(l.logical(0), None);
    }

    #[test]
    #[should_panic]
    fn from_assignment_rejects_collision() {
        let _ = Layout::from_assignment(vec![1, 1], 4);
    }

    #[test]
    fn adjacent_gate_needs_no_swaps() {
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        let grid = Grid::new(2, 2);
        let r = route(&c, &grid, &Layout::identity(2, 4), &RouterConfig::default());
        assert_eq!(r.swap_count, 0);
        assert_eq!(r.circuit.len(), 1);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.cz(0, 15); // opposite corners, distance 6
        let r = route(
            &c,
            &grid,
            &Layout::identity(16, 16),
            &RouterConfig::default(),
        );
        assert!(r.is_hardware_compliant(&grid));
        assert!(r.swap_count >= 5, "needs ≥5 swaps, got {}", r.swap_count);
        // Routed circuit ends with the CZ.
        assert!(matches!(r.circuit.gates().last(), Some(Gate::Cz { .. })));
    }

    #[test]
    fn routing_preserves_semantics_small() {
        // 2×2 grid, a circuit with non-adjacent CZ (0,3 are diagonal).
        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cz(0, 3);
        c.h(3);
        c.cz(1, 2);
        let r = route(&c, &grid, &Layout::identity(4, 4), &RouterConfig::default());
        assert!(r.is_hardware_compliant(&grid));

        // Simulate both; account for the final layout permutation.
        use crate::ir::StateVector;
        let mut logical = StateVector::zero(4);
        logical.apply_circuit(&c);
        let mut physical = StateVector::zero(4);
        physical.apply_circuit(&r.circuit);
        // Check per-qubit marginals through the layout.
        for l in 0..4 {
            let p = r.final_layout.phys(l);
            assert!(
                (logical.prob_one(l) - physical.prob_one(p)).abs() < 1e-9,
                "marginal mismatch on logical {l}"
            );
        }
    }

    #[test]
    fn snake_layout_makes_chains_swap_free() {
        let grid = Grid::new(8, 8);
        let chain = lower_to_cz(&bench::ising_chain(64, 1, 0.3, 0.7));
        let r = route(
            &chain,
            &grid,
            &Layout::snake(64, &grid),
            &RouterConfig::default(),
        );
        assert_eq!(r.swap_count, 0, "snake-embedded chain needs no swaps");
    }

    #[test]
    fn bv_routing_is_heavy() {
        // All CXs funnel into one ancilla: routing cost must be
        // substantial (this drives BV's serialization in Fig 9).
        let grid = Grid::new(6, 6);
        let secret: Vec<bool> = (0..31).map(|i| i % 2 == 0).collect();
        let c = lower_to_cz(&bench::bernstein_vazirani(&secret));
        let r = route(
            &c,
            &grid,
            &Layout::snake(32, &grid),
            &RouterConfig::default(),
        );
        assert!(r.is_hardware_compliant(&grid));
        assert!(r.swap_count > 20, "swap count {}", r.swap_count);
    }

    #[test]
    fn trials_pick_the_best() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        for i in 0..8 {
            c.cz(i, 15 - i);
        }
        let c = lower_to_cz(&c);
        let single = route(
            &c,
            &grid,
            &Layout::identity(16, 16),
            &RouterConfig {
                trials: 1,
                ..RouterConfig::default()
            },
        );
        let multi = route(
            &c,
            &grid,
            &Layout::identity(16, 16),
            &RouterConfig {
                trials: 6,
                ..RouterConfig::default()
            },
        );
        assert!(multi.swap_count <= single.swap_count);
    }

    #[test]
    fn determinism_by_seed() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.cz(0, 15);
        c.cz(3, 12);
        let cfg = RouterConfig::default();
        let a = route(&c, &grid, &Layout::identity(16, 16), &cfg);
        let b = route(&c, &grid, &Layout::identity(16, 16), &cfg);
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn layout_cache_key_tracks_assignment() {
        let grid = Grid::new(4, 4);
        assert_eq!(
            Layout::snake(8, &grid).cache_key(),
            Layout::snake(8, &grid).cache_key()
        );
        assert_ne!(
            Layout::snake(8, &grid).cache_key(),
            Layout::identity(8, 16).cache_key()
        );
        // Same table over a different physical register differs too.
        assert_ne!(
            Layout::identity(4, 8).cache_key(),
            Layout::identity(4, 16).cache_key()
        );
    }
}
