//! # qcircuit — circuit IR, NISQ benchmarks and compilation for DigiQ
//!
//! The software side of the paper's evaluation pipeline (§VI-B), from
//! algorithm to hardware-shaped schedule:
//!
//! 1. [`bench`] — algorithmically generated benchmark circuits (Table IV:
//!    QGAN, Ising, BV, two 256-bit adders, Grover square root);
//! 2. [`lower`] — decomposition into the {1q, CZ} hardware set;
//! 3. [`topology`] / [`mapping`] — the 32×32 grid and stochastic SWAP
//!    routing;
//! 4. [`schedule`] — crosstalk-aware (and plain ASAP) grouping of
//!    commuting CZs and noise-adaptive layout;
//! 5. [`pipeline`] — the unified compiler pass pipeline: the above as
//!    named, fingerprinted, individually cacheable [`pipeline::Pass`]es
//!    with per-pass metrics and pluggable routing/scheduling strategies;
//! 6. [`ir`] — the gate/circuit types plus a statevector simulator used
//!    as the correctness oracle for everything above.
//!
//! ## Quickstart
//!
//! ```
//! use qcircuit::bench::ising_chain;
//! use qcircuit::lower::lower_to_cz;
//! use qcircuit::mapping::{route, Layout, RouterConfig};
//! use qcircuit::schedule::schedule_crosstalk_aware;
//! use qcircuit::topology::Grid;
//!
//! let grid = Grid::new(4, 4);
//! let circuit = lower_to_cz(&ising_chain(16, 1, 0.3, 0.7));
//! let routed = route(&circuit, &grid, &Layout::snake(16, &grid),
//!                    &RouterConfig::default());
//! let slots = schedule_crosstalk_aware(&routed.circuit, &grid);
//! assert!(!slots.is_empty());
//! ```

pub mod bench;
pub mod ir;
pub mod lower;
pub mod mapping;
pub mod pipeline;
pub mod schedule;
pub mod topology;

pub use ir::{Circuit, Gate, OneQ};
pub use pipeline::{Pipeline, PipelineConfig};
pub use topology::Grid;
