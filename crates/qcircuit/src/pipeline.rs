//! The unified compiler pass pipeline (§VI-B as composable passes).
//!
//! Every evaluation mode compiles benchmarks through the same sequence —
//! lower → route → lower SWAPs → schedule — and this module turns that
//! sequence into named, fingerprinted, individually cacheable passes:
//!
//! * [`Pass`] — one rewrite over a [`CompileArtifact`], with a stable
//!   fingerprint (for stage-granular cache keys) and a post-run
//!   validation hook;
//! * [`Pipeline`] — an ordered list of labelled passes, with per-pass
//!   [`PassMetrics`] (wall time, gate/SWAP/slot deltas) recorded on
//!   every run;
//! * [`PipelineConfig`] — the pluggable strategy selection: routing via
//!   [`RouteStrategy`] (seeded greedy, or the deterministic
//!   lookahead-window router) and scheduling via [`ScheduleStrategy`]
//!   (crosstalk-aware, or plain crosstalk-oblivious ASAP), plus optional
//!   single-qubit run fusion.
//!
//! The **default** pipeline is behaviour-identical to the historical
//! inline sequence in `digiq_core::{engine, system}` — same circuits,
//! same slots, byte-for-byte identical golden reports. The scheduler's
//! post-validate hook runs [`crate::schedule::validate_schedule`] (full,
//! including CZ interference, for the crosstalk-aware strategy;
//! structural only for the deliberately crosstalk-oblivious ASAP
//! strategy), so every configuration is checked on every compile, not
//! just under test.
//!
//! # Examples
//!
//! ```
//! use qcircuit::bench::ising_chain;
//! use qcircuit::mapping::Layout;
//! use qcircuit::pipeline::{CompileArtifact, Pipeline, PipelineConfig};
//! use qcircuit::topology::Grid;
//!
//! let grid = Grid::new(4, 4);
//! let circuit = ising_chain(16, 1, 0.3, 0.7);
//! let art = CompileArtifact::new(circuit, Layout::snake(16, &grid));
//! let pipeline = Pipeline::standard(&PipelineConfig::default());
//! let (out, metrics) = pipeline.run(art, &grid).unwrap();
//! assert_eq!(metrics.len(), 4); // lower, route, lower_swaps, schedule
//! assert!(!out.scheduled().is_empty());
//! ```

use crate::ir::Circuit;
use crate::lower::{fuse_single_qubit_runs, lower_to_cz};
use crate::mapping::{route_lookahead_with, route_with, Layout, RouteWorkspace, RouterConfig};
use crate::schedule::{
    schedule_asap, schedule_crosstalk_aware_with, validate_schedule_structural_with,
    validate_schedule_with, ScheduleWorkspace, Slot, ValidateWorkspace,
};
use crate::topology::Grid;
use qsim::rng::StableHasher;

/// Reusable scratch shared by every pass of a pipeline run: the router's
/// trial layout and candidate buffers, the scheduler's moment layering
/// and colour-group pool, and the validator's stamp tables. A warm
/// workspace makes a full [`Pipeline::standard`] compile allocate only
/// its materialized outputs (routed circuit, final layout, slot list).
///
/// [`Pipeline::run`] keeps one per thread; [`Pipeline::run_with`] takes
/// an explicit one for callers that manage their own reuse.
#[derive(Debug, Default)]
pub struct CompileWorkspace {
    /// Router scratch ([`route_with`] / [`route_lookahead_with`]).
    pub route: RouteWorkspace,
    /// Scheduler scratch ([`schedule_crosstalk_aware_with`]).
    pub schedule: ScheduleWorkspace,
    /// Validator scratch ([`validate_schedule_with`]).
    pub validate: ValidateWorkspace,
}

impl CompileWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static COMPILE_WS: std::cell::RefCell<CompileWorkspace> =
        std::cell::RefCell::new(CompileWorkspace::new());
}

/// The artifact a pipeline threads through its passes: the circuit in its
/// current form plus everything routing and scheduling accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileArtifact {
    /// The circuit in its current (possibly physical) form.
    pub circuit: Circuit,
    /// Gate count of the original logical input.
    pub logical_gates: usize,
    /// Cumulative SWAPs inserted by routing passes.
    pub swaps: usize,
    /// The layout routing starts from.
    pub initial_layout: Layout,
    /// The layout after the last routed gate (equals `initial_layout`
    /// until a routing pass runs).
    pub final_layout: Layout,
    /// Schedule slots, present once a scheduling pass has run.
    pub slots: Option<Vec<Slot>>,
}

impl CompileArtifact {
    /// Wraps a logical circuit and its initial layout as pipeline input.
    pub fn new(circuit: Circuit, initial_layout: Layout) -> Self {
        CompileArtifact {
            logical_gates: circuit.len(),
            swaps: 0,
            final_layout: initial_layout.clone(),
            initial_layout,
            circuit,
            slots: None,
        }
    }

    /// The schedule produced by the pipeline's scheduling pass.
    ///
    /// # Panics
    ///
    /// Panics if no scheduling pass has run yet.
    pub fn scheduled(&self) -> &[Slot] {
        self.slots
            .as_deref()
            .expect("artifact has no schedule — run a scheduling pass first")
    }

    /// Stable fingerprint of the pipeline *input* (circuit, initial
    /// layout, grid): the root every stage cache key is chained from.
    pub fn input_key(circuit: &Circuit, initial_layout: &Layout, grid: &Grid) -> u64 {
        qsim::rng::stable_hash(&[
            circuit.cache_key(),
            initial_layout.cache_key(),
            grid.rows() as u64,
            grid.cols() as u64,
        ])
    }
}

/// Stable fingerprint helper: hashes a pass name plus its configuration
/// words through the repo's pinned [`StableHasher`].
fn pass_fingerprint(name: &str, params: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for b in name.bytes() {
        h.write_u8(b);
    }
    h.write_usize(params.len());
    for &p in params {
        h.write_u64(p);
    }
    h.finish()
}

/// One compiler pass: a named, fingerprinted rewrite of a
/// [`CompileArtifact`] with an optional post-run validation hook.
pub trait Pass: Send + Sync {
    /// Short machine-readable pass name (`lower`, `route`, …).
    fn name(&self) -> &'static str;

    /// Stable fingerprint of the pass identity *and* its configuration —
    /// identical across processes and toolchains, distinct for distinct
    /// strategies or parameters. Stage cache keys chain these.
    fn fingerprint(&self) -> u64;

    /// Applies the rewrite. `ws` is the run's shared scratch; passes may
    /// freely clobber the sub-workspaces they use.
    ///
    /// # Errors
    ///
    /// Returns a description of why the pass cannot apply.
    fn run(
        &self,
        artifact: &mut CompileArtifact,
        grid: &Grid,
        ws: &mut CompileWorkspace,
    ) -> Result<(), String>;

    /// Checks the pass's own output contract (the pipeline calls this
    /// after every [`Pass::run`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn post_validate(
        &self,
        _artifact: &CompileArtifact,
        _grid: &Grid,
        _ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        Ok(())
    }
}

/// Lowers the artifact's circuit to the {1q, CZ} hardware set.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &'static str {
        "lower"
    }

    fn fingerprint(&self) -> u64 {
        pass_fingerprint("lower", &[1])
    }

    fn run(
        &self,
        artifact: &mut CompileArtifact,
        _grid: &Grid,
        _ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        artifact.circuit = lower_to_cz(&artifact.circuit);
        Ok(())
    }

    fn post_validate(
        &self,
        artifact: &CompileArtifact,
        _grid: &Grid,
        _ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        if crate::lower::is_lowered(&artifact.circuit) {
            Ok(())
        } else {
            Err("lower pass left non-{1q, CZ} gates behind".to_string())
        }
    }
}

/// Fuses runs of adjacent single-qubit gates into one `U(θ,φ,λ)` per run
/// (the per-cycle unit DigiQ executes). Off in the default pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusePass;

impl Pass for FusePass {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn fingerprint(&self) -> u64 {
        pass_fingerprint("fuse", &[1])
    }

    fn run(
        &self,
        artifact: &mut CompileArtifact,
        _grid: &Grid,
        _ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        artifact.circuit = fuse_single_qubit_runs(&artifact.circuit);
        Ok(())
    }

    fn post_validate(
        &self,
        artifact: &CompileArtifact,
        _grid: &Grid,
        _ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        if crate::lower::is_lowered(&artifact.circuit) {
            Ok(())
        } else {
            Err("fuse pass left non-{1q, CZ} gates behind".to_string())
        }
    }
}

/// SWAP-insertion strategy of the routing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteStrategy {
    /// The seeded stochastic greedy router ([`route`]): strictly
    /// distance-reducing swaps, random tie-breaking, best of
    /// [`RouterConfig::trials`] attempts. The paper-default strategy.
    Greedy,
    /// The deterministic lookahead-window router
    /// ([`route_lookahead`]): one attempt, no randomness, candidates
    /// scored over the next `window` two-qubit gates.
    Lookahead {
        /// How many upcoming 2q gates contribute to the score.
        window: usize,
    },
}

/// Default window of the lookahead router.
pub const DEFAULT_LOOKAHEAD_WINDOW: usize = 16;

impl RouteStrategy {
    /// Display / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RouteStrategy::Greedy => "greedy",
            RouteStrategy::Lookahead { .. } => "lookahead",
        }
    }

    /// Parses a `--router` flag value.
    ///
    /// # Errors
    ///
    /// Returns the list of accepted names on an unknown value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(RouteStrategy::Greedy),
            "lookahead" => Ok(RouteStrategy::Lookahead {
                window: DEFAULT_LOOKAHEAD_WINDOW,
            }),
            other => Err(format!(
                "unknown router `{other}` (expected `greedy` or `lookahead`)"
            )),
        }
    }
}

/// Routes the artifact onto the grid from its initial layout, recording
/// inserted SWAPs and the final layout.
#[derive(Debug, Clone, Copy)]
pub struct RoutePass {
    /// Which SWAP-selection strategy to run.
    pub strategy: RouteStrategy,
}

impl Pass for RoutePass {
    fn name(&self) -> &'static str {
        "route"
    }

    fn fingerprint(&self) -> u64 {
        let cfg = RouterConfig::default();
        match self.strategy {
            RouteStrategy::Greedy => pass_fingerprint(
                "route/greedy",
                &[
                    cfg.seed,
                    cfg.trials as u64,
                    cfg.lookahead as u64,
                    cfg.lookahead_weight.to_bits(),
                ],
            ),
            RouteStrategy::Lookahead { window } => {
                pass_fingerprint("route/lookahead", &[window as u64])
            }
        }
    }

    fn run(
        &self,
        artifact: &mut CompileArtifact,
        grid: &Grid,
        ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        if artifact.circuit.n_qubits() > grid.n_qubits() {
            return Err(format!(
                "circuit needs {} qubits but the grid has {}",
                artifact.circuit.n_qubits(),
                grid.n_qubits()
            ));
        }
        let routed = match self.strategy {
            RouteStrategy::Greedy => route_with(
                &mut ws.route,
                &artifact.circuit,
                grid,
                &artifact.initial_layout,
                &RouterConfig::default(),
            ),
            RouteStrategy::Lookahead { window } => route_lookahead_with(
                &mut ws.route,
                &artifact.circuit,
                grid,
                &artifact.initial_layout,
                window,
            ),
        };
        artifact.swaps += routed.swap_count;
        artifact.final_layout = routed.final_layout;
        artifact.circuit = routed.circuit;
        Ok(())
    }

    fn post_validate(
        &self,
        artifact: &CompileArtifact,
        grid: &Grid,
        _ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        let compliant = artifact.circuit.gates().iter().all(|g| match *g {
            crate::ir::Gate::OneQ { .. } => true,
            crate::ir::Gate::Cz { a, b } | crate::ir::Gate::Swap { a, b } => {
                grid.are_adjacent(a, b)
            }
            _ => false,
        });
        if compliant {
            Ok(())
        } else {
            Err("routed circuit contains a non-nearest-neighbour gate".to_string())
        }
    }
}

/// Slot-grouping strategy of the scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleStrategy {
    /// Crosstalk-aware grouping ([`schedule_crosstalk_aware`]): CZs in a
    /// slot are pairwise non-interfering. The paper-default strategy.
    CrosstalkAware,
    /// Plain ASAP moments ([`schedule_asap`]): crosstalk-oblivious — its
    /// slots may contain interfering CZ pairs (rejected by the full
    /// [`validate_schedule`], see the strategy-discrimination tests).
    Asap,
}

impl ScheduleStrategy {
    /// Display / CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleStrategy::CrosstalkAware => "crosstalk",
            ScheduleStrategy::Asap => "asap",
        }
    }

    /// Parses a `--scheduler` flag value.
    ///
    /// # Errors
    ///
    /// Returns the list of accepted names on an unknown value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "crosstalk" => Ok(ScheduleStrategy::CrosstalkAware),
            "asap" => Ok(ScheduleStrategy::Asap),
            other => Err(format!(
                "unknown scheduler `{other}` (expected `crosstalk` or `asap`)"
            )),
        }
    }
}

/// Schedules the artifact into slots; post-validation runs the schedule
/// validator appropriate to the strategy's contract.
#[derive(Debug, Clone, Copy)]
pub struct SchedulePass {
    /// Which grouping strategy to run.
    pub strategy: ScheduleStrategy,
}

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn fingerprint(&self) -> u64 {
        match self.strategy {
            ScheduleStrategy::CrosstalkAware => pass_fingerprint("schedule/crosstalk", &[1]),
            ScheduleStrategy::Asap => pass_fingerprint("schedule/asap", &[1]),
        }
    }

    fn run(
        &self,
        artifact: &mut CompileArtifact,
        grid: &Grid,
        ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        artifact.slots = Some(match self.strategy {
            ScheduleStrategy::CrosstalkAware => {
                schedule_crosstalk_aware_with(&mut ws.schedule, &artifact.circuit, grid)
            }
            ScheduleStrategy::Asap => schedule_asap(&artifact.circuit),
        });
        Ok(())
    }

    /// The crosstalk-aware strategy promises interference-free slots and
    /// is held to the full [`crate::schedule::validate_schedule`]; the
    /// ASAP strategy is crosstalk-oblivious by contract, so it is checked
    /// structurally (every gate once, disjoint qubits, program order)
    /// only.
    fn post_validate(
        &self,
        artifact: &CompileArtifact,
        grid: &Grid,
        ws: &mut CompileWorkspace,
    ) -> Result<(), String> {
        let slots = artifact
            .slots
            .as_deref()
            .ok_or("scheduling pass produced no slots")?;
        match self.strategy {
            ScheduleStrategy::CrosstalkAware => {
                validate_schedule_with(&mut ws.validate, &artifact.circuit, grid, slots)
            }
            ScheduleStrategy::Asap => {
                validate_schedule_structural_with(&mut ws.validate, &artifact.circuit, slots)
            }
        }
    }
}

/// Strategy selection for the standard pipeline, carried by sweep specs
/// and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Routing strategy.
    pub router: RouteStrategy,
    /// Scheduling strategy.
    pub scheduler: ScheduleStrategy,
    /// Insert a single-qubit fusion pass between SWAP lowering and
    /// scheduling.
    pub fuse: bool,
}

impl Default for PipelineConfig {
    /// The paper-default pipeline: greedy routing, crosstalk-aware
    /// scheduling, no fusion — behaviour-identical to the historical
    /// inline compile sequence.
    fn default() -> Self {
        PipelineConfig {
            router: RouteStrategy::Greedy,
            scheduler: ScheduleStrategy::CrosstalkAware,
            fuse: false,
        }
    }
}

impl PipelineConfig {
    /// Replaces the routing strategy.
    #[must_use]
    pub fn with_router(mut self, router: RouteStrategy) -> Self {
        self.router = router;
        self
    }

    /// Replaces the scheduling strategy.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: ScheduleStrategy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables the fusion pass.
    #[must_use]
    pub fn with_fuse(mut self) -> Self {
        self.fuse = true;
        self
    }

    /// Stable fingerprint of the whole configuration — the chain of its
    /// passes' fingerprints (used in compile cache keys).
    pub fn fingerprint(&self) -> u64 {
        let pipeline = Pipeline::standard(self);
        let mut h = StableHasher::new();
        for stage in pipeline.stages() {
            h.write_u64(stage.pass().fingerprint());
        }
        h.finish()
    }
}

/// One labelled position in a pipeline. Labels disambiguate repeated
/// passes (the standard pipeline lowers twice: `lower`, `lower_swaps`).
pub struct Stage {
    label: String,
    pass: Box<dyn Pass>,
}

impl Stage {
    /// Creates a labelled stage.
    pub fn new(label: impl Into<String>, pass: Box<dyn Pass>) -> Self {
        Stage {
            label: label.into(),
            pass,
        }
    }

    /// The stage's display / cache-accounting label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The wrapped pass.
    pub fn pass(&self) -> &dyn Pass {
        &*self.pass
    }

    /// Runs the pass and its post-validation, timing the run and
    /// recording gate/SWAP/slot deltas.
    ///
    /// # Errors
    ///
    /// Returns the pass's own error or the first post-validation
    /// violation, prefixed with the stage label.
    pub fn run_timed(
        &self,
        artifact: &mut CompileArtifact,
        grid: &Grid,
        ws: &mut CompileWorkspace,
    ) -> Result<PassMetrics, String> {
        let gates_before = artifact.circuit.len();
        let swaps_before = artifact.swaps;
        let slots_before = artifact.slots.as_ref().map(Vec::len);
        let t0 = std::time::Instant::now();
        self.pass
            .run(artifact, grid, ws)
            .map_err(|e| format!("pass `{}` failed: {e}", self.label))?;
        let wall_ns = t0.elapsed().as_nanos() as f64;
        self.pass
            .post_validate(artifact, grid, ws)
            .map_err(|e| format!("pass `{}` post-validation failed: {e}", self.label))?;
        Ok(PassMetrics {
            pass: self.label.clone(),
            wall_ns,
            gates_before,
            gates_after: artifact.circuit.len(),
            swaps_before,
            swaps_after: artifact.swaps,
            slots_before,
            slots_after: artifact.slots.as_ref().map(Vec::len),
        })
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stage({})", self.label)
    }
}

/// Per-pass accounting of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PassMetrics {
    /// Stage label.
    pub pass: String,
    /// Wall-clock spent in [`Pass::run`] (excludes validation),
    /// nanoseconds.
    pub wall_ns: f64,
    /// Gate count entering the pass.
    pub gates_before: usize,
    /// Gate count leaving the pass.
    pub gates_after: usize,
    /// Cumulative SWAPs entering the pass.
    pub swaps_before: usize,
    /// Cumulative SWAPs leaving the pass.
    pub swaps_after: usize,
    /// Slot count entering the pass (`None` before any scheduler).
    pub slots_before: Option<usize>,
    /// Slot count leaving the pass.
    pub slots_after: Option<usize>,
}

impl PassMetrics {
    /// Signed gate-count delta of the pass.
    pub fn gate_delta(&self) -> i64 {
        self.gates_after as i64 - self.gates_before as i64
    }

    /// SWAPs this pass inserted.
    pub fn swap_delta(&self) -> usize {
        self.swaps_after - self.swaps_before
    }
}

/// An ordered, labelled pass sequence over one [`CompileArtifact`].
#[derive(Debug)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Composes a pipeline from labelled stages.
    ///
    /// # Panics
    ///
    /// Panics on an empty stage list or duplicate labels (labels key
    /// per-pass caches and metrics).
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "a pipeline needs at least one stage");
        for i in 1..stages.len() {
            assert!(
                stages[..i].iter().all(|s| s.label != stages[i].label),
                "duplicate stage label `{}`",
                stages[i].label
            );
        }
        Pipeline { stages }
    }

    /// The standard §VI-B pipeline for a strategy selection:
    /// `lower → route → lower_swaps [→ fuse] → schedule`.
    pub fn standard(cfg: &PipelineConfig) -> Self {
        let mut stages = vec![
            Stage::new("lower", Box::new(LowerPass) as Box<dyn Pass>),
            Stage::new(
                "route",
                Box::new(RoutePass {
                    strategy: cfg.router,
                }),
            ),
            Stage::new("lower_swaps", Box::new(LowerPass)),
        ];
        if cfg.fuse {
            stages.push(Stage::new("fuse", Box::new(FusePass)));
        }
        stages.push(Stage::new(
            "schedule",
            Box::new(SchedulePass {
                strategy: cfg.scheduler,
            }),
        ));
        Pipeline::new(stages)
    }

    /// The stages, in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Stage labels, in execution order.
    pub fn stage_labels(&self) -> Vec<&str> {
        self.stages.iter().map(Stage::label).collect()
    }

    /// The per-stage cache keys for a pipeline input: key `i` is the
    /// stable hash chain of the input fingerprint with the fingerprints
    /// of passes `0..=i`, so pipelines sharing a prefix (e.g. two
    /// scheduler strategies over one routed circuit) share the prefix
    /// stages' keys — and their cached artifacts.
    pub fn stage_keys(&self, input_key: u64) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.stages.len());
        let mut k = input_key;
        for stage in &self.stages {
            k = qsim::rng::stable_hash(&[k, stage.pass.fingerprint()]);
            keys.push(k);
        }
        keys
    }

    /// Runs every stage in order, validating after each, and returns the
    /// final artifact with per-pass metrics. Uses a per-thread
    /// [`CompileWorkspace`], so repeated compiles on one thread reuse
    /// every pass's scratch buffers.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure or post-validation violation.
    pub fn run(
        &self,
        artifact: CompileArtifact,
        grid: &Grid,
    ) -> Result<(CompileArtifact, Vec<PassMetrics>), String> {
        COMPILE_WS.with(|ws| match ws.try_borrow_mut() {
            Ok(mut ws) => self.run_with(artifact, grid, &mut ws),
            // Re-entrant compile (a pass itself compiling): fall back to
            // a fresh workspace rather than aliasing the caller's.
            Err(_) => self.run_with(artifact, grid, &mut CompileWorkspace::new()),
        })
    }

    /// [`Pipeline::run`] with an explicit workspace.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure or post-validation violation.
    pub fn run_with(
        &self,
        mut artifact: CompileArtifact,
        grid: &Grid,
        ws: &mut CompileWorkspace,
    ) -> Result<(CompileArtifact, Vec<PassMetrics>), String> {
        let mut metrics = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            metrics.push(stage.run_timed(&mut artifact, grid, ws)?);
        }
        Ok((artifact, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::schedule::{schedule_crosstalk_aware, validate_schedule};

    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new(9);
        c.h(0);
        c.cx(0, 4);
        c.ccx(1, 3, 5);
        c.swap(2, 6);
        c.cz(7, 8);
        c.t(8);
        c
    }

    #[test]
    fn default_pipeline_matches_inline_sequence() {
        let grid = Grid::new(3, 3);
        let c = demo_circuit();
        let layout = Layout::snake(9, &grid);

        // The historical inline sequence.
        let lowered = lower_to_cz(&c);
        let routed = crate::mapping::route(&lowered, &grid, &layout, &RouterConfig::default());
        let physical = lower_to_cz(&routed.circuit);
        let slots = schedule_crosstalk_aware(&physical, &grid);

        let art = CompileArtifact::new(c.clone(), layout);
        let pipeline = Pipeline::standard(&PipelineConfig::default());
        let (out, metrics) = pipeline.run(art, &grid).unwrap();

        assert_eq!(out.circuit, physical);
        assert_eq!(out.scheduled(), &slots[..]);
        assert_eq!(out.swaps, routed.swap_count);
        assert_eq!(out.logical_gates, c.len());
        assert_eq!(
            metrics.iter().map(|m| m.pass.as_str()).collect::<Vec<_>>(),
            ["lower", "route", "lower_swaps", "schedule"]
        );
    }

    #[test]
    fn metrics_track_deltas() {
        let grid = Grid::new(3, 3);
        let c = demo_circuit();
        let art = CompileArtifact::new(c, Layout::snake(9, &grid));
        let pipeline = Pipeline::standard(&PipelineConfig::default());
        let (out, metrics) = pipeline.run(art, &grid).unwrap();

        let route_m = &metrics[1];
        assert_eq!(route_m.pass, "route");
        assert_eq!(route_m.swap_delta(), out.swaps);
        let sched_m = &metrics[3];
        assert_eq!(sched_m.slots_before, None);
        assert_eq!(sched_m.slots_after, Some(out.scheduled().len()));
        for m in &metrics {
            assert!(m.wall_ns >= 0.0);
        }
    }

    #[test]
    fn stage_keys_chain_and_share_prefixes() {
        let grid = Grid::new(3, 3);
        let c = demo_circuit();
        let layout = Layout::snake(9, &grid);
        let input = CompileArtifact::input_key(&c, &layout, &grid);

        let default = Pipeline::standard(&PipelineConfig::default());
        let asap =
            Pipeline::standard(&PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap));
        let lookahead = Pipeline::standard(
            &PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 16 }),
        );

        let kd = default.stage_keys(input);
        let ka = asap.stage_keys(input);
        let kl = lookahead.stage_keys(input);

        // All stage keys are distinct within a pipeline.
        let mut uniq = kd.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), kd.len());

        // Scheduler choice shares the lower/route/lower_swaps prefix…
        assert_eq!(kd[..3], ka[..3]);
        assert_ne!(kd[3], ka[3]);
        // …while router choice diverges from the route stage on.
        assert_eq!(kd[0], kl[0]);
        assert_ne!(kd[1], kl[1]);
        // Keys are reproducible.
        assert_eq!(kd, default.stage_keys(input));
        // And input-dependent.
        assert_ne!(kd, default.stage_keys(input ^ 1));
    }

    #[test]
    fn config_fingerprints_are_distinct_and_stable() {
        let mut fps: Vec<u64> = Vec::new();
        for cfg in [
            PipelineConfig::default(),
            PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap),
            PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 16 }),
            PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 4 }),
            PipelineConfig::default().with_fuse(),
        ] {
            assert_eq!(cfg.fingerprint(), cfg.fingerprint());
            fps.push(cfg.fingerprint());
        }
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 5, "all five configurations fingerprint apart");
    }

    #[test]
    fn fuse_pass_shrinks_single_qubit_runs() {
        let grid = Grid::new(4, 4);
        let c = bench::qgan(16, 2, 3);
        let layout = Layout::snake(16, &grid);
        let plain = Pipeline::standard(&PipelineConfig::default())
            .run(CompileArtifact::new(c.clone(), layout.clone()), &grid)
            .unwrap()
            .0;
        let fused = Pipeline::standard(&PipelineConfig::default().with_fuse())
            .run(CompileArtifact::new(c, layout), &grid)
            .unwrap()
            .0;
        assert!(fused.circuit.len() < plain.circuit.len());
        validate_schedule(&fused.circuit, &grid, fused.scheduled()).unwrap();
    }

    #[test]
    fn asap_strategy_passes_structural_validation_in_pipeline() {
        let grid = Grid::new(4, 4);
        // One ASAP moment whose CZs interfere: crosstalk-oblivious slots
        // are structurally fine but fail the full validator.
        let mut c = Circuit::new(16);
        c.cz(0, 1);
        c.cz(2, 3);
        let art = CompileArtifact::new(c, Layout::identity(16, 16));
        let pipeline =
            Pipeline::standard(&PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap));
        let (out, _) = pipeline.run(art, &grid).unwrap();
        assert_eq!(out.scheduled().len(), 1, "ASAP packs one moment");
        assert!(validate_schedule(&out.circuit, &grid, out.scheduled()).is_err());
    }

    #[test]
    fn lookahead_router_is_deterministic_and_compliant() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        for i in 0..8 {
            c.cz(i, 15 - i);
        }
        let cfg = PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 8 });
        let run = |cfg: &PipelineConfig| {
            Pipeline::standard(cfg)
                .run(
                    CompileArtifact::new(c.clone(), Layout::identity(16, 16)),
                    &grid,
                )
                .unwrap()
                .0
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.swaps, b.swaps);
        assert!(a.swaps > 0);
        validate_schedule(&a.circuit, &grid, a.scheduled()).unwrap();
    }

    #[test]
    fn pipeline_surfaces_post_validation_failures() {
        /// A deliberately broken scheduler: every gate lands in one slot.
        struct BrokenSchedule;
        impl Pass for BrokenSchedule {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn fingerprint(&self) -> u64 {
                pass_fingerprint("broken", &[])
            }
            fn run(
                &self,
                artifact: &mut CompileArtifact,
                _grid: &Grid,
                _ws: &mut CompileWorkspace,
            ) -> Result<(), String> {
                artifact.slots = Some(vec![(0..artifact.circuit.len()).collect()]);
                Ok(())
            }
            fn post_validate(
                &self,
                artifact: &CompileArtifact,
                _grid: &Grid,
                ws: &mut CompileWorkspace,
            ) -> Result<(), String> {
                validate_schedule_structural_with(
                    &mut ws.validate,
                    &artifact.circuit,
                    artifact.scheduled(),
                )
            }
        }

        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cz(0, 1); // shares qubit 0 with the H in the same slot
        let art = CompileArtifact::new(c, Layout::identity(4, 4));
        let pipeline = Pipeline::new(vec![Stage::new("broken", Box::new(BrokenSchedule))]);
        let err = pipeline.run(art, &grid).unwrap_err();
        assert!(err.contains("post-validation failed"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate stage label")]
    fn duplicate_labels_are_rejected() {
        let _ = Pipeline::new(vec![
            Stage::new("lower", Box::new(LowerPass) as Box<dyn Pass>),
            Stage::new("lower", Box::new(LowerPass)),
        ]);
    }

    #[test]
    fn strategy_parsing_roundtrips() {
        assert_eq!(RouteStrategy::parse("greedy"), Ok(RouteStrategy::Greedy));
        assert_eq!(
            RouteStrategy::parse("lookahead"),
            Ok(RouteStrategy::Lookahead {
                window: DEFAULT_LOOKAHEAD_WINDOW
            })
        );
        assert!(RouteStrategy::parse("magic").is_err());
        assert_eq!(
            ScheduleStrategy::parse("crosstalk"),
            Ok(ScheduleStrategy::CrosstalkAware)
        );
        assert_eq!(ScheduleStrategy::parse("asap"), Ok(ScheduleStrategy::Asap));
        assert!(ScheduleStrategy::parse("magic").is_err());
        for s in [
            RouteStrategy::Greedy,
            RouteStrategy::Lookahead { window: 3 },
        ] {
            assert_eq!(
                RouteStrategy::parse(s.name()).map(|p| p.name()),
                Ok(s.name())
            );
        }
    }
}
