//! Device topology: the 32×32 square qubit grid of §VI-B.
//!
//! Benchmarks are "mapped to a 32×32 square grid via SWAP-gate insertion".
//! This module provides the grid geometry (adjacency, distances, coupler
//! enumeration) consumed by the router and the crosstalk-aware scheduler.
//!
//! # Examples
//!
//! ```
//! use qcircuit::topology::Grid;
//!
//! let g = Grid::paper_grid(); // 32×32
//! assert_eq!(g.n_qubits(), 1024);
//! assert!(g.are_adjacent(0, 1));
//! assert_eq!(g.distance(0, 33), 2); // one row + one column
//! ```

/// A rectangular nearest-neighbour qubit grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates an `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        Grid { rows, cols }
    }

    /// The paper's 32×32 evaluation grid.
    pub fn paper_grid() -> Self {
        Grid::new(32, 32)
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.rows * self.cols
    }

    /// `(row, col)` of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn coords(&self, q: usize) -> (usize, usize) {
        assert!(q < self.n_qubits());
        (q / self.cols, q % self.cols)
    }

    /// Physical qubit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn qubit_at(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Manhattan distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Whether two physical qubits share a coupler.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.distance(a, b) == 1
    }

    /// Neighbours of a physical qubit (2–4 of them).
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.neighbors_iter(q).collect()
    }

    /// Neighbours of a physical qubit without allocating, in the same
    /// order as [`Grid::neighbors`] (up, down, left, right) — what the
    /// router candidate loops and the scheduler's interference masks
    /// iterate. The order is part of the routed-output byte-identity
    /// contract: the greedy router draws one RNG tie-break value per
    /// candidate in this order.
    pub fn neighbors_iter(&self, q: usize) -> impl Iterator<Item = usize> {
        let (r, c) = self.coords(q);
        let mut buf = [0usize; 4];
        let mut len = 0;
        if r > 0 {
            buf[len] = q - self.cols;
            len += 1;
        }
        if r + 1 < self.rows {
            buf[len] = q + self.cols;
            len += 1;
        }
        if c > 0 {
            buf[len] = q - 1;
            len += 1;
        }
        if c + 1 < self.cols {
            buf[len] = q + 1;
            len += 1;
        }
        buf.into_iter().take(len)
    }

    /// All couplers as `(low, high)` pairs; a 32×32 grid has
    /// 2·32·31 = 1984 (the Fig 10b x-axis).
    pub fn couplers(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(2 * self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let q = self.qubit_at(r, c);
                if c + 1 < self.cols {
                    out.push((q, self.qubit_at(r, c + 1)));
                }
                if r + 1 < self.rows {
                    out.push((q, self.qubit_at(r + 1, c)));
                }
            }
        }
        out
    }

    /// Index of a coupler in [`Grid::couplers`] order, or `None` if the
    /// qubits are not adjacent.
    pub fn coupler_index(&self, a: usize, b: usize) -> Option<usize> {
        if !self.are_adjacent(a, b) {
            return None;
        }
        // Recompute by scanning structure without allocating.
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut idx = 0usize;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let q = self.qubit_at(r, c);
                if c + 1 < self.cols {
                    if (q, self.qubit_at(r, c + 1)) == (lo, hi) {
                        return Some(idx);
                    }
                    idx += 1;
                }
                if r + 1 < self.rows {
                    if (q, self.qubit_at(r + 1, c)) == (lo, hi) {
                        return Some(idx);
                    }
                    idx += 1;
                }
            }
        }
        None
    }

    /// A snake (boustrophedon) ordering of the grid: consecutive entries
    /// are always adjacent. Linear-chain circuits (Ising, QGAN) laid out
    /// along the snake need no routing at all.
    pub fn snake_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n_qubits());
        for r in 0..self.rows {
            if r % 2 == 0 {
                for c in 0..self.cols {
                    out.push(self.qubit_at(r, c));
                }
            } else {
                for c in (0..self.cols).rev() {
                    out.push(self.qubit_at(r, c));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_dimensions() {
        let g = Grid::paper_grid();
        assert_eq!(g.n_qubits(), 1024);
        assert_eq!(g.rows(), 32);
        assert_eq!(g.couplers().len(), 1984);
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid::new(4, 5);
        for q in 0..20 {
            let (r, c) = g.coords(q);
            assert_eq!(g.qubit_at(r, c), q);
        }
    }

    #[test]
    fn adjacency_and_distance() {
        let g = Grid::new(4, 4);
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(0, 4));
        assert!(!g.are_adjacent(0, 5));
        assert_eq!(g.distance(0, 15), 6);
        assert_eq!(g.distance(5, 5), 0);
    }

    #[test]
    fn neighbors_at_corner_edge_center() {
        let g = Grid::new(3, 3);
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(1).len(), 3);
        assert_eq!(g.neighbors(4).len(), 4);
    }

    #[test]
    fn coupler_index_bijection() {
        let g = Grid::new(4, 4);
        let cs = g.couplers();
        for (i, &(a, b)) in cs.iter().enumerate() {
            assert_eq!(g.coupler_index(a, b), Some(i));
            assert_eq!(g.coupler_index(b, a), Some(i));
        }
        assert_eq!(g.coupler_index(0, 5), None);
    }

    #[test]
    fn snake_is_hamiltonian_path() {
        let g = Grid::new(5, 4);
        let snake = g.snake_order();
        assert_eq!(snake.len(), 20);
        for w in snake.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]), "{} {} not adjacent", w[0], w[1]);
        }
        // Visits every qubit exactly once.
        let mut seen = vec![false; 20];
        for &q in &snake {
            assert!(!seen[q]);
            seen[q] = true;
        }
    }
}
