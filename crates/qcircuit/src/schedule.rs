//! Crosstalk-aware gate scheduling and noise-adaptive layout (§VI-B).
//!
//! After routing, "a crosstalk-aware scheduling pass [58] is used to sort
//! and group commuting two-qubit gates which can be executed
//! simultaneously without interference". Two CZs *interfere* when a qubit
//! of one is grid-adjacent to a qubit of the other (spectator coupling);
//! the scheduler greedily colours each ASAP moment's CZs into
//! non-interfering sub-moments while single-qubit gates ride along with
//! their moment.
//!
//! The module also implements the noise-adaptive mapping of ref [68] used
//! in Fig 10's discussion ("software can map around these outliers"):
//! heavily-used logical qubits are steered away from high-error physical
//! qubits.

use crate::ir::{Circuit, Gate};
use crate::topology::Grid;

/// One executable time slot: gate indices (into the source circuit) whose
/// gates touch disjoint qubits and whose CZs are pairwise non-interfering.
pub type Slot = Vec<usize>;

/// Returns true when two CZ gates interfere under the spectator-coupling
/// model: some qubit of one is identical or grid-adjacent to some qubit
/// of the other.
pub fn czs_interfere(grid: &Grid, a: (usize, usize), b: (usize, usize)) -> bool {
    for &x in &[a.0, a.1] {
        for &y in &[b.0, b.1] {
            if x == y || grid.are_adjacent(x, y) {
                return true;
            }
        }
    }
    false
}

/// Schedules a routed, lowered circuit into crosstalk-free slots.
///
/// Gates within one returned slot act on disjoint qubits, and its CZs are
/// pairwise non-interfering. Slots preserve program order per qubit.
///
/// # Panics
///
/// Panics if the circuit contains gates other than 1q and CZ.
pub fn schedule_crosstalk_aware(c: &Circuit, grid: &Grid) -> Vec<Slot> {
    crate::lower::assert_lowered(c, "scheduler");
    // First ASAP moments (dependency layering)…
    let moments = c.moments();
    let mut slots: Vec<Slot> = Vec::new();
    for moment in moments {
        // …then split each moment's CZs into non-interfering groups
        // (greedy colouring in index order).
        let mut oneq: Slot = Vec::new();
        let mut cz_groups: Vec<Vec<usize>> = Vec::new();
        for gi in moment {
            match c.gates()[gi] {
                Gate::OneQ { .. } => oneq.push(gi),
                Gate::Cz { a, b } => {
                    let mut placed = false;
                    'groups: for group in cz_groups.iter_mut() {
                        for &other in group.iter() {
                            let (oa, ob) = match c.gates()[other] {
                                Gate::Cz { a, b } => (a, b),
                                _ => unreachable!(),
                            };
                            if czs_interfere(grid, (a, b), (oa, ob)) {
                                continue 'groups;
                            }
                        }
                        group.push(gi);
                        placed = true;
                        break;
                    }
                    if !placed {
                        qsim::counters::tally_alloc(); // fresh CZ colour group
                        cz_groups.push(vec![gi]);
                    }
                }
                _ => panic!("scheduler requires a lowered circuit"),
            }
        }
        if cz_groups.is_empty() {
            if !oneq.is_empty() {
                slots.push(oneq);
            }
        } else {
            // 1q gates ride with the first CZ group.
            let mut first = oneq;
            first.extend_from_slice(&cz_groups[0]);
            slots.push(first);
            for g in cz_groups.into_iter().skip(1) {
                slots.push(g);
            }
        }
    }
    slots
}

/// Schedules a lowered circuit into plain ASAP dependency moments,
/// **ignoring crosstalk**: gates within a slot act on disjoint qubits and
/// per-qubit program order is preserved, but CZs in one slot may
/// interfere. This is the crosstalk-oblivious alternative strategy of the
/// pass pipeline — the full [`validate_schedule`] rejects its output on
/// interfering workloads (see the strategy-discrimination tests), which
/// is exactly the point of having both.
///
/// # Panics
///
/// Panics if the circuit contains gates other than 1q and CZ.
pub fn schedule_asap(c: &Circuit) -> Vec<Slot> {
    crate::lower::assert_lowered(c, "scheduler");
    c.moments()
}

/// Validates a schedule: every gate exactly once, disjoint qubits within a
/// slot, per-qubit program order preserved, CZs non-interfering.
pub fn validate_schedule(c: &Circuit, grid: &Grid, slots: &[Slot]) -> Result<(), String> {
    validate_schedule_impl(c, Some(grid), slots)
}

/// The structural subset of [`validate_schedule`]: every gate exactly
/// once, disjoint qubits within a slot, per-qubit program order preserved
/// — **without** the CZ-interference check. The post-validation contract
/// of deliberately crosstalk-oblivious schedulers.
pub fn validate_schedule_structural(c: &Circuit, slots: &[Slot]) -> Result<(), String> {
    validate_schedule_impl(c, None, slots)
}

fn validate_schedule_impl(c: &Circuit, grid: Option<&Grid>, slots: &[Slot]) -> Result<(), String> {
    let mut seen = vec![false; c.len()];
    let mut last_slot_of_qubit = vec![None::<usize>; c.n_qubits()];
    let mut order_of_gate = vec![usize::MAX; c.len()];
    for (si, slot) in slots.iter().enumerate() {
        let mut used = std::collections::HashSet::new();
        for &gi in slot {
            if seen[gi] {
                return Err(format!("gate {gi} scheduled twice"));
            }
            seen[gi] = true;
            order_of_gate[gi] = si;
            for q in c.gates()[gi].qubits() {
                if !used.insert(q) {
                    return Err(format!("slot {si}: qubit {q} used twice"));
                }
                last_slot_of_qubit[q] = Some(si);
            }
        }
        // CZ interference check (skipped by the structural validator).
        let Some(grid) = grid else { continue };
        let czs: Vec<(usize, usize)> = slot
            .iter()
            .filter_map(|&gi| match c.gates()[gi] {
                Gate::Cz { a, b } => Some((a, b)),
                _ => None,
            })
            .collect();
        for i in 0..czs.len() {
            for j in i + 1..czs.len() {
                if czs_interfere(grid, czs[i], czs[j]) {
                    return Err(format!("slot {si}: interfering CZs"));
                }
            }
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err("not all gates scheduled".into());
    }
    // Program order per qubit.
    let mut last = vec![usize::MAX; c.n_qubits()];
    for (gi, g) in c.gates().iter().enumerate() {
        for q in g.qubits() {
            if last[q] != usize::MAX && order_of_gate[gi] <= order_of_gate[last[q]] {
                return Err(format!("qubit {q}: order violated at gate {gi}"));
            }
            last[q] = gi;
        }
    }
    Ok(())
}

/// Per-qubit usage statistics for noise-adaptive layout.
#[derive(Debug, Clone, Default)]
pub struct QubitUsage {
    /// Gate count per logical qubit.
    pub counts: Vec<u64>,
}

impl QubitUsage {
    /// Counts gate participation per qubit.
    pub fn of_circuit(c: &Circuit) -> Self {
        let mut counts = vec![0u64; c.n_qubits()];
        for g in c.gates() {
            for q in g.qubits() {
                counts[q] += 1;
            }
        }
        QubitUsage { counts }
    }
}

/// Noise-adaptive initial layout (ref [68]): assigns the busiest logical
/// qubits to the lowest-error physical qubits along the grid snake,
/// keeping spatial locality while avoiding outliers.
///
/// `phys_error` gives each physical qubit's (relative) error level; the
/// worst `n_avoid` qubits are excluded outright when capacity allows.
///
/// # Panics
///
/// Panics if there are fewer usable physical qubits than logical qubits.
pub fn noise_adaptive_layout(
    usage: &QubitUsage,
    phys_error: &[f64],
    grid: &Grid,
    n_avoid: usize,
) -> crate::mapping::Layout {
    let n_logical = usage.counts.len();
    assert_eq!(phys_error.len(), grid.n_qubits());

    // Rank physical qubits by error, mark the worst `n_avoid` as avoided
    // (when enough slack exists).
    let slack = grid.n_qubits().saturating_sub(n_logical);
    let n_avoid = n_avoid.min(slack);
    let mut by_error: Vec<usize> = (0..grid.n_qubits()).collect();
    by_error.sort_by(|&a, &b| phys_error[b].partial_cmp(&phys_error[a]).unwrap());
    let avoided: std::collections::HashSet<usize> =
        by_error.iter().take(n_avoid).copied().collect();

    // Walk the snake, skipping avoided qubits, so locality survives.
    let mut slots: Vec<usize> = grid
        .snake_order()
        .into_iter()
        .filter(|p| !avoided.contains(p))
        .collect();
    assert!(slots.len() >= n_logical, "too many avoided qubits");
    slots.truncate(n_logical);

    // Busiest logical qubits keep their snake positions; this keeps the
    // assignment stable (identity-like) while outliers are bypassed.
    let assignment: Vec<usize> = (0..n_logical).map(|l| slots[l]).collect();
    crate::mapping::Layout::from_assignment(assignment, grid.n_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::lower::lower_to_cz;
    use crate::mapping::{route, Layout, RouterConfig};

    #[test]
    fn interference_model() {
        let grid = Grid::new(4, 4);
        // Shared qubit.
        assert!(czs_interfere(&grid, (0, 1), (1, 2)));
        // Adjacent spectator: qubits 1 and 2 are neighbours.
        assert!(czs_interfere(&grid, (0, 1), (2, 3)));
        // Far apart: rows 0 and 2.
        assert!(!czs_interfere(&grid, (0, 1), (8, 9)));
    }

    #[test]
    fn schedule_simple_parallel() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.cz(0, 1);
        c.cz(8, 9); // far from (0,1): same slot OK
        let slots = schedule_crosstalk_aware(&c, &grid);
        assert_eq!(slots.len(), 1);
        validate_schedule(&c, &grid, &slots).unwrap();
    }

    #[test]
    fn schedule_splits_interfering_czs() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.cz(0, 1);
        c.cz(2, 3); // qubit 2 adjacent to 1 → interferes
        let slots = schedule_crosstalk_aware(&c, &grid);
        assert_eq!(slots.len(), 2, "interfering CZs must serialize");
        validate_schedule(&c, &grid, &slots).unwrap();
    }

    #[test]
    fn schedule_respects_dependencies() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.h(0);
        c.cz(0, 1);
        c.h(1);
        let slots = schedule_crosstalk_aware(&c, &grid);
        validate_schedule(&c, &grid, &slots).unwrap();
        assert!(slots.len() >= 3);
    }

    #[test]
    fn full_pipeline_schedule_validates() {
        let grid = Grid::new(6, 6);
        let c = lower_to_cz(&bench::ising_chain(36, 2, 0.3, 0.7));
        let r = route(
            &c,
            &grid,
            Layout::snake(36, &grid),
            &RouterConfig::default(),
        );
        let slots = schedule_crosstalk_aware(&r.circuit, &grid);
        validate_schedule(&r.circuit, &grid, &slots).unwrap();
        // Crosstalk splitting makes the schedule longer than raw ASAP.
        assert!(slots.len() >= r.circuit.depth());
    }

    #[test]
    fn crosstalk_costs_slots_on_dense_brickwork() {
        let grid = Grid::new(2, 8);
        // Disjoint CZs packed along a row: one ASAP moment, but adjacent
        // pairs interfere, so the crosstalk pass must split them.
        let mut c = Circuit::new(16);
        for i in (0..7).step_by(2) {
            c.cz(i, i + 1);
        }
        let plain_depth = c.depth();
        assert_eq!(plain_depth, 1);
        let slots = schedule_crosstalk_aware(&c, &grid);
        assert!(slots.len() > plain_depth);
        validate_schedule(&c, &grid, &slots).unwrap();
    }

    #[test]
    fn usage_counting() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cz(0, 1);
        let u = QubitUsage::of_circuit(&c);
        assert_eq!(u.counts, vec![2, 1, 0]);
    }

    #[test]
    fn noise_adaptive_avoids_outliers() {
        let grid = Grid::new(4, 4);
        let mut err = vec![1e-4; 16];
        err[5] = 0.05; // terrible qubit right on the snake path
        let usage = QubitUsage {
            counts: vec![10; 8],
        };
        let layout = noise_adaptive_layout(&usage, &err, &grid, 2);
        for l in 0..8 {
            assert_ne!(layout.phys(l), 5, "outlier qubit must be avoided");
        }
    }

    #[test]
    fn noise_adaptive_respects_capacity() {
        let grid = Grid::new(2, 2);
        let usage = QubitUsage { counts: vec![1; 4] };
        // No slack: avoidance silently degrades to zero.
        let layout = noise_adaptive_layout(&usage, &[0.1, 0.2, 0.3, 0.4], &grid, 2);
        assert_eq!(layout.n_logical(), 4);
    }
}
