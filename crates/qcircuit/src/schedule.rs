//! Crosstalk-aware gate scheduling and noise-adaptive layout (§VI-B).
//!
//! After routing, "a crosstalk-aware scheduling pass [58] is used to sort
//! and group commuting two-qubit gates which can be executed
//! simultaneously without interference". Two CZs *interfere* when a qubit
//! of one is grid-adjacent to a qubit of the other (spectator coupling);
//! the scheduler greedily colours each ASAP moment's CZs into
//! non-interfering sub-moments while single-qubit gates ride along with
//! their moment.
//!
//! The module also implements the noise-adaptive mapping of ref [68] used
//! in Fig 10's discussion ("software can map around these outliers"):
//! heavily-used logical qubits are steered away from high-error physical
//! qubits.

use crate::ir::{Circuit, Gate, MomentScratch};
use crate::topology::Grid;

/// One executable time slot: gate indices (into the source circuit) whose
/// gates touch disjoint qubits and whose CZs are pairwise non-interfering.
pub type Slot = Vec<usize>;

/// Reusable scratch for [`schedule_crosstalk_aware_with`]: the ASAP
/// moment layering, the per-moment colour-group pool, and the epoch-
/// stamped per-qubit interference masks. Warm reuse makes a schedule
/// pass allocate only its materialized output.
#[derive(Debug, Default)]
pub struct ScheduleWorkspace {
    moments: MomentScratch,
    oneq: Vec<usize>,
    /// Colour-group buffer pool; the first `active` (a per-moment local)
    /// entries are live, the rest keep their capacity for reuse.
    groups: Vec<Vec<usize>>,
    /// Epoch stamp + blocked-group bitmask per physical qubit: bit `g`
    /// set means "some CZ in colour group `g` touches this qubit or a
    /// grid neighbour of it", valid only while the stamp matches the
    /// current epoch (one epoch per moment — no clearing between them).
    blk_stamp: Vec<u32>,
    blk_mask: Vec<u64>,
    epoch: u32,
}

impl ScheduleWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n_qubits: usize) {
        if self.blk_stamp.len() < n_qubits {
            self.blk_stamp.resize(n_qubits, 0);
            self.blk_mask.resize(n_qubits, 0);
        }
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.blk_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

thread_local! {
    static SCHED_WS: std::cell::RefCell<ScheduleWorkspace> =
        std::cell::RefCell::new(ScheduleWorkspace::new());
    static VALIDATE_WS: std::cell::RefCell<ValidateWorkspace> =
        std::cell::RefCell::new(ValidateWorkspace::new());
}

/// Returns true when two CZ gates interfere under the spectator-coupling
/// model: some qubit of one is identical or grid-adjacent to some qubit
/// of the other.
pub fn czs_interfere(grid: &Grid, a: (usize, usize), b: (usize, usize)) -> bool {
    for &x in &[a.0, a.1] {
        for &y in &[b.0, b.1] {
            if x == y || grid.are_adjacent(x, y) {
                return true;
            }
        }
    }
    false
}

/// Schedules a routed, lowered circuit into crosstalk-free slots.
///
/// Gates within one returned slot act on disjoint qubits, and its CZs are
/// pairwise non-interfering. Slots preserve program order per qubit.
///
/// # Panics
///
/// Panics if the circuit contains gates other than 1q and CZ.
pub fn schedule_crosstalk_aware(c: &Circuit, grid: &Grid) -> Vec<Slot> {
    SCHED_WS.with(|ws| match ws.try_borrow_mut() {
        Ok(mut ws) => schedule_crosstalk_aware_with(&mut ws, c, grid),
        Err(_) => schedule_crosstalk_aware_with(&mut ScheduleWorkspace::new(), c, grid),
    })
}

/// [`schedule_crosstalk_aware`] with an explicit workspace (the
/// pipeline's form). Byte-identical output: the greedy colouring places
/// each CZ into the first non-interfering group in creation order, here
/// answered by the per-qubit blocked-group bitmask instead of a member
/// scan — a group's blocked set is exactly "qubit or neighbour of a
/// member", which is the [`czs_interfere`] predicate from the other side.
///
/// # Panics
///
/// Same contract as [`schedule_crosstalk_aware`].
pub fn schedule_crosstalk_aware_with(
    ws: &mut ScheduleWorkspace,
    c: &Circuit,
    grid: &Grid,
) -> Vec<Slot> {
    crate::lower::assert_lowered(c, "scheduler");
    ws.prepare(grid.n_qubits().max(c.n_qubits()));
    // First ASAP moments (dependency layering)…
    c.moments_into(&mut ws.moments);
    let mut slots: Vec<Slot> = Vec::new();
    for mi in 0..ws.moments.slots().len() {
        let epoch = ws.next_epoch();
        let ScheduleWorkspace {
            moments,
            oneq,
            groups,
            blk_stamp,
            blk_mask,
            ..
        } = &mut *ws;
        let moment = &moments.slots()[mi];
        // …then split each moment's CZs into non-interfering groups
        // (greedy colouring in index order).
        oneq.clear();
        let mut active = 0usize;
        for &gi in moment {
            match c.gates()[gi] {
                Gate::OneQ { .. } => oneq.push(gi),
                Gate::Cz { a, b } => {
                    // Groups blocked for this CZ, among the first 64.
                    let blocked = |q: usize| {
                        if blk_stamp[q] == epoch {
                            blk_mask[q]
                        } else {
                            0
                        }
                    };
                    let bm = blocked(a) | blocked(b);
                    let mut g = bm.trailing_ones() as usize;
                    if g >= active.min(64) {
                        // Either every live maskable group is blocked or
                        // the first free one doesn't exist yet; scan any
                        // overflow groups (≥ 64, rare) the slow way.
                        g = active;
                        'groups: for (oi, group) in
                            groups[64.min(active)..active].iter().enumerate()
                        {
                            for &other in group.iter() {
                                let (oa, ob) = match c.gates()[other] {
                                    Gate::Cz { a, b } => (a, b),
                                    _ => unreachable!(),
                                };
                                if czs_interfere(grid, (a, b), (oa, ob)) {
                                    continue 'groups;
                                }
                            }
                            g = 64.min(active) + oi;
                            break;
                        }
                    }
                    if g == active {
                        // Fresh colour group from the pool.
                        if groups.len() == active {
                            groups.push(Vec::new());
                        }
                        groups[active].clear();
                        active += 1;
                    }
                    groups[g].push(gi);
                    if g < 64 {
                        for y in [a, b] {
                            let mut mark = |q: usize| {
                                if blk_stamp[q] != epoch {
                                    blk_stamp[q] = epoch;
                                    blk_mask[q] = 0;
                                }
                                blk_mask[q] |= 1 << g;
                            };
                            mark(y);
                            for n in grid.neighbors_iter(y) {
                                mark(n);
                            }
                        }
                    }
                }
                _ => panic!("scheduler requires a lowered circuit"),
            }
        }
        if active == 0 {
            if !oneq.is_empty() {
                slots.push(oneq.clone());
            }
        } else {
            // 1q gates ride with the first CZ group.
            let mut first = Vec::with_capacity(oneq.len() + groups[0].len());
            first.extend_from_slice(oneq);
            first.extend_from_slice(&groups[0]);
            slots.push(first);
            for g in &groups[1..active] {
                slots.push(g.clone());
            }
        }
    }
    qsim::counters::tally_alloc(); // materialized slot list
    slots
}

/// Schedules a lowered circuit into plain ASAP dependency moments,
/// **ignoring crosstalk**: gates within a slot act on disjoint qubits and
/// per-qubit program order is preserved, but CZs in one slot may
/// interfere. This is the crosstalk-oblivious alternative strategy of the
/// pass pipeline — the full [`validate_schedule`] rejects its output on
/// interfering workloads (see the strategy-discrimination tests), which
/// is exactly the point of having both.
///
/// # Panics
///
/// Panics if the circuit contains gates other than 1q and CZ.
pub fn schedule_asap(c: &Circuit) -> Vec<Slot> {
    crate::lower::assert_lowered(c, "scheduler");
    let slots = c.moments();
    qsim::counters::tally_alloc(); // materialized slot list
    slots
}

/// Reusable scratch for schedule validation: gate/qubit marker arrays
/// plus epoch-stamped per-slot usage and interference-blocking tables —
/// the per-slot `HashSet` and O(CZs²) pairwise scan of the original
/// validator, flattened into stamped linear passes.
#[derive(Debug, Default)]
pub struct ValidateWorkspace {
    seen: Vec<bool>,
    order_of_gate: Vec<usize>,
    /// `used_stamp[q] == epoch` ⇔ qubit `q` already used in this slot.
    used_stamp: Vec<u32>,
    /// `blk_stamp[q] == epoch` ⇔ an earlier CZ of this slot touches `q`
    /// or a grid neighbour of `q` — the incremental interference check.
    blk_stamp: Vec<u32>,
    czs: Vec<(usize, usize)>,
    last: Vec<usize>,
    epoch: u32,
}

impl ValidateWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.used_stamp.iter_mut().for_each(|s| *s = 0);
            self.blk_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Validates a schedule: every gate exactly once, disjoint qubits within a
/// slot, per-qubit program order preserved, CZs non-interfering.
pub fn validate_schedule(c: &Circuit, grid: &Grid, slots: &[Slot]) -> Result<(), String> {
    VALIDATE_WS.with(|ws| match ws.try_borrow_mut() {
        Ok(mut ws) => validate_schedule_impl(&mut ws, c, Some(grid), slots),
        Err(_) => validate_schedule_impl(&mut ValidateWorkspace::new(), c, Some(grid), slots),
    })
}

/// [`validate_schedule`] with an explicit workspace (the pipeline's form).
pub fn validate_schedule_with(
    ws: &mut ValidateWorkspace,
    c: &Circuit,
    grid: &Grid,
    slots: &[Slot],
) -> Result<(), String> {
    validate_schedule_impl(ws, c, Some(grid), slots)
}

/// The structural subset of [`validate_schedule`]: every gate exactly
/// once, disjoint qubits within a slot, per-qubit program order preserved
/// — **without** the CZ-interference check. The post-validation contract
/// of deliberately crosstalk-oblivious schedulers.
pub fn validate_schedule_structural(c: &Circuit, slots: &[Slot]) -> Result<(), String> {
    VALIDATE_WS.with(|ws| match ws.try_borrow_mut() {
        Ok(mut ws) => validate_schedule_impl(&mut ws, c, None, slots),
        Err(_) => validate_schedule_impl(&mut ValidateWorkspace::new(), c, None, slots),
    })
}

/// [`validate_schedule_structural`] with an explicit workspace.
pub fn validate_schedule_structural_with(
    ws: &mut ValidateWorkspace,
    c: &Circuit,
    slots: &[Slot],
) -> Result<(), String> {
    validate_schedule_impl(ws, c, None, slots)
}

fn validate_schedule_impl(
    ws: &mut ValidateWorkspace,
    c: &Circuit,
    grid: Option<&Grid>,
    slots: &[Slot],
) -> Result<(), String> {
    ws.seen.clear();
    ws.seen.resize(c.len(), false);
    ws.order_of_gate.clear();
    ws.order_of_gate.resize(c.len(), usize::MAX);
    let nq = c.n_qubits().max(grid.map_or(0, |g| g.n_qubits()));
    if ws.used_stamp.len() < nq {
        ws.used_stamp.resize(nq, 0);
        ws.blk_stamp.resize(nq, 0);
    }
    for (si, slot) in slots.iter().enumerate() {
        let epoch = ws.next_epoch();
        ws.czs.clear();
        for &gi in slot {
            if ws.seen[gi] {
                return Err(format!("gate {gi} scheduled twice"));
            }
            ws.seen[gi] = true;
            ws.order_of_gate[gi] = si;
            for &q in &c.gates()[gi].qubits_inline() {
                if ws.used_stamp[q] == epoch {
                    return Err(format!("slot {si}: qubit {q} used twice"));
                }
                ws.used_stamp[q] = epoch;
            }
            if grid.is_some() {
                if let Gate::Cz { a, b } = c.gates()[gi] {
                    ws.czs.push((a, b));
                }
            }
        }
        // CZ interference check (skipped by the structural validator):
        // a CZ interferes with an earlier one in the slot exactly when
        // one of its qubits lands in that CZ's blocked (qubit ∪
        // neighbour) set, so one stamped forward pass replaces the
        // pairwise scan.
        let Some(grid) = grid else { continue };
        for i in 0..ws.czs.len() {
            let (a, b) = ws.czs[i];
            if ws.blk_stamp[a] == epoch || ws.blk_stamp[b] == epoch {
                return Err(format!("slot {si}: interfering CZs"));
            }
            for y in [a, b] {
                ws.blk_stamp[y] = epoch;
                for n in grid.neighbors_iter(y) {
                    ws.blk_stamp[n] = epoch;
                }
            }
        }
    }
    if !ws.seen.iter().all(|&s| s) {
        return Err("not all gates scheduled".into());
    }
    // Program order per qubit.
    ws.last.clear();
    ws.last.resize(c.n_qubits(), usize::MAX);
    for (gi, g) in c.gates().iter().enumerate() {
        for &q in &g.qubits_inline() {
            if ws.last[q] != usize::MAX && ws.order_of_gate[gi] <= ws.order_of_gate[ws.last[q]] {
                return Err(format!("qubit {q}: order violated at gate {gi}"));
            }
            ws.last[q] = gi;
        }
    }
    Ok(())
}

/// Per-qubit usage statistics for noise-adaptive layout.
#[derive(Debug, Clone, Default)]
pub struct QubitUsage {
    /// Gate count per logical qubit.
    pub counts: Vec<u64>,
}

impl QubitUsage {
    /// Counts gate participation per qubit.
    pub fn of_circuit(c: &Circuit) -> Self {
        let mut counts = vec![0u64; c.n_qubits()];
        for g in c.gates() {
            for q in g.qubits() {
                counts[q] += 1;
            }
        }
        QubitUsage { counts }
    }
}

/// Noise-adaptive initial layout (ref [68]): assigns the busiest logical
/// qubits to the lowest-error physical qubits along the grid snake,
/// keeping spatial locality while avoiding outliers.
///
/// `phys_error` gives each physical qubit's (relative) error level; the
/// worst `n_avoid` qubits are excluded outright when capacity allows.
///
/// # Panics
///
/// Panics if there are fewer usable physical qubits than logical qubits.
pub fn noise_adaptive_layout(
    usage: &QubitUsage,
    phys_error: &[f64],
    grid: &Grid,
    n_avoid: usize,
) -> crate::mapping::Layout {
    let n_logical = usage.counts.len();
    assert_eq!(phys_error.len(), grid.n_qubits());

    // Rank physical qubits by error, mark the worst `n_avoid` as avoided
    // (when enough slack exists).
    let slack = grid.n_qubits().saturating_sub(n_logical);
    let n_avoid = n_avoid.min(slack);
    let mut by_error: Vec<usize> = (0..grid.n_qubits()).collect();
    by_error.sort_by(|&a, &b| phys_error[b].partial_cmp(&phys_error[a]).unwrap());
    let avoided: std::collections::HashSet<usize> =
        by_error.iter().take(n_avoid).copied().collect();

    // Walk the snake, skipping avoided qubits, so locality survives.
    let mut slots: Vec<usize> = grid
        .snake_order()
        .into_iter()
        .filter(|p| !avoided.contains(p))
        .collect();
    assert!(slots.len() >= n_logical, "too many avoided qubits");
    slots.truncate(n_logical);

    // Busiest logical qubits keep their snake positions; this keeps the
    // assignment stable (identity-like) while outliers are bypassed.
    let assignment: Vec<usize> = (0..n_logical).map(|l| slots[l]).collect();
    crate::mapping::Layout::from_assignment(assignment, grid.n_qubits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::lower::lower_to_cz;
    use crate::mapping::{route, Layout, RouterConfig};

    #[test]
    fn interference_model() {
        let grid = Grid::new(4, 4);
        // Shared qubit.
        assert!(czs_interfere(&grid, (0, 1), (1, 2)));
        // Adjacent spectator: qubits 1 and 2 are neighbours.
        assert!(czs_interfere(&grid, (0, 1), (2, 3)));
        // Far apart: rows 0 and 2.
        assert!(!czs_interfere(&grid, (0, 1), (8, 9)));
    }

    #[test]
    fn schedule_simple_parallel() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.cz(0, 1);
        c.cz(8, 9); // far from (0,1): same slot OK
        let slots = schedule_crosstalk_aware(&c, &grid);
        assert_eq!(slots.len(), 1);
        validate_schedule(&c, &grid, &slots).unwrap();
    }

    #[test]
    fn schedule_splits_interfering_czs() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.cz(0, 1);
        c.cz(2, 3); // qubit 2 adjacent to 1 → interferes
        let slots = schedule_crosstalk_aware(&c, &grid);
        assert_eq!(slots.len(), 2, "interfering CZs must serialize");
        validate_schedule(&c, &grid, &slots).unwrap();
    }

    #[test]
    fn schedule_respects_dependencies() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        c.h(0);
        c.cz(0, 1);
        c.h(1);
        let slots = schedule_crosstalk_aware(&c, &grid);
        validate_schedule(&c, &grid, &slots).unwrap();
        assert!(slots.len() >= 3);
    }

    #[test]
    fn full_pipeline_schedule_validates() {
        let grid = Grid::new(6, 6);
        let c = lower_to_cz(&bench::ising_chain(36, 2, 0.3, 0.7));
        let r = route(
            &c,
            &grid,
            &Layout::snake(36, &grid),
            &RouterConfig::default(),
        );
        let slots = schedule_crosstalk_aware(&r.circuit, &grid);
        validate_schedule(&r.circuit, &grid, &slots).unwrap();
        // Crosstalk splitting makes the schedule longer than raw ASAP.
        assert!(slots.len() >= r.circuit.depth());
    }

    #[test]
    fn crosstalk_costs_slots_on_dense_brickwork() {
        let grid = Grid::new(2, 8);
        // Disjoint CZs packed along a row: one ASAP moment, but adjacent
        // pairs interfere, so the crosstalk pass must split them.
        let mut c = Circuit::new(16);
        for i in (0..7).step_by(2) {
            c.cz(i, i + 1);
        }
        let plain_depth = c.depth();
        assert_eq!(plain_depth, 1);
        let slots = schedule_crosstalk_aware(&c, &grid);
        assert!(slots.len() > plain_depth);
        validate_schedule(&c, &grid, &slots).unwrap();
    }

    #[test]
    fn usage_counting() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cz(0, 1);
        let u = QubitUsage::of_circuit(&c);
        assert_eq!(u.counts, vec![2, 1, 0]);
    }

    #[test]
    fn noise_adaptive_avoids_outliers() {
        let grid = Grid::new(4, 4);
        let mut err = vec![1e-4; 16];
        err[5] = 0.05; // terrible qubit right on the snake path
        let usage = QubitUsage {
            counts: vec![10; 8],
        };
        let layout = noise_adaptive_layout(&usage, &err, &grid, 2);
        for l in 0..8 {
            assert_ne!(layout.phys(l), 5, "outlier qubit must be avoided");
        }
    }

    #[test]
    fn noise_adaptive_respects_capacity() {
        let grid = Grid::new(2, 2);
        let usage = QubitUsage { counts: vec![1; 4] };
        // No slack: avoidance silently degrades to zero.
        let layout = noise_adaptive_layout(&usage, &[0.1, 0.2, 0.3, 0.4], &grid, 2);
        assert_eq!(layout.n_logical(), 4);
    }
}
