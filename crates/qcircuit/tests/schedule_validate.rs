//! Error-path coverage for the schedule validator and the mapping-layer
//! edge cases the compile pipeline leans on: every rejection branch of
//! `validate_schedule`, the `Layout` constructor/SWAP edges, and
//! `RoutedCircuit::is_hardware_compliant` — plus the
//! strategy-discrimination guard proving the full validator rejects the
//! crosstalk-oblivious ASAP scheduler's output where the crosstalk-aware
//! strategy passes.

use qcircuit::ir::Circuit;
use qcircuit::mapping::{Layout, RoutedCircuit};
use qcircuit::schedule::{
    schedule_asap, schedule_crosstalk_aware, validate_schedule, validate_schedule_structural,
};
use qcircuit::topology::Grid;

fn grid4() -> Grid {
    Grid::new(4, 4)
}

// ---------------------------------------------------------------- validator

#[test]
fn rejects_overlapping_qubit_in_a_slot() {
    let mut c = Circuit::new(16);
    c.h(0);
    c.cz(0, 1); // shares qubit 0 with the H
    let err = validate_schedule(&c, &grid4(), &[vec![0, 1]]).unwrap_err();
    assert!(err.contains("qubit 0 used twice"), "{err}");
    // The structural validator rejects it too — disjointness is not an
    // interference concern.
    let err = validate_schedule_structural(&c, &[vec![0, 1]]).unwrap_err();
    assert!(err.contains("qubit 0 used twice"), "{err}");
}

#[test]
fn rejects_interfering_cz_pair_in_a_slot() {
    let mut c = Circuit::new(16);
    c.cz(0, 1);
    c.cz(2, 3); // qubit 2 is grid-adjacent to qubit 1 → spectator coupling
    let err = validate_schedule(&c, &grid4(), &[vec![0, 1]]).unwrap_err();
    assert!(err.contains("interfering CZs"), "{err}");
    // The structural validator deliberately accepts the same slots.
    validate_schedule_structural(&c, &[vec![0, 1]]).unwrap();
}

#[test]
fn rejects_gate_missing_from_slots() {
    let mut c = Circuit::new(16);
    c.h(0);
    c.h(1);
    let err = validate_schedule(&c, &grid4(), &[vec![0]]).unwrap_err();
    assert!(err.contains("not all gates scheduled"), "{err}");
}

#[test]
fn rejects_gate_scheduled_twice() {
    let mut c = Circuit::new(16);
    c.h(0);
    let err = validate_schedule(&c, &grid4(), &[vec![0], vec![0]]).unwrap_err();
    assert!(err.contains("gate 0 scheduled twice"), "{err}");
}

#[test]
fn rejects_program_order_violation() {
    let mut c = Circuit::new(16);
    c.h(0); // gate 0 must run before…
    c.t(0); // …gate 1 on the same qubit
    let err = validate_schedule(&c, &grid4(), &[vec![1], vec![0]]).unwrap_err();
    assert!(err.contains("order violated"), "{err}");
}

#[test]
fn accepts_a_correct_schedule() {
    let mut c = Circuit::new(16);
    c.h(0);
    c.cz(0, 1);
    c.cz(8, 9);
    validate_schedule(&c, &grid4(), &[vec![0], vec![1, 2]]).unwrap();
}

// ------------------------------------------------- strategy discrimination

/// The bugfix-by-construction guard: on a workload with an interfering CZ
/// pair, the crosstalk-oblivious ASAP scheduler's output is **rejected**
/// by the full validator while the crosstalk-aware scheduler's output
/// passes — the validator genuinely discriminates the two strategies.
#[test]
fn full_validator_discriminates_asap_from_crosstalk_aware() {
    let grid = grid4();
    let mut c = Circuit::new(16);
    c.cz(0, 1);
    c.cz(2, 3); // same ASAP moment, interfering spectators

    let asap = schedule_asap(&c);
    assert_eq!(asap.len(), 1, "ASAP packs both CZs into one moment");
    let err = validate_schedule(&c, &grid, &asap).unwrap_err();
    assert!(err.contains("interfering CZs"), "{err}");
    // …but ASAP honours every structural invariant.
    validate_schedule_structural(&c, &asap).unwrap();

    let aware = schedule_crosstalk_aware(&c, &grid);
    assert!(aware.len() > asap.len(), "serializing costs slots");
    validate_schedule(&c, &grid, &aware).unwrap();
}

#[test]
fn asap_matches_plain_moments_and_preserves_order() {
    let mut c = Circuit::new(16);
    c.h(0);
    c.cz(0, 1);
    c.h(1);
    let slots = schedule_asap(&c);
    assert_eq!(slots, c.moments());
    validate_schedule_structural(&c, &slots).unwrap();
}

// ------------------------------------------------------------ layout edges

#[test]
fn from_assignment_roundtrips() {
    let l = Layout::from_assignment(vec![3, 0, 2], 4);
    assert_eq!(l.n_logical(), 3);
    assert_eq!((l.phys(0), l.phys(1), l.phys(2)), (3, 0, 2));
    assert_eq!(l.logical(3), Some(0));
    assert_eq!(l.logical(1), None);
}

#[test]
#[should_panic(expected = "physical index out of range")]
fn from_assignment_rejects_out_of_range() {
    let _ = Layout::from_assignment(vec![0, 4], 4);
}

#[test]
#[should_panic(expected = "assigned twice")]
fn from_assignment_rejects_double_assignment() {
    let _ = Layout::from_assignment(vec![2, 2], 4);
}

#[test]
fn swap_physical_handles_empty_slots() {
    let mut l = Layout::from_assignment(vec![1], 4);
    // Occupied ↔ empty.
    l.swap_physical(1, 3);
    assert_eq!(l.phys(0), 3);
    assert_eq!(l.logical(1), None);
    assert_eq!(l.logical(3), Some(0));
    // Empty ↔ empty is a no-op.
    l.swap_physical(0, 2);
    assert_eq!(l.logical(0), None);
    assert_eq!(l.logical(2), None);
    // Swap back restores the original assignment.
    l.swap_physical(3, 1);
    assert_eq!(l.phys(0), 1);
}

#[test]
fn swap_physical_swaps_two_occupied_slots() {
    let mut l = Layout::identity(2, 4);
    l.swap_physical(0, 1);
    assert_eq!((l.phys(0), l.phys(1)), (1, 0));
    assert_eq!(l.logical(0), Some(1));
    assert_eq!(l.logical(1), Some(0));
}

#[test]
fn cache_key_ignores_history_but_not_assignment() {
    // Two different SWAP histories reaching the same assignment key alike.
    let mut a = Layout::identity(3, 4);
    a.swap_physical(0, 1);
    a.swap_physical(0, 1);
    assert_eq!(a.cache_key(), Layout::identity(3, 4).cache_key());
    a.swap_physical(1, 2);
    assert_ne!(a.cache_key(), Layout::identity(3, 4).cache_key());
}

// ---------------------------------------------------- hardware compliance

#[test]
fn hardware_compliance_edges() {
    let grid = grid4();
    let compliant = |c: Circuit| RoutedCircuit {
        circuit: c,
        final_layout: Layout::identity(16, 16),
        swap_count: 0,
    };

    // 1q everywhere is always compliant.
    let mut c = Circuit::new(16);
    c.h(0);
    c.t(15);
    assert!(compliant(c).is_hardware_compliant(&grid));

    // Adjacent CZ/SWAP/CX pass; a diagonal CZ fails.
    let mut c = Circuit::new(16);
    c.cz(0, 1);
    c.swap(1, 2);
    c.cx(4, 5);
    assert!(compliant(c).is_hardware_compliant(&grid));
    let mut c = Circuit::new(16);
    c.cz(0, 5); // diagonal: distance 2
    assert!(!compliant(c).is_hardware_compliant(&grid));
    let mut c = Circuit::new(16);
    c.swap(0, 2); // same row, distance 2
    assert!(!compliant(c).is_hardware_compliant(&grid));

    // CCX never counts as hardware-compliant, adjacency notwithstanding.
    let mut c = Circuit::new(16);
    c.ccx(0, 1, 2);
    assert!(!compliant(c).is_hardware_compliant(&grid));
}
