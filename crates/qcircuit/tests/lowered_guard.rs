//! Negative-path tests for the lowered-circuit contract.
//!
//! Routing, scheduling, and fusion all consume hardware-form circuits
//! ({1q, CZ} only). Each now guards its entry through
//! `lower::assert_lowered`, which panics with a typed message naming the
//! pass and the offending gate; these tests pin that contract for every
//! consumer in this crate (the executor and co-simulator guards live in
//! `digiq-core`'s test suite).

use qcircuit::ir::Circuit;
use qcircuit::lower::{assert_lowered, fuse_single_qubit_runs, lower_to_cz};
use qcircuit::mapping::{route, Layout, RouterConfig};
use qcircuit::schedule::schedule_crosstalk_aware;
use qcircuit::topology::Grid;

fn unlowered() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0);
    c.cx(0, 1); // CX is not hardware form
    c
}

#[test]
fn assert_lowered_accepts_hardware_form() {
    let c = lower_to_cz(&unlowered());
    assert_lowered(&c, "test"); // must not panic
    assert_lowered(&Circuit::new(3), "test"); // empty circuits are fine
}

#[test]
#[should_panic(expected = "test-pass requires a lowered circuit")]
fn assert_lowered_names_the_pass() {
    assert_lowered(&unlowered(), "test-pass");
}

#[test]
#[should_panic(expected = "gate 1 is `CX q0,q1`")]
fn assert_lowered_names_the_offending_gate() {
    assert_lowered(&unlowered(), "test-pass");
}

#[test]
#[should_panic(expected = "route requires a lowered circuit")]
fn route_rejects_unlowered_circuits() {
    let grid = Grid::new(2, 2);
    let _ = route(
        &unlowered(),
        &grid,
        &Layout::identity(4, 4),
        &RouterConfig::default(),
    );
}

#[test]
#[should_panic(expected = "route requires a lowered circuit")]
fn route_rejects_bare_swaps() {
    let grid = Grid::new(2, 2);
    let mut c = Circuit::new(4);
    c.swap(0, 1); // SWAPs are router *output*, not legal input
    let _ = route(&c, &grid, &Layout::identity(4, 4), &RouterConfig::default());
}

#[test]
#[should_panic(expected = "scheduler requires a lowered circuit")]
fn scheduler_rejects_unlowered_circuits() {
    let grid = Grid::new(2, 2);
    let _ = schedule_crosstalk_aware(&unlowered(), &grid);
}

#[test]
#[should_panic(expected = "fuse_single_qubit_runs requires a lowered circuit")]
fn fusion_rejects_unlowered_circuits() {
    let mut c = Circuit::new(3);
    c.ccx(0, 1, 2);
    let _ = fuse_single_qubit_runs(&c);
}

#[test]
fn lowering_then_consuming_succeeds_end_to_end() {
    // The positive path: the same circuits pass every consumer once
    // lowered.
    let grid = Grid::new(2, 2);
    let c = lower_to_cz(&unlowered());
    let routed = route(&c, &grid, &Layout::identity(4, 4), &RouterConfig::default());
    let physical = lower_to_cz(&routed.circuit);
    let slots = schedule_crosstalk_aware(&physical, &grid);
    assert!(!slots.is_empty());
    let fused = fuse_single_qubit_runs(&physical);
    assert!(fused.len() <= physical.len());
}
