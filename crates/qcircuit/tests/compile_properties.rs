//! Property-based tests for the compilation pipeline: lowering preserves
//! semantics, routing produces hardware-compliant circuits, scheduling
//! preserves order and covers every gate. Randomized cases come from the
//! workspace's seeded internal RNG (no proptest offline).

use qcircuit::ir::{Circuit, StateVector};
use qcircuit::lower::{fuse_single_qubit_runs, is_lowered, lower_to_cz};
use qcircuit::mapping::{route, Layout, RouterConfig};
use qcircuit::schedule::{schedule_crosstalk_aware, validate_schedule};
use qcircuit::topology::Grid;
use qsim::rng::StdRng;

const N: usize = 6; // grid 2×3
const CASES: u64 = 32;

fn random_circuit(rng: &mut StdRng) -> Circuit {
    let n_ops = rng.gen_range(1usize..25);
    let mut c = Circuit::new(N);
    for _ in 0..n_ops {
        let kind = rng.gen_range(0u32..8);
        let a = rng.gen_range(0usize..N);
        let b = rng.gen_range(0usize..N);
        let t = rng.gen_range(0usize..N);
        let angle = rng.gen_range(-3.0..3.0);
        let b2 = if b == a { (b + 1) % N } else { b };
        let t2 = if t == a || t == b2 {
            (a.max(b2) + 1) % N
        } else {
            t
        };
        match kind {
            0 => c.h(a),
            1 => c.t(a),
            2 => c.rx(a, angle),
            3 => c.rz(a, angle),
            4 => c.cx(a, b2),
            5 => c.cz(a, b2),
            6 => c.swap(a, b2),
            _ => {
                if t2 != a && t2 != b2 {
                    c.ccx(a, b2, t2);
                } else {
                    c.x(a);
                }
            }
        }
    }
    c
}

fn states_equal_up_to_phase(a: &StateVector, b: &StateVector, tol: f64) -> bool {
    let (ia, pa) = a.argmax();
    if pa < 1e-20 {
        return true;
    }
    let phase = a.amps[ia] / b.amps[ia];
    if (phase.abs() - 1.0).abs() > tol {
        return false;
    }
    a.amps
        .iter()
        .zip(b.amps.iter())
        .all(|(x, y)| (*x - *y * phase).abs() < tol)
}

#[test]
fn lowering_preserves_statevector() {
    for case in 0..CASES {
        let c = random_circuit(&mut StdRng::seed_from_u64(case));
        let low = lower_to_cz(&c);
        assert!(is_lowered(&low), "case {case}");
        let mut sa = StateVector::zero(N);
        let mut sb = StateVector::zero(N);
        sa.apply_circuit(&c);
        sb.apply_circuit(&low);
        assert!(states_equal_up_to_phase(&sa, &sb, 1e-7), "case {case}");
    }
}

#[test]
fn fusion_preserves_statevector() {
    for case in 0..CASES {
        let c = random_circuit(&mut StdRng::seed_from_u64(case));
        let low = lower_to_cz(&c);
        let fused = fuse_single_qubit_runs(&low);
        assert!(fused.len() <= low.len(), "case {case}");
        let mut sa = StateVector::zero(N);
        let mut sb = StateVector::zero(N);
        sa.apply_circuit(&low);
        sb.apply_circuit(&fused);
        assert!(states_equal_up_to_phase(&sa, &sb, 1e-7), "case {case}");
    }
}

#[test]
fn routing_is_compliant_and_preserves_marginals() {
    for case in 0..CASES {
        let c = random_circuit(&mut StdRng::seed_from_u64(case));
        let grid = Grid::new(2, 3);
        let low = lower_to_cz(&c);
        let routed = route(
            &low,
            &grid,
            &Layout::identity(N, N),
            &RouterConfig::default(),
        );
        assert!(routed.is_hardware_compliant(&grid), "case {case}");
        // Per-qubit marginals survive the layout permutation.
        let mut sl = StateVector::zero(N);
        sl.apply_circuit(&low);
        let mut sp = StateVector::zero(N);
        sp.apply_circuit(&routed.circuit);
        for l in 0..N {
            let p = routed.final_layout.phys(l);
            assert!(
                (sl.prob_one(l) - sp.prob_one(p)).abs() < 1e-7,
                "case {case}: qubit {l}"
            );
        }
    }
}

#[test]
fn schedule_is_valid_for_any_routed_circuit() {
    for case in 0..CASES {
        let c = random_circuit(&mut StdRng::seed_from_u64(case));
        let grid = Grid::new(2, 3);
        let low = lower_to_cz(&c);
        let routed = route(
            &low,
            &grid,
            &Layout::identity(N, N),
            &RouterConfig::default(),
        );
        // Router-inserted SWAPs are physical 3-CZ sequences: lower again
        // before scheduling (the production pipeline's order).
        let phys = lower_to_cz(&routed.circuit);
        let slots = schedule_crosstalk_aware(&phys, &grid);
        assert!(
            validate_schedule(&phys, &grid, &slots).is_ok(),
            "case {case}"
        );
        // Slot count bounded below by dependency depth.
        assert!(slots.len() >= phys.depth(), "case {case}");
    }
}

#[test]
fn depth_never_exceeds_gate_count() {
    for case in 0..CASES {
        let c = random_circuit(&mut StdRng::seed_from_u64(case));
        assert!(c.depth() <= c.len(), "case {case}");
        let m = c.moments();
        let total: usize = m.iter().map(|x| x.len()).sum();
        assert_eq!(total, c.len(), "case {case}");
    }
}
