//! Differential pinning of the workspace-reusing compile kernels.
//!
//! The routers and the crosstalk scheduler were rewritten around reusable
//! workspaces (trial layouts driven by `swap_physical` apply/undo pairs,
//! pooled colour groups, epoch-stamped interference masks) with a strict
//! byte-identity contract: the optimized kernels must produce *exactly*
//! the output of the original allocate-per-step implementations. This
//! test carries naive reference copies of those originals (per-candidate
//! `Layout::clone`, fresh `Vec` candidate lists, per-moment group
//! vectors — tallies stripped) and checks the shipped kernels against
//! them on randomized lowered circuits across both router strategies and
//! both schedulers.
//!
//! It also pins the allocation contract itself: compile passes tally one
//! alloc per materialized output artifact (route 2, schedule 1), scratch
//! is never tallied, and — because only outputs count — a cold call
//! tallies exactly the same as a warm one.

use qcircuit::ir::{Circuit, Gate};
use qcircuit::mapping::{route, route_lookahead, Layout, RoutedCircuit, RouterConfig};
use qcircuit::schedule::{czs_interfere, schedule_asap, schedule_crosstalk_aware, Slot};
use qcircuit::topology::Grid;
use qsim::rng::StdRng;

// ---------------------------------------------------------------------
// Naive reference implementations: verbatim ports of the pre-workspace
// kernels, minus counter tallies. Do not "improve" these — their whole
// value is being the original, obviously-correct algorithm.
// ---------------------------------------------------------------------

fn ref_route(c: &Circuit, grid: &Grid, initial: &Layout, cfg: &RouterConfig) -> RoutedCircuit {
    let mut best: Option<RoutedCircuit> = None;
    for t in 0..cfg.trials.max(1) {
        let r = ref_route_once(
            c,
            grid,
            initial.clone(),
            cfg.seed.wrapping_add(t as u64),
            cfg,
        );
        if best.as_ref().map_or(true, |b| r.swap_count < b.swap_count) {
            best = Some(r);
        }
    }
    best.expect("at least one trial")
}

fn ref_route_once(
    c: &Circuit,
    grid: &Grid,
    mut layout: Layout,
    seed: u64,
    cfg: &RouterConfig,
) -> RoutedCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Circuit::new(grid.n_qubits());
    let mut swap_count = 0usize;

    let upcoming: Vec<(usize, usize)> = c
        .gates()
        .iter()
        .filter_map(|g| match *g {
            Gate::Cz { a, b } => Some((a, b)),
            _ => None,
        })
        .collect();
    let mut next_2q = 0usize;

    for g in c.gates() {
        match *g {
            Gate::OneQ { q, kind } => out.push(Gate::OneQ {
                q: layout.phys(q),
                kind,
            }),
            Gate::Cz { a, b } => {
                loop {
                    let (pa, pb) = (layout.phys(a), layout.phys(b));
                    let d = grid.distance(pa, pb);
                    if d == 1 {
                        break;
                    }
                    let mut cands: Vec<(usize, usize, f64)> = Vec::new();
                    for &(end, other) in &[(pa, pb), (pb, pa)] {
                        for n in grid.neighbors(end) {
                            let d_after = grid.distance(n, other);
                            if d_after < d {
                                let mut la = 0.0;
                                let mut trial = layout.clone();
                                trial.swap_physical(end, n);
                                for k in 0..cfg.lookahead {
                                    let idx = next_2q + 1 + k;
                                    if idx >= upcoming.len() {
                                        break;
                                    }
                                    let (x, y) = upcoming[idx];
                                    la += grid.distance(trial.phys(x), trial.phys(y)) as f64
                                        / (k + 1) as f64;
                                }
                                let score = d_after as f64
                                    + cfg.lookahead_weight * la
                                    + rng.gen::<f64>() * 1e-3;
                                cands.push((end, n, score));
                            }
                        }
                    }
                    let &(x, y, _) = cands
                        .iter()
                        .min_by(|p, q| p.2.partial_cmp(&q.2).unwrap())
                        .expect("a distance-reducing swap always exists on a grid");
                    out.swap(x, y);
                    layout.swap_physical(x, y);
                    swap_count += 1;
                }
                out.cz(layout.phys(a), layout.phys(b));
                next_2q += 1;
            }
            _ => panic!("route requires a lowered circuit (1q + CZ only)"),
        }
    }

    RoutedCircuit {
        circuit: out,
        final_layout: layout,
        swap_count,
    }
}

fn ref_route_lookahead(
    c: &Circuit,
    grid: &Grid,
    mut layout: Layout,
    window: usize,
) -> RoutedCircuit {
    let mut out = Circuit::new(grid.n_qubits());
    let mut swap_count = 0usize;

    let upcoming: Vec<(usize, usize)> = c
        .gates()
        .iter()
        .filter_map(|g| match *g {
            Gate::Cz { a, b } => Some((a, b)),
            _ => None,
        })
        .collect();
    let mut next_2q = 0usize;

    for g in c.gates() {
        match *g {
            Gate::OneQ { q, kind } => out.push(Gate::OneQ {
                q: layout.phys(q),
                kind,
            }),
            Gate::Cz { a, b } => {
                loop {
                    let (pa, pb) = (layout.phys(a), layout.phys(b));
                    let d = grid.distance(pa, pb);
                    if d == 1 {
                        break;
                    }
                    let mut best: Option<(usize, usize, f64)> = None;
                    for &(end, other) in &[(pa, pb), (pb, pa)] {
                        for n in grid.neighbors(end) {
                            let d_after = grid.distance(n, other);
                            if d_after >= d {
                                continue;
                            }
                            let mut trial = layout.clone();
                            trial.swap_physical(end, n);
                            let mut score = d_after as f64;
                            for k in 0..window {
                                let idx = next_2q + 1 + k;
                                if idx >= upcoming.len() {
                                    break;
                                }
                                let (x, y) = upcoming[idx];
                                score += grid.distance(trial.phys(x), trial.phys(y)) as f64
                                    / (k + 2) as f64;
                            }
                            let better = match best {
                                None => true,
                                Some((be, bn, bs)) => {
                                    score < bs || (score == bs && (end, n) < (be, bn))
                                }
                            };
                            if better {
                                best = Some((end, n, score));
                            }
                        }
                    }
                    let (x, y, _) = best.expect("a distance-reducing swap always exists on a grid");
                    out.swap(x, y);
                    layout.swap_physical(x, y);
                    swap_count += 1;
                }
                out.cz(layout.phys(a), layout.phys(b));
                next_2q += 1;
            }
            _ => panic!("route requires a lowered circuit (1q + CZ only)"),
        }
    }

    RoutedCircuit {
        circuit: out,
        final_layout: layout,
        swap_count,
    }
}

fn ref_schedule_crosstalk_aware(c: &Circuit, grid: &Grid) -> Vec<Slot> {
    let moments = c.moments();
    let mut slots: Vec<Slot> = Vec::new();
    for moment in moments {
        let mut oneq: Slot = Vec::new();
        let mut cz_groups: Vec<Vec<usize>> = Vec::new();
        for gi in moment {
            match c.gates()[gi] {
                Gate::OneQ { .. } => oneq.push(gi),
                Gate::Cz { a, b } => {
                    let mut placed = false;
                    'groups: for group in cz_groups.iter_mut() {
                        for &other in group.iter() {
                            let (oa, ob) = match c.gates()[other] {
                                Gate::Cz { a, b } => (a, b),
                                _ => unreachable!(),
                            };
                            if czs_interfere(grid, (a, b), (oa, ob)) {
                                continue 'groups;
                            }
                        }
                        group.push(gi);
                        placed = true;
                        break;
                    }
                    if !placed {
                        cz_groups.push(vec![gi]);
                    }
                }
                _ => panic!("scheduler requires a lowered circuit"),
            }
        }
        if cz_groups.is_empty() {
            if !oneq.is_empty() {
                slots.push(oneq);
            }
        } else {
            let mut first = oneq;
            first.extend_from_slice(&cz_groups[0]);
            slots.push(first);
            for g in cz_groups.into_iter().skip(1) {
                slots.push(g);
            }
        }
    }
    slots
}

// ---------------------------------------------------------------------
// Random lowered-circuit generator.
// ---------------------------------------------------------------------

/// A random {1q, CZ} circuit on `n` qubits — already lowered, dense
/// enough that routing must insert SWAPs and scheduling must split
/// moments (CZs between arbitrary, mostly non-adjacent pairs).
fn random_lowered(seed: u64, n: usize, gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..5usize) {
            0 => c.h(rng.gen_range(0..n)),
            1 => c.t(rng.gen_range(0..n)),
            2 => c.rz(rng.gen_range(0..n), rng.gen::<f64>()),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.cz(a, b);
            }
        }
    }
    c
}

fn grids_and_layouts(n: usize, grid: &Grid) -> Vec<Layout> {
    vec![Layout::snake(n, grid), Layout::identity(n, grid.n_qubits())]
}

// ---------------------------------------------------------------------
// Byte-identity: optimized kernels vs the naive references.
// ---------------------------------------------------------------------

#[test]
fn greedy_router_matches_naive_reference_on_random_circuits() {
    let grid = Grid::new(5, 5);
    let cfgs = [
        RouterConfig::default(),
        RouterConfig {
            seed: 7,
            trials: 4,
            lookahead: 3,
            lookahead_weight: 1.25,
        },
        RouterConfig {
            seed: 99,
            trials: 1,
            lookahead: 0,
            lookahead_weight: 0.0,
        },
    ];
    for seed in 0..6u64 {
        let n = 8 + (seed as usize % 3) * 5; // 8, 13, 18 logical qubits
        let c = random_lowered(seed, n, 60);
        for initial in grids_and_layouts(n, &grid) {
            for cfg in &cfgs {
                let fast = route(&c, &grid, &initial, cfg);
                let naive = ref_route(&c, &grid, &initial, cfg);
                assert_eq!(
                    fast, naive,
                    "greedy route diverged (seed {seed}, cfg {cfg:?})"
                );
                assert!(fast.is_hardware_compliant(&grid));
            }
        }
    }
}

#[test]
fn lookahead_router_matches_naive_reference_on_random_circuits() {
    let grid = Grid::new(5, 5);
    for seed in 0..6u64 {
        let n = 8 + (seed as usize % 3) * 5;
        let c = random_lowered(seed.wrapping_add(1000), n, 60);
        for initial in grids_and_layouts(n, &grid) {
            for window in [0usize, 4, 16] {
                let fast = route_lookahead(&c, &grid, &initial, window);
                let naive = ref_route_lookahead(&c, &grid, initial.clone(), window);
                assert_eq!(
                    fast, naive,
                    "lookahead route diverged (seed {seed}, window {window})"
                );
                assert!(fast.is_hardware_compliant(&grid));
            }
        }
    }
}

#[test]
fn crosstalk_scheduler_matches_naive_reference_on_routed_circuits() {
    let grid = Grid::new(5, 5);
    for seed in 0..8u64 {
        let n = 8 + (seed as usize % 3) * 5;
        let c = random_lowered(seed.wrapping_add(2000), n, 80);
        let snake = Layout::snake(n, &grid);
        // Schedule real routed output (lowered SWAPs included) — the
        // shape the pipeline feeds the scheduler.
        let routed = route(&c, &grid, &snake, &RouterConfig::default());
        let phys = qcircuit::lower::lower_to_cz(&routed.circuit);
        let fast = schedule_crosstalk_aware(&phys, &grid);
        let naive = ref_schedule_crosstalk_aware(&phys, &grid);
        assert_eq!(fast, naive, "crosstalk schedule diverged (seed {seed})");
        qcircuit::schedule::validate_schedule(&phys, &grid, &fast).expect("schedule must validate");
    }
}

#[test]
fn asap_scheduler_matches_dependency_moments() {
    for seed in 0..4u64 {
        let c = random_lowered(seed.wrapping_add(3000), 10, 50);
        assert_eq!(
            schedule_asap(&c),
            c.moments(),
            "asap diverged (seed {seed})"
        );
    }
}

// ---------------------------------------------------------------------
// The allocation contract: one tally per materialized output artifact,
// scratch untallied, cold == warm.
// ---------------------------------------------------------------------

#[test]
fn route_tallies_exactly_its_two_outputs_cold_and_warm() {
    let grid = Grid::new(5, 5);
    let c = random_lowered(42, 13, 60);
    let snake = Layout::snake(13, &grid);
    let cfg = RouterConfig::default();
    let (_, cold) = qsim::counters::counted(|| route(&c, &grid, &snake, &cfg));
    let (_, warm) = qsim::counters::counted(|| route(&c, &grid, &snake, &cfg));
    assert_eq!(cold.allocs, 2, "route = routed circuit + final layout");
    assert_eq!(cold, warm, "warm route must tally exactly like a cold one");
    assert!(cold.flops > 0, "candidate scoring must still count flops");

    let (_, la_cold) = qsim::counters::counted(|| route_lookahead(&c, &grid, &snake, 8));
    let (_, la_warm) = qsim::counters::counted(|| route_lookahead(&c, &grid, &snake, 8));
    assert_eq!(la_cold.allocs, 2);
    assert_eq!(la_cold, la_warm);
}

#[test]
fn schedulers_tally_exactly_one_output_cold_and_warm() {
    let grid = Grid::new(5, 5);
    let c = random_lowered(43, 13, 80);
    let snake = Layout::snake(13, &grid);
    let routed = route(&c, &grid, &snake, &RouterConfig::default());
    let phys = qcircuit::lower::lower_to_cz(&routed.circuit);
    let (_, cold) = qsim::counters::counted(|| schedule_crosstalk_aware(&phys, &grid));
    let (_, warm) = qsim::counters::counted(|| schedule_crosstalk_aware(&phys, &grid));
    assert_eq!(cold.allocs, 1, "schedule = the slot list");
    assert_eq!(cold, warm);

    let (_, asap_cold) = qsim::counters::counted(|| schedule_asap(&phys));
    let (_, asap_warm) = qsim::counters::counted(|| schedule_asap(&phys));
    assert_eq!(asap_cold.allocs, 1);
    assert_eq!(asap_cold, asap_warm);
}

#[test]
fn full_pipeline_tallies_route_plus_schedule_cold_and_warm() {
    use qcircuit::pipeline::{CompileArtifact, Pipeline, PipelineConfig};
    let grid = Grid::new(5, 5);
    let logical = random_lowered(44, 13, 60);
    let snake = Layout::snake(13, &grid);
    let pipeline = Pipeline::standard(&PipelineConfig::default());
    let run = || {
        pipeline
            .run(CompileArtifact::new(logical.clone(), snake.clone()), &grid)
            .unwrap()
            .0
            .scheduled()
            .len()
    };
    let (_, cold) = qsim::counters::counted(run);
    let (_, warm) = qsim::counters::counted(run);
    // Route materializes 2 artifacts, the scheduler 1; lowering and
    // validation are tally-free. Workspace warmup must not show up.
    assert_eq!(cold.allocs, 3, "pipeline = route (2) + schedule (1)");
    assert_eq!(cold, warm, "pipeline warmup must be invisible to tallies");
}
