//! Room-temperature ↔ 4 K digital cable sizing (Fig 8c).
//!
//! DigiQ replaces per-qubit analog coax with shared digital links: control
//! bits for every controller cycle must arrive within that cycle over
//! 10 Gbps return-to-zero cables (§VI-A4), plus three dedicated control
//! lines (`Go`, `Valid`, `Load`). This module computes the cable count for
//! a given per-cycle payload.
//!
//! # Examples
//!
//! ```
//! use sfq_hw::cables::{CableSpec, cable_count};
//!
//! // DigiQ_min(G=2, BS=2): 3 sel bits × 1024 qubits over a 9 ns cycle.
//! let n = cable_count(3 * 1024, 9.0, &CableSpec::default());
//! assert!(n >= 30 && n <= 45);
//! ```

/// Physical link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CableSpec {
    /// Per-cable data rate in Gbit/s (paper: 10 Gbps RZ, ref [12]).
    pub gbps: f64,
    /// Dedicated control lines (paper: Go, Valid, Load).
    pub control_lines: u64,
}

impl Default for CableSpec {
    fn default() -> Self {
        CableSpec {
            gbps: 10.0,
            control_lines: 3,
        }
    }
}

/// Bits one cable delivers within one controller cycle.
pub fn bits_per_cable_per_cycle(cycle_ns: f64, spec: &CableSpec) -> f64 {
    spec.gbps * cycle_ns
}

/// Number of cables needed to deliver `bits_per_cycle` payload bits every
/// `cycle_ns`, including the dedicated control lines.
///
/// # Panics
///
/// Panics if `cycle_ns <= 0`.
pub fn cable_count(bits_per_cycle: u64, cycle_ns: f64, spec: &CableSpec) -> u64 {
    assert!(cycle_ns > 0.0, "cycle time must be positive");
    let per_cable = bits_per_cable_per_cycle(cycle_ns, spec);
    let data = (bits_per_cycle as f64 / per_cable).ceil() as u64;
    data + spec.control_lines
}

/// Aggregate bandwidth (Gbit/s) required for a payload — used to compare
/// against the *analog* baseline of 2 coax cables per qubit (§VI-A4 quotes
/// 52.5× fewer cables for DigiQ_min(G=2,BS=2) vs. a microwave system).
pub fn required_bandwidth_gbps(bits_per_cycle: u64, cycle_ns: f64) -> f64 {
    bits_per_cycle as f64 / cycle_ns
}

/// Cable count for a conventional microwave controller: 2 coax lines per
/// qubit (1 drive + 1 flux, ref [3]).
pub fn microwave_baseline_cables(n_qubits: u64) -> u64 {
    2 * n_qubits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_cable() {
        let spec = CableSpec::default();
        // 10 Gbps × 9 ns = 90 bits.
        assert!((bits_per_cable_per_cycle(9.0, &spec) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn digiq_min_cable_count_matches_paper_scale() {
        // §VI-A4: DigiQ_min(G=2,BS=2) needs 39 cables per 1024 qubits with
        // a 9 ns controller cycle. Our model: 3 select bits per qubit.
        let spec = CableSpec::default();
        let n = cable_count(3 * 1024, 9.0, &spec);
        assert!(
            (35..=43).contains(&n),
            "cable count {n} far from paper's 39"
        );
    }

    #[test]
    fn digiq_opt_cable_count_matches_paper_scale() {
        // DigiQ_opt(G=2,BS=16): 19.32 ns minimum cycle; 5 sel bits/qubit +
        // 2 groups × 16 delays × 8 bits. Paper: 33 cables.
        let spec = CableSpec::default();
        let payload = 5 * 1024 + 2 * 16 * 8;
        let n = cable_count(payload, 19.32, &spec);
        assert!(
            (28..=38).contains(&n),
            "cable count {n} far from paper's 33"
        );
    }

    #[test]
    fn control_lines_always_included() {
        let spec = CableSpec::default();
        assert_eq!(cable_count(0, 9.0, &spec), 3);
        assert_eq!(cable_count(1, 9.0, &spec), 4);
    }

    #[test]
    fn microwave_baseline() {
        assert_eq!(microwave_baseline_cables(1024), 2048);
        // The paper's 52.5× claim: 2048 / 39 ≈ 52.5.
        let digiq = cable_count(3 * 1024, 9.0, &CableSpec::default());
        let ratio = microwave_baseline_cables(1024) as f64 / digiq as f64;
        assert!((45.0..60.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn bandwidth_helper() {
        assert!((required_bandwidth_gbps(900, 9.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn shorter_cycles_need_more_cables() {
        let spec = CableSpec::default();
        let slow = cable_count(4096, 20.0, &spec);
        let fast = cable_count(4096, 5.0, &spec);
        assert!(fast > slow);
    }
}
