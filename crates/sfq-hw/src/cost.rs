//! Post-synthesis power / area / delay estimation.
//!
//! The paper reports post-layout numbers from WRSpice/JSIM-simulated
//! extractions of a validated cell library (§VI-A1). We cannot run those
//! proprietary flows, so this module substitutes a *calibrated structural
//! model* (DESIGN.md substitution #1): cost is rolled up from exact cell
//! counts of the synthesized netlists, with three documented constants
//! anchored to the numbers the paper publishes:
//!
//! * **Power** — RSFQ is dominated by static bias dissipation
//!   `P ≈ N_JJ · I_bias · V_bias · w` with `w` a wiring/bias-network
//!   overhead factor. The anchor is §IV-A1: a 300-bit register (600
//!   master–slave NDROs = 10,806 JJ) costs 5.01 mW/qubit ⇒
//!   `I_bias = 180 µA`, `V_bias = 2.6 mV`, `w = 1.0`. SFQ/DC converters
//!   are excluded from the digital bias sum (they emit DC while toggled;
//!   a fixed per-converter analog allowance is added instead). A
//!   (negligible) dynamic term `E_sw·f·α` is included for completeness.
//! * **Area** — `A = Σ cell areas / utilization`; SFQ layouts are
//!   PTL-routing dominated and sparse. The same anchor (13.9 mm²/qubit for
//!   the 300-bit register, 2.70 mm² of cells) gives `utilization = 0.195`.
//! * **Delay** — per-stage: worst over clocked sinks of (async fanin chain
//!   delay + JTL wiring + own cell delay); the paper's synthesized worst
//!   stage is 34.5 ps, giving the 40 ps SFQ clock.
//!
//! Because every *relative* comparison in Fig 8 (BS/G sweeps, MIMD
//! baselines) divides out these constants, the calibration only fixes the
//! absolute scale.

use crate::cells::CellType;
use crate::json::{Json, ToJson};
use crate::netlist::{Netlist, NetlistStats};

/// Magnetic flux quantum in mV·ps (≡ 2.07 × 10⁻¹⁵ Wb).
pub const PHI0_MV_PS: f64 = 2.07;

/// Calibrated technology constants (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Average bias current per JJ in µA (including bias network).
    pub bias_current_per_jj_ua: f64,
    /// Bias rail voltage in mV.
    pub bias_voltage_mv: f64,
    /// Multiplier for JTL/PTL wiring & bias JJs not present in the cell
    /// netlist.
    pub wiring_jj_overhead: f64,
    /// Fraction of die area occupied by cells (rest: PTL tracks, bias).
    pub area_utilization: f64,
    /// Average JTL hops per netlist edge (wiring delay model).
    pub jtl_hops_per_edge: f64,
    /// SFQ clock frequency in GHz (dynamic-power term only).
    pub clock_ghz: f64,
    /// Average switching activity per JJ per clock.
    pub switching_activity: f64,
    /// Analog power allowance per SFQ/DC converter, nW (replaces its
    /// digital bias contribution).
    pub sfqdc_analog_nw: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            bias_current_per_jj_ua: 180.0,
            bias_voltage_mv: 2.6,
            wiring_jj_overhead: 1.0,
            area_utilization: 0.195,
            jtl_hops_per_edge: 1.5,
            clock_ghz: 25.0,
            switching_activity: 0.3,
            sfqdc_analog_nw: 1000.0,
        }
    }
}

/// Power / area / delay report for a module or a composed design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Total power in watts.
    pub power_w: f64,
    /// Total area in mm².
    pub area_mm2: f64,
    /// Worst pipeline-stage delay in ps (0 when no clocked cells exist).
    pub worst_stage_ps: f64,
    /// Total Josephson junctions (before wiring overhead).
    pub total_jj: u64,
}

impl ToJson for CostReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("power_w", self.power_w.to_json()),
            ("area_mm2", self.area_mm2.to_json()),
            ("worst_stage_ps", self.worst_stage_ps.to_json()),
            ("total_jj", self.total_jj.to_json()),
        ])
    }
}

impl CostModel {
    /// Static + dynamic power of a stats block, in watts.
    pub fn power_w(&self, stats: &NetlistStats) -> f64 {
        let n_sfqdc = stats.count(CellType::SfqDc);
        let digital_jj = stats.total_jj - n_sfqdc * CellType::SfqDc.jj_count() as u64;
        let jj = digital_jj as f64 * self.wiring_jj_overhead;
        // Static: I·V per JJ. (µA · mV = nW)
        let static_nw = jj * self.bias_current_per_jj_ua * self.bias_voltage_mv;
        // Dynamic: E_sw = I_c·Φ₀ per switch (µA · mV·ps = 1e-21 J ⇒ zJ).
        let esw_zj = self.bias_current_per_jj_ua * PHI0_MV_PS;
        let dynamic_nw = jj * esw_zj * 1e-21 * self.clock_ghz * 1e9 * self.switching_activity * 1e9;
        let analog_nw = n_sfqdc as f64 * self.sfqdc_analog_nw;
        (static_nw + dynamic_nw + analog_nw) * 1e-9
    }

    /// Die area of a stats block, in mm².
    pub fn area_mm2(&self, stats: &NetlistStats) -> f64 {
        stats.cell_area_um2 / self.area_utilization / 1e6
    }

    /// Worst pipeline-stage delay of a netlist in ps.
    ///
    /// For each clocked sink, the stage delay is the longest asynchronous
    /// chain (splitters/JTLs) feeding it — measured from the previous
    /// clocked element or balancing DFF — plus per-edge JTL wiring and the
    /// sink's own delay.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle.
    pub fn worst_stage_ps(&self, nl: &Netlist) -> f64 {
        let order = nl.topo_order().expect("acyclic netlist");
        let wire = self.jtl_hops_per_edge * CellType::Jtl.delay_ps();
        // out_time[n]: when n's pulse leaves, relative to stage start.
        let mut out_time = vec![0.0f64; nl.len()];
        let mut worst = 0.0f64;
        for id in order {
            let node = nl.node(id);
            let cell = node.cell();
            // Arrival per pin.
            let mut arrival = 0.0f64;
            for (pin, &src) in node.fanin.iter().enumerate() {
                let launched = if node.in_dffs[pin] > 0 {
                    // Last balancing DFF relaunches the pulse.
                    CellType::DroDff.delay_ps()
                } else {
                    out_time[src.index()]
                };
                // First balancing DFF on the edge is itself a stage sink.
                if node.in_dffs[pin] > 0 {
                    worst = worst.max(out_time[src.index()] + wire + CellType::DroDff.delay_ps());
                }
                arrival = arrival.max(launched + wire);
            }
            match cell {
                None => out_time[id.index()] = 0.0,
                Some(c) if c.is_clocked() => {
                    // Stage ends here; pulse relaunches at next clock.
                    worst = worst.max(arrival + c.delay_ps());
                    out_time[id.index()] = c.delay_ps();
                }
                Some(c) => {
                    // Asynchronous cell accumulates.
                    out_time[id.index()] = arrival + c.delay_ps();
                }
            }
            // Output-side balancing DFFs form their own stages.
            if node.out_dffs > 0 {
                worst = worst.max(out_time[id.index()] + wire + CellType::DroDff.delay_ps());
                out_time[id.index()] = CellType::DroDff.delay_ps();
            }
        }
        worst
    }

    /// Full report for one synthesized netlist.
    pub fn report(&self, nl: &Netlist) -> CostReport {
        let stats = nl.stats();
        CostReport {
            power_w: self.power_w(&stats),
            area_mm2: self.area_mm2(&stats),
            worst_stage_ps: self.worst_stage_ps(nl),
            total_jj: stats.total_jj,
        }
    }

    /// Report for a hierarchically composed stats block (no netlist-level
    /// delay available; `worst_stage_ps` supplied by the caller from the
    /// constituent modules).
    pub fn report_composed(&self, stats: &NetlistStats, worst_stage_ps: f64) -> CostReport {
        CostReport {
            power_w: self.power_w(stats),
            area_mm2: self.area_mm2(stats),
            worst_stage_ps,
            total_jj: stats.total_jj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::passes::synthesize;

    #[test]
    fn register_anchor_calibration() {
        // The calibration anchor from §IV-A1: one 300-bit register per
        // qubit costs 5.01 mW and 13.9 mm². Our circulating register must
        // land within 15% of both.
        let nl = generators::circulating_register(300);
        let m = CostModel::default();
        let stats = nl.stats();
        let p_mw = m.power_w(&stats) * 1e3;
        let a_mm2 = m.area_mm2(&stats);
        assert!(
            (p_mw - 5.01).abs() / 5.01 < 0.15,
            "register power {p_mw:.2} mW vs paper 5.01 mW"
        );
        assert!(
            (a_mm2 - 13.9).abs() / 13.9 < 0.15,
            "register area {a_mm2:.2} mm2 vs paper 13.9 mm2"
        );
    }

    #[test]
    fn static_power_dominates_dynamic() {
        let nl = generators::circulating_register(10);
        let m = CostModel::default();
        let stats = nl.stats();
        let p = m.power_w(&stats);
        let m_no_dyn = CostModel {
            switching_activity: 0.0,
            ..m
        };
        let p_static = m_no_dyn.power_w(&stats);
        assert!(p > p_static);
        assert!((p - p_static) / p < 0.02, "dynamic should be <2%");
    }

    #[test]
    fn worst_stage_of_mux_is_in_paper_range() {
        // The per-qubit mux is the deepest async structure (NDRO + AND +
        // OR chain); the paper's worst synthesized stage is 34.5 ps.
        let mut nl = generators::one_hot_mux(8);
        synthesize(&mut nl);
        let m = CostModel::default();
        let d = m.worst_stage_ps(&nl);
        assert!(
            (15.0..45.0).contains(&d),
            "mux worst stage {d:.1} ps out of expected range"
        );
    }

    #[test]
    fn deeper_muxes_are_slower_or_equal() {
        let m = CostModel::default();
        let mut d_prev = 0.0;
        for k in [2usize, 4, 8, 16] {
            let mut nl = generators::one_hot_mux(k);
            synthesize(&mut nl);
            let d = m.worst_stage_ps(&nl);
            assert!(d + 1e-9 >= d_prev, "stage delay should not shrink with k");
            d_prev = d;
        }
    }

    #[test]
    fn report_fields_consistent() {
        let mut nl = generators::equality_comparator(8);
        synthesize(&mut nl);
        let m = CostModel::default();
        let r = m.report(&nl);
        assert!(r.power_w > 0.0);
        assert!(r.area_mm2 > 0.0);
        assert!(r.worst_stage_ps > 0.0);
        assert_eq!(r.total_jj, nl.stats().total_jj);
    }

    #[test]
    fn power_scales_linearly_with_instances() {
        let nl = generators::ndro_bank(4);
        let m = CostModel::default();
        let one = nl.stats();
        let mut ten = crate::netlist::NetlistStats::default();
        ten.add_scaled(&one, 10);
        assert!((m.power_w(&ten) - 10.0 * m.power_w(&one)).abs() < 1e-12);
        assert!((m.area_mm2(&ten) - 10.0 * m.area_mm2(&one)).abs() < 1e-9);
    }

    #[test]
    fn balancing_dffs_add_power() {
        let mut nl = generators::one_hot_mux(8);
        let m = CostModel::default();
        let before = m.power_w(&nl.stats());
        synthesize(&mut nl);
        let after = m.power_w(&nl.stats());
        assert!(after > before, "balancing must add cost");
    }
}
