//! Gate-level RSFQ netlists.
//!
//! A [`Netlist`] is a directed graph of standard cells (plus registered
//! feedback edges for sequential loops such as circulating shift
//! registers). The synthesis passes in [`crate::passes`] legalize fanout
//! with splitter trees, fully path-balance the clocked depth, and retime —
//! the flow of the paper's §VI-A ("mapped using a path balancing technology
//! mapping algorithm and fully path balanced … a standard retiming
//! algorithm … then memory elements are replaced with SFQ DRO DFFs, and
//! splitters are inserted at the output of gates with more than one
//! fanout").
//!
//! Path-balancing DFFs are represented as **edge weights** (`in_dffs` per
//! input pin, `out_dffs` per node output) rather than physical nodes: the
//! cost model counts them as DRO DFF instances, and retiming moves them
//! without graph surgery. [`crate::passes::materialize_balancing`] can
//! expand them into physical chains when an explicit netlist is wanted.
//!
//! Controller-scale hardware is composed *hierarchically*: module netlists
//! stay small (thousands of nodes) and `digiq_core::hardware` multiplies
//! module costs by instance counts via [`NetlistStats::add_scaled`].
//!
//! # Examples
//!
//! ```
//! use sfq_hw::netlist::Netlist;
//! use sfq_hw::cells::CellType;
//!
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let sum = nl.gate(CellType::Xor2, &[a, b]);
//! let carry = nl.gate(CellType::And2, &[a, b]);
//! nl.mark_output("sum", sum);
//! nl.mark_output("carry", carry);
//! assert!(nl.validate().is_ok());
//! ```

use crate::cells::CellType;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a netlist node. Only valid for the netlist that created
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input (off-module signal: room-temperature control bit,
    /// clock distribution tap, neighbouring module output…).
    Input,
    /// An instance of a standard cell.
    Gate(CellType),
}

/// A netlist node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Input or gate.
    pub kind: NodeKind,
    /// Driving nodes, in input-pin order.
    pub fanin: Vec<NodeId>,
    /// Path-balancing DRO DFFs on each input edge (parallel to `fanin`).
    pub in_dffs: Vec<u32>,
    /// Path-balancing DRO DFFs at the output, shared by all sinks
    /// (the retiming pass moves input-edge DFFs here).
    pub out_dffs: u32,
}

impl Node {
    /// The cell type, or `None` for primary inputs.
    pub fn cell(&self) -> Option<CellType> {
        match self.kind {
            NodeKind::Input => None,
            NodeKind::Gate(c) => Some(c),
        }
    }

    /// Whether the node defines a pipeline stage (clocked cell).
    pub fn is_clocked(&self) -> bool {
        self.cell().map_or(false, CellType::is_clocked)
    }

    /// Total balancing DFFs attached to this node.
    pub fn balancing_dffs(&self) -> u64 {
        self.in_dffs.iter().map(|&d| d as u64).sum::<u64>() + self.out_dffs as u64
    }
}

/// Structural validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was built with the wrong number of inputs.
    WrongFanin {
        /// Offending node.
        node: u32,
        /// Cell type of the node.
        cell: CellType,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle,
    /// A feedback edge does not terminate at a storage element.
    FeedbackIntoNonStorage {
        /// Destination node of the offending feedback edge.
        node: u32,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::WrongFanin {
                node,
                cell,
                expected,
                actual,
            } => write!(
                f,
                "node {node} ({cell}) has {actual} inputs, expected {expected}"
            ),
            NetlistError::CombinationalCycle => {
                write!(
                    f,
                    "combinational cycle detected (feedback must be registered)"
                )
            }
            NetlistError::FeedbackIntoNonStorage { node } => {
                write!(f, "feedback edge terminates at non-storage node {node}")
            }
        }
    }
}

impl Error for NetlistError {}

/// Aggregate structural statistics of a netlist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetlistStats {
    /// Instance count per cell type (including balancing DFFs, reported
    /// under [`CellType::DroDff`]).
    pub cell_counts: HashMap<CellType, u64>,
    /// Number of primary inputs.
    pub inputs: u64,
    /// Balancing DFFs alone (subset of the DRO count), for reporting.
    pub balancing_dffs: u64,
    /// Total Josephson junctions over all cells.
    pub total_jj: u64,
    /// Total cell area in µm² (pre layout-overhead).
    pub cell_area_um2: f64,
}

impl NetlistStats {
    /// Instances of one cell type.
    pub fn count(&self, cell: CellType) -> u64 {
        self.cell_counts.get(&cell).copied().unwrap_or(0)
    }

    /// Total cell instances.
    pub fn total_cells(&self) -> u64 {
        self.cell_counts.values().sum()
    }

    /// Merges another stats block scaled by `count` instances — the
    /// hierarchical composition primitive.
    pub fn add_scaled(&mut self, other: &NetlistStats, count: u64) {
        for (&cell, &n) in &other.cell_counts {
            *self.cell_counts.entry(cell).or_insert(0) += n * count;
        }
        self.inputs += other.inputs * count;
        self.balancing_dffs += other.balancing_dffs * count;
        self.total_jj += other.total_jj * count;
        self.cell_area_um2 += other.cell_area_um2 * count as f64;
    }
}

/// A gate-level netlist (see module docs).
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
    /// Registered sequential loops `(src, dst)`; `dst` must be storage.
    feedback: Vec<(NodeId, NodeId)>,
}

impl Netlist {
    /// Creates an empty netlist with a diagnostic name.
    ///
    /// Tallied as one materialized artifact by [`crate::counters`]; node
    /// storage is drawn from the per-thread pool in [`crate::workspace`],
    /// so warm construction is allocation-light.
    pub fn new(name: impl Into<String>) -> Self {
        crate::counters::tally_allocs(1);
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
            feedback: Vec::new(),
        }
    }

    /// Builds a node from the recycled pool when possible (every field is
    /// re-initialized; recycled `Vec`s keep only their capacity).
    fn fresh_node(kind: NodeKind, fanin: &[NodeId]) -> Node {
        match crate::workspace::pop_node() {
            Some(mut node) => {
                node.kind = kind;
                node.fanin.clear();
                node.fanin.extend_from_slice(fanin);
                node.in_dffs.clear();
                node.in_dffs.resize(fanin.len(), 0);
                node.out_dffs = 0;
                node
            }
            None => Node {
                kind,
                fanin: fanin.to_vec(),
                in_dffs: vec![0; fanin.len()],
                out_dffs: 0,
            },
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (inputs + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a primary input. The name is only for diagnostics.
    pub fn input(&mut self, _name: &str) -> NodeId {
        self.push(Self::fresh_node(NodeKind::Input, &[]))
    }

    /// Adds `n` primary inputs at once.
    pub fn inputs(&mut self, _prefix: &str, n: usize) -> Vec<NodeId> {
        // Input names are diagnostic-only and discarded by `input`; no
        // point formatting one per node.
        (0..n).map(|_| self.input("")).collect()
    }

    /// Adds a gate driven by `fanin`.
    ///
    /// # Panics
    ///
    /// Panics if the fanin count does not match the cell's arity, or if any
    /// fanin id is out of range (builder misuse is a programming error).
    pub fn gate(&mut self, cell: CellType, fanin: &[NodeId]) -> NodeId {
        assert_eq!(
            fanin.len(),
            cell.fanin(),
            "{cell} expects {} inputs, got {}",
            cell.fanin(),
            fanin.len()
        );
        for f in fanin {
            assert!(f.index() < self.nodes.len(), "fanin id out of range");
        }
        self.push(Self::fresh_node(NodeKind::Gate(cell), fanin))
    }

    /// Adds a chain of `n` copies of a single-input cell after `src`,
    /// returning the final node (or `src` when `n == 0`).
    pub fn chain(&mut self, cell: CellType, src: NodeId, n: usize) -> NodeId {
        let mut cur = src;
        for _ in 0..n {
            cur = self.gate(cell, &[cur]);
        }
        cur
    }

    /// Registers a sequential feedback edge from `src` into storage node
    /// `dst` (e.g. closing a circulating shift register). Excluded from
    /// combinational analysis.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_feedback(&mut self, src: NodeId, dst: NodeId) {
        assert!(src.index() < self.nodes.len() && dst.index() < self.nodes.len());
        self.feedback.push((src, dst));
    }

    /// Marks a node as a module output.
    pub fn mark_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Module outputs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Feedback edges.
    pub fn feedback_edges(&self) -> &[(NodeId, NodeId)] {
        &self.feedback
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates `(id, node)` in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Computes per-node fanout counts (combinational edges only).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            for f in &n.fanin {
                counts[f.index()] += 1;
            }
        }
        counts
    }

    /// Computes per-node sink lists `(sink, pin)` (combinational edges
    /// only).
    pub fn fanouts(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for (pin, f) in n.fanin.iter().enumerate() {
                out[f.index()].push((NodeId(i as u32), pin));
            }
        }
        out
    }

    /// Kahn topological order of the combinational graph.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if no such order
    /// exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        let n = self.nodes.len();
        let mut order = Vec::with_capacity(n);
        let fanouts = self.fanouts();
        // In-degree = fanin count (combinational edges only).
        let mut indeg = vec![0u32; n];
        for (i, node) in self.nodes.iter().enumerate() {
            indeg[i] = node.fanin.len() as u32;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(i) = queue.pop() {
            order.push(NodeId(i as u32));
            for &(sink, _) in &fanouts[i] {
                let s = sink.index();
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(NetlistError::CombinationalCycle)
        }
    }

    /// Structural validation: arity, acyclicity of the combinational
    /// graph, and feedback-into-storage.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeKind::Gate(cell) = n.kind {
                if n.fanin.len() != cell.fanin() {
                    return Err(NetlistError::WrongFanin {
                        node: i as u32,
                        cell,
                        expected: cell.fanin(),
                        actual: n.fanin.len(),
                    });
                }
            }
        }
        self.topo_order()?;
        for &(_, dst) in &self.feedback {
            let ok = self.nodes[dst.index()]
                .cell()
                .map_or(false, CellType::is_storage);
            if !ok {
                return Err(NetlistError::FeedbackIntoNonStorage { node: dst.0 });
            }
        }
        Ok(())
    }

    /// Aggregates structural statistics (balancing edge-DFFs counted as
    /// DRO DFF instances).
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for n in &self.nodes {
            match n.kind {
                NodeKind::Input => s.inputs += 1,
                NodeKind::Gate(c) => {
                    *s.cell_counts.entry(c).or_insert(0) += 1;
                    s.total_jj += c.jj_count() as u64;
                    s.cell_area_um2 += c.area_um2();
                }
            }
            let bal = n.balancing_dffs();
            if bal > 0 {
                s.balancing_dffs += bal;
                *s.cell_counts.entry(CellType::DroDff).or_insert(0) += bal;
                s.total_jj += bal * CellType::DroDff.jj_count() as u64;
                s.cell_area_um2 += bal as f64 * CellType::DroDff.area_um2();
            }
        }
        s
    }

    pub(crate) fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }
}

impl Drop for Netlist {
    fn drop(&mut self) {
        // Recycle node buffers (with their capacities) into the
        // per-thread pool for the next construction.
        crate::workspace::recycle_nodes(std::mem::take(&mut self.nodes));
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        writeln!(
            f,
            "netlist '{}': {} nodes, {} inputs, {} JJ, {:.0} um2",
            self.name,
            self.len(),
            s.inputs,
            s.total_jj,
            s.cell_area_um2
        )?;
        let mut cells: Vec<_> = s.cell_counts.iter().collect();
        cells.sort();
        for (c, n) in cells {
            writeln!(f, "  {c}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.gate(CellType::Xor2, &[a, b]);
        let c = nl.gate(CellType::And2, &[a, b]);
        nl.mark_output("s", s);
        nl.mark_output("c", c);
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = half_adder();
        assert_eq!(nl.len(), 4);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.outputs().len(), 2);
    }

    #[test]
    fn stats_aggregation() {
        let nl = half_adder();
        let s = nl.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.count(CellType::Xor2), 1);
        assert_eq!(s.count(CellType::And2), 1);
        assert_eq!(s.total_jj, (18 + 16) as u64);
        assert_eq!(s.cell_area_um2, 7000.0);
        assert_eq!(s.total_cells(), 2);
    }

    #[test]
    fn stats_scaled_merge() {
        let nl = half_adder();
        let mut total = NetlistStats::default();
        total.add_scaled(&nl.stats(), 10);
        assert_eq!(total.count(CellType::Xor2), 10);
        assert_eq!(total.total_jj, 340);
        assert_eq!(total.inputs, 20);
    }

    #[test]
    fn balancing_dffs_enter_stats() {
        let mut nl = half_adder();
        let xor = NodeId(2);
        nl.node_mut(xor).in_dffs[0] = 3;
        nl.node_mut(xor).out_dffs = 1;
        let s = nl.stats();
        assert_eq!(s.balancing_dffs, 4);
        assert_eq!(s.count(CellType::DroDff), 4);
        assert_eq!(s.total_jj, 34 + 4 * 11);
    }

    #[test]
    fn fanout_counting() {
        let nl = half_adder();
        let counts = nl.fanout_counts();
        // Inputs a and b each drive XOR and AND.
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 0);
        let fo = nl.fanouts();
        assert_eq!(fo[0].len(), 2);
        assert_eq!(fo[0][0], (NodeId(2), 0));
    }

    #[test]
    fn topo_order_covers_all_nodes() {
        let nl = half_adder();
        let order = nl.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        // Every gate appears after its fanins.
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (id, node) in nl.iter() {
            for f in &node.fanin {
                assert!(pos[f] < pos[&id]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics_at_build() {
        let mut nl = Netlist::new("bad");
        let a = nl.input("a");
        let _ = nl.gate(CellType::And2, &[a]);
    }

    #[test]
    fn feedback_must_hit_storage() {
        let mut nl = Netlist::new("loop");
        let a = nl.input("a");
        let d = nl.gate(CellType::DroDff, &[a]);
        let n = nl.gate(CellType::Not, &[d]);
        nl.add_feedback(n, d);
        assert!(nl.validate().is_ok());

        let mut bad = Netlist::new("badloop");
        let a = bad.input("a");
        let g = bad.gate(CellType::Not, &[a]);
        bad.add_feedback(g, g);
        assert_eq!(
            bad.validate(),
            Err(NetlistError::FeedbackIntoNonStorage { node: 1 })
        );
    }

    #[test]
    fn chain_builder() {
        let mut nl = Netlist::new("chain");
        let a = nl.input("a");
        let end = nl.chain(CellType::DroDff, a, 5);
        assert_eq!(nl.len(), 6);
        assert_eq!(nl.stats().count(CellType::DroDff), 5);
        // chain(0) is a no-op.
        let same = nl.chain(CellType::DroDff, end, 0);
        assert_eq!(same, end);
    }

    #[test]
    fn display_contains_summary() {
        let nl = half_adder();
        let text = nl.to_string();
        assert!(text.contains("netlist 'ha'"));
        assert!(text.contains("XOR2: 1"));
    }

    #[test]
    fn error_display() {
        let e = NetlistError::WrongFanin {
            node: 3,
            cell: CellType::And2,
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("node 3"));
        assert!(NetlistError::CombinationalCycle
            .to_string()
            .contains("cycle"));
    }
}
