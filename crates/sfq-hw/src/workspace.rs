//! Per-thread synthesis workspace: pooled netlist node buffers and
//! reusable pass scratch.
//!
//! Netlist construction used to allocate two `Vec`s per node (`fanin`,
//! `in_dffs`) and every pass used to allocate its own topological order,
//! fanout adjacency and arrival scratch — thousands of short-lived heap
//! blocks per synthesized module. The [`SynthWorkspace`] makes both
//! steady-state-free:
//!
//! * **node pool** — dropping a [`Netlist`](crate::netlist::Netlist)
//!   recycles its nodes (with their `Vec` capacities intact) into a
//!   bounded per-thread freelist; the builders pop from it, so warm
//!   construction reuses the same small buffers instead of hitting the
//!   allocator per node.
//! * **pass scratch** — `insert_splitters`/`path_balance`/`retime`
//!   *take* the [`PassScratch`] out of the workspace for the duration of
//!   a pass (so builder calls inside the pass can still reach the node
//!   pool without re-entrant borrows) and put it back when done.
//!
//! Pooling is invisible to every contract: construction order, node ids
//! and pass results are untouched, and none of the pooled buffers are
//! tallied by [`crate::counters`] (outputs only).

use crate::netlist::{Node, NodeId};
use std::cell::RefCell;

/// Nodes kept in the per-thread freelist at most (each node holds two
/// small `Vec`s; the cap bounds idle memory to a few MB).
const NODE_POOL_CAP: usize = 1 << 16;

/// Reusable buffers for the synthesis passes (see module docs).
#[derive(Debug, Default)]
pub struct PassScratch {
    /// CSR fanout offsets (`len + 1` entries) …
    pub(crate) csr_off: Vec<u32>,
    /// … fill cursors …
    pub(crate) csr_cur: Vec<u32>,
    /// … and `(sink, pin)` entries, per-source in node order.
    pub(crate) csr_sinks: Vec<(NodeId, u32)>,
    /// Kahn in-degrees.
    pub(crate) indeg: Vec<u32>,
    /// Kahn worklist (LIFO, matching `Netlist::topo_order`).
    pub(crate) queue: Vec<usize>,
    /// Topological order output.
    pub(crate) order: Vec<NodeId>,
    /// Per-node arrival depth.
    pub(crate) depth: Vec<u32>,
    /// Splitter-tree endpoint queue (head-cursor FIFO).
    pub(crate) endpoints: Vec<NodeId>,
}

/// Per-thread synthesis workspace: node freelist plus pass scratch.
#[derive(Debug, Default)]
pub struct SynthWorkspace {
    spare_nodes: Vec<Node>,
    scratch: PassScratch,
}

thread_local! {
    static WS: RefCell<SynthWorkspace> = RefCell::new(SynthWorkspace::default());
}

/// Pops a recycled node from this thread's pool, if any. The caller fully
/// re-initializes every field (the vectors keep only their capacity).
pub(crate) fn pop_node() -> Option<Node> {
    WS.try_with(|w| w.borrow_mut().spare_nodes.pop())
        .ok()
        .flatten()
}

/// Recycles a netlist's nodes into this thread's pool (bounded; extras
/// are dropped). A no-op during thread teardown.
pub(crate) fn recycle_nodes(nodes: Vec<Node>) {
    let _ = WS.try_with(|w| {
        let spare = &mut w.borrow_mut().spare_nodes;
        for node in nodes {
            if spare.len() >= NODE_POOL_CAP {
                break;
            }
            spare.push(node);
        }
    });
}

/// Takes the pass scratch out of this thread's workspace. Pair with
/// [`put_scratch`]; while taken, the workspace hands out a default
/// (freshly allocated) scratch to any nested taker, so passes never
/// deadlock on re-entry — they only lose pooling.
pub(crate) fn take_scratch() -> PassScratch {
    WS.try_with(|w| std::mem::take(&mut w.borrow_mut().scratch))
        .unwrap_or_default()
}

/// Returns pass scratch to this thread's workspace for reuse.
pub(crate) fn put_scratch(s: PassScratch) {
    let _ = WS.try_with(|w| w.borrow_mut().scratch = s);
}

/// Number of nodes currently pooled on this thread (observability for
/// tests).
pub fn pooled_nodes() -> usize {
    WS.try_with(|w| w.borrow().spare_nodes.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellType;
    use crate::netlist::Netlist;

    #[test]
    fn dropping_a_netlist_refills_the_pool() {
        let baseline = pooled_nodes();
        {
            let mut nl = Netlist::new("pool");
            let a = nl.input("a");
            let b = nl.input("b");
            let g = nl.gate(CellType::And2, &[a, b]);
            nl.mark_output("g", g);
            drop(nl);
        }
        assert!(
            pooled_nodes() >= baseline.min(NODE_POOL_CAP - 3) + 3
                || pooled_nodes() == NODE_POOL_CAP
        );
    }

    #[test]
    fn scratch_take_put_roundtrip() {
        let mut s = take_scratch();
        s.depth.resize(128, 0);
        put_scratch(s);
        let s2 = take_scratch();
        assert!(
            s2.depth.capacity() >= 128,
            "capacity must survive the roundtrip"
        );
        put_scratch(s2);
    }
}
