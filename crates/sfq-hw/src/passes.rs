//! RSFQ synthesis passes: fanout legalization, full path balancing, and
//! retiming.
//!
//! The flow mirrors the paper's §VI-A tooling (PBMap-style path balancing
//! [17]/[51], Leiserson–Saxe-style retiming [52], splitter insertion):
//!
//! 1. [`insert_splitters`] — every RSFQ gate drives exactly one sink, so a
//!    node with fanout `k > 1` gets a balanced tree of `k − 1` splitters.
//! 2. [`path_balance`] — every multi-input clocked gate must consume its
//!    input pulses in the same clock cycle; DRO DFFs are inserted on the
//!    shallower edges (as edge weights, see [`crate::netlist`]).
//! 3. [`retime`] — a DFF on *every* input edge of a gate can be replaced
//!    by one DFF at its output, reducing the balancing overhead without
//!    changing any input-to-output stage count.
//!
//! [`materialize_balancing`] expands edge-weight DFFs into physical DRO
//! chains, used by tests to prove the weight bookkeeping equals the
//! explicit construction.
//!
//! # Examples
//!
//! ```
//! use sfq_hw::netlist::Netlist;
//! use sfq_hw::cells::CellType;
//! use sfq_hw::passes::{insert_splitters, path_balance, retime, stage_depths};
//!
//! let mut nl = Netlist::new("unbalanced");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let deep = nl.gate(CellType::Not, &[a]);       // depth 1
//! let g = nl.gate(CellType::And2, &[deep, b]);   // pin 1 arrives early
//! nl.mark_output("g", g);
//! insert_splitters(&mut nl);
//! let inserted = path_balance(&mut nl);
//! assert_eq!(inserted, 1);                        // one DFF on the b edge
//! let _ = retime(&mut nl);
//! assert!(stage_depths(&nl).is_ok());
//! ```

use crate::cells::CellType;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// Legalizes fanout: any node driving more than [`CellType::max_fanout`]
/// sinks gets a balanced binary splitter tree. Returns the number of
/// splitters added.
///
/// Splitters are asynchronous (no clock), so the pass leaves stage depths
/// untouched; it must therefore run *before* [`path_balance`].
pub fn insert_splitters(nl: &mut Netlist) -> u64 {
    let fanouts = nl.fanouts();
    let mut added = 0u64;
    for id in nl.ids().collect::<Vec<_>>() {
        let max = nl
            .node(id)
            .cell()
            .map_or(usize::MAX.min(2), CellType::max_fanout)
            .max(1);
        // Primary inputs are driven by off-module drivers; give them the
        // same single-sink discipline (the driver needs a splitter tree
        // too — counted here so module costs are self-contained).
        let max = if nl.node(id).cell().is_none() { 1 } else { max };
        let sinks = &fanouts[id.index()];
        if sinks.len() <= max {
            continue;
        }
        // Build a balanced tree: repeatedly split the endpoint with the
        // fewest downstream leaves until we have enough endpoints.
        let needed = sinks.len();
        let mut endpoints: Vec<NodeId> = vec![id];
        while endpoints.len() < needed {
            // Take the earliest endpoint (round-robin keeps the tree
            // balanced: queue behaviour).
            let src = endpoints.remove(0);
            let spl = nl.gate(CellType::Splitter, &[src]);
            added += 1;
            endpoints.push(spl);
            endpoints.push(spl);
        }
        // A splitter output may feed two sinks; each endpoint id appears
        // once per available output. Rewire each original sink pin.
        for (k, &(sink, pin)) in sinks.iter().enumerate() {
            nl.node_mut(sink).fanin[pin] = endpoints[k];
        }
    }
    added
}

/// Arrival stage of every node's *output* (number of clocked cells on any
/// input-to-here path, including edge-weight DFFs).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic input.
pub fn stage_depths(nl: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = nl.topo_order()?;
    let mut depth = vec![0u32; nl.len()];
    for id in order {
        let node = nl.node(id);
        let mut arrival = 0u32;
        for (pin, &src) in node.fanin.iter().enumerate() {
            let a = depth[src.index()] + node.in_dffs[pin];
            arrival = arrival.max(a);
        }
        let own = if node.is_clocked() { 1 } else { 0 };
        depth[id.index()] = arrival + own + node.out_dffs;
    }
    Ok(depth)
}

/// Fully path-balances the netlist: raises `in_dffs` on shallow edges so
/// every multi-input clocked gate sees equal arrival stages on all pins.
/// Returns the number of DFFs inserted.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle (validate first).
pub fn path_balance(nl: &mut Netlist) -> u64 {
    let order = nl
        .topo_order()
        .expect("path_balance requires acyclic netlist");
    let mut depth = vec![0u32; nl.len()];
    let mut inserted = 0u64;
    for id in order {
        let node = nl.node(id);
        if node.fanin.is_empty() {
            depth[id.index()] = node.out_dffs;
            continue;
        }
        let arrivals: Vec<u32> = node
            .fanin
            .iter()
            .zip(node.in_dffs.iter())
            .map(|(src, &d)| depth[src.index()] + d)
            .collect();
        let max_arrival = *arrivals.iter().max().unwrap();
        let own = if node.is_clocked() { 1 } else { 0 };
        let out = node.out_dffs;
        if node.fanin.len() > 1 {
            let node = nl.node_mut(id);
            for (pin, &a) in arrivals.iter().enumerate() {
                let lag = max_arrival - a;
                node.in_dffs[pin] += lag;
                inserted += lag as u64;
            }
        }
        depth[id.index()] = max_arrival + own + out;
    }
    inserted
}

/// Retiming: for every gate whose input edges *all* carry at least one
/// balancing DFF, move one DFF from each input edge to the gate output.
/// Each application on a `k`-input gate saves `k − 1` DFFs; iterates to a
/// fixpoint. Returns the total DFFs saved.
///
/// Stage counts along every input-to-output path are preserved, so a
/// balanced netlist stays balanced (see the property tests).
pub fn retime(nl: &mut Netlist) -> u64 {
    let mut saved = 0u64;
    loop {
        let mut changed = false;
        for id in nl.ids().collect::<Vec<_>>() {
            let node = nl.node(id);
            if node.fanin.len() < 2 {
                continue;
            }
            let movable = node.in_dffs.iter().map(|&d| d).min().unwrap_or(0);
            if movable == 0 {
                continue;
            }
            let k = node.fanin.len() as u64;
            let node = nl.node_mut(id);
            for d in node.in_dffs.iter_mut() {
                *d -= movable;
            }
            node.out_dffs += movable;
            saved += (k - 1) * movable as u64;
            changed = true;
        }
        if !changed {
            return saved;
        }
    }
}

/// Expands edge-weight balancing DFFs into physical DRO DFF chains,
/// returning an equivalent netlist with zero edge weights.
///
/// Used by tests and by anyone wanting an explicit gate-level view; the
/// cost model works directly on the weights.
pub fn materialize_balancing(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_materialized", nl.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; nl.len()];
    let order = nl.topo_order().expect("acyclic");
    for id in order {
        let node = nl.node(id);
        let new_id = match node.cell() {
            None => out.input("in"),
            Some(cell) => {
                let fanin: Vec<NodeId> = node
                    .fanin
                    .iter()
                    .zip(node.in_dffs.iter())
                    .map(|(src, &d)| {
                        let mapped = map[src.index()].expect("topo order");
                        out.chain(CellType::DroDff, mapped, d as usize)
                    })
                    .collect();
                out.gate(cell, &fanin)
            }
        };
        let with_out = out.chain(CellType::DroDff, new_id, node.out_dffs as usize);
        map[id.index()] = Some(with_out);
    }
    for (name, n) in nl.outputs() {
        out.mark_output(name.clone(), map[n.index()].unwrap());
    }
    for &(a, b) in nl.feedback_edges() {
        // Feedback destinations keep their identity through the map; the
        // source maps to the end of its out-chain.
        out.add_feedback(map[a.index()].unwrap(), map[b.index()].unwrap());
    }
    out
}

/// Runs the full synthesis flow in the paper's order — splitters,
/// balancing, retiming — and returns `(splitters, dffs_inserted,
/// dffs_saved)`.
pub fn synthesize(nl: &mut Netlist) -> (u64, u64, u64) {
    let spl = insert_splitters(nl);
    let ins = path_balance(nl);
    let sav = retime(nl);
    (spl, ins, sav)
}

/// Checks the full-path-balance invariant: every multi-input clocked gate
/// sees equal arrival stages on all pins. Returns the first violating node
/// if any.
pub fn check_balance(nl: &Netlist) -> Result<(), NodeId> {
    let order = match nl.topo_order() {
        Ok(o) => o,
        Err(_) => return Err(NodeId(0)),
    };
    let mut depth = vec![0u32; nl.len()];
    for id in order {
        let node = nl.node(id);
        let arrivals: Vec<u32> = node
            .fanin
            .iter()
            .zip(node.in_dffs.iter())
            .map(|(src, &d)| depth[src.index()] + d)
            .collect();
        if node.fanin.len() > 1 {
            let first = arrivals[0];
            if arrivals.iter().any(|&a| a != first) {
                return Err(id);
            }
        }
        let own = if node.is_clocked() { 1 } else { 0 };
        depth[id.index()] = arrivals.into_iter().max().unwrap_or(0) + own + node.out_dffs;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// A 4-input AND tree with deliberately skewed depths.
    fn skewed_tree() -> Netlist {
        let mut nl = Netlist::new("skew");
        let ins = nl.inputs("i", 4);
        let a = nl.gate(CellType::And2, &[ins[0], ins[1]]); // depth 1
        let b = nl.gate(CellType::And2, &[a, ins[2]]); // skew on pin 1
        let c = nl.gate(CellType::And2, &[b, ins[3]]); // more skew
        nl.mark_output("o", c);
        nl
    }

    #[test]
    fn splitter_insertion_legalizes_fanout() {
        let mut nl = Netlist::new("fan");
        let a = nl.input("a");
        let sinks: Vec<_> = (0..5).map(|_| nl.gate(CellType::Not, &[a])).collect();
        for (i, s) in sinks.iter().enumerate() {
            nl.mark_output(format!("o{i}"), *s);
        }
        let added = insert_splitters(&mut nl);
        assert_eq!(added, 4, "k sinks need k−1 splitters");
        // All fanouts now legal.
        let fo = nl.fanout_counts();
        for (id, node) in nl.iter() {
            let max = node.cell().map_or(1, CellType::max_fanout);
            assert!(
                (fo[id.index()] as usize) <= max,
                "node {id:?} fanout {} > {max}",
                fo[id.index()]
            );
        }
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn splitter_tree_is_balanced() {
        let mut nl = Netlist::new("fan8");
        let a = nl.input("a");
        for _ in 0..8 {
            let g = nl.gate(CellType::Not, &[a]);
            nl.mark_output("o", g);
        }
        insert_splitters(&mut nl);
        // Depth of splitter chains to each sink ≤ ceil(log2(8)) = 3.
        for (_, node) in nl.iter() {
            if node.cell() == Some(CellType::Not) {
                let mut hops = 0;
                let mut cur = node.fanin[0];
                while nl.node(cur).cell() == Some(CellType::Splitter) {
                    hops += 1;
                    cur = nl.node(cur).fanin[0];
                }
                assert!(hops <= 3, "splitter chain too deep: {hops}");
            }
        }
    }

    #[test]
    fn path_balance_inserts_expected_dffs() {
        let mut nl = skewed_tree();
        let inserted = path_balance(&mut nl);
        // b needs 1 on pin 1 (arrival 0 vs 1); c needs 2 on pin 1.
        assert_eq!(inserted, 3);
        assert!(check_balance(&nl).is_ok());
    }

    #[test]
    fn path_balance_idempotent() {
        let mut nl = skewed_tree();
        let first = path_balance(&mut nl);
        let second = path_balance(&mut nl);
        assert!(first > 0);
        assert_eq!(second, 0, "second run must be a no-op");
    }

    #[test]
    fn retime_reduces_dffs_preserving_balance() {
        // Two parallel NOT chains into an AND: balancing puts DFFs on the
        // shorter side; deliberately put DFFs on both sides to let retime
        // merge them.
        let mut nl = Netlist::new("rt");
        let a = nl.input("a");
        let b = nl.input("b");
        let na = nl.gate(CellType::Not, &[a]);
        let nb = nl.gate(CellType::Not, &[b]);
        let g = nl.gate(CellType::And2, &[na, nb]);
        nl.mark_output("g", g);
        // Manually weight both edges (as if a deeper context required it).
        nl.node_mut(g).in_dffs = vec![2, 2];
        let before = nl.stats().balancing_dffs;
        let saved = retime(&mut nl);
        let after = nl.stats().balancing_dffs;
        assert_eq!(saved, 2);
        assert_eq!(before - after, 2);
        assert_eq!(nl.node(g).out_dffs, 2);
        assert!(check_balance(&nl).is_ok());
    }

    #[test]
    fn retime_noop_when_one_edge_dry() {
        let mut nl = Netlist::new("rt2");
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.gate(CellType::And2, &[a, b]);
        nl.mark_output("g", g);
        nl.node_mut(g).in_dffs = vec![3, 0];
        assert_eq!(retime(&mut nl), 0);
        assert_eq!(nl.node(g).in_dffs, vec![3, 0]);
    }

    #[test]
    fn synthesize_runs_full_flow() {
        let mut nl = skewed_tree();
        // Give input 0 a second sink to exercise splitters.
        let extra = nl.gate(CellType::Not, &[crate::netlist::NodeId(0)]);
        nl.mark_output("x", extra);
        let (spl, ins, _sav) = synthesize(&mut nl);
        assert!(spl >= 1);
        assert!(ins >= 3);
        assert!(check_balance(&nl).is_ok());
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn materialize_matches_weights() {
        let mut nl = skewed_tree();
        path_balance(&mut nl);
        retime(&mut nl);
        let weights = nl.stats();
        let phys = materialize_balancing(&nl);
        let pstats = phys.stats();
        assert_eq!(
            pstats.count(CellType::DroDff),
            weights.count(CellType::DroDff)
        );
        assert_eq!(pstats.total_jj, weights.total_jj);
        assert!(phys.validate().is_ok());
        // Physical netlist has zero residual edge weights.
        assert_eq!(pstats.balancing_dffs, 0);
        // And is itself balanced.
        assert!(check_balance(&phys).is_ok());
    }

    #[test]
    fn stage_depths_computed() {
        let mut nl = skewed_tree();
        path_balance(&mut nl);
        let d = stage_depths(&nl).unwrap();
        // Output gate sits at depth 3 (three AND stages).
        let out = nl.outputs()[0].1;
        assert_eq!(d[out.index()], 3);
    }

    #[test]
    fn check_balance_detects_violation() {
        let nl = skewed_tree();
        assert!(check_balance(&nl).is_err());
    }
}
