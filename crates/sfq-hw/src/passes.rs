//! RSFQ synthesis passes: fanout legalization, full path balancing, and
//! retiming.
//!
//! The flow mirrors the paper's §VI-A tooling (PBMap-style path balancing
//! [17]/[51], Leiserson–Saxe-style retiming [52], splitter insertion):
//!
//! 1. [`insert_splitters`] — every RSFQ gate drives exactly one sink, so a
//!    node with fanout `k > 1` gets a balanced tree of `k − 1` splitters.
//! 2. [`path_balance`] — every multi-input clocked gate must consume its
//!    input pulses in the same clock cycle; DRO DFFs are inserted on the
//!    shallower edges (as edge weights, see [`crate::netlist`]).
//! 3. [`retime`] — a DFF on *every* input edge of a gate can be replaced
//!    by one DFF at its output, reducing the balancing overhead without
//!    changing any input-to-output stage count.
//!
//! [`materialize_balancing`] expands edge-weight DFFs into physical DRO
//! chains, used by tests to prove the weight bookkeeping equals the
//! explicit construction.
//!
//! # Examples
//!
//! ```
//! use sfq_hw::netlist::Netlist;
//! use sfq_hw::cells::CellType;
//! use sfq_hw::passes::{insert_splitters, path_balance, retime, stage_depths};
//!
//! let mut nl = Netlist::new("unbalanced");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let deep = nl.gate(CellType::Not, &[a]);       // depth 1
//! let g = nl.gate(CellType::And2, &[deep, b]);   // pin 1 arrives early
//! nl.mark_output("g", g);
//! insert_splitters(&mut nl);
//! let inserted = path_balance(&mut nl);
//! assert_eq!(inserted, 1);                        // one DFF on the b edge
//! let _ = retime(&mut nl);
//! assert!(stage_depths(&nl).is_ok());
//! ```

use crate::cells::CellType;
use crate::counters;
use crate::netlist::{Netlist, NetlistError, NodeId};
use crate::workspace::{put_scratch, take_scratch, PassScratch};

/// Builds the CSR fanout adjacency of `nl` into the scratch buffers:
/// `csr_sinks[csr_off[i]..csr_off[i+1]]` lists node `i`'s `(sink, pin)`
/// edges in the same per-source order as [`Netlist::fanouts`].
fn build_fanout_csr(nl: &Netlist, s: &mut PassScratch) {
    let n = nl.len();
    let PassScratch {
        csr_off,
        csr_cur,
        csr_sinks,
        ..
    } = s;
    csr_off.clear();
    csr_off.resize(n + 1, 0);
    let mut total = 0u32;
    for (_, node) in nl.iter() {
        for f in &node.fanin {
            csr_off[f.index() + 1] += 1;
        }
        total += node.fanin.len() as u32;
    }
    for i in 0..n {
        csr_off[i + 1] += csr_off[i];
    }
    csr_cur.clear();
    csr_cur.extend_from_slice(&csr_off[..n]);
    csr_sinks.clear();
    csr_sinks.resize(total as usize, (NodeId(0), 0));
    for (id, node) in nl.iter() {
        for (pin, f) in node.fanin.iter().enumerate() {
            let slot = csr_cur[f.index()];
            csr_sinks[slot as usize] = (id, pin as u32);
            csr_cur[f.index()] = slot + 1;
        }
    }
}

/// Kahn topological order into `s.order`, mirroring
/// [`Netlist::topo_order`] exactly (same worklist discipline, so the same
/// order) without its per-call allocations.
fn topo_into(nl: &Netlist, s: &mut PassScratch) -> Result<(), NetlistError> {
    build_fanout_csr(nl, s);
    let n = nl.len();
    let PassScratch {
        csr_off,
        csr_sinks,
        indeg,
        queue,
        order,
        ..
    } = s;
    indeg.clear();
    for (_, node) in nl.iter() {
        indeg.push(node.fanin.len() as u32);
    }
    order.clear();
    queue.clear();
    queue.extend((0..n).filter(|&i| indeg[i] == 0));
    while let Some(i) = queue.pop() {
        order.push(NodeId(i as u32));
        for &(sink, _) in &csr_sinks[csr_off[i] as usize..csr_off[i + 1] as usize] {
            let si = sink.index();
            indeg[si] -= 1;
            if indeg[si] == 0 {
                queue.push(si);
            }
        }
    }
    if order.len() == n {
        Ok(())
    } else {
        Err(NetlistError::CombinationalCycle)
    }
}

/// Legalizes fanout: any node driving more than [`CellType::max_fanout`]
/// sinks gets a balanced binary splitter tree. Returns the number of
/// splitters added.
///
/// Splitters are asynchronous (no clock), so the pass leaves stage depths
/// untouched; it must therefore run *before* [`path_balance`].
///
/// Allocation-free on the iteration path: the fanout adjacency and the
/// endpoint queue live in the per-thread [`crate::workspace`] scratch, and
/// new splitter nodes come from the node pool.
pub fn insert_splitters(nl: &mut Netlist) -> u64 {
    let n0 = nl.len();
    counters::tally_cells(n0 as u64);
    let mut s = take_scratch();
    build_fanout_csr(nl, &mut s);
    let mut added = 0u64;
    for i in 0..n0 {
        let id = NodeId(i as u32);
        let max = nl
            .node(id)
            .cell()
            .map_or(usize::MAX.min(2), CellType::max_fanout)
            .max(1);
        // Primary inputs are driven by off-module drivers; give them the
        // same single-sink discipline (the driver needs a splitter tree
        // too — counted here so module costs are self-contained).
        let max = if nl.node(id).cell().is_none() { 1 } else { max };
        let (lo, hi) = (s.csr_off[i] as usize, s.csr_off[i + 1] as usize);
        if hi - lo <= max {
            continue;
        }
        // Build a balanced tree: repeatedly split the endpoint with the
        // fewest downstream leaves until we have enough endpoints. The
        // queue is a head cursor over the endpoints buffer (FIFO without
        // the `remove(0)` shifting).
        let needed = hi - lo;
        s.endpoints.clear();
        s.endpoints.push(id);
        let mut head = 0usize;
        while s.endpoints.len() - head < needed {
            // Take the earliest endpoint (round-robin keeps the tree
            // balanced: queue behaviour).
            let src = s.endpoints[head];
            head += 1;
            let spl = nl.gate(CellType::Splitter, &[src]);
            added += 1;
            s.endpoints.push(spl);
            s.endpoints.push(spl);
        }
        // A splitter output may feed two sinks; each endpoint id appears
        // once per available output. Rewire each original sink pin.
        for (k, &(sink, pin)) in s.csr_sinks[lo..hi].iter().enumerate() {
            nl.node_mut(sink).fanin[pin as usize] = s.endpoints[head + k];
        }
    }
    put_scratch(s);
    added
}

/// Arrival stage of every node's *output* (number of clocked cells on any
/// input-to-here path, including edge-weight DFFs).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic input.
pub fn stage_depths(nl: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = nl.topo_order()?;
    let mut depth = vec![0u32; nl.len()];
    for id in order {
        let node = nl.node(id);
        let mut arrival = 0u32;
        for (pin, &src) in node.fanin.iter().enumerate() {
            let a = depth[src.index()] + node.in_dffs[pin];
            arrival = arrival.max(a);
        }
        let own = if node.is_clocked() { 1 } else { 0 };
        depth[id.index()] = arrival + own + node.out_dffs;
    }
    Ok(depth)
}

/// Fully path-balances the netlist: raises `in_dffs` on shallow edges so
/// every multi-input clocked gate sees equal arrival stages on all pins.
/// Returns the number of DFFs inserted.
///
/// Allocation-free on the iteration path: the topological order and depth
/// array live in the per-thread scratch, and per-node arrivals are folded
/// on the fly instead of collected.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle (validate first).
pub fn path_balance(nl: &mut Netlist) -> u64 {
    counters::tally_cells(nl.len() as u64);
    let mut s = take_scratch();
    topo_into(nl, &mut s).expect("path_balance requires acyclic netlist");
    let mut inserted = 0u64;
    {
        let PassScratch { order, depth, .. } = &mut s;
        depth.clear();
        depth.resize(nl.len(), 0);
        for &id in order.iter() {
            let node = nl.node(id);
            if node.fanin.is_empty() {
                depth[id.index()] = node.out_dffs;
                continue;
            }
            let mut max_arrival = 0u32;
            for (pin, &src) in node.fanin.iter().enumerate() {
                max_arrival = max_arrival.max(depth[src.index()] + node.in_dffs[pin]);
            }
            let own = if node.is_clocked() { 1 } else { 0 };
            let out = node.out_dffs;
            if node.fanin.len() > 1 {
                let node = nl.node_mut(id);
                for pin in 0..node.fanin.len() {
                    let a = depth[node.fanin[pin].index()] + node.in_dffs[pin];
                    let lag = max_arrival - a;
                    node.in_dffs[pin] += lag;
                    inserted += lag as u64;
                }
            }
            depth[id.index()] = max_arrival + own + out;
        }
    }
    put_scratch(s);
    counters::tally_dffs_moved(inserted);
    inserted
}

/// Retiming: for every gate whose input edges *all* carry at least one
/// balancing DFF, move one DFF from each input edge to the gate output.
/// Each application on a `k`-input gate saves `k − 1` DFFs; iterates to a
/// fixpoint. Returns the total DFFs saved.
///
/// Stage counts along every input-to-output path are preserved, so a
/// balanced netlist stays balanced (see the property tests).
pub fn retime(nl: &mut Netlist) -> u64 {
    let n = nl.len();
    let mut saved = 0u64;
    loop {
        counters::tally_cells(n as u64);
        let mut changed = false;
        for i in 0..n {
            let id = NodeId(i as u32);
            let node = nl.node(id);
            if node.fanin.len() < 2 {
                continue;
            }
            let movable = node.in_dffs.iter().copied().min().unwrap_or(0);
            if movable == 0 {
                continue;
            }
            let k = node.fanin.len() as u64;
            let node = nl.node_mut(id);
            for d in node.in_dffs.iter_mut() {
                *d -= movable;
            }
            node.out_dffs += movable;
            saved += (k - 1) * movable as u64;
            counters::tally_dffs_moved(k * movable as u64);
            changed = true;
        }
        if !changed {
            return saved;
        }
    }
}

/// Expands edge-weight balancing DFFs into physical DRO DFF chains,
/// returning an equivalent netlist with zero edge weights.
///
/// Used by tests and by anyone wanting an explicit gate-level view; the
/// cost model works directly on the weights.
pub fn materialize_balancing(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_materialized", nl.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; nl.len()];
    let order = nl.topo_order().expect("acyclic");
    for id in order {
        let node = nl.node(id);
        let new_id = match node.cell() {
            None => out.input("in"),
            Some(cell) => {
                let fanin: Vec<NodeId> = node
                    .fanin
                    .iter()
                    .zip(node.in_dffs.iter())
                    .map(|(src, &d)| {
                        let mapped = map[src.index()].expect("topo order");
                        out.chain(CellType::DroDff, mapped, d as usize)
                    })
                    .collect();
                out.gate(cell, &fanin)
            }
        };
        let with_out = out.chain(CellType::DroDff, new_id, node.out_dffs as usize);
        map[id.index()] = Some(with_out);
    }
    for (name, n) in nl.outputs() {
        out.mark_output(name.clone(), map[n.index()].unwrap());
    }
    for &(a, b) in nl.feedback_edges() {
        // Feedback destinations keep their identity through the map; the
        // source maps to the end of its out-chain.
        out.add_feedback(map[a.index()].unwrap(), map[b.index()].unwrap());
    }
    out
}

/// Runs the full synthesis flow in the paper's order — splitters,
/// balancing, retiming — and returns `(splitters, dffs_inserted,
/// dffs_saved)`.
pub fn synthesize(nl: &mut Netlist) -> (u64, u64, u64) {
    let spl = insert_splitters(nl);
    let ins = path_balance(nl);
    let sav = retime(nl);
    (spl, ins, sav)
}

/// Checks the full-path-balance invariant: every multi-input clocked gate
/// sees equal arrival stages on all pins. Returns the first violating node
/// if any.
pub fn check_balance(nl: &Netlist) -> Result<(), NodeId> {
    let mut s = take_scratch();
    if topo_into(nl, &mut s).is_err() {
        put_scratch(s);
        return Err(NodeId(0));
    }
    let mut result = Ok(());
    {
        let PassScratch { order, depth, .. } = &mut s;
        depth.clear();
        depth.resize(nl.len(), 0);
        'walk: for &id in order.iter() {
            let node = nl.node(id);
            let mut max_arrival = 0u32;
            let mut first = 0u32;
            let mut equal = true;
            for (pin, &src) in node.fanin.iter().enumerate() {
                let a = depth[src.index()] + node.in_dffs[pin];
                if pin == 0 {
                    first = a;
                } else if a != first {
                    equal = false;
                }
                max_arrival = max_arrival.max(a);
            }
            if node.fanin.len() > 1 && !equal {
                result = Err(id);
                break 'walk;
            }
            let own = if node.is_clocked() { 1 } else { 0 };
            depth[id.index()] = max_arrival + own + node.out_dffs;
        }
    }
    put_scratch(s);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// A 4-input AND tree with deliberately skewed depths.
    fn skewed_tree() -> Netlist {
        let mut nl = Netlist::new("skew");
        let ins = nl.inputs("i", 4);
        let a = nl.gate(CellType::And2, &[ins[0], ins[1]]); // depth 1
        let b = nl.gate(CellType::And2, &[a, ins[2]]); // skew on pin 1
        let c = nl.gate(CellType::And2, &[b, ins[3]]); // more skew
        nl.mark_output("o", c);
        nl
    }

    #[test]
    fn splitter_insertion_legalizes_fanout() {
        let mut nl = Netlist::new("fan");
        let a = nl.input("a");
        let sinks: Vec<_> = (0..5).map(|_| nl.gate(CellType::Not, &[a])).collect();
        for (i, s) in sinks.iter().enumerate() {
            nl.mark_output(format!("o{i}"), *s);
        }
        let added = insert_splitters(&mut nl);
        assert_eq!(added, 4, "k sinks need k−1 splitters");
        // All fanouts now legal.
        let fo = nl.fanout_counts();
        for (id, node) in nl.iter() {
            let max = node.cell().map_or(1, CellType::max_fanout);
            assert!(
                (fo[id.index()] as usize) <= max,
                "node {id:?} fanout {} > {max}",
                fo[id.index()]
            );
        }
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn splitter_tree_is_balanced() {
        let mut nl = Netlist::new("fan8");
        let a = nl.input("a");
        for _ in 0..8 {
            let g = nl.gate(CellType::Not, &[a]);
            nl.mark_output("o", g);
        }
        insert_splitters(&mut nl);
        // Depth of splitter chains to each sink ≤ ceil(log2(8)) = 3.
        for (_, node) in nl.iter() {
            if node.cell() == Some(CellType::Not) {
                let mut hops = 0;
                let mut cur = node.fanin[0];
                while nl.node(cur).cell() == Some(CellType::Splitter) {
                    hops += 1;
                    cur = nl.node(cur).fanin[0];
                }
                assert!(hops <= 3, "splitter chain too deep: {hops}");
            }
        }
    }

    #[test]
    fn path_balance_inserts_expected_dffs() {
        let mut nl = skewed_tree();
        let inserted = path_balance(&mut nl);
        // b needs 1 on pin 1 (arrival 0 vs 1); c needs 2 on pin 1.
        assert_eq!(inserted, 3);
        assert!(check_balance(&nl).is_ok());
    }

    #[test]
    fn path_balance_idempotent() {
        let mut nl = skewed_tree();
        let first = path_balance(&mut nl);
        let second = path_balance(&mut nl);
        assert!(first > 0);
        assert_eq!(second, 0, "second run must be a no-op");
    }

    #[test]
    fn retime_reduces_dffs_preserving_balance() {
        // Two parallel NOT chains into an AND: balancing puts DFFs on the
        // shorter side; deliberately put DFFs on both sides to let retime
        // merge them.
        let mut nl = Netlist::new("rt");
        let a = nl.input("a");
        let b = nl.input("b");
        let na = nl.gate(CellType::Not, &[a]);
        let nb = nl.gate(CellType::Not, &[b]);
        let g = nl.gate(CellType::And2, &[na, nb]);
        nl.mark_output("g", g);
        // Manually weight both edges (as if a deeper context required it).
        nl.node_mut(g).in_dffs = vec![2, 2];
        let before = nl.stats().balancing_dffs;
        let saved = retime(&mut nl);
        let after = nl.stats().balancing_dffs;
        assert_eq!(saved, 2);
        assert_eq!(before - after, 2);
        assert_eq!(nl.node(g).out_dffs, 2);
        assert!(check_balance(&nl).is_ok());
    }

    #[test]
    fn retime_noop_when_one_edge_dry() {
        let mut nl = Netlist::new("rt2");
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.gate(CellType::And2, &[a, b]);
        nl.mark_output("g", g);
        nl.node_mut(g).in_dffs = vec![3, 0];
        assert_eq!(retime(&mut nl), 0);
        assert_eq!(nl.node(g).in_dffs, vec![3, 0]);
    }

    #[test]
    fn synthesize_runs_full_flow() {
        let mut nl = skewed_tree();
        // Give input 0 a second sink to exercise splitters.
        let extra = nl.gate(CellType::Not, &[crate::netlist::NodeId(0)]);
        nl.mark_output("x", extra);
        let (spl, ins, _sav) = synthesize(&mut nl);
        assert!(spl >= 1);
        assert!(ins >= 3);
        assert!(check_balance(&nl).is_ok());
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn materialize_matches_weights() {
        let mut nl = skewed_tree();
        path_balance(&mut nl);
        retime(&mut nl);
        let weights = nl.stats();
        let phys = materialize_balancing(&nl);
        let pstats = phys.stats();
        assert_eq!(
            pstats.count(CellType::DroDff),
            weights.count(CellType::DroDff)
        );
        assert_eq!(pstats.total_jj, weights.total_jj);
        assert!(phys.validate().is_ok());
        // Physical netlist has zero residual edge weights.
        assert_eq!(pstats.balancing_dffs, 0);
        // And is itself balanced.
        assert!(check_balance(&phys).is_ok());
    }

    #[test]
    fn stage_depths_computed() {
        let mut nl = skewed_tree();
        path_balance(&mut nl);
        let d = stage_depths(&nl).unwrap();
        // Output gate sits at depth 3 (three AND stages).
        let out = nl.outputs()[0].1;
        assert_eq!(d[out.index()], 3);
    }

    #[test]
    fn check_balance_detects_violation() {
        let nl = skewed_tree();
        assert!(check_balance(&nl).is_err());
    }
}
