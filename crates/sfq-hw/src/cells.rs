//! The RSFQ standard-cell library (paper Table III).
//!
//! Rapid Single Flux Quantum logic represents bits as picosecond flux
//! pulses; *every* logic gate is clocked (pulse arrival + clock consumption
//! evaluate the gate), which is why path balancing (see
//! [`crate::passes`]) is mandatory. The seven cells of Table III are
//! reproduced verbatim; two auxiliary cells used by the paper but not
//! tabulated — the Josephson Transmission Line segment (§VI-A: "its delay
//! is ∼1.5–2 ps") and the SFQ/DC converter of the current generator
//! (Fig 4, ref [40]) — carry documented estimates.
//!
//! # Examples
//!
//! ```
//! use sfq_hw::cells::CellType;
//!
//! assert_eq!(CellType::NdroDff.jj_count(), 18);
//! assert_eq!(CellType::And2.delay_ps(), 8.4);
//! assert!(CellType::DroDff.is_storage());
//! ```

use std::fmt;

/// An RSFQ standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellType {
    /// Clocked 2-input AND.
    And2,
    /// Clocked 2-input OR (confluence + DFF).
    Or2,
    /// Clocked 2-input XOR.
    Xor2,
    /// Clocked inverter.
    Not,
    /// Destructive-readout D flip-flop: reading erases the stored pulse.
    DroDff,
    /// Non-destructive-readout DFF: can be read repeatedly (holds select
    /// bits and register taps).
    NdroDff,
    /// Asynchronous 1→2 pulse splitter (fanout element).
    Splitter,
    /// Josephson transmission line segment (short-haul active wiring).
    Jtl,
    /// SFQ-to-DC converter: emits DC current while toggled on (the
    /// current-generator element of Fig 4).
    SfqDc,
}

/// All cell types, in Table III order followed by the auxiliary cells.
pub const ALL_CELLS: [CellType; 9] = [
    CellType::And2,
    CellType::Or2,
    CellType::Xor2,
    CellType::Not,
    CellType::DroDff,
    CellType::NdroDff,
    CellType::Splitter,
    CellType::Jtl,
    CellType::SfqDc,
];

impl CellType {
    /// Cell area in µm² (Table III; auxiliary cells estimated).
    pub fn area_um2(self) -> f64 {
        match self {
            CellType::And2 => 3500.0,
            CellType::Or2 => 3500.0,
            CellType::Xor2 => 3500.0,
            CellType::Not => 3500.0,
            CellType::DroDff => 3000.0,
            CellType::NdroDff => 4500.0,
            CellType::Splitter => 2000.0,
            // JTL: two-junction repeater stage, compact.
            CellType::Jtl => 600.0,
            // SFQ/DC converter: toggle flip-flop + output stage (ref [40]).
            CellType::SfqDc => 5000.0,
        }
    }

    /// Josephson-junction count (Table III; auxiliary cells estimated).
    pub fn jj_count(self) -> u32 {
        match self {
            CellType::And2 => 16,
            CellType::Or2 => 14,
            CellType::Xor2 => 18,
            CellType::Not => 12,
            CellType::DroDff => 11,
            CellType::NdroDff => 18,
            CellType::Splitter => 6,
            CellType::Jtl => 2,
            CellType::SfqDc => 13,
        }
    }

    /// Cell delay in ps (Table III; auxiliary cells estimated; JTL at the
    /// upper end of the paper's 1.5–2 ps quote).
    pub fn delay_ps(self) -> f64 {
        match self {
            CellType::And2 => 8.4,
            CellType::Or2 => 6.1,
            CellType::Xor2 => 5.8,
            CellType::Not => 13.2,
            CellType::DroDff => 6.2,
            CellType::NdroDff => 9.3,
            CellType::Splitter => 7.1,
            CellType::Jtl => 2.0,
            CellType::SfqDc => 10.0,
        }
    }

    /// Whether the cell is a clocked element (consumes a clock pulse and
    /// therefore defines a pipeline stage). In RSFQ all logic gates are
    /// clocked; only the splitter and JTL are asynchronous.
    pub fn is_clocked(self) -> bool {
        !matches!(self, CellType::Splitter | CellType::Jtl)
    }

    /// Whether the cell is a storage element (holds state across cycles).
    pub fn is_storage(self) -> bool {
        matches!(self, CellType::DroDff | CellType::NdroDff | CellType::SfqDc)
    }

    /// Number of logic inputs (excluding clock).
    pub fn fanin(self) -> usize {
        match self {
            CellType::And2 | CellType::Or2 | CellType::Xor2 => 2,
            // NDRO has data + (set/reset handled as data in this model);
            // treated as single-data-input storage.
            CellType::Not
            | CellType::DroDff
            | CellType::NdroDff
            | CellType::Splitter
            | CellType::Jtl
            | CellType::SfqDc => 1,
        }
    }

    /// Maximum legal fanout before splitter insertion. RSFQ gates drive a
    /// single sink; only splitters branch (1→2).
    pub fn max_fanout(self) -> usize {
        match self {
            CellType::Splitter => 2,
            _ => 1,
        }
    }

    /// Short mnemonic used in netlist dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellType::And2 => "AND2",
            CellType::Or2 => "OR2",
            CellType::Xor2 => "XOR2",
            CellType::Not => "NOT",
            CellType::DroDff => "DRO",
            CellType::NdroDff => "NDRO",
            CellType::Splitter => "SPL",
            CellType::Jtl => "JTL",
            CellType::SfqDc => "SFQDC",
        }
    }

    /// Whether this cell appears in the paper's Table III (vs. an
    /// auxiliary estimate of ours).
    pub fn in_table_iii(self) -> bool {
        !matches!(self, CellType::Jtl | CellType::SfqDc)
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values_are_verbatim() {
        // (cell, area, jj, delay) — straight from the paper.
        let expected = [
            (CellType::And2, 3500.0, 16, 8.4),
            (CellType::Or2, 3500.0, 14, 6.1),
            (CellType::Xor2, 3500.0, 18, 5.8),
            (CellType::Not, 3500.0, 12, 13.2),
            (CellType::DroDff, 3000.0, 11, 6.2),
            (CellType::NdroDff, 4500.0, 18, 9.3),
            (CellType::Splitter, 2000.0, 6, 7.1),
        ];
        for (cell, area, jj, delay) in expected {
            assert_eq!(cell.area_um2(), area, "{cell} area");
            assert_eq!(cell.jj_count(), jj, "{cell} jj");
            assert_eq!(cell.delay_ps(), delay, "{cell} delay");
            assert!(cell.in_table_iii());
        }
    }

    #[test]
    fn auxiliary_cells_flagged() {
        assert!(!CellType::Jtl.in_table_iii());
        assert!(!CellType::SfqDc.in_table_iii());
    }

    #[test]
    fn clocked_and_storage_classification() {
        assert!(CellType::And2.is_clocked());
        assert!(CellType::Not.is_clocked());
        assert!(!CellType::Splitter.is_clocked());
        assert!(!CellType::Jtl.is_clocked());
        assert!(CellType::DroDff.is_storage());
        assert!(CellType::NdroDff.is_storage());
        assert!(!CellType::And2.is_storage());
    }

    #[test]
    fn fanin_and_fanout_limits() {
        assert_eq!(CellType::And2.fanin(), 2);
        assert_eq!(CellType::Not.fanin(), 1);
        assert_eq!(CellType::Splitter.max_fanout(), 2);
        assert_eq!(CellType::And2.max_fanout(), 1);
    }

    #[test]
    fn all_cells_have_positive_attributes() {
        for c in ALL_CELLS {
            assert!(c.area_um2() > 0.0);
            assert!(c.jj_count() > 0);
            assert!(c.delay_ps() > 0.0);
            assert!(!c.mnemonic().is_empty());
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(CellType::NdroDff.to_string(), "NDRO");
        assert_eq!(format!("{}", CellType::Splitter), "SPL");
    }
}
