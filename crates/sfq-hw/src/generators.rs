//! Structural generators for the hardware blocks DigiQ is built from.
//!
//! Each generator returns a self-contained module [`Netlist`]; the
//! controller architectures in `digiq_core::hardware` compose these
//! hierarchically (module stats × instance counts). The blocks map
//! directly onto Fig 5 of the paper:
//!
//! * [`circulating_register`] — the ≤300-bit SFQ bitstream stores that
//!   stream one bit per clock and recirculate;
//! * [`ndro_bank`] — select-bit storage readable every cycle;
//! * [`one_hot_mux`] — the per-qubit "SFQ-based multiplexer" choosing one
//!   of `BS` broadcast bitstreams;
//! * [`tapped_delay_line`] — the DigiQ_opt delay structure producing `BS`
//!   delayed copies of the stored Ry(π/2) bitstream;
//! * [`binary_counter`] / [`equality_comparator`] — the controller-cycle
//!   clock ("a counter that counts up every SFQ chip cycle and resets
//!   every controller cycle", §IV-B) and the delay-tap selectors;
//! * [`broadcast_tree`] — splitter fanout distributing group bitstreams;
//! * [`sfqdc_array`] — the 25-block SFQ/DC current generator of Fig 4;
//! * [`double_buffer`] — Buffer#1/Buffer#2 control-bit staging of Fig 5.

use crate::cells::CellType;
use crate::netlist::{Netlist, NodeId};

/// A serial-in/serial-out DRO shift register of `n` bits.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(n: usize) -> Netlist {
    assert!(n > 0, "register needs at least one bit");
    let mut nl = Netlist::new(format!("shift_register_{n}"));
    let din = nl.input("din");
    let out = nl.chain(CellType::DroDff, din, n);
    nl.mark_output("dout", out);
    nl
}

/// A circulating (streaming) register: an `n`-bit chain of master–slave
/// NDRO pairs (the dual-clock SFQ shift-register architecture of ref
/// [18]) whose output splits into a read tap and a recirculation path —
/// the storage idiom for repeatedly-streamed SFQ bitstreams (ref [7] and
/// §IV-A1). Two NDROs per bit make this the dominant cost of the MIMD
/// baselines, matching the paper's 5.01 mW / 13.9 mm² per 300-bit
/// register anchor.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn circulating_register(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("circulating_register_{n}"));
    let load = nl.input("load");
    let head = nl.gate(CellType::NdroDff, &[load]);
    let mut cur = nl.gate(CellType::NdroDff, &[head]);
    for _ in 1..n {
        cur = nl.gate(CellType::NdroDff, &[cur]);
        cur = nl.gate(CellType::NdroDff, &[cur]);
    }
    let split = nl.gate(CellType::Splitter, &[cur]);
    nl.add_feedback(split, head);
    nl.mark_output("stream", split);
    nl
}

/// A bank of `n` NDRO DFFs holding control/select bits that are read
/// non-destructively every controller cycle.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ndro_bank(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("ndro_bank_{n}"));
    for i in 0..n {
        let d = nl.input(&format!("d{i}"));
        let q = nl.gate(CellType::NdroDff, &[d]);
        nl.mark_output(format!("q{i}"), q);
    }
    nl
}

/// Builds an OR-combining tree over `leaves` inside `nl`, returning the
/// root.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn or_tree(nl: &mut Netlist, leaves: &[NodeId]) -> NodeId {
    assert!(!leaves.is_empty());
    let mut level: Vec<NodeId> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.gate(CellType::Or2, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Builds an AND-combining tree over `leaves` inside `nl`, returning the
/// root.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn and_tree(nl: &mut Netlist, leaves: &[NodeId]) -> NodeId {
    assert!(!leaves.is_empty());
    let mut level: Vec<NodeId> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.gate(CellType::And2, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// A `k`-way one-hot multiplexer: `k` data streams gated by `k`
/// NDRO-held select bits, merged through an OR tree — the per-qubit
/// bitstream selector of Fig 5.
///
/// Inputs: `data0..k`, `sel0..k` (select-load pulses). Output: `y`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn one_hot_mux(k: usize) -> Netlist {
    assert!(k > 0);
    let mut nl = Netlist::new(format!("one_hot_mux_{k}"));
    let mut gated = Vec::with_capacity(k);
    for i in 0..k {
        let d = nl.input(&format!("data{i}"));
        let s = nl.input(&format!("sel{i}"));
        let hold = nl.gate(CellType::NdroDff, &[s]);
        gated.push(nl.gate(CellType::And2, &[d, hold]));
    }
    let y = or_tree(&mut nl, &gated);
    nl.mark_output("y", y);
    nl
}

/// An `n`-bit ripple binary counter (T-flip-flop style: XOR + DRO with
/// registered feedback, AND carry chain). Implements the controller-cycle
/// clock of §IV-B.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_counter(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("binary_counter_{n}"));
    let tick = nl.input("tick");
    let mut carry = tick;
    for i in 0..n {
        // Fan the carry out through a pipelined tree (state DFF, XOR,
        // next-stage AND) so no stage exceeds one splitter hop.
        let need = if i + 1 < n { 3 } else { 2 };
        let c_fan = pipelined_fanout(&mut nl, carry, need, 1);
        // state XOR carry -> state'
        let state = nl.gate(CellType::DroDff, &[c_fan[0]]);
        let s_fan = pipelined_fanout(&mut nl, state, need, 1);
        let toggled = nl.gate(CellType::Xor2, &[s_fan[0], c_fan[1]]);
        nl.add_feedback(toggled, state);
        nl.mark_output(format!("q{i}"), s_fan[1]);
        if i + 1 < n {
            carry = nl.gate(CellType::And2, &[s_fan[2], c_fan[2]]);
        }
    }
    nl
}

/// An `n`-bit equality comparator: per-bit XOR → NOT, AND-reduced.
/// Used as the DigiQ_opt delay-tap selector (compare the free-running
/// counter against an NDRO-held 8-bit delay value).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn equality_comparator(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("equality_comparator_{n}"));
    let mut eq_bits = Vec::with_capacity(n);
    for i in 0..n {
        let a = nl.input(&format!("a{i}"));
        let b = nl.input(&format!("b{i}"));
        let x = nl.gate(CellType::Xor2, &[a, b]);
        eq_bits.push(nl.gate(CellType::Not, &[x]));
    }
    let eq = and_tree(&mut nl, &eq_bits);
    nl.mark_output("eq", eq);
    nl
}

/// A delay line of `len` DRO stages with read taps after each position in
/// `taps` (0 = undelayed). Produces the `BS` delayed bitstream copies of
/// DigiQ_opt (§IV-A2): tap `d` carries the stored Ry(π/2) bitstream
/// delayed by `d` SFQ clock cycles.
///
/// # Panics
///
/// Panics if any tap exceeds `len`, or `taps` is empty.
pub fn tapped_delay_line(len: usize, taps: &[usize]) -> Netlist {
    assert!(!taps.is_empty());
    assert!(taps.iter().all(|&t| t <= len), "tap beyond line length");
    let mut nl = Netlist::new(format!("delay_line_{len}x{}", taps.len()));
    let din = nl.input("din");
    let mut sorted: Vec<usize> = taps.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut cur = din;
    let mut pos = 0usize;
    for (k, &t) in sorted.iter().enumerate() {
        cur = nl.chain(CellType::DroDff, cur, t - pos);
        pos = t;
        let is_last = k + 1 == sorted.len() && pos == len;
        if is_last {
            nl.mark_output(format!("tap{t}"), cur);
        } else {
            let s = nl.gate(CellType::Splitter, &[cur]);
            nl.mark_output(format!("tap{t}"), s);
            cur = s;
        }
    }
    if pos < len {
        let end = nl.chain(CellType::DroDff, cur, len - pos);
        nl.mark_output("end", end);
    }
    nl
}

/// Expands `src` into `k` endpoints with a splitter tree, inserting a
/// re-timing DRO DFF after every `pipeline_every` splitter levels so deep
/// trees do not blow the pipeline-stage budget (25 GHz operation needs
/// stages ≲ 40 ps; raw splitter chains cost ~10 ps per level).
pub fn pipelined_fanout(
    nl: &mut Netlist,
    src: NodeId,
    k: usize,
    pipeline_every: usize,
) -> Vec<NodeId> {
    assert!(k > 0 && pipeline_every > 0);
    let mut endpoints: Vec<(NodeId, usize)> = vec![(src, 0)];
    while endpoints.len() < k {
        let (head, depth) = endpoints.remove(0);
        let head = if depth > 0 && depth % pipeline_every == 0 {
            nl.gate(CellType::DroDff, &[head])
        } else {
            head
        };
        let s = nl.gate(CellType::Splitter, &[head]);
        endpoints.push((s, depth + 1));
        endpoints.push((s, depth + 1));
    }
    endpoints.into_iter().map(|(n, _)| n).collect()
}

/// A 1→`k` broadcast (pipelined splitter tree): distributes one group
/// bitstream to `k` qubit controllers ("sharing the bitstreams can be done
/// efficiently in SFQ by broadcasting … using splitter gates", §IV-A1).
/// Re-timing DFFs every two splitter levels keep each stage within the
/// 40 ps clock.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn broadcast_tree(k: usize) -> Netlist {
    assert!(k > 0);
    let mut nl = Netlist::new(format!("broadcast_{k}"));
    let src = nl.input("src");
    if k == 1 {
        nl.mark_output("out0", src);
        return nl;
    }
    let endpoints = pipelined_fanout(&mut nl, src, k, 1);
    for (i, e) in endpoints.iter().enumerate() {
        nl.mark_output(format!("out{i}"), *e);
    }
    nl
}

/// The per-qubit flux-pulse current generator: `n` SFQ/DC converters
/// toggled by a shared start/stop trigger through a splitter tree
/// (Fig 4a; the paper enables 25 blocks for the CZ waveform).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sfqdc_array(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("sfqdc_array_{n}"));
    let trigger = nl.input("trigger");
    let endpoints = if n == 1 {
        vec![trigger]
    } else {
        pipelined_fanout(&mut nl, trigger, n, 1)
    };
    for (i, e) in endpoints.iter().enumerate() {
        let dc = nl.gate(CellType::SfqDc, &[*e]);
        nl.mark_output(format!("i{i}"), dc);
    }
    nl
}

/// The two-stage control buffer of Fig 5: `n` bits stream into Buffer#1
/// while Buffer#2 feeds the qubit controllers; a transfer pulse moves
/// Buffer#1 → Buffer#2 at each controller-cycle boundary.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn double_buffer(n: usize) -> Netlist {
    assert!(n > 0);
    let mut nl = Netlist::new(format!("double_buffer_{n}"));
    for i in 0..n {
        let d = nl.input(&format!("d{i}"));
        let b1 = nl.gate(CellType::DroDff, &[d]);
        let b2 = nl.gate(CellType::NdroDff, &[b1]);
        nl.mark_output(format!("q{i}"), b2);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{check_balance, synthesize};

    #[test]
    fn shift_register_structure() {
        let nl = shift_register(300);
        assert!(nl.validate().is_ok());
        let s = nl.stats();
        assert_eq!(s.count(CellType::DroDff), 300);
        assert_eq!(s.inputs, 1);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn circulating_register_has_feedback() {
        let nl = circulating_register(300);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.feedback_edges().len(), 1);
        let s = nl.stats();
        // Master–slave NDRO pairs: 2 per bit.
        assert_eq!(s.count(CellType::NdroDff), 600);
        assert_eq!(s.count(CellType::Splitter), 1);
        assert_eq!(s.total_jj, 600 * 18 + 6);
    }

    #[test]
    fn ndro_bank_counts() {
        let nl = ndro_bank(8);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.stats().count(CellType::NdroDff), 8);
        assert_eq!(nl.outputs().len(), 8);
    }

    #[test]
    fn mux_structure_grows_with_k() {
        for k in [1usize, 2, 4, 8, 16] {
            let nl = one_hot_mux(k);
            assert!(nl.validate().is_ok(), "mux {k} invalid");
            let s = nl.stats();
            assert_eq!(s.count(CellType::And2), k as u64);
            assert_eq!(s.count(CellType::NdroDff), k as u64);
            assert_eq!(s.count(CellType::Or2), (k - 1) as u64);
        }
        // Cost at BS=16 clearly exceeds BS=2 (the Fig 8 trend's source).
        assert!(one_hot_mux(16).stats().total_jj > 4 * one_hot_mux(2).stats().total_jj);
    }

    #[test]
    fn counter_validates_with_feedback() {
        let nl = binary_counter(8);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.feedback_edges().len(), 8);
        assert_eq!(nl.outputs().len(), 8);
        let s = nl.stats();
        assert_eq!(s.count(CellType::Xor2), 8);
        assert_eq!(s.count(CellType::And2), 7);
        // Pipelined fanout trees add DROs beyond the 8 state bits.
        assert!(s.count(CellType::DroDff) >= 8);
    }

    #[test]
    fn comparator_structure() {
        let nl = equality_comparator(8);
        assert!(nl.validate().is_ok());
        let s = nl.stats();
        assert_eq!(s.count(CellType::Xor2), 8);
        assert_eq!(s.count(CellType::Not), 8);
        assert_eq!(s.count(CellType::And2), 7);
    }

    #[test]
    fn delay_line_taps() {
        let nl = tapped_delay_line(255, &[0, 64, 128, 255]);
        assert!(nl.validate().is_ok());
        let s = nl.stats();
        assert_eq!(s.count(CellType::DroDff), 255);
        // One splitter per non-terminal tap.
        assert_eq!(s.count(CellType::Splitter), 3);
        assert_eq!(nl.outputs().len(), 4);
    }

    #[test]
    #[should_panic]
    fn delay_line_rejects_tap_beyond_length() {
        let _ = tapped_delay_line(10, &[11]);
    }

    #[test]
    fn broadcast_tree_splitter_count() {
        for k in [1usize, 2, 3, 8, 512] {
            let nl = broadcast_tree(k);
            assert!(nl.validate().is_ok());
            assert_eq!(
                nl.stats().count(CellType::Splitter),
                (k - 1) as u64,
                "broadcast {k}"
            );
            assert_eq!(nl.outputs().len(), k);
        }
    }

    #[test]
    fn sfqdc_array_of_25() {
        let nl = sfqdc_array(25);
        assert!(nl.validate().is_ok());
        let s = nl.stats();
        assert_eq!(s.count(CellType::SfqDc), 25);
        assert_eq!(s.count(CellType::Splitter), 24);
    }

    #[test]
    fn double_buffer_stages() {
        let nl = double_buffer(5);
        assert!(nl.validate().is_ok());
        let s = nl.stats();
        assert_eq!(s.count(CellType::DroDff), 5);
        assert_eq!(s.count(CellType::NdroDff), 5);
    }

    #[test]
    fn generators_survive_synthesis() {
        for mut nl in [
            one_hot_mux(8),
            equality_comparator(8),
            binary_counter(4),
            tapped_delay_line(32, &[0, 8, 16]),
        ] {
            synthesize(&mut nl);
            assert!(
                nl.validate().is_ok(),
                "{} invalid post-synthesis",
                nl.name()
            );
            assert!(
                check_balance(&nl).is_ok(),
                "{} unbalanced post-synthesis",
                nl.name()
            );
        }
    }

    #[test]
    fn mux_synthesis_adds_balancing_dffs() {
        let mut nl = one_hot_mux(8);
        let (_, inserted, _) = synthesize(&mut nl);
        // The OR tree has staggered depths only if inputs skew; the
        // AND row is uniform, so the tree itself is balanced — but the
        // data/select inputs meet at ANDs after NDRO (depth skew of 1).
        assert!(inserted > 0, "expected balancing DFFs in mux");
    }
}
