//! # sfq-hw — RSFQ hardware substrate for the DigiQ reproduction
//!
//! Everything needed to estimate the power, area, delay, and cabling of
//! SFQ controller hardware the way the paper's §VI-A does, substituting a
//! calibrated structural model for the proprietary synthesis/extraction
//! toolchain (see DESIGN.md substitution #1):
//!
//! * [`cells`] — the RSFQ standard-cell library of Table III;
//! * [`netlist`] — gate-level netlists with registered feedback and
//!   edge-weight balancing DFFs;
//! * [`generators`] — the structural building blocks of Fig 5
//!   (circulating bitstream registers, one-hot muxes, delay lines,
//!   counters, comparators, broadcast trees, SFQ/DC arrays, double
//!   buffers);
//! * [`passes`] — splitter insertion, full path balancing, retiming;
//! * [`counters`] — deterministic cell/DFF/allocation tallies for the
//!   passes (bench-compare gate inputs);
//! * [`workspace`] — per-thread node pool and pass scratch keeping the
//!   synthesis iteration path allocation-free;
//! * [`cost`] — calibrated power/area/delay roll-up;
//! * [`analog`] — transient simulation of the Fig 4 current generator;
//! * [`cables`] — room-temperature digital link sizing (Fig 8c).
//!
//! ## Quickstart
//!
//! ```
//! use sfq_hw::generators::one_hot_mux;
//! use sfq_hw::passes::synthesize;
//! use sfq_hw::cost::CostModel;
//!
//! // Synthesize the per-qubit bitstream selector for BS = 8…
//! let mut mux = one_hot_mux(8);
//! synthesize(&mut mux);
//! // …and price it with the calibrated technology model.
//! let report = CostModel::default().report(&mux);
//! assert!(report.power_w > 0.0 && report.worst_stage_ps < 40.0);
//! ```

pub mod analog;
pub mod cables;
pub mod cells;
pub mod cost;
pub mod counters;
pub mod generators;
pub mod json;
pub mod netlist;
pub mod passes;
pub mod workspace;

pub use cells::CellType;
pub use cost::{CostModel, CostReport};
pub use netlist::{Netlist, NetlistStats, NodeId};
