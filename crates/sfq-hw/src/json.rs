//! Minimal in-repo JSON report serializer.
//!
//! The qsim workspace is built from scratch with **no external
//! dependencies**, so the report structs that previously derived
//! `serde::Serialize` now implement the tiny [`ToJson`] trait here instead.
//! The output shape matches what a serde derive would have produced:
//!
//! * structs → objects keyed by field name (skipped fields omitted);
//! * unit enum variants → their name as a string;
//! * struct enum variants → externally tagged: `{"Variant":{"field":…}}`;
//! * non-finite floats → `null` (serde_json behaviour).
//!
//! A small parser is included so round-trips can be property-tested and so
//! future tooling can read reports back without new dependencies.
//!
//! ```
//! use sfq_hw::json::{Json, ToJson};
//!
//! let report = Json::obj([("power_w", 0.5.to_json()), ("total_jj", 123u64.to_json())]);
//! assert_eq!(report.render(), r#"{"power_w":0.5,"total_jj":123}"#);
//! assert_eq!(Json::parse(&report.render()).unwrap(), report);
//! ```

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers round-trip exactly up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (field declaration order).
    Obj(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] document — the in-repo stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;

    /// Renders `self` straight to a compact JSON string.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with `indent`-space nesting.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent.max(1)), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if *x == x.trunc() && x.abs() < 9.0e15 {
                    fmt::Write::write_fmt(out, format_args!("{}", *x as i64)).unwrap();
                } else {
                    fmt::Write::write_fmt(out, format_args!("{x}")).unwrap();
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for round-trips of our own
    /// output plus ordinary hand-written JSON).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Looks up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Reads object field `key` as a number, with a contextualized error
    /// (the shared validator of the report readers).
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped field, prefixed with `ctx`.
    pub fn num_field(&self, key: &str, ctx: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{ctx} missing numeric `{key}`"))
    }

    /// Reads object field `key` as a string, with a contextualized error.
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped field, prefixed with `ctx`.
    pub fn str_field(&self, key: &str, ctx: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx} missing string `{key}`"))
    }

    /// Reads object field `key` as an array, with a contextualized error.
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped field, prefixed with `ctx`.
    pub fn arr_field(&self, key: &str, ctx: &str) -> Result<&[Json], String> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(format!("{ctx} missing array `{key}`")),
        }
    }

    /// Reads object field `key` as a boolean, with a contextualized error.
    ///
    /// # Errors
    ///
    /// Describes the missing or mistyped field, prefixed with `ctx`.
    pub fn bool_field(&self, key: &str, ctx: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("{ctx} missing boolean `{key}`")),
        }
    }

    /// Reads object field `key` as a count: a non-negative integer within
    /// the exact-round-trip range of an `f64` (< 2⁵³). Rejecting larger
    /// values keeps `parse(serialize(x)) == x` honest — a count above
    /// 2⁵³ would already have lost precision when serialized.
    ///
    /// # Errors
    ///
    /// Describes the missing, mistyped, negative, fractional, or
    /// out-of-range field, prefixed with `ctx`.
    pub fn count_field(&self, key: &str, ctx: &str) -> Result<u64, String> {
        let x = self.num_field(key, ctx)?;
        if x < 0.0 || x.fract() != 0.0 || x >= 9_007_199_254_740_992.0 {
            return Err(format!(
                "{ctx} `{key}` must be a non-negative integer below 2^53"
            ));
        }
        Ok(x as u64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32)).unwrap()
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or(self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or(self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            msg: "invalid number",
        })
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_like_serde_json() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(true.to_json_string(), "true");
        assert_eq!(3u64.to_json_string(), "3");
        assert_eq!(0.5f64.to_json_string(), "0.5");
        assert_eq!((-7i64).to_json_string(), "-7");
        assert_eq!("hi".to_json_string(), "\"hi\"");
        assert_eq!(f64::NAN.to_json_string(), "null");
        assert_eq!(f64::INFINITY.to_json_string(), "null");
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::Num(40.0).render(), "40");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(1.0e16).render(), "10000000000000000");
    }

    #[test]
    fn object_order_is_declaration_order() {
        let j = Json::obj([("b", 1u64.to_json()), ("a", 2u64.to_json())]);
        assert_eq!(j.render(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn escapes_special_characters() {
        let j = "line\n\"quote\"\tend\u{1}".to_json();
        assert_eq!(j.render(), r#""line\n\"quote\"\tend\u0001""#);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj([
            ("name", "DigiQ_opt(BS=8)".to_json()),
            ("power_w", 0.8094.to_json()),
            ("cells", vec![1u64, 2, 3].to_json()),
            (
                "nested",
                Json::obj([("empty_arr", Json::Arr(vec![])), ("none", Json::Null)]),
            ),
        ]);
        let compact = doc.render();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = doc.render_pretty(2);
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        assert!(pretty.contains("\n  \"power_w\": 0.8094"));
    }

    #[test]
    fn parses_whitespace_and_exponents() {
        let j = Json::parse(" { \"x\" : [ 1e-3 , -2.5E2 , true , null ] } ").unwrap();
        let xs = j.get("x").unwrap();
        match xs {
            Json::Arr(v) => {
                assert_eq!(v[0].as_f64(), Some(1e-3));
                assert_eq!(v[1].as_f64(), Some(-250.0));
                assert_eq!(v[2], Json::Bool(true));
                assert_eq!(v[3], Json::Null);
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::obj([("k", "v".to_json())]);
        assert_eq!(j.get("k").and_then(Json::as_str), Some("v"));
        assert!(j.get("missing").is_none());
        assert!(j.get("k").unwrap().as_f64().is_none());
    }

    #[test]
    fn typed_field_readers() {
        let j = Json::obj([
            ("n", 4.5.to_json()),
            ("c", 12u64.to_json()),
            ("s", "hi".to_json()),
        ]);
        assert_eq!(j.num_field("n", "t"), Ok(4.5));
        assert_eq!(j.count_field("c", "t"), Ok(12));
        assert_eq!(j.str_field("s", "t"), Ok("hi"));
        // Errors name the context and the field.
        assert_eq!(
            j.num_field("x", "thing"),
            Err("thing missing numeric `x`".to_string())
        );
        assert!(j.str_field("n", "t").is_err());
        // Counts reject fractions, negatives, and precision-lossy values.
        assert!(j.count_field("n", "t").is_err());
        let neg = Json::obj([("c", Json::Num(-1.0))]);
        assert!(neg.count_field("c", "t").is_err());
        let big = Json::obj([("c", Json::Num(9.1e15))]);
        assert!(big.count_field("c", "t").is_err());
        let edge = Json::obj([("c", Json::Num(9_007_199_254_740_991.0))]);
        assert_eq!(edge.count_field("c", "t"), Ok((1 << 53) - 1));
    }

    #[test]
    fn arr_and_bool_field_readers() {
        let j = Json::obj([
            ("xs", vec![1u64, 2].to_json()),
            ("flag", true.to_json()),
            ("s", "hi".to_json()),
        ]);
        assert_eq!(j.arr_field("xs", "t").map(<[Json]>::len), Ok(2));
        assert_eq!(j.bool_field("flag", "t"), Ok(true));
        assert_eq!(
            j.arr_field("flag", "thing"),
            Err("thing missing array `flag`".to_string())
        );
        assert_eq!(
            j.bool_field("s", "thing"),
            Err("thing missing boolean `s`".to_string())
        );
        assert!(j.arr_field("missing", "t").is_err());
        assert!(j.bool_field("missing", "t").is_err());
    }
}
