//! Deterministic work/allocation counters for the synthesis passes.
//!
//! The same discipline as `qsim::counters`, extended to the netlist tier:
//! synthesis perf regressions (a pass re-growing per-node `Vec`s, a
//! builder abandoning the node pool) keep every cell count bit-identical
//! while destroying the speedup, so the passes tally their deterministic
//! work into thread-locals that tests and the kernels bench can assert
//! exactly.
//!
//! Counting policy (deterministic for a fixed input):
//!
//! * **cells** — nodes examined by a pass: each of `insert_splitters`,
//!   `path_balance` and `check-style` walks tallies the node count it
//!   scans, and every `retime` fixpoint iteration tallies the full node
//!   count again (the fixpoint trip count is itself deterministic).
//! * **dffs_moved** — balancing DFFs materialized or relocated:
//!   `path_balance` tallies every edge-weight DFF it inserts, `retime`
//!   tallies every DFF it lifts from an input edge to the output.
//! * **allocs** — one per materialized netlist artifact
//!   ([`crate::netlist::Netlist::new`]). Pooled node buffers, pass
//!   scratch (topo orders, fanout CSRs, endpoint queues) and `Clone` are
//!   never tallied — only outputs count, so a pass's cold and warm
//!   tallies are identical by construction.
//!
//! Thread-local, like the qsim tallies: snapshot and reset on the thread
//! that runs the pass under test.

use std::cell::Cell;

thread_local! {
    static CELLS: Cell<u64> = const { Cell::new(0) };
    static DFFS_MOVED: Cell<u64> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time snapshot of this thread's synthesis tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthCounters {
    /// Netlist nodes examined by the passes (see module docs).
    pub cells: u64,
    /// Balancing DFFs inserted or relocated.
    pub dffs_moved: u64,
    /// Materialized netlist artifacts.
    pub allocs: u64,
}

/// Adds `n` examined nodes to this thread's tally.
#[inline]
pub fn tally_cells(n: u64) {
    CELLS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Adds `n` inserted/relocated balancing DFFs to this thread's tally.
#[inline]
pub fn tally_dffs_moved(n: u64) {
    DFFS_MOVED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Records `n` materialized netlist artifacts on this thread.
#[inline]
pub fn tally_allocs(n: u64) {
    ALLOCS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Reads this thread's tallies without resetting them.
pub fn snapshot() -> SynthCounters {
    SynthCounters {
        cells: CELLS.with(Cell::get),
        dffs_moved: DFFS_MOVED.with(Cell::get),
        allocs: ALLOCS.with(Cell::get),
    }
}

/// Zeroes this thread's tallies.
pub fn reset() {
    CELLS.with(|c| c.set(0));
    DFFS_MOVED.with(|c| c.set(0));
    ALLOCS.with(|c| c.set(0));
}

/// Runs `f` with freshly reset tallies and returns its result together
/// with the counters it accrued.
pub fn counted<T>(f: impl FnOnce() -> T) -> (T, SynthCounters) {
    reset();
    let out = f();
    (out, snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_accumulate_and_reset() {
        reset();
        tally_cells(7);
        tally_dffs_moved(3);
        tally_allocs(1);
        let c = snapshot();
        assert_eq!(
            c,
            SynthCounters {
                cells: 7,
                dffs_moved: 3,
                allocs: 1
            }
        );
        reset();
        assert_eq!(snapshot(), SynthCounters::default());
    }

    #[test]
    fn counted_scopes_a_closure() {
        tally_cells(999); // stale tally from an earlier pass
        let (val, c) = counted(|| {
            tally_cells(4);
            tally_dffs_moved(2);
            11
        });
        assert_eq!(val, 11);
        assert_eq!(
            c,
            SynthCounters {
                cells: 4,
                dffs_moved: 2,
                allocs: 0
            }
        );
    }
}
