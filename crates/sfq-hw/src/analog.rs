//! Transient simulation of the SFQ/DC current generator (Fig 4).
//!
//! The paper drives flux-tunable CZ gates with an in-fridge current
//! generator: an array of SFQ/DC converters feeding an R1–C1–R2 network
//! into a superconducting microstrip flex line (Fig 4a), simulated there
//! with JSIM. This module substitutes a lumped-element ODE of the same
//! schematic (DESIGN.md substitution #2): the SFQ/DC blocks form a series
//! voltage stack (a standard RSFQ driver idiom — each enabled block adds
//! its few-µV DC output), driving R1 → C1 shunt → R2 and the flex-line
//! inductance `L`:
//!
//! ```text
//! C1·dVc/dt = (n_on(t)·V_s − Vc)/R1 − I_L
//! L·dI_L/dt = Vc − R2·I_L
//! ```
//!
//! Blocks are enabled/disabled sequentially (one per `stagger_ns`), which
//! together with the L/R pole reproduces the ~10 ns rise of the published
//! waveform (Fig 4b: ≈1.2 mA plateau within a 60 ns window for 25 blocks,
//! R1 = R2 = 0.05 Ω, C1 = 10 nF).
//!
//! # Examples
//!
//! ```
//! use sfq_hw::analog::CurrentGenerator;
//!
//! let wave = CurrentGenerator::paper_fig4().simulate(70.0, 0.25);
//! let peak = wave.samples_ma.iter().cloned().fold(0.0, f64::max);
//! assert!((peak - 1.2).abs() < 0.1);
//! ```

/// Configuration of the SFQ/DC current generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentGenerator {
    /// Number of SFQ/DC blocks (paper: 25).
    pub n_blocks: usize,
    /// Open-circuit source voltage per block in µV (sets the plateau).
    pub v_source_uv: f64,
    /// Series resistance per block branch, Ω (paper: 0.05).
    pub r1_ohm: f64,
    /// Damping resistance to the load, Ω (paper: 0.05).
    pub r2_ohm: f64,
    /// Shunt capacitance, nF (paper: 10).
    pub c1_nf: f64,
    /// Flex-line (load loop) inductance, nH.
    pub l_nh: f64,
    /// Delay between consecutive block enables, ns.
    pub stagger_ns: f64,
    /// Time at which the start trigger arrives, ns.
    pub start_ns: f64,
    /// Time at which the stop trigger arrives, ns (blocks disable with the
    /// same stagger).
    pub stop_ns: f64,
}

impl CurrentGenerator {
    /// The Fig 4 configuration: 25 blocks, R1 = R2 = 0.05 Ω, C1 = 10 nF,
    /// staggered enables producing a ~10 ns rise to ≈1.2 mA, start at
    /// 5 ns, stop at 55 ns (≈60 ns CZ window).
    pub fn paper_fig4() -> Self {
        // Plateau: I∞ = n·Vs/(R1+R2) = 1.2 mA ⇒ Vs = 1.2 mA·0.1 Ω/25
        // = 4.8 µV per block (the µV scale of a single SFQ/DC output).
        CurrentGenerator {
            n_blocks: 25,
            v_source_uv: 4.8,
            r1_ohm: 0.05,
            r2_ohm: 0.05,
            c1_nf: 10.0,
            l_nh: 0.4,
            stagger_ns: 0.4,
            start_ns: 5.0,
            stop_ns: 55.0,
        }
    }

    /// Steady-state load current with all blocks on, in mA:
    /// `I∞ = n·Vs/(R1+R2)` — linear in the enabled block count, which is
    /// how the array modulates flux amplitude.
    pub fn plateau_ma(&self) -> f64 {
        let n = self.n_blocks as f64;
        n * self.v_source_uv / (self.r1_ohm + self.r2_ohm) * 1e-3
    }

    /// Number of enabled blocks at time `t_ns`.
    pub fn blocks_on(&self, t_ns: f64) -> usize {
        let ramp = |since: f64| -> usize {
            if since < 0.0 {
                0
            } else {
                ((since / self.stagger_ns).floor() as usize + 1).min(self.n_blocks)
            }
        };
        let on = ramp(t_ns - self.start_ns);
        let off = ramp(t_ns - self.stop_ns);
        on.saturating_sub(off)
    }

    /// Simulates the load current from `t = 0` to `t_end_ns`, sampled
    /// every `dt_ns`, using forward-Euler sub-steps well below the
    /// electrical time constant.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns <= 0` or `t_end_ns <= 0`.
    pub fn simulate(&self, t_end_ns: f64, dt_ns: f64) -> CurrentWaveform {
        assert!(dt_ns > 0.0 && t_end_ns > 0.0);
        let n_samples = (t_end_ns / dt_ns).ceil() as usize;
        // Sub-step well below the fastest pole (τ_cap = R1·C1) for
        // forward-Euler stability.
        let tau_cap = self.r1_ohm * self.c1_nf; // Ω·nF = ns
        let tau_l = self.l_nh / (self.r1_ohm + self.r2_ohm); // nH/Ω = ns
        let tau_min = tau_cap.min(tau_l).max(1e-4);
        let sub = ((dt_ns / (tau_min / 20.0)).ceil() as usize).max(1);
        let h = dt_ns / sub as f64;

        let mut vc = 0.0f64; // capacitor voltage in µV
        let mut il = 0.0f64; // load current in µA
        let mut samples = Vec::with_capacity(n_samples);
        for k in 0..n_samples {
            for s in 0..sub {
                let t = k as f64 * dt_ns + s as f64 * h;
                let n_on = self.blocks_on(t) as f64;
                // Units are self-consistent: µV/Ω = µA; nF·µV/ns = µA;
                // nH·µA/ns = µV.
                let dvc = ((n_on * self.v_source_uv - vc) / self.r1_ohm - il) / self.c1_nf;
                let dil = (vc - self.r2_ohm * il) / self.l_nh;
                vc += dvc * h;
                il += dil * h;
            }
            samples.push(il * 1e-3); // µA → mA
        }
        CurrentWaveform {
            dt_ns,
            samples_ma: samples,
        }
    }
}

/// A sampled load-current waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentWaveform {
    /// Sample spacing in ns.
    pub dt_ns: f64,
    /// Load current per sample in mA.
    pub samples_ma: Vec<f64>,
}

impl CurrentWaveform {
    /// Total duration in ns.
    pub fn duration_ns(&self) -> f64 {
        self.dt_ns * self.samples_ma.len() as f64
    }

    /// Peak current in mA.
    pub fn peak_ma(&self) -> f64 {
        self.samples_ma.iter().cloned().fold(0.0, f64::max)
    }

    /// 10%→90% rise time in ns, or `None` if the waveform never reaches
    /// 90% of peak.
    pub fn rise_time_ns(&self) -> Option<f64> {
        let peak = self.peak_ma();
        if peak <= 0.0 {
            return None;
        }
        let t10 = self.samples_ma.iter().position(|&v| v >= 0.1 * peak)? as f64 * self.dt_ns;
        let t90 = self.samples_ma.iter().position(|&v| v >= 0.9 * peak)? as f64 * self.dt_ns;
        Some(t90 - t10)
    }

    /// Duration (ns) spent above 90% of peak — the usable flux plateau.
    pub fn plateau_ns(&self) -> f64 {
        let peak = self.peak_ma();
        self.samples_ma.iter().filter(|&&v| v >= 0.9 * peak).count() as f64 * self.dt_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_matches_fig4b() {
        let gen = CurrentGenerator::paper_fig4();
        assert!((gen.plateau_ma() - 1.2).abs() < 0.01);
        let wave = gen.simulate(70.0, 0.25);
        assert!(
            (wave.peak_ma() - 1.2).abs() < 0.06,
            "peak {}",
            wave.peak_ma()
        );
    }

    #[test]
    fn rise_time_is_about_ten_ns() {
        // Fig 4b shows the current climbing over roughly 10 ns.
        let wave = CurrentGenerator::paper_fig4().simulate(70.0, 0.1);
        let rise = wave.rise_time_ns().expect("reaches plateau");
        assert!(
            (4.0..14.0).contains(&rise),
            "rise time {rise:.1} ns out of Fig 4b range"
        );
    }

    #[test]
    fn waveform_window_is_sixty_ns() {
        let gen = CurrentGenerator::paper_fig4();
        let wave = gen.simulate(80.0, 0.1);
        // Above-threshold window ≈ stop − start = 50 ns plateau plus ramps.
        let above: f64 = wave.samples_ma.iter().filter(|&&v| v > 0.06).count() as f64 * wave.dt_ns;
        assert!((45.0..70.0).contains(&above), "active window {above:.1} ns");
    }

    #[test]
    fn current_is_zero_before_start_and_after_settle() {
        let gen = CurrentGenerator::paper_fig4();
        let wave = gen.simulate(80.0, 0.1);
        let idx = |t: f64| (t / wave.dt_ns) as usize;
        assert!(wave.samples_ma[idx(4.0)].abs() < 1e-6);
        assert!(wave.samples_ma[idx(79.0)].abs() < 0.08);
    }

    #[test]
    fn blocks_ramp_sequentially() {
        let gen = CurrentGenerator::paper_fig4();
        assert_eq!(gen.blocks_on(0.0), 0);
        assert_eq!(gen.blocks_on(5.0), 1);
        assert_eq!(gen.blocks_on(5.9), 3);
        assert_eq!(gen.blocks_on(20.0), 25);
        // During shutdown the count ramps back down.
        assert!(gen.blocks_on(55.5) < 25);
        assert_eq!(gen.blocks_on(70.0), 0);
    }

    #[test]
    fn fewer_blocks_less_current() {
        let mut gen = CurrentGenerator::paper_fig4();
        gen.n_blocks = 10;
        // Amplitude is linear in block count: 10/25 of 1.2 mA.
        assert!((gen.plateau_ma() - 0.48).abs() < 1e-9);
        let wave = gen.simulate(70.0, 0.25);
        assert!(wave.peak_ma() < 0.6);
    }

    #[test]
    fn plateau_duration_reasonable() {
        let wave = CurrentGenerator::paper_fig4().simulate(80.0, 0.1);
        let p = wave.plateau_ns();
        assert!((30.0..55.0).contains(&p), "plateau {p:.1} ns");
    }

    #[test]
    fn waveform_duration_accessor() {
        let wave = CurrentGenerator::paper_fig4().simulate(70.0, 0.5);
        assert!((wave.duration_ns() - 70.0).abs() < 0.5);
    }
}
