//! Property-based tests for the RSFQ synthesis passes.
//!
//! Random DAGs are generated (seeded, via the workspace's internal RNG —
//! no proptest offline), pushed through the full synthesis flow, and
//! checked against the structural invariants the cost model relies on:
//! legality of fanout, full path balance, retiming's conservation of
//! input-to-output stage counts, and equality between the edge-weight
//! bookkeeping and physically materialized DFF chains.

use qsim::rng::StdRng;
use sfq_hw::cells::CellType;
use sfq_hw::netlist::{Netlist, NodeId};
use sfq_hw::passes::{
    check_balance, insert_splitters, materialize_balancing, path_balance, retime, stage_depths,
    synthesize,
};

const CASES: u64 = 48;

/// A random DAG: for each gate, a cell choice and fanin picks (indices
/// into the already-built prefix).
fn random_netlist(rng: &mut StdRng) -> Netlist {
    let n_inputs = rng.gen_range(2usize..6);
    let n_gates = rng.gen_range(1usize..40);
    let mut nl = Netlist::new("prop");
    let mut pool: Vec<NodeId> = nl.inputs("i", n_inputs);
    for _ in 0..n_gates {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let id = match rng.gen_range(0u32..5) {
            0 => nl.gate(CellType::And2, &[a, b]),
            1 => nl.gate(CellType::Or2, &[a, b]),
            2 => nl.gate(CellType::Xor2, &[a, b]),
            3 => nl.gate(CellType::Not, &[a]),
            _ => nl.gate(CellType::DroDff, &[a]),
        };
        pool.push(id);
    }
    // Mark sinks (nodes with no fanout) as outputs.
    let fo = nl.fanout_counts();
    for id in nl.ids().collect::<Vec<_>>() {
        if fo[id.index()] == 0 && nl.node(id).cell().is_some() {
            nl.mark_output("o", id);
        }
    }
    nl
}

#[test]
fn synthesis_preserves_validity() {
    for case in 0..CASES {
        let mut nl = random_netlist(&mut StdRng::seed_from_u64(case));
        assert!(nl.validate().is_ok(), "case {case}: invalid before");
        synthesize(&mut nl);
        assert!(nl.validate().is_ok(), "case {case}: invalid after");
    }
}

#[test]
fn fanout_is_legal_after_splitter_insertion() {
    for case in 0..CASES {
        let mut nl = random_netlist(&mut StdRng::seed_from_u64(case));
        insert_splitters(&mut nl);
        let fo = nl.fanout_counts();
        for (id, node) in nl.iter() {
            let max = node.cell().map_or(1, CellType::max_fanout);
            assert!(
                (fo[id.index()] as usize) <= max,
                "case {case}: node {:?} fanout {} exceeds {}",
                id,
                fo[id.index()],
                max
            );
        }
    }
}

#[test]
fn balance_invariant_holds_after_flow() {
    for case in 0..CASES {
        let mut nl = random_netlist(&mut StdRng::seed_from_u64(case));
        synthesize(&mut nl);
        assert!(check_balance(&nl).is_ok(), "case {case}");
    }
}

#[test]
fn retiming_never_increases_dffs_and_keeps_balance() {
    for case in 0..CASES {
        let mut nl = random_netlist(&mut StdRng::seed_from_u64(case));
        insert_splitters(&mut nl);
        path_balance(&mut nl);
        let before = nl.stats().balancing_dffs;
        let depths_before = stage_depths(&nl).unwrap();
        let saved = retime(&mut nl);
        let after = nl.stats().balancing_dffs;
        assert_eq!(before - after, saved, "case {case}");
        assert!(check_balance(&nl).is_ok(), "case {case}");
        // Output stage depths unchanged (retiming conserves path weights).
        let depths_after = stage_depths(&nl).unwrap();
        for (name, id) in nl.outputs() {
            assert_eq!(
                depths_before[id.index()],
                depths_after[id.index()],
                "case {case}: output {name} depth changed"
            );
        }
    }
}

#[test]
fn materialized_netlist_matches_weights() {
    for case in 0..CASES {
        let mut nl = random_netlist(&mut StdRng::seed_from_u64(case));
        synthesize(&mut nl);
        let weights = nl.stats();
        let phys = materialize_balancing(&nl);
        assert!(phys.validate().is_ok(), "case {case}");
        let pstats = phys.stats();
        assert_eq!(
            pstats.count(CellType::DroDff),
            weights.count(CellType::DroDff),
            "case {case}"
        );
        assert_eq!(pstats.total_jj, weights.total_jj, "case {case}");
        assert!(check_balance(&phys).is_ok(), "case {case}");
    }
}

#[test]
fn path_balance_is_idempotent() {
    for case in 0..CASES {
        let mut nl = random_netlist(&mut StdRng::seed_from_u64(case));
        insert_splitters(&mut nl);
        path_balance(&mut nl);
        let again = path_balance(&mut nl);
        assert_eq!(again, 0, "case {case}");
    }
}

#[test]
fn stats_scale_linearly() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let nl = random_netlist(&mut rng);
        let k = rng.gen_range(1u64..20);
        let one = nl.stats();
        let mut many = sfq_hw::netlist::NetlistStats::default();
        many.add_scaled(&one, k);
        assert_eq!(many.total_jj, one.total_jj * k, "case {case}");
        assert!(
            (many.cell_area_um2 - one.cell_area_um2 * k as f64).abs() < 1e-6,
            "case {case}"
        );
    }
}

// ------------------------------------------------------------------
// Deterministic synthesis-counter contracts (bench-compare gate inputs).
// ------------------------------------------------------------------

#[test]
fn pass_counters_match_returned_work() {
    use sfq_hw::counters;
    let mut nl = Netlist::new("cnt");
    let ins = nl.inputs("i", 4);
    let a = nl.gate(CellType::And2, &[ins[0], ins[1]]);
    let b = nl.gate(CellType::And2, &[a, ins[2]]);
    let c = nl.gate(CellType::And2, &[b, ins[3]]);
    nl.mark_output("o", c);
    let n0 = nl.len() as u64;
    let (_, tally) = counters::counted(|| insert_splitters(&mut nl));
    assert_eq!(tally.cells, n0, "insert_splitters examines every node once");
    let (inserted, tally) = counters::counted(|| path_balance(&mut nl));
    assert!(inserted > 0);
    assert_eq!(tally.dffs_moved, inserted, "every inserted DFF is tallied");
    assert_eq!(tally.cells, nl.len() as u64);
    let (_, tally) = counters::counted(|| retime(&mut nl));
    assert!(
        tally.cells >= nl.len() as u64,
        "retime tallies at least one full fixpoint sweep"
    );
    assert_eq!(tally.allocs, 0, "passes must not materialize netlists");
}

#[test]
fn synthesis_counters_cold_equal_warm() {
    use sfq_hw::counters;
    let run = || {
        counters::counted(|| {
            let mut nl = sfq_hw::generators::one_hot_mux(16);
            synthesize(&mut nl);
            nl.stats().total_jj
        })
    };
    let (jj_cold, cold) = run(); // first run: empty node pool and scratch
    let (jj_warm, warm) = run(); // second run: pooled buffers in play
    assert_eq!(
        jj_cold, jj_warm,
        "pooling must not change synthesis results"
    );
    assert_eq!(cold, warm, "tallies must be pool-state-independent");
    assert!(cold.cells > 0, "cells examined must be counted");
    assert_eq!(cold.allocs, 1, "one netlist materialized per run");
}
