//! Property-based tests for the RSFQ synthesis passes.
//!
//! Random DAGs are generated, pushed through the full synthesis flow, and
//! checked against the structural invariants the cost model relies on:
//! legality of fanout, full path balance, retiming's conservation of
//! input-to-output stage counts, and equality between the edge-weight
//! bookkeeping and physically materialized DFF chains.

use proptest::prelude::*;
use sfq_hw::cells::CellType;
use sfq_hw::netlist::{Netlist, NodeId};
use sfq_hw::passes::{
    check_balance, insert_splitters, materialize_balancing, path_balance, retime, stage_depths,
    synthesize,
};

/// Strategy: a random DAG described by, for each gate, a cell choice and
/// fanin picks (indices into the already-built prefix).
fn random_netlist() -> impl Strategy<Value = Netlist> {
    let gate_plan = proptest::collection::vec(
        (0u8..5, any::<u32>(), any::<u32>()),
        1..40,
    );
    (2usize..6, gate_plan).prop_map(|(n_inputs, plan)| {
        let mut nl = Netlist::new("prop");
        let mut pool: Vec<NodeId> = nl.inputs("i", n_inputs);
        for (kind, s1, s2) in plan {
            let a = pool[(s1 as usize) % pool.len()];
            let b = pool[(s2 as usize) % pool.len()];
            let id = match kind {
                0 => nl.gate(CellType::And2, &[a, b]),
                1 => nl.gate(CellType::Or2, &[a, b]),
                2 => nl.gate(CellType::Xor2, &[a, b]),
                3 => nl.gate(CellType::Not, &[a]),
                _ => nl.gate(CellType::DroDff, &[a]),
            };
            pool.push(id);
        }
        // Mark sinks (nodes with no fanout) as outputs.
        let fo = nl.fanout_counts();
        for id in nl.ids().collect::<Vec<_>>() {
            if fo[id.index()] == 0 && nl.node(id).cell().is_some() {
                nl.mark_output("o", id);
            }
        }
        nl
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthesis_preserves_validity(mut nl in random_netlist()) {
        prop_assert!(nl.validate().is_ok());
        synthesize(&mut nl);
        prop_assert!(nl.validate().is_ok());
    }

    #[test]
    fn fanout_is_legal_after_splitter_insertion(mut nl in random_netlist()) {
        insert_splitters(&mut nl);
        let fo = nl.fanout_counts();
        for (id, node) in nl.iter() {
            let max = node.cell().map_or(1, CellType::max_fanout);
            prop_assert!(
                (fo[id.index()] as usize) <= max,
                "node {:?} fanout {} exceeds {}", id, fo[id.index()], max
            );
        }
    }

    #[test]
    fn balance_invariant_holds_after_flow(mut nl in random_netlist()) {
        synthesize(&mut nl);
        prop_assert!(check_balance(&nl).is_ok());
    }

    #[test]
    fn retiming_never_increases_dffs_and_keeps_balance(mut nl in random_netlist()) {
        insert_splitters(&mut nl);
        path_balance(&mut nl);
        let before = nl.stats().balancing_dffs;
        let depths_before = stage_depths(&nl).unwrap();
        let saved = retime(&mut nl);
        let after = nl.stats().balancing_dffs;
        prop_assert_eq!(before - after, saved);
        prop_assert!(check_balance(&nl).is_ok());
        // Output stage depths unchanged (retiming conserves path weights).
        let depths_after = stage_depths(&nl).unwrap();
        for (name, id) in nl.outputs() {
            prop_assert_eq!(
                depths_before[id.index()], depths_after[id.index()],
                "output {} depth changed", name
            );
        }
    }

    #[test]
    fn materialized_netlist_matches_weights(mut nl in random_netlist()) {
        synthesize(&mut nl);
        let weights = nl.stats();
        let phys = materialize_balancing(&nl);
        prop_assert!(phys.validate().is_ok());
        let pstats = phys.stats();
        prop_assert_eq!(pstats.count(CellType::DroDff), weights.count(CellType::DroDff));
        prop_assert_eq!(pstats.total_jj, weights.total_jj);
        prop_assert!(check_balance(&phys).is_ok());
    }

    #[test]
    fn path_balance_is_idempotent(mut nl in random_netlist()) {
        insert_splitters(&mut nl);
        path_balance(&mut nl);
        let again = path_balance(&mut nl);
        prop_assert_eq!(again, 0);
    }

    #[test]
    fn stats_scale_linearly(nl in random_netlist(), k in 1u64..20) {
        let one = nl.stats();
        let mut many = sfq_hw::netlist::NetlistStats::default();
        many.add_scaled(&one, k);
        prop_assert_eq!(many.total_jj, one.total_jj * k);
        prop_assert!((many.cell_area_um2 - one.cell_area_um2 * k as f64).abs() < 1e-6);
    }
}
