//! Edge-case tests for the in-repo JSON serializer/parser.
//!
//! The happy paths are covered by the unit tests in `sfq_hw::json`; this
//! suite pins the corners every golden file and report reader leans on:
//! escape handling, unicode, non-finite floats, deep nesting, duplicate
//! keys, and the 2⁵³ exact-integer boundary of `count_field`.

use sfq_hw::json::{Json, ToJson};

#[test]
fn escapes_round_trip_through_render_and_parse() {
    let tricky = "quote:\" back:\\ slash:/ nl:\n cr:\r tab:\t nul-adjacent:\u{1}\u{1f}";
    let j = tricky.to_json();
    let text = j.render();
    // Control characters must never appear raw in the rendering.
    assert!(!text.contains('\n'));
    assert!(!text.contains('\u{1}'));
    assert_eq!(Json::parse(&text).unwrap(), j);
}

#[test]
fn unicode_passes_through_unescaped_and_by_escape() {
    // Multi-byte UTF-8 renders raw and survives the round trip.
    let s = "ψ⟩ → ±π ≤ 2⁵³ 😀";
    let j = s.to_json();
    assert_eq!(Json::parse(&j.render()).unwrap(), j);
    // \u escapes parse to the same string as the raw character.
    assert_eq!(
        Json::parse(r#""\u03c8""#).unwrap(),
        Json::Str("ψ".to_string())
    );
    // An escaped solidus is legal JSON even though we never emit it.
    assert_eq!(Json::parse(r#""\/""#).unwrap(), Json::Str("/".to_string()));
    // \b and \f parse to their control characters.
    assert_eq!(
        Json::parse(r#""\b\f""#).unwrap(),
        Json::Str("\u{8}\u{c}".to_string())
    );
    // A lone surrogate cannot be a char; the parser substitutes U+FFFD
    // rather than erroring (our writer never produces surrogates).
    assert_eq!(
        Json::parse(r#""\ud800""#).unwrap(),
        Json::Str("\u{FFFD}".to_string())
    );
    // Malformed \u escapes are rejected.
    assert!(Json::parse(r#""\uZZZZ""#).is_err());
    assert!(Json::parse(r#""\u12""#).is_err());
}

#[test]
fn non_finite_floats_serialize_as_null_and_never_parse_back() {
    assert_eq!(f64::NAN.to_json_string(), "null");
    assert_eq!(f64::INFINITY.to_json_string(), "null");
    assert_eq!(f64::NEG_INFINITY.to_json_string(), "null");
    // The textual forms some writers emit are not valid JSON here.
    for text in ["NaN", "Infinity", "-Infinity", "inf", "nan"] {
        assert!(Json::parse(text).is_err(), "`{text}` must be rejected");
    }
    // A non-finite number nested in a report degrades to null, so readers
    // see a missing numeric field, not a poisoned value.
    let j = Json::obj([("x", f64::NAN.to_json())]);
    let parsed = Json::parse(&j.render()).unwrap();
    assert_eq!(parsed.get("x"), Some(&Json::Null));
    assert!(parsed.num_field("x", "t").is_err());
}

#[test]
fn deep_nesting_round_trips() {
    // 200 levels of arrays plus 200 levels of objects: comfortably beyond
    // any report we emit, well within parser recursion limits.
    let mut j = Json::Num(1.0);
    for _ in 0..200 {
        j = Json::Arr(vec![j]);
    }
    for _ in 0..200 {
        j = Json::obj([("k", j)]);
    }
    let compact = j.render();
    assert_eq!(Json::parse(&compact).unwrap(), j);
    let pretty = j.render_pretty(1);
    assert_eq!(Json::parse(&pretty).unwrap(), j);
}

#[test]
fn duplicate_keys_parse_and_first_wins_on_lookup() {
    let j = Json::parse(r#"{"a":1,"a":2,"b":3}"#).unwrap();
    // Both pairs are preserved (insertion order)…
    match &j {
        Json::Obj(pairs) => {
            assert_eq!(pairs.len(), 3);
            assert_eq!(pairs[0], ("a".to_string(), Json::Num(1.0)));
            assert_eq!(pairs[1], ("a".to_string(), Json::Num(2.0)));
        }
        _ => panic!("expected object"),
    }
    // …and `get` (hence every report reader) sees the first occurrence.
    assert_eq!(j.get("a").and_then(Json::as_f64), Some(1.0));
    assert_eq!(j.num_field("a", "t"), Ok(1.0));
}

#[test]
fn count_field_boundaries_at_two_to_the_53() {
    const MAX_EXACT: f64 = 9_007_199_254_740_991.0; // 2⁵³ − 1
    let j = Json::obj([
        ("max", Json::Num(MAX_EXACT)),
        ("limit", Json::Num(MAX_EXACT + 1.0)), // 2⁵³: first lossy value
        ("past", Json::Num((MAX_EXACT + 1.0) * 2.0)),
        ("neg_zero", Json::Num(-0.0)),
        ("tiny_frac", Json::Num(0.5)),
    ]);
    // 2⁵³ − 1 is the largest accepted count…
    assert_eq!(j.count_field("max", "t"), Ok((1 << 53) - 1));
    // …2⁵³ and beyond are rejected (they no longer round-trip exactly).
    assert!(j.count_field("limit", "t").is_err());
    assert!(j.count_field("past", "t").is_err());
    // −0.0 is a valid zero count; fractions are rejected.
    assert_eq!(j.count_field("neg_zero", "t"), Ok(0));
    assert!(j.count_field("tiny_frac", "t").is_err());

    // The boundary survives a text round trip: 2⁵³ − 1 rendered and
    // re-parsed still reads back as the exact integer.
    let text = Json::obj([("c", Json::Num(MAX_EXACT))]).render();
    assert!(text.contains("9007199254740991"));
    let back = Json::parse(&text).unwrap();
    assert_eq!(back.count_field("c", "t"), Ok((1 << 53) - 1));
}

#[test]
fn num_field_accepts_what_count_field_rejects() {
    let j = Json::obj([
        ("big", Json::Num(1.0e18)),
        ("neg", Json::Num(-4.5)),
        ("frac", Json::Num(0.25)),
    ]);
    for k in ["big", "neg", "frac"] {
        assert!(j.num_field(k, "t").is_ok(), "num_field must accept `{k}`");
        assert!(
            j.count_field(k, "t").is_err(),
            "count_field must reject `{k}`"
        );
    }
}

#[test]
fn parser_rejects_structural_garbage() {
    for text in [
        "",
        "   ",
        "{\"a\"}",
        "{\"a\":}",
        "{:1}",
        "[1 2]",
        "{\"a\":1,}",
        "tru",
        "+",
        "--1",
        "1e",
        "\"\\",
        "[\"\\q\"]",
    ] {
        assert!(Json::parse(text).is_err(), "`{text}` must be rejected");
    }
    // Errors carry a byte offset and render through Display.
    let err = Json::parse("{\"a\":@}").unwrap_err();
    assert!(err.to_string().contains("byte"));
}
