//! Per-qubit gate decomposition for DigiQ_opt (§V-A).
//!
//! A DigiQ_opt controller cycle broadcasts the stored Ry(π/2) bitstream
//! delayed by a per-cycle value `d`, realizing (in the qubit frame)
//! `Rz(−θ_d)·Ubs·Rz(θ_d)` with `θ_d = d·2π·f·T_clk`. Chaining `L` cycles
//! and absorbing the trailing rotation into the next gate, an arbitrary
//! target is approximated as
//!
//! ```text
//! U ≈ Rz(φ_out)·Ubs·Rz(θ_{d_{L-1}})·…·Ubs·Rz(θ_{d_0} + φ_in)
//! ```
//!
//! where `φ_in` is the residual absorbed from the previous gate (free,
//! tracked by the compiler), `φ_out` is this gate's own residual, and each
//! middle angle is quantized to the qubit's 256 reachable delay phases.
//! The search "chooses sets of delays holistically … numerically searching
//! for the best combination" — here an exact enumeration over delay
//! tuples with the two boundary rotations maximized in closed form, using
//! `L ≤ 2` and escalating to `L = 3` for near-π rotations exactly as the
//! paper reports.

use crate::parking::rz_error_for_offset;
use qsim::complex::C64;
use qsim::matrix::CMat;
use std::f64::consts::PI;

/// The calibrated per-qubit basis for DigiQ_opt decomposition.
#[derive(Debug, Clone)]
pub struct OptBasis {
    /// Qubit-subspace block (2×2, sub-unitary with leakage) of the basis
    /// operation this qubit's shared bitstream actually implements.
    pub ubs: CMat,
    /// Reachable delay phase per clock tick: `2π·f_actual·T_clk mod 2π`.
    pub phase_per_tick: f64,
    /// Number of delay steps `N` (256 phases including zero).
    pub n_delays: usize,
}

impl OptBasis {
    /// Builds the basis from a 6-level basis operation (projecting the
    /// qubit block) and the qubit's actual frequency.
    ///
    /// # Panics
    ///
    /// Panics if the basis op is smaller than 2×2.
    pub fn new(ubs_full: &CMat, actual_freq_ghz: f64, clock_ns: f64, n_delays: usize) -> Self {
        assert!(ubs_full.rows() >= 2);
        OptBasis {
            ubs: ubs_full.top_left_block(2),
            phase_per_tick: (2.0 * PI * actual_freq_ghz * clock_ns).rem_euclid(2.0 * PI),
            n_delays,
        }
    }

    /// The idealized basis (exact Ry(π/2), no drift) — the reference point
    /// of §V-A's "in the ideal case, L ≤ 2 is enough".
    pub fn ideal(n_delays: usize) -> Self {
        OptBasis {
            ubs: qsim::gates::ry(PI / 2.0),
            // Uniform coverage: exactly the 256-point lattice.
            phase_per_tick: 2.0 * PI * 63.0 / 256.0,
            n_delays,
        }
    }

    /// Reachable Rz angle for delay `d`.
    pub fn theta(&self, d: usize) -> f64 {
        (d as f64 * self.phase_per_tick).rem_euclid(2.0 * PI)
    }
}

/// An opt-mode decomposition: delays for each Ubs firing plus boundary
/// rotations.
#[derive(Debug, Clone, PartialEq)]
pub struct OptDecomposition {
    /// Delay value before each Ubs firing (`L = delays.len()` cycles).
    pub delays: Vec<u16>,
    /// Continuous rotation folded into the *incoming* residual (already
    /// includes the provided `phi_in`).
    pub phi_in_used: f64,
    /// Residual rotation handed to the next gate.
    pub phi_out: f64,
    /// Average gate error of the realized operation vs. the target.
    pub error: f64,
}

impl OptDecomposition {
    /// Number of controller cycles consumed.
    pub fn cycles(&self) -> usize {
        self.delays.len()
    }
}

/// `Rz(θ)` as a 2×2 matrix (local helper).
fn rzm(theta: f64) -> CMat {
    qsim::gates::rz(theta)
}

/// Row-major scalar 2×2 product `a·b` — the decomposition scans run
/// millions of these, so they stay on the stack instead of going through
/// heap-backed `CMat`s.
#[inline]
fn mul2(a: &[C64; 4], b: &[C64; 4]) -> [C64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Scales the columns of a row-major 2×2 by a diagonal `(z0, z1)` — i.e.
/// `a · diag(z0, z1)`.
#[inline]
fn col_scale2(a: &[C64; 4], z0: C64, z1: C64) -> [C64; 4] {
    [a[0] * z0, a[1] * z1, a[2] * z0, a[3] * z1]
}

/// Fidelity of `Rz(φ_out)·M` vs the target maximized over `φ_out` in
/// closed form: `max_φ |tr(T†·Rz(φ)·M)| = |(M·T†)₀₀| + |(M·T†)₁₁|`.
///
/// `td` is the target's dagger (row-major), hoisted out by the caller.
/// Returns the fidelity plus the two diagonal entries `a`, `b` of `M·T†`;
/// the optimal phase `φ = arg(a) − arg(b)` is derived lazily for the
/// winning candidate only (two `atan2`s per decomposition instead of two
/// per scan entry).
#[inline]
fn fid_free_out2(m: &[C64; 4], td: &[C64; 4]) -> (f64, C64, C64) {
    let a = m[0] * td[0] + m[1] * td[2];
    let b = m[2] * td[1] + m[3] * td[3];
    let overlap = a.abs2().sqrt() + b.abs2().sqrt();
    let mm = m[0].abs2() + m[1].abs2() + m[2].abs2() + m[3].abs2();
    let fid = ((mm + overlap * overlap) / 6.0).clamp(0.0, 1.0);
    (fid, a, b)
}

/// Precomputed per-basis tables for [`decompose_opt`]: the reachable
/// angles plus the basis products every scan re-derives — `G·Rz(θ_d)` and
/// `W(d) = G·Rz(θ_d)·G` for all `n_delays + 1` delay values, as stack 2×2s.
///
/// Building the tables is one pass over the delay lattice; decomposing
/// against prebuilt tables is then allocation-free in the scan loops.
/// Batched callers (the error model decomposes 24 targets per qubit
/// against one basis) build the tables once and reuse them —
/// `digiq_core::error_model` memoizes them through the artifact store's
/// `calib/memo` namespace.
#[derive(Debug, Clone)]
pub struct OptTables {
    /// θ_d for `d ∈ [0, n_delays]`.
    thetas: Vec<f64>,
    /// The 2×2 basis block `G`, row-major.
    g: [C64; 4],
    /// `G·Rz(θ_d)` per delay.
    gz: Vec<[C64; 4]>,
    /// `W(d) = G·Rz(θ_d)·G` per delay.
    w: Vec<[C64; 4]>,
}

impl OptTables {
    /// Builds the delay tables for a basis.
    pub fn build(basis: &OptBasis) -> Self {
        let g = [
            basis.ubs[(0, 0)],
            basis.ubs[(0, 1)],
            basis.ubs[(1, 0)],
            basis.ubs[(1, 1)],
        ];
        let thetas: Vec<f64> = (0..=basis.n_delays).map(|d| basis.theta(d)).collect();
        let gz: Vec<[C64; 4]> = thetas
            .iter()
            .map(|&th| col_scale2(&g, C64::cis(-th / 2.0), C64::cis(th / 2.0)))
            .collect();
        let w: Vec<[C64; 4]> = gz.iter().map(|gzd| mul2(gzd, &g)).collect();
        OptTables { thetas, g, gz, w }
    }

    /// Number of delay steps `N` (the tables cover `d ∈ [0, N]`).
    pub fn n_delays(&self) -> usize {
        self.thetas.len() - 1
    }
}

/// Decomposes `target` (2×2 unitary) on the given basis, consuming an
/// incoming residual `phi_in`, with at most `max_cycles` Ubs firings.
/// Stops early once `err_target` is met; always returns the best found.
///
/// Builds the delay tables on the fly; callers decomposing many targets
/// against one basis should build [`OptTables`] once and call
/// [`decompose_opt_with`].
///
/// # Panics
///
/// Panics if `max_cycles == 0` or `target` is not 2×2.
pub fn decompose_opt(
    target: &CMat,
    basis: &OptBasis,
    phi_in: f64,
    max_cycles: usize,
    err_target: f64,
) -> OptDecomposition {
    decompose_opt_with(
        &OptTables::build(basis),
        target,
        phi_in,
        max_cycles,
        err_target,
    )
}

/// [`decompose_opt`] against prebuilt delay tables.
///
/// # Panics
///
/// Panics if `max_cycles == 0` or `target` is not 2×2.
pub fn decompose_opt_with(
    tables: &OptTables,
    target: &CMat,
    phi_in: f64,
    max_cycles: usize,
    err_target: f64,
) -> OptDecomposition {
    assert!(max_cycles >= 1);
    assert_eq!((target.rows(), target.cols()), (2, 2));
    let n = tables.n_delays();
    let td = [
        target[(0, 0)].conj(),
        target[(1, 0)].conj(),
        target[(0, 1)].conj(),
        target[(1, 1)].conj(),
    ];
    // Incoming boundary diagonal per d0: Rz(θ_{d0} + φ_in).
    let zin: Vec<(C64, C64)> = tables
        .thetas
        .iter()
        .map(|&th| {
            let z = th + phi_in;
            (C64::cis(-z / 2.0), C64::cis(z / 2.0))
        })
        .collect();

    // Best candidate so far: delay tuple + the M·T† diagonal that yields
    // its φ_out (converted to an angle once, at the end).
    let mut best_delays = ([0u16; 3], 1u8);
    let mut best_ab = (C64::ONE, C64::ONE);
    let mut best_err = f64::INFINITY;

    // L = 1: M = G·Rz(θ_{d0} + φ_in).
    for d0 in 0..=n {
        let (z0, z1) = zin[d0];
        let m = col_scale2(&tables.g, z0, z1);
        let (fid, a, b) = fid_free_out2(&m, &td);
        let err = 1.0 - fid;
        if err < best_err {
            best_delays = ([d0 as u16, 0, 0], 1);
            best_ab = (a, b);
            best_err = err;
        }
    }
    let finish = |delays: ([u16; 3], u8), (a, b): (C64, C64), error: f64| OptDecomposition {
        delays: delays.0[..delays.1 as usize].to_vec(),
        phi_in_used: phi_in,
        phi_out: a.arg() - b.arg(),
        error,
    };
    if best_err <= err_target || max_cycles == 1 {
        return finish(best_delays, best_ab, best_err);
    }

    // L = 2: M = W(d1)·Rz(θ_{d0}+φ_in) with W = G·Rz·G prebuilt; the scan
    // body is a column scale + the closed-form fidelity, nothing else.
    let mut order2: Vec<(usize, usize, f64)> = Vec::new();
    for (d1, wm) in tables.w.iter().enumerate() {
        for d0 in 0..=n {
            let (z0, z1) = zin[d0];
            let m = col_scale2(wm, z0, z1);
            let (fid, a, b) = fid_free_out2(&m, &td);
            let err = 1.0 - fid;
            if err < best_err {
                best_delays = ([d0 as u16, d1 as u16, 0], 2);
                best_ab = (a, b);
                best_err = err;
            }
            if max_cycles >= 3 {
                order2.push((d0, d1, err));
            }
        }
    }
    if best_err <= err_target || max_cycles == 2 {
        return finish(best_delays, best_ab, best_err);
    }

    // L = 3 (the paper: "a subset of gates nearing π rotations … need
    // L = 3"): extend the best L=2 stems, plus a coarse uniform stem grid
    // (the optimal L=3 region need not contain any good L=2 prefix).
    order2.sort_by(|a, b| a.2.total_cmp(&b.2));
    order2.truncate(96);
    for d0 in (0..=n).step_by(8) {
        for d1 in (0..=n).step_by(8) {
            order2.push((d0, d1, f64::NAN));
        }
    }
    for &(d0, d1, _) in &order2 {
        let (z0, z1) = zin[d0];
        let stem = col_scale2(&tables.w[d1], z0, z1);
        for (d2, gzd) in tables.gz.iter().enumerate() {
            let m = mul2(gzd, &stem);
            let (fid, a, b) = fid_free_out2(&m, &td);
            let err = 1.0 - fid;
            if err < best_err {
                best_delays = ([d0 as u16, d1 as u16, d2 as u16], 3);
                best_ab = (a, b);
                best_err = err;
            }
        }
        if best_err <= err_target {
            break;
        }
    }
    // Local refinement of the winning tuple: coordinate descent over ±4
    // neighbourhoods (closes the gap the coarse stem grid leaves).
    if best_delays.1 == 3 {
        let mut improved = true;
        while improved {
            improved = false;
            for pos in 0..3 {
                let center = best_delays.0[pos] as i64;
                for delta in -4i64..=4 {
                    let cand = center + delta;
                    if cand < 0 || cand as usize > n || cand == center {
                        continue;
                    }
                    let mut delays = best_delays.0;
                    delays[pos] = cand as u16;
                    let (z0, z1) = zin[delays[0] as usize];
                    let mut m = col_scale2(&tables.g, z0, z1);
                    for &d in &delays[1..] {
                        m = mul2(&tables.gz[d as usize], &m);
                    }
                    let (fid, a, b) = fid_free_out2(&m, &td);
                    let err = 1.0 - fid;
                    if err < best_err {
                        best_delays = (delays, 3);
                        best_ab = (a, b);
                        best_err = err;
                        improved = true;
                    }
                }
            }
        }
    }
    finish(best_delays, best_ab, best_err)
}

/// Reconstructs the 2×2 operation a decomposition realizes (including the
/// boundary rotations) — used by tests and the error model.
pub fn realize_opt(basis: &OptBasis, dec: &OptDecomposition) -> CMat {
    let mut m = rzm(dec.phi_in_used + basis.theta(dec.delays[0] as usize));
    m = basis.ubs.matmul(&m);
    for &d in &dec.delays[1..] {
        m = basis.ubs.matmul(&rzm(basis.theta(d as usize))).matmul(&m);
    }
    rzm(dec.phi_out).matmul(&m)
}

/// The worst-case single-delay Rz error of a basis (diagnostic tying this
/// module back to the Table II coverage analysis).
pub fn coverage_error(basis: &OptBasis) -> f64 {
    let mut phases: Vec<f64> = (0..=basis.n_delays).map(|d| basis.theta(d)).collect();
    phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut gap: f64 = 2.0 * PI - phases.last().unwrap() + phases.first().unwrap();
    for w in phases.windows(2) {
        gap = gap.max(w[1] - w[0]);
    }
    rz_error_for_offset(gap / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::fidelity::average_gate_error;
    use qsim::gates;

    fn ideal() -> OptBasis {
        OptBasis::ideal(255)
    }

    #[test]
    fn ideal_basis_decomposes_standard_gates_in_two_cycles() {
        // §V-A: "in the ideal case (Ubs = Ry(π/2)), L ≤ 2 is enough for
        // all single-qubit gates" at ~1e-4 error.
        for (name, g) in [
            ("H", gates::h()),
            ("T", gates::t()),
            ("S", gates::s()),
            ("Rx(0.7)", gates::rx(0.7)),
            ("U", gates::u_zyz(1.1, 0.4, -0.9)),
        ] {
            let dec = decompose_opt(&g, &ideal(), 0.0, 2, 1e-4);
            assert!(
                dec.error < 2e-4,
                "{name}: error {:.2e} with {} cycles",
                dec.error,
                dec.cycles()
            );
            // Realized operation matches within the reported error.
            let m = realize_opt(&ideal(), &dec);
            let direct = average_gate_error(&m, &g);
            assert!((direct - dec.error).abs() < 1e-9, "{name} bookkeeping");
        }
    }

    #[test]
    fn diagonal_gates_need_one_cycle_wait_no_they_need_zero_ubs() {
        // Rz targets: with free boundary rotations even L=1 works — the
        // firing is absorbed by the boundaries.
        let dec = decompose_opt(&gates::rz(0.37), &ideal(), 0.0, 2, 1e-4);
        assert!(dec.error < 1e-4);
    }

    #[test]
    fn near_pi_rotations_benefit_from_l3() {
        // On a *drifted* basis, X/Y-like gates are the hard cases (§V-A);
        // L = 3 must do at least as well as L = 2.
        let drifted = OptBasis {
            ubs: gates::rz(0.21)
                .matmul(&gates::ry(PI / 2.0 + 0.07))
                .matmul(&gates::rz(-0.13)),
            phase_per_tick: 2.0 * PI * 0.2487,
            n_delays: 255,
        };
        let x = gates::x();
        let l2 = decompose_opt(&x, &drifted, 0.0, 2, 0.0);
        let l3 = decompose_opt(&x, &drifted, 0.0, 3, 0.0);
        assert!(l3.error <= l2.error + 1e-12);
        assert!(l3.error < 1e-3, "L3 error {:.2e}", l3.error);
    }

    #[test]
    fn phi_in_is_honoured() {
        // A nonzero incoming residual must be folded in exactly.
        let g = gates::h();
        let dec = decompose_opt(&g, &ideal(), 0.83, 2, 1e-5);
        let m = realize_opt(&ideal(), &dec);
        assert!((average_gate_error(&m, &g) - dec.error).abs() < 1e-9);
        assert!(dec.error < 2e-4);
        assert_eq!(dec.phi_in_used, 0.83);
    }

    #[test]
    fn delays_in_range() {
        let dec = decompose_opt(&gates::t(), &ideal(), 0.0, 3, 1e-6);
        for &d in &dec.delays {
            assert!((d as usize) <= 255);
        }
    }

    #[test]
    fn coverage_matches_parking_module() {
        let b = OptBasis::new(&CMat::identity(6), 6.21286, 0.040, 255);
        let here = coverage_error(&b);
        let there = crate::parking::worst_rz_error(6.21286, 0.040, 255);
        assert!((here - there).abs() < 1e-12);
    }

    #[test]
    fn drift_degrades_then_recalibration_recovers() {
        // Same bitstream on a drifted qubit: using the *nominal* basis
        // matrices to compile gives larger realized error than compiling
        // against the measured (actual) basis — the essence of §V-A.
        let nominal = ideal();
        let actual = OptBasis {
            ubs: gates::rz(0.15)
                .matmul(&gates::ry(PI / 2.0 + 0.05))
                .matmul(&gates::rz(0.08)),
            phase_per_tick: nominal.phase_per_tick + 0.006,
            n_delays: 255,
        };
        let target = gates::h();
        // Compile against nominal, run on actual.
        let dec_stale = decompose_opt(&target, &nominal, 0.0, 2, 1e-6);
        let realized_stale = realize_opt(
            &OptBasis {
                ubs: actual.ubs.clone(),
                ..nominal.clone()
            },
            &dec_stale,
        );
        let stale_err = average_gate_error(&realized_stale, &target);
        // Compile against actual.
        let dec_fresh = decompose_opt(&target, &actual, 0.0, 3, 1e-6);
        assert!(
            dec_fresh.error < stale_err,
            "recalibration should win: fresh {:.2e} vs stale {:.2e}",
            dec_fresh.error,
            stale_err
        );
        assert!(dec_fresh.error < 1e-3);
    }
}
