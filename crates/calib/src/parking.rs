//! Parking-frequency analysis for delay-implemented Rz gates (Table II).
//!
//! DigiQ_opt performs `Rz(φ)` by letting the qubit evolve freely for
//! `d ∈ [0, N]` SFQ clock cycles, reaching phases `θ_d = d·2π·f·T mod 2π`
//! (§IV-A2). How well those `N+1` phases cover the unit circle — and how
//! robustly under frequency drift — depends on the qubit frequency. The
//! paper "chooses target frequencies with the highest tolerance for
//! variation, as measured by the width of the interval in which any φ can
//! be approximated with < 10⁻⁴ error" (§V-A); this module reproduces that
//! search and hence Table II.
//!
//! The error of approximating `Rz(φ)` by the nearest available phase with
//! offset `Δ` is `ε = (2/3)·sin²(Δ/2)`; the worst-case target sits mid-gap,
//! so a phase set with maximum circular gap `g` yields
//! `ε_worst = (2/3)·sin²(g/4)`.
//!
//! # Examples
//!
//! ```
//! use calib::parking::worst_rz_error;
//!
//! // At an ideal parking frequency the 256 phases are nearly uniform:
//! // ε ≈ (2/3)·sin²(2π/256/4) ≈ 0.25e-4 — the paper's §V-A number.
//! let eps = worst_rz_error(6.21286, 0.040, 255);
//! assert!(eps < 1.0e-4);
//! ```

use std::f64::consts::PI;

/// Default delay-count: `N = 255` (256 phases including `d = 0`), §V-A.
pub const DEFAULT_N_DELAYS: usize = 255;

/// Error of an `Rz` approximation with phase offset `delta`:
/// `ε = (2/3)·sin²(Δ/2)` (average gate infidelity of `Rz(Δ)` vs identity).
pub fn rz_error_for_offset(delta: f64) -> f64 {
    let s = (delta / 2.0).sin();
    (2.0 / 3.0) * s * s
}

/// The set of reachable Rz phases `{d·2π·f·T mod 2π : d = 0..=n}`,
/// sorted ascending.
pub fn delay_phases(freq_ghz: f64, clock_ns: f64, n_delays: usize) -> Vec<f64> {
    let per_tick = 2.0 * PI * freq_ghz * clock_ns;
    let mut phases: Vec<f64> = (0..=n_delays)
        .map(|d| (d as f64 * per_tick).rem_euclid(2.0 * PI))
        .collect();
    phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
    phases
}

/// Maximum circular gap of the reachable phase set.
pub fn max_phase_gap(freq_ghz: f64, clock_ns: f64, n_delays: usize) -> f64 {
    let phases = delay_phases(freq_ghz, clock_ns, n_delays);
    let mut gap: f64 = 0.0;
    for w in phases.windows(2) {
        gap = gap.max(w[1] - w[0]);
    }
    // Wrap-around gap.
    gap.max(2.0 * PI - phases.last().unwrap() + phases.first().unwrap())
}

/// Worst-case Rz error over all target angles at the given frequency.
pub fn worst_rz_error(freq_ghz: f64, clock_ns: f64, n_delays: usize) -> f64 {
    rz_error_for_offset(max_phase_gap(freq_ghz, clock_ns, n_delays) / 2.0)
}

/// Error of the *best* delay approximating a specific angle `phi`, and the
/// chosen delay.
pub fn best_delay_for_angle(
    phi: f64,
    freq_ghz: f64,
    clock_ns: f64,
    n_delays: usize,
) -> (usize, f64) {
    let per_tick = 2.0 * PI * freq_ghz * clock_ns;
    let target = phi.rem_euclid(2.0 * PI);
    let mut best = (0usize, f64::INFINITY);
    for d in 0..=n_delays {
        let theta = (d as f64 * per_tick).rem_euclid(2.0 * PI);
        let mut diff = (theta - target).abs();
        if diff > PI {
            diff = 2.0 * PI - diff;
        }
        let err = rz_error_for_offset(diff);
        if err < best.1 {
            best = (d, err);
        }
    }
    best
}

/// One row of Table II: an optimal parking frequency and its drift
/// tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParkingFrequency {
    /// Center frequency in GHz.
    pub freq_ghz: f64,
    /// Half-width (±) of the interval where the worst-case Rz error stays
    /// below the search threshold, in GHz.
    pub drift_tolerance_ghz: f64,
    /// Worst-case Rz error at the center frequency.
    pub center_error: f64,
}

/// Searches a frequency band for parking frequencies: maximal sub-intervals
/// where `worst_rz_error ≤ err_threshold`, ranked by width (the paper's
/// "highest tolerance for variation"). Returns up to `max_results` rows,
/// widest first, each reported at the interval midpoint.
///
/// # Panics
///
/// Panics if the band is inverted or `step_ghz <= 0`.
pub fn parking_search(
    band_ghz: (f64, f64),
    clock_ns: f64,
    n_delays: usize,
    err_threshold: f64,
    step_ghz: f64,
    max_results: usize,
) -> Vec<ParkingFrequency> {
    assert!(band_ghz.0 < band_ghz.1 && step_ghz > 0.0);
    let n_steps = ((band_ghz.1 - band_ghz.0) / step_ghz).ceil() as usize;
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    let mut start: Option<f64> = None;
    for k in 0..=n_steps {
        let f = band_ghz.0 + k as f64 * step_ghz;
        let ok = f <= band_ghz.1 && worst_rz_error(f, clock_ns, n_delays) <= err_threshold;
        match (ok, start) {
            (true, None) => start = Some(f),
            (false, Some(s)) => {
                intervals.push((s, f - step_ghz));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        intervals.push((s, band_ghz.1));
    }

    let mut rows: Vec<ParkingFrequency> = intervals
        .into_iter()
        .filter(|(a, b)| b > a)
        .map(|(a, b)| {
            let center = 0.5 * (a + b);
            ParkingFrequency {
                freq_ghz: center,
                drift_tolerance_ghz: 0.5 * (b - a),
                center_error: worst_rz_error(center, clock_ns, n_delays),
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.drift_tolerance_ghz
            .partial_cmp(&x.drift_tolerance_ghz)
            .unwrap()
    });
    rows.truncate(max_results);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_formula_matches_fidelity_identity() {
        // ε(Δ) must agree with qsim's average gate error of Rz(Δ) vs I.
        for delta in [0.01f64, 0.1, 0.5, 1.0] {
            let direct =
                qsim::fidelity::average_gate_error(&qsim::gates::rz(delta), &qsim::gates::id2());
            assert!((rz_error_for_offset(delta) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_coverage_error_bound() {
        // Perfectly uniform 256 phases: gap 2π/256, worst error
        // (2/3)sin²(2π/1024) ≈ 2.5e-5 — the paper's "N = 255 is sufficient
        // for error ≤ 0.25e-4".
        let ideal = rz_error_for_offset(2.0 * PI / 256.0 / 2.0);
        assert!((ideal - 0.25e-4).abs() < 0.05e-4, "ideal = {ideal:e}");
    }

    #[test]
    fn phases_count_and_range() {
        let p = delay_phases(6.21286, 0.040, 255);
        assert_eq!(p.len(), 256);
        assert!(p.iter().all(|&x| (0.0..2.0 * PI + 1e-12).contains(&x)));
        // Sorted.
        for w in p.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn rational_frequency_gives_uniform_phases() {
        // f·T = 63/256 exactly ⇒ 256 equally spaced phases.
        let f = 63.0 / 256.0 / 0.040;
        let gap = max_phase_gap(f, 0.040, 255);
        assert!((gap - 2.0 * PI / 256.0).abs() < 1e-9, "gap = {gap}");
        assert!(worst_rz_error(f, 0.040, 255) <= 0.26e-4);
    }

    #[test]
    fn bad_frequency_has_poor_coverage() {
        // f·T = 1/4 exactly ⇒ only 4 distinct phases.
        let f = 0.25 / 0.040;
        let gap = max_phase_gap(f, 0.040, 255);
        assert!((gap - PI / 2.0).abs() < 1e-9);
        assert!(worst_rz_error(f, 0.040, 255) > 0.09);
    }

    #[test]
    fn paper_parking_frequency_is_good() {
        // Table II: 6.21286 GHz with ≤1e-4 Rz error at N = 255.
        let eps = worst_rz_error(6.21286, 0.040, 255);
        assert!(eps <= 1.0e-4, "eps = {eps:e}");
    }

    #[test]
    fn best_delay_finds_close_phase() {
        let (d, err) = best_delay_for_angle(1.234, 6.21286, 0.040, 255);
        assert!(d <= 255);
        assert!(err <= worst_rz_error(6.21286, 0.040, 255) + 1e-15);
    }

    #[test]
    fn search_finds_multiple_parking_bands() {
        // Scan the 4–6.5 GHz band like Table II (coarsened for test
        // speed).
        let rows = parking_search((4.0, 6.5), 0.040, 255, 1.0e-4, 2.0e-4, 8);
        assert!(!rows.is_empty(), "no parking frequencies found");
        for r in &rows {
            assert!(r.center_error <= 1.0e-4);
            assert!(r.drift_tolerance_ghz > 0.0);
            // The paper's tolerances are of order ±0.008 to ±0.013 GHz.
            assert!(r.drift_tolerance_ghz < 0.1);
        }
        // Sorted by tolerance descending.
        for w in rows.windows(2) {
            assert!(w[0].drift_tolerance_ghz >= w[1].drift_tolerance_ghz);
        }
    }

    #[test]
    fn tolerance_edges_really_fail() {
        let rows = parking_search((6.0, 6.4), 0.040, 255, 1.0e-4, 1.0e-4, 1);
        let r = rows[0];
        let outside = r.freq_ghz + r.drift_tolerance_ghz * 1.5;
        assert!(worst_rz_error(outside, 0.040, 255) > 1.0e-4);
    }
}
