//! SFQ bitstream discovery for basis gates (§V-A step 1; refs [9], [13]).
//!
//! Finds ≤300-bit pulse trains whose rotating-frame evolution implements a
//! target single-qubit gate on a transmon at its parking frequency. Two
//! tools compose:
//!
//! * **Constructive seeds** — resonant combs (one pulse per qubit period)
//!   implement rotations about an xy-plane axis set by the start phase;
//!   two π-bursts with axis offset `φ/2` compose to `Rz(φ)` — enough to
//!   seed any basis gate;
//! * **Genetic refinement** — the bit-flip GA of `qsim::optimize`
//!   (mirroring the paper's ref [13]) polishes leakage and timing
//!   granularity.
//!
//! Fitness uses the leakage-aware average gate fidelity; for DigiQ_opt's
//! Ry(π/2) the pre/post z-phases are free (the delay mechanism supplies
//! them), which this module maximizes in closed form.

use qsim::complex::C64;
use qsim::matrix::CMat;
use qsim::optimize::{ga_bitstring, GaConfig};
use qsim::pulse::{SfqParams, SfqPulseSim};
use qsim::transmon::Transmon;
use std::f64::consts::PI;

/// Phase freedom granted to the target during fitness evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZFreedom {
    /// Target must be met exactly (DigiQ_min basis gates: the sequence
    /// search composes frame gates directly).
    None,
    /// Free `Rz` allowed before and after (DigiQ_opt's Ry(π/2): delays
    /// and residual absorption supply the z-phases, §IV-A2).
    PrePost,
}

/// Result of a bitstream search.
#[derive(Debug, Clone)]
pub struct BitstreamResult {
    /// The pulse pattern (one slot per SFQ clock cycle).
    pub bits: Vec<bool>,
    /// Achieved average gate fidelity against the target.
    pub fidelity: f64,
    /// `1 − fidelity`.
    pub error: f64,
}

/// Fidelity of a (6-level, rotating-frame) evolution's qubit block `m`
/// against 2×2 target `v`, maximizing over the allowed z-phase freedom.
///
/// # Panics
///
/// Panics if shapes are not 2×2.
pub fn fidelity_with_freedom(m: &CMat, v: &CMat, freedom: ZFreedom) -> f64 {
    assert_eq!((m.rows(), m.cols()), (2, 2));
    assert_eq!((v.rows(), v.cols()), (2, 2));
    let mm = m.dagger().matmul(m).trace().re;
    let overlap2 = match freedom {
        ZFreedom::None => v.dagger().matmul(m).trace().abs2(),
        ZFreedom::PrePost => {
            // tr((Rz(a)·V·Rz(b))†·M) = e^{ib/2}·X00(a) + e^{−ib/2}·X11(a)
            // with X = V†·diag(e^{ia/2},e^{−ia/2})·M; max over b is
            // |X00|+|X11|; scan a (the sinusoids make 256 points ample),
            // then golden-refine.
            let vd = v.dagger();
            let best_at = |a: f64| -> f64 {
                let d0 = C64::cis(a / 2.0);
                let d1 = C64::cis(-a / 2.0);
                let x00 = vd[(0, 0)] * d0 * m[(0, 0)] + vd[(0, 1)] * d1 * m[(1, 0)];
                let x11 = vd[(1, 0)] * d0 * m[(0, 1)] + vd[(1, 1)] * d1 * m[(1, 1)];
                x00.abs() + x11.abs()
            };
            let mut best = 0.0f64;
            let mut best_a = 0.0f64;
            for k in 0..256 {
                let a = k as f64 / 256.0 * 4.0 * PI; // period 4π in a/2
                let s = best_at(a);
                if s > best {
                    best = s;
                    best_a = a;
                }
            }
            // Local refinement.
            let (mut lo, mut hi) = (best_a - 4.0 * PI / 256.0, best_a + 4.0 * PI / 256.0);
            for _ in 0..40 {
                let m1 = lo + (hi - lo) / 3.0;
                let m2 = hi - (hi - lo) / 3.0;
                if best_at(m1) < best_at(m2) {
                    lo = m1;
                } else {
                    hi = m2;
                }
            }
            best_at(0.5 * (lo + hi)).max(best).powi(2)
        }
    };
    ((mm + overlap2) / 6.0).clamp(0.0, 1.0)
}

/// A constructive pulse comb: `n_pulses` pulses, one per qubit period,
/// starting at clock tick `start`, written into a length-`len` bitstream.
pub fn comb_seed(sim: &SfqPulseSim, len: usize, start: usize, n_pulses: usize) -> Vec<bool> {
    let ticks_per_period = 1.0 / (sim.transmon().frequency_ghz * sim.params().clock_period_ns);
    let mut bits = vec![false; len];
    for k in 0..n_pulses {
        let pos = start + (k as f64 * ticks_per_period).round() as usize;
        if pos < len {
            bits[pos] = true;
        }
    }
    bits
}

/// Constructive seed for `Rz(φ)`: two π-bursts whose start phases differ
/// by `φ/2` (the composite-pulse identity `R_a(π)·R_b(π) ∝ Rz(2(a−b))`).
pub fn rz_seed(sim: &SfqPulseSim, len: usize, phi: f64) -> Vec<bool> {
    let pulses_per_pi = (PI / sim.params().delta_theta).round() as usize;
    let ticks_per_period = 1.0 / (sim.transmon().frequency_ghz * sim.params().clock_period_ns);
    let burst_len = (pulses_per_pi as f64 * ticks_per_period).ceil() as usize;
    // Axis of a burst = qubit phase at its start = 2π·f·T_clk·start.
    // Want a − b = −φ/2 ⇒ start offset Δt with 2π·f·T·Δ = φ/2 (mod 2π).
    let phase_per_tick = sim.phase_per_tick();
    let delta_phase = (phi / 2.0).rem_euclid(2.0 * PI);
    let mut best_offset = 0usize;
    let mut best_err = f64::INFINITY;
    for off in 0..((2.0 * PI / phase_per_tick).ceil() as usize + 2) {
        let ph = (off as f64 * phase_per_tick).rem_euclid(2.0 * PI);
        let e = (ph - delta_phase)
            .abs()
            .min(2.0 * PI - (ph - delta_phase).abs());
        if e < best_err {
            best_err = e;
            best_offset = off;
        }
    }
    let first = comb_seed(sim, len, 0, pulses_per_pi);
    let second = comb_seed(sim, len, burst_len + best_offset, pulses_per_pi);
    first
        .iter()
        .zip(second.iter())
        .map(|(a, b)| *a || *b)
        .collect()
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Bitstream length in clock cycles (≤ 300 per §IV-B).
    pub length: usize,
    /// GA settings.
    pub ga: GaConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            length: 253, // 10.12 ns at the 40 ps clock (§VI-B)
            ga: GaConfig::default(),
        }
    }
}

/// Searches for a bitstream implementing `target` (2×2) on the given
/// transmon. Seeds the GA with constructive combs/bursts appropriate to
/// the target, then refines.
///
/// # Panics
///
/// Panics if `cfg.length == 0` or the target is not 2×2.
pub fn find_bitstream(
    transmon: Transmon,
    params: SfqParams,
    target: &CMat,
    freedom: ZFreedom,
    cfg: &SearchConfig,
) -> BitstreamResult {
    assert!(cfg.length > 0);
    assert_eq!((target.rows(), target.cols()), (2, 2));
    let sim = SfqPulseSim::new(transmon, params);

    // Constructive seeds: rotation combs of several amplitudes and start
    // offsets, plus the two-burst Rz composite.
    let (theta, _phi, _lam, _) = qsim::gates::zyz_angles(target);
    let pulses_for_theta = ((theta / params.delta_theta).round() as usize).max(1);
    let mut seeds: Vec<Vec<bool>> = Vec::new();
    let ticks_per_period = 1.0 / (transmon.frequency_ghz * params.clock_period_ns);
    for start in 0..(ticks_per_period.ceil() as usize + 1) {
        seeds.push(comb_seed(&sim, cfg.length, start, pulses_for_theta));
    }
    if theta < 0.3 {
        // Nearly-diagonal target: seed the two-burst composite.
        let (_, phi_t, lam_t, _) = qsim::gates::zyz_angles(target);
        seeds.push(rz_seed(&sim, cfg.length, phi_t + lam_t));
        seeds.push(vec![false; cfg.length]);
    }

    let fitness = |bits: &[bool]| -> f64 {
        let m = sim.frame_gate_qubit(bits);
        fidelity_with_freedom(&m, target, freedom)
    };
    let result = ga_bitstring(&fitness, cfg.length, &seeds, cfg.ga);

    // Greedy single-bit-flip polish: repeatedly accept any flip that
    // improves fidelity, until a full sweep finds none. Cheap (a few
    // hundred evaluations) and reliably gains a decade of error.
    let mut bits = result.bits;
    let mut best_f = fitness(&bits);
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..bits.len() {
            bits[i] = !bits[i];
            let f = fitness(&bits);
            if f > best_f {
                best_f = f;
                improved = true;
            } else {
                bits[i] = !bits[i];
            }
        }
    }
    BitstreamResult {
        bits,
        fidelity: best_f,
        error: 1.0 - best_f,
    }
}

/// Recomputes the actual basis operation a *fixed* bitstream produces on a
/// drifted qubit (§V-A step 3): the full multi-level frame gate at the
/// qubit's measured frequency.
pub fn basis_op_for_qubit(bits: &[bool], actual: Transmon, params: SfqParams) -> CMat {
    SfqPulseSim::new(actual, params).frame_gate(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::gates;

    fn fast_ga() -> GaConfig {
        GaConfig {
            population: 32,
            generations: 40,
            ..GaConfig::default()
        }
    }

    #[test]
    fn freedom_fidelity_exact_for_known_gates() {
        // M = Rz(a)·Ry(π/2)·Rz(b) has perfect fidelity to Ry(π/2) under
        // PrePost freedom, imperfect under None.
        let m = gates::rz(0.8)
            .matmul(&gates::ry(PI / 2.0))
            .matmul(&gates::rz(-1.3));
        let target = gates::ry(PI / 2.0);
        let f_free = fidelity_with_freedom(&m, &target, ZFreedom::PrePost);
        assert!(f_free > 1.0 - 1e-6, "f_free = {f_free}");
        let f_none = fidelity_with_freedom(&m, &target, ZFreedom::None);
        assert!(f_none < 0.99);
    }

    #[test]
    fn freedom_none_matches_qsim_fidelity() {
        let m = gates::h();
        let v = gates::ry(PI / 2.0);
        let direct = qsim::fidelity::average_gate_fidelity(&m, &v);
        let here = fidelity_with_freedom(&m, &v, ZFreedom::None);
        assert!((direct - here).abs() < 1e-12);
    }

    #[test]
    fn comb_seed_structure() {
        let sim = SfqPulseSim::new(Transmon::new(6.21286), SfqParams::default());
        let bits = comb_seed(&sim, 100, 2, 10);
        assert_eq!(bits.len(), 100);
        assert_eq!(bits.iter().filter(|&&b| b).count(), 10);
        assert!(bits[2]);
    }

    #[test]
    fn ry_bitstream_search_converges() {
        // The production target: Ry(π/2) with free z-phases at the high
        // parking frequency.
        let r = find_bitstream(
            Transmon::new(6.21286),
            SfqParams::default(),
            &gates::ry(PI / 2.0),
            ZFreedom::PrePost,
            &SearchConfig {
                length: 253,
                ga: fast_ga(),
            },
        );
        assert!(
            r.error < 2e-3,
            "Ry(π/2) bitstream error {:.2e} too high",
            r.error
        );
    }

    #[test]
    fn low_frequency_qubit_also_converges() {
        let r = find_bitstream(
            Transmon::new(4.14238),
            SfqParams::default(),
            &gates::ry(PI / 2.0),
            ZFreedom::PrePost,
            &SearchConfig {
                length: 225, // 9.00 ns (§VI-B)
                ga: fast_ga(),
            },
        );
        assert!(r.error < 2e-3, "error {:.2e}", r.error);
    }

    #[test]
    fn min_basis_t_gate_search() {
        // DigiQ_min stores a T bitstream: needs the larger tip angle so
        // the two-burst composite fits the stream (see DESIGN.md).
        let params = SfqParams {
            delta_theta: (PI / 2.0) / 16.0,
            ..SfqParams::default()
        };
        let r = find_bitstream(
            Transmon::new(6.21286),
            params,
            &gates::t(),
            ZFreedom::None,
            &SearchConfig {
                length: 253,
                ga: GaConfig {
                    population: 48,
                    generations: 80,
                    ..GaConfig::default()
                },
            },
        );
        assert!(r.error < 2e-2, "T bitstream error {:.2e}", r.error);
    }

    #[test]
    fn drifted_basis_op_differs() {
        let params = SfqParams::default();
        let nominal = Transmon::new(6.21286);
        let r = find_bitstream(
            nominal,
            params,
            &gates::ry(PI / 2.0),
            ZFreedom::PrePost,
            &SearchConfig {
                length: 120,
                ga: fast_ga(),
            },
        );
        let u_nom = basis_op_for_qubit(&r.bits, nominal, params);
        let u_drift = basis_op_for_qubit(&r.bits, Transmon::new(6.21286 + 0.006), params);
        assert!(
            qsim::gates::phase_distance(&u_nom.top_left_block(2), &u_drift.top_left_block(2))
                > 1e-3
        );
        // Both are unitary 6-level evolutions.
        assert!(u_nom.is_unitary(1e-8));
        assert!(u_drift.is_unitary(1e-8));
    }

    #[test]
    fn rz_seed_is_plausible() {
        // The constructive two-burst seed should land within GA-fixable
        // distance of T (fidelity well above random).
        let params = SfqParams {
            delta_theta: (PI / 2.0) / 16.0,
            ..SfqParams::default()
        };
        let sim = SfqPulseSim::new(Transmon::new(6.21286), params);
        let seed = rz_seed(&sim, 253, PI / 4.0);
        let m = sim.frame_gate_qubit(&seed);
        let f = fidelity_with_freedom(&m, &gates::t(), ZFreedom::None);
        assert!(f > 0.6, "seed fidelity {f}");
    }
}
