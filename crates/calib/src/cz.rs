//! Two-qubit gate calibration: CZ from Uqq echo sequences (§V-B, Fig 7).
//!
//! Without per-pair pulse shaping, every coupled pair gets whatever
//! `Uqq` the shared current waveform produces at its drifted frequencies.
//! The software-calibration claim of §V-B is that CZ can still be composed
//! as 1–3 `Uqq` pulses interleaved with numerically optimized single-qubit
//! gates ("similar to the 'echo' sequences … but with single-qubit gates
//! obtained via numerical optimization"). This module:
//!
//! * calibrates the nominal flux waveform (hold time) once, at zero drift;
//! * computes `Uqq` for a drifted pair via `qsim::two_qubit`;
//! * optimizes the interleaved single-qubit layers (Nelder–Mead multistart
//!   seeded with the X-echo structure) and reports the residual CZ error —
//!   the quantity mapped over drift in Fig 7.

use qsim::matrix::CMat;
use qsim::optimize::nelder_mead;
use qsim::rng::StdRng;
use qsim::two_qubit::{CoupledTransmons, DetuningWaveform, PropagatorCache};
use std::f64::consts::PI;

/// A calibrated shared CZ pulse: the detuning waveform every pair receives.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedCzPulse {
    /// The waveform (qubit-1 detuning over time).
    pub waveform: DetuningWaveform,
    /// The single-pulse CZ error at zero drift after 1q optimization.
    pub nominal_error: f64,
}

/// Calibrates the hold time of a rounded flux pulse so a single `Uqq`
/// realizes CZ as well as possible at the nominal (zero-drift)
/// frequencies. Scans hold times around the analytic half-Rabi period
/// `1/(2√2·g)`.
pub fn calibrate_shared_pulse(pair: &CoupledTransmons, rise_ns: f64, dt_ns: f64) -> SharedCzPulse {
    let delta = pair.cz_resonance_detuning();
    let t_analytic = 1.0 / (2.0 * 2f64.sqrt() * pair.coupling_ghz);
    let mut best: Option<(f64, DetuningWaveform)> = None;
    // Every hold time shares the same rise/fall/plateau detuning samples,
    // so one propagator cache serves the whole scan — each distinct
    // per-sample Hamiltonian is exponentiated once, not once per hold.
    let cache = PropagatorCache::new();
    // The rounded edges contribute partial interaction; scan a bracket.
    let mut hold = (t_analytic - rise_ns).max(1.0);
    while hold <= t_analytic + 6.0 {
        let wf = DetuningWaveform::rounded(delta, rise_ns, hold, dt_ns);
        let uqq = pair.uqq_with_cache(&wf, &cache);
        let err = cz_error_with_local_1q(&uqq, 1, 4, 0xCA11);
        if best.as_ref().map_or(true, |(e, _)| err < *e) {
            best = Some((err, wf));
        }
        hold += 0.5;
    }
    let (nominal_error, waveform) = best.expect("scan non-empty");
    SharedCzPulse {
        waveform,
        nominal_error,
    }
}

/// Computes the projected 4×4 `Uqq` a drifted pair experiences under the
/// shared pulse, including the σ = 1% current-generator amplitude error
/// (`current_scale`).
pub fn uqq_for_drift(
    nominal: &CoupledTransmons,
    pulse: &SharedCzPulse,
    drift1_ghz: f64,
    drift2_ghz: f64,
    current_scale: f64,
) -> CMat {
    let pair = CoupledTransmons::new(
        nominal.q1.detuned(drift1_ghz),
        nominal.q2.detuned(drift2_ghz),
        nominal.coupling_ghz,
    );
    // Current error scales the detuning amplitude; qubit-2 drift also
    // shifts the effective resonance.
    let wf = pulse.waveform.scaled(current_scale);
    pair.uqq(&wf)
}

/// Builds `(A ⊗ B)` from two ZYZ-parameterized single-qubit gates.
fn local_layer(params: &[f64]) -> CMat {
    let a = qsim::gates::u_zyz(params[0], params[1], params[2]);
    let b = qsim::gates::u_zyz(params[3], params[4], params[5]);
    a.kron(&b)
}

/// CZ error of an echo sequence `L_n·Uqq·L_{n−1}·…·Uqq·L_0` with the local
/// layers optimized numerically (multistart Nelder–Mead; deterministic
/// given `seed`). `n_pulses ∈ 1..=3` matches Fig 7's three panels.
///
/// # Panics
///
/// Panics if `uqq` is not 4×4 or `n_pulses == 0`.
pub fn cz_error_with_local_1q(uqq: &CMat, n_pulses: usize, starts: usize, seed: u64) -> f64 {
    assert_eq!((uqq.rows(), uqq.cols()), (4, 4));
    assert!(n_pulses >= 1);
    let target = qsim::gates::cz();
    let n_layers = n_pulses + 1;
    let dim = 6 * n_layers;

    let objective = |params: &[f64]| -> f64 {
        let mut m = local_layer(&params[0..6]);
        for k in 0..n_pulses {
            m = uqq.matmul(&m);
            m = local_layer(&params[6 * (k + 1)..6 * (k + 2)]).matmul(&m);
        }
        qsim::fidelity::average_gate_error(&m, &target)
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    for s in 0..starts.max(1) {
        let x0: Vec<f64> = if s == 0 {
            // Identity layers.
            vec![0.0; dim]
        } else if s == 1 && n_pulses >= 2 {
            // X-echo seed: π x-rotations between pulses.
            let mut x = vec![0.0; dim];
            for k in 1..n_pulses {
                // u_zyz(π, 0, 0)·… ≈ Ry(π); close enough as a seed.
                x[6 * k] = PI;
                x[6 * k + 3] = PI;
            }
            x
        } else {
            (0..dim).map(|_| rng.gen_range(-PI..PI)).collect()
        };
        let r = nelder_mead(objective, &x0, 0.4, 1200, 1e-12);
        best = best.min(r.value);
    }
    best
}

/// One point of a Fig 7 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CzErrorPoint {
    /// Qubit-1 drift in GHz.
    pub drift1_ghz: f64,
    /// Qubit-2 drift in GHz.
    pub drift2_ghz: f64,
    /// Optimized CZ error.
    pub error: f64,
}

/// Sweeps a `grid × grid` drift plane for a given pulse count — one panel
/// of Fig 7 ("CZ gate error as a function of frequency drift, assuming 1,
/// 2, or 3 Uqq operations and ideal single-qubit gates").
pub fn fig7_panel(
    nominal: &CoupledTransmons,
    pulse: &SharedCzPulse,
    n_pulses: usize,
    max_drift_ghz: f64,
    grid: usize,
    opt_starts: usize,
) -> Vec<CzErrorPoint> {
    let mut out = Vec::with_capacity(grid * grid);
    for i in 0..grid {
        for j in 0..grid {
            let d1 = -max_drift_ghz + 2.0 * max_drift_ghz * i as f64 / (grid - 1).max(1) as f64;
            let d2 = -max_drift_ghz + 2.0 * max_drift_ghz * j as f64 / (grid - 1).max(1) as f64;
            let uqq = uqq_for_drift(nominal, pulse, d1, d2, 1.0);
            let error = cz_error_with_local_1q(&uqq, n_pulses, opt_starts, 0xF160_0007);
            out.push(CzErrorPoint {
                drift1_ghz: d1,
                drift2_ghz: d2,
                error,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_pair() -> CoupledTransmons {
        CoupledTransmons::paper_pair(6.21286, 4.14238)
    }

    fn pulse() -> SharedCzPulse {
        calibrate_shared_pulse(&paper_pair(), 4.0, 0.25)
    }

    #[test]
    fn nominal_single_pulse_cz_is_good() {
        // Fig 7a at zero drift: ε ≈ 3e-4 in the paper; our simulator and
        // pulse shape land in the same decade.
        let p = pulse();
        assert!(
            p.nominal_error < 5e-3,
            "nominal CZ error {:.2e} too high",
            p.nominal_error
        );
    }

    #[test]
    fn drift_degrades_single_pulse() {
        let pair = paper_pair();
        let p = pulse();
        let near = cz_error_with_local_1q(&uqq_for_drift(&pair, &p, 0.0, 0.0, 1.0), 1, 3, 7);
        let far = cz_error_with_local_1q(&uqq_for_drift(&pair, &p, 0.008, -0.008, 1.0), 1, 3, 7);
        assert!(
            far > near,
            "drift must hurt: near {:.2e}, far {:.2e}",
            near,
            far
        );
    }

    #[test]
    fn more_pulses_help_under_drift() {
        // The Fig 7 headline: echo sequences recover fidelity over a wide
        // drift range.
        let pair = paper_pair();
        let p = pulse();
        let uqq = uqq_for_drift(&pair, &p, 0.006, -0.004, 1.0);
        let e1 = cz_error_with_local_1q(&uqq, 1, 3, 11);
        let e2 = cz_error_with_local_1q(&uqq, 2, 3, 11);
        assert!(
            e2 < e1 * 1.05,
            "2 pulses should not be worse: e1 {:.2e}, e2 {:.2e}",
            e1,
            e2
        );
    }

    #[test]
    fn current_error_matters() {
        let pair = paper_pair();
        let p = pulse();
        let clean = cz_error_with_local_1q(&uqq_for_drift(&pair, &p, 0.0, 0.0, 1.0), 1, 2, 3);
        let dirty = cz_error_with_local_1q(&uqq_for_drift(&pair, &p, 0.0, 0.0, 1.03), 1, 2, 3);
        assert!(dirty > clean, "3% current error must degrade the gate");
    }

    #[test]
    fn fig7_panel_shape() {
        let pair = paper_pair();
        let p = pulse();
        let panel = fig7_panel(&pair, &p, 1, 0.004, 3, 2);
        assert_eq!(panel.len(), 9);
        // Center point is the nominal one — best or near-best error.
        let center = panel[4].error;
        let worst = panel.iter().map(|pt| pt.error).fold(0.0, f64::max);
        assert!(center <= worst + 1e-12);
    }
}
