//! # calib — software calibration layer for DigiQ (§V)
//!
//! SIMD control hardware cannot shape pulses per qubit; DigiQ moves gate
//! calibration into software. This crate implements the full §V pipeline:
//!
//! 1. [`bitstream`] — find shared SFQ bitstreams for the basis gates
//!    (step 1 of §V-A; genetic search seeded with constructive pulse
//!    combs);
//! 2. [`drift`] — the Monte-Carlo qubit population of §VI-B (σ = 0.2%
//!    Josephson-energy variation, σ = 1% current error);
//! 3. [`parking`] — the delay-phase coverage analysis behind Table II;
//! 4. [`opt_decomp`] — per-qubit delay-tuple decomposition for DigiQ_opt
//!    (`L ≤ 3` Ubs firings with closed-form boundary rotations);
//! 5. [`min_decomp`] — per-qubit meet-in-the-middle sequence search for
//!    DigiQ_min (depth ≤ 28);
//! 6. [`cz`] — CZ composition from 1–3 shared `Uqq` pulses with optimized
//!    interleaved single-qubit gates (Fig 7).
//!
//! Everything is deterministic given seeds, so every figure regenerates
//! bit-identically.

pub mod bitstream;
pub mod cz;
pub mod drift;
pub mod min_decomp;
pub mod opt_decomp;
pub mod parking;

pub use bitstream::{find_bitstream, BitstreamResult, SearchConfig, ZFreedom};
pub use drift::{sample_population, DriftModel, SampledQubit};
pub use min_decomp::{decompose_min, MinBasis, MinDecomposition, SequenceDb};
pub use opt_decomp::{decompose_opt, OptBasis, OptDecomposition};
pub use parking::{parking_search, ParkingFrequency};
