//! Per-qubit sequence search for DigiQ_min (§V-A).
//!
//! DigiQ_min broadcasts a small discrete basis (e.g. {Ry(π/2), T}) and
//! decomposes every single-qubit gate into a sequence of those basis
//! operations — per qubit, because drift turns the shared bitstreams into
//! qubit-specific operations. The paper uses "a brute-force search … up
//! to a maximum depth of 28"; this module implements that search as a
//! meet-in-the-middle: a database of all products up to depth 14 is built
//! once per qubit (deduplicated, spatially hashed over the SU(2)
//! quaternion ball), and each target `T` is split as `T ≈ A·B` with both
//! halves looked up — the same search space at √cost.
//!
//! Leakage handling follows §V-A: the search runs over the unitarized
//! SU(2) parts ("working with the full six-level representation" is
//! recovered at the end by scoring the found sequence with the exact
//! projected, sub-unitary basis blocks).

use qsim::gates::Su2;
use qsim::matrix::CMat;
use std::collections::HashMap;
use std::sync::Arc;

/// A reference-counted, thread-shareable sequence database. Building a
/// [`SequenceDb`] is by far the most expensive step of the DigiQ_min
/// workflow, so batched evaluations (`digiq_core::engine`) build each
/// distinct basis's database once and hand clones of this handle to every
/// worker.
pub type SharedSequenceDb = Arc<SequenceDb>;

/// The discrete per-qubit basis.
#[derive(Debug, Clone)]
pub struct MinBasis {
    /// Exact qubit-subspace blocks (2×2, possibly sub-unitary) of each
    /// basis operation on this qubit.
    pub ops: Vec<CMat>,
    /// Unitarized SU(2) images used by the search.
    su2: Vec<Su2>,
}

impl MinBasis {
    /// Builds a basis from exact projected blocks.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or any block is not 2×2.
    pub fn new(ops: Vec<CMat>) -> Self {
        assert!(!ops.is_empty());
        for m in &ops {
            assert_eq!((m.rows(), m.cols()), (2, 2));
        }
        let su2 = ops.iter().map(Su2::from_matrix).collect();
        MinBasis { ops, su2 }
    }

    /// The ideal minimal basis {Ry(π/2), T} of §IV-A2.
    pub fn ideal_ry_t() -> Self {
        MinBasis::new(vec![
            qsim::gates::ry(std::f64::consts::FRAC_PI_2),
            qsim::gates::t(),
        ])
    }

    /// Number of basis gates (`BS`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the basis is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A found sequence (indices into the basis; **applied left-to-right**,
/// i.e. `sequence[0]` fires first).
#[derive(Debug, Clone, PartialEq)]
pub struct MinDecomposition {
    /// Basis-gate indices in firing order.
    pub sequence: Vec<u8>,
    /// Average gate error of the exact realized product vs. the target.
    pub error: f64,
}

impl MinDecomposition {
    /// Number of controller cycles consumed.
    pub fn cycles(&self) -> usize {
        self.sequence.len()
    }
}

/// Quantization cell for the spatial hash (quaternion components in
/// [−1, 1] → i8 grid).
fn cell_key(q: Su2, res: f64) -> (i16, i16, i16, i16) {
    (
        (q.w / res).round() as i16,
        (q.x / res).round() as i16,
        (q.y / res).round() as i16,
        (q.z / res).round() as i16,
    )
}

/// One half-depth product database for a basis.
#[derive(Debug)]
pub struct SequenceDb {
    entries: Vec<(Su2, Vec<u8>)>,
    hash: HashMap<(i16, i16, i16, i16), Vec<u32>>,
    res: f64,
}

impl SequenceDb {
    /// Builds all deduplicated products of the basis up to `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn build(basis: &MinBasis, depth: usize) -> Self {
        assert!(depth > 0);
        let res = 0.04;
        let dedup_res = 5e-4;
        let mut entries: Vec<(Su2, Vec<u8>)> = vec![(Su2::IDENTITY, Vec::new())];
        let mut seen: HashMap<(i16, i16, i16, i16), Vec<u32>> = HashMap::new();
        seen.entry(cell_key(Su2::IDENTITY, dedup_res))
            .or_default()
            .push(0);

        let mut frontier: Vec<u32> = vec![0];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &idx in &frontier {
                let (q, seq) = entries[idx as usize].clone();
                for (b, &op) in basis.su2.iter().enumerate() {
                    // Gate fired after the existing sequence: new = op ∘ q.
                    let nq = op.compose(q);
                    let key = cell_key(nq, dedup_res);
                    let dup = seen.get(&key).map_or(false, |v| {
                        v.iter().any(|&i| entries[i as usize].0.distance(nq) < 1e-6)
                    });
                    if dup {
                        continue;
                    }
                    let mut nseq = seq.clone();
                    nseq.push(b as u8);
                    let id = entries.len() as u32;
                    entries.push((nq, nseq));
                    seen.entry(key).or_default().push(id);
                    next.push(id);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }

        let mut hash: HashMap<(i16, i16, i16, i16), Vec<u32>> = HashMap::new();
        for (i, (q, _)) in entries.iter().enumerate() {
            hash.entry(cell_key(*q, res)).or_default().push(i as u32);
        }
        SequenceDb { entries, hash, res }
    }

    /// Builds the database behind a shareable handle (see
    /// [`SharedSequenceDb`]); decomposition takes `&SequenceDb`, so the
    /// handle derefs straight into [`decompose_min`].
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn build_shared(basis: &MinBasis, depth: usize) -> SharedSequenceDb {
        Arc::new(SequenceDb::build(basis, depth))
    }

    /// Number of distinct products stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when only the identity is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// Visits entries near `q` (its cell and the 3⁴ neighbourhood) in the
    /// same deterministic cell order the decomposition has always used,
    /// without materializing the 81-cell list per query — the MITM scan
    /// calls this once per database entry. `f` returns `false` to stop.
    fn for_each_near(&self, q: Su2, mut f: impl FnMut(u32) -> bool) {
        let (a, b, c, d) = cell_key(q, self.res);
        for da in -1i16..=1 {
            for db in -1i16..=1 {
                for dc in -1i16..=1 {
                    for dd in -1i16..=1 {
                        if let Some(v) = self.hash.get(&(a + da, b + db, c + dc, d + dd)) {
                            for &i in v {
                                if !f(i) {
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// SU(2) average gate error from a trace overlap `|tr|/2`.
fn err_from_overlap(ov: f64) -> f64 {
    (2.0 / 3.0) * (1.0 - (ov * ov).min(1.0))
}

/// Meet-in-the-middle decomposition of `target` over `basis`, with halves
/// up to `db.depth` each. Scores the winning sequence against the *exact*
/// (leakage-carrying) basis blocks.
///
/// # Panics
///
/// Panics if `target` is not 2×2.
pub fn decompose_min(
    target: &CMat,
    basis: &MinBasis,
    db: &SequenceDb,
    err_target: f64,
) -> MinDecomposition {
    assert_eq!((target.rows(), target.cols()), (2, 2));
    let qt = Su2::from_matrix(target);

    // Track the winning (A, B) entry pair and materialize its index
    // sequence once, after the scan — candidate improvements used to clone
    // both halves' sequences on every new best.
    let mut best_halves: Option<(u32, u32)> = None;
    let mut best_ov = {
        // Identity candidate.
        qt.trace_overlap(Su2::IDENTITY)
    };

    // T ≈ A·B (B fires first): B = A⁻¹·T.
    for (ai, (qa, _)) in db.entries.iter().enumerate() {
        let needed_b = qa.inverse().compose(qt);
        db.for_each_near(needed_b, |bi| {
            let (qb, _) = &db.entries[bi as usize];
            let realized = qa.compose(*qb);
            let ov = realized.trace_overlap(qt);
            if ov > best_ov {
                best_ov = ov;
                best_halves = Some((ai as u32, bi));
                if err_from_overlap(best_ov) <= err_target * 0.5 {
                    return false;
                }
            }
            true
        });
        if err_from_overlap(best_ov) <= err_target * 0.5 && ai > 0 {
            break;
        }
    }

    let best_seq: Vec<u8> = match best_halves {
        None => Vec::new(),
        Some((ai, bi)) => {
            let mut s = db.entries[bi as usize].1.clone();
            s.extend_from_slice(&db.entries[ai as usize].1);
            s
        }
    };

    // Exact scoring with leakage: multiply the true projected blocks.
    let mut m = CMat::identity(2);
    for &g in &best_seq {
        m = basis.ops[g as usize].matmul(&m);
    }
    let error = qsim::fidelity::average_gate_error(&m, target);
    MinDecomposition {
        sequence: best_seq,
        error,
    }
}

/// Convenience: builds the database and decomposes a batch of targets
/// (the per-qubit workflow of the error model).
pub fn decompose_batch(
    targets: &[CMat],
    basis: &MinBasis,
    half_depth: usize,
    err_target: f64,
) -> Vec<MinDecomposition> {
    let db = SequenceDb::build(basis, half_depth);
    targets
        .iter()
        .map(|t| decompose_min(t, basis, &db, err_target))
        .collect()
}

/// A deterministic stand-in basis-index sequence of length `len` over a
/// `basis_len`-gate alphabet, keyed by `salt`.
///
/// The cycle-accurate co-simulator (`digiq_core::cosim`) plays DigiQ_min
/// gates back one basis operation per controller cycle; its timing model
/// only fixes the *length* `K` of each decomposition (drawn from the
/// measured distribution), so per-cycle trace events label each firing
/// with a representative basis index from this function rather than
/// re-running the full meet-in-the-middle search per gate. Same
/// `(len, basis_len, salt)` → same sequence, on every platform.
///
/// # Panics
///
/// Panics if `basis_len == 0`.
pub fn representative_sequence(len: usize, basis_len: usize, salt: u64) -> Vec<u8> {
    assert!(basis_len > 0, "a basis needs at least one gate");
    let mut rng = qsim::rng::StdRng::seed_from_u64(salt);
    (0..len)
        .map(|_| rng.gen_range(0..basis_len as u64) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::gates;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn representative_sequences_are_deterministic_and_in_range() {
        let a = representative_sequence(28, 2, 0xD161);
        let b = representative_sequence(28, 2, 0xD161);
        assert_eq!(a, b);
        assert_eq!(a.len(), 28);
        assert!(a.iter().all(|&g| g < 2));
        // Salt and alphabet size both matter.
        assert_ne!(a, representative_sequence(28, 2, 0xD162));
        let rich = representative_sequence(64, 4, 1);
        assert!(rich.iter().any(|&g| g >= 2), "richer alphabet is used");
        assert!(representative_sequence(0, 2, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one gate")]
    fn representative_sequence_rejects_empty_basis() {
        let _ = representative_sequence(4, 0, 0);
    }

    #[test]
    fn database_grows_and_dedups() {
        let basis = MinBasis::ideal_ry_t();
        let db = SequenceDb::build(&basis, 8);
        // 2^9−1 raw strings; T-powers collapse (T⁸ ≡ I), so strictly less.
        assert!(db.len() > 100, "db too small: {}", db.len());
        assert!(db.len() < (1 << 9), "dedup ineffective: {}", db.len());
        assert!(!db.is_empty());
    }

    #[test]
    fn identity_decomposes_trivially() {
        let basis = MinBasis::ideal_ry_t();
        let db = SequenceDb::build(&basis, 6);
        let dec = decompose_min(&gates::id2(), &basis, &db, 1e-4);
        assert_eq!(dec.cycles(), 0);
        assert!(dec.error < 1e-9);
    }

    #[test]
    fn basis_gates_decompose_exactly() {
        let basis = MinBasis::ideal_ry_t();
        let db = SequenceDb::build(&basis, 6);
        for (g, expect_len) in [(gates::t(), 1usize), (gates::ry(FRAC_PI_2), 1)] {
            let dec = decompose_min(&g, &basis, &db, 1e-6);
            assert!(dec.error < 1e-9, "error {:.2e}", dec.error);
            assert!(dec.cycles() <= expect_len);
        }
        // S = T² — two cycles.
        let dec = decompose_min(&gates::s(), &basis, &db, 1e-6);
        assert!(dec.error < 1e-9);
        assert!(dec.cycles() <= 2);
    }

    #[test]
    fn hadamard_like_gates_within_depth_28() {
        // Clifford+T style approximation: with half-depth 11 (total 22)
        // the ideal basis should hit common gates below ~1e-3.
        let basis = MinBasis::ideal_ry_t();
        let db = SequenceDb::build(&basis, 11);
        for g in [gates::h(), gates::x(), gates::s()] {
            let dec = decompose_min(&g, &basis, &db, 1e-4);
            assert!(
                dec.error < 5e-3,
                "error {:.2e} at depth {}",
                dec.error,
                dec.cycles()
            );
            assert!(dec.cycles() <= 28, "sequence too long: {}", dec.cycles());
        }
    }

    #[test]
    fn sequence_reconstruction_matches_reported_error() {
        let basis = MinBasis::ideal_ry_t();
        let db = SequenceDb::build(&basis, 10);
        let target = gates::u_zyz(0.9, 0.3, -1.2);
        let dec = decompose_min(&target, &basis, &db, 1e-4);
        let mut m = CMat::identity(2);
        for &g in &dec.sequence {
            m = basis.ops[g as usize].matmul(&m);
        }
        let direct = qsim::fidelity::average_gate_error(&m, &target);
        assert!((direct - dec.error).abs() < 1e-12);
    }

    #[test]
    fn deeper_database_never_hurts() {
        let basis = MinBasis::ideal_ry_t();
        let shallow = SequenceDb::build(&basis, 7);
        let deep = SequenceDb::build(&basis, 11);
        let target = gates::u_zyz(1.3, 0.2, 0.7);
        let e_shallow = decompose_min(&target, &basis, &shallow, 0.0).error;
        let e_deep = decompose_min(&target, &basis, &deep, 0.0).error;
        assert!(e_deep <= e_shallow + 1e-9);
    }

    #[test]
    fn drifted_basis_still_universal() {
        // Per-qubit recalibration: a drifted (but still generic) basis
        // decomposes targets — frequency-dependent ops "still constitute
        // universal gate sets" (§V-A).
        let drifted = MinBasis::new(vec![
            gates::rz(0.11)
                .matmul(&gates::ry(FRAC_PI_2 + 0.04))
                .matmul(&gates::rz(-0.07)),
            gates::rz(PI / 4.0 + 0.03),
        ]);
        let db = SequenceDb::build(&drifted, 11);
        let dec = decompose_min(&gates::h(), &drifted, &db, 1e-4);
        assert!(dec.error < 2e-2, "drifted error {:.2e}", dec.error);
    }

    #[test]
    fn outlier_basis_is_poor() {
        // Fig 10a's outliers: when drift brings the nominal T close to
        // identity, the basis degenerates and errors jump — the software
        // maps around such qubits.
        let degenerate = MinBasis::new(vec![
            gates::ry(FRAC_PI_2),
            gates::rz(0.003), // T drifted to ≈ identity
        ]);
        let db = SequenceDb::build(&degenerate, 9);
        let dec = decompose_min(&gates::t(), &degenerate, &db, 1e-4);
        let healthy = MinBasis::ideal_ry_t();
        let db_h = SequenceDb::build(&healthy, 9);
        let dec_h = decompose_min(&gates::t(), &healthy, &db_h, 1e-4);
        assert!(
            dec.error > 10.0 * dec_h.error.max(1e-12),
            "degenerate {:.2e} vs healthy {:.2e}",
            dec.error,
            dec_h.error
        );
    }

    #[test]
    fn shared_handle_decomposes_across_threads() {
        let basis = MinBasis::ideal_ry_t();
        let db = SequenceDb::build_shared(&basis, 8);
        let errs: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let db = Arc::clone(&db);
                    let basis = &basis;
                    s.spawn(move || decompose_min(&gates::s(), basis, &db, 1e-6).error)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in errs {
            assert!(e < 1e-9);
        }
    }

    #[test]
    fn batch_decomposition() {
        let basis = MinBasis::ideal_ry_t();
        let targets = vec![gates::h(), gates::s(), gates::t()];
        let decs = decompose_batch(&targets, &basis, 9, 1e-3);
        assert_eq!(decs.len(), 3);
        for d in &decs {
            assert!(d.error < 1e-2);
        }
    }
}
