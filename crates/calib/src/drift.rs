//! Monte-Carlo qubit variability model (§VI-B).
//!
//! "Each qubit is modeled as an asymmetric transmon with σ = 0.2%
//! variability in each of its Josephson energies (sampled from a normal
//! distribution). At our target frequencies, this corresponds to about
//! ±6 MHz fluctuation … Hardware variability is considered with the
//! addition of a σ = 1% error to the output of each current generator."
//!
//! Qubits are assigned nominal parking frequencies in a checkerboard over
//! the grid (neighbouring qubits alternate between the high and low
//! Table II frequencies so every coupler spans a CZ-compatible pair), then
//! perturbed junction-by-junction.

use qsim::rng::StdRng;
use qsim::transmon::AsymmetricTransmon;

/// The drift/variability parameters of §VI-B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Relative σ of each Josephson energy (paper: 0.002).
    pub ej_sigma: f64,
    /// Relative σ of each current generator's output (paper: 0.01).
    pub current_sigma: f64,
    /// Junction asymmetry `d` used for every qubit design.
    pub asymmetry: f64,
    /// RNG seed (all sampling is deterministic given the seed).
    pub seed: u64,
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel {
            ej_sigma: 0.002,
            current_sigma: 0.01,
            asymmetry: 0.3,
            seed: 0xD161_D21F,
        }
    }
}

/// One sampled physical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledQubit {
    /// Physical index.
    pub index: usize,
    /// Designed (parking) frequency in GHz.
    pub nominal_ghz: f64,
    /// Actual frequency after junction variation, in GHz.
    pub actual_ghz: f64,
    /// Relative scale applied to this qubit's current generator.
    pub current_scale: f64,
}

impl SampledQubit {
    /// Frequency drift `actual − nominal` in GHz.
    pub fn drift_ghz(&self) -> f64 {
        self.actual_ghz - self.nominal_ghz
    }
}

/// Standard-normal sample via Box–Muller (keeps us off extra deps).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a population of qubits with checkerboard parking frequencies.
///
/// `parking_ghz` typically holds the two Table II frequencies
/// `(6.21286, 4.14238)`; qubit `(r, c)` of the grid takes index
/// `(r + c) % parking_ghz.len()`.
///
/// # Panics
///
/// Panics if `parking_ghz` is empty.
pub fn sample_population(
    grid_cols: usize,
    n_qubits: usize,
    parking_ghz: &[f64],
    model: &DriftModel,
) -> Vec<SampledQubit> {
    assert!(!parking_ghz.is_empty());
    let mut rng = StdRng::seed_from_u64(model.seed);
    (0..n_qubits)
        .map(|q| {
            let (r, c) = (q / grid_cols, q % grid_cols);
            let nominal = parking_ghz[(r + c) % parking_ghz.len()];
            let design = AsymmetricTransmon::design(nominal, model.asymmetry, 0.25, 6);
            let s1 = 1.0 + model.ej_sigma * normal(&mut rng);
            let s2 = 1.0 + model.ej_sigma * normal(&mut rng);
            let varied = design.with_ej_variation(s1, s2);
            let current_scale = 1.0 + model.current_sigma * normal(&mut rng);
            SampledQubit {
                index: q,
                nominal_ghz: nominal,
                actual_ghz: varied.frequency_at(0.0),
                current_scale,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Vec<SampledQubit> {
        sample_population(32, 1024, &[6.21286, 4.14238], &DriftModel::default())
    }

    #[test]
    fn population_size_and_determinism() {
        let a = population();
        let b = population();
        assert_eq!(a.len(), 1024);
        assert_eq!(a, b, "sampling must be deterministic");
    }

    #[test]
    fn checkerboard_assignment() {
        let p = population();
        // (0,0) high, (0,1) low, (1,0) low …
        assert_eq!(p[0].nominal_ghz, 6.21286);
        assert_eq!(p[1].nominal_ghz, 4.14238);
        assert_eq!(p[32].nominal_ghz, 4.14238);
        assert_eq!(p[33].nominal_ghz, 6.21286);
        // Every grid neighbour pair differs in nominal frequency.
        for r in 0..32 {
            for c in 0..31 {
                let q = r * 32 + c;
                assert_ne!(p[q].nominal_ghz, p[q + 1].nominal_ghz);
            }
        }
    }

    #[test]
    fn drift_magnitude_matches_paper() {
        // σ = 0.2% EJ ⇒ ~±6 MHz at 6.2 GHz: the sample std-dev of the
        // drift over high-frequency qubits should be ≈ 4–6 MHz, and the
        // spread should stay within ~±20 MHz.
        let p = population();
        let drifts: Vec<f64> = p
            .iter()
            .filter(|q| q.nominal_ghz > 5.0)
            .map(|q| q.drift_ghz() * 1e3) // MHz
            .collect();
        let mean = drifts.iter().sum::<f64>() / drifts.len() as f64;
        let var = drifts.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / drifts.len() as f64;
        let std = var.sqrt();
        assert!(
            (2.0..8.0).contains(&std),
            "drift std {std:.2} MHz outside the paper's ±6 MHz scale"
        );
        assert!(drifts.iter().all(|d| d.abs() < 25.0));
    }

    #[test]
    fn current_scales_are_near_unity() {
        let p = population();
        let scales: Vec<f64> = p.iter().map(|q| q.current_scale).collect();
        let mean = scales.iter().sum::<f64>() / scales.len() as f64;
        assert!((mean - 1.0).abs() < 0.005);
        let var = scales.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / scales.len() as f64;
        assert!((var.sqrt() - 0.01).abs() < 0.005, "σ = {}", var.sqrt());
    }

    #[test]
    fn seeds_change_samples() {
        let a = population();
        let b = sample_population(
            32,
            1024,
            &[6.21286, 4.14238],
            &DriftModel {
                seed: 99,
                ..DriftModel::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn three_colour_population_works() {
        // Table II has three parking frequencies; a 3-colouring is also
        // supported.
        let p = sample_population(32, 96, &[6.21286, 5.02978, 4.14238], &DriftModel::default());
        assert!(p.iter().any(|q| q.nominal_ghz == 5.02978));
    }
}
