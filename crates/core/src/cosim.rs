//! Cycle-accurate controller co-simulator (the oracle for Fig 9's
//! analytic execution model).
//!
//! [`crate::exec`] charges execution time with closed-form per-slot
//! arithmetic; this module instead *runs* the controller
//! microarchitecture, one timestep at a time, over the same compiled
//! schedule:
//!
//! * **MIMD baselines / SFQ_MIMD_decomp / DigiQ_min** — per-qubit
//!   timelines in integer SFQ clock ticks (40 ps): each qubit's sequencer
//!   plays its bitstreams back-to-back (`K` controller cycles per gate on
//!   the discrete-basis designs, one per-cycle basis firing traced from
//!   `calib::min_decomp::representative_sequence`), while CZs occupy both
//!   endpoints for 1500 ticks and keep their schedule-slot relative order.
//! * **DigiQ_opt** — a slot-synchronous SIMD machine: each group's
//!   sequencer walks its gates' firing positions (`L ∈ {1,2,3}`) in
//!   order, broadcasting up to `BS` distinct delay classes per controller
//!   cycle; positions demanding more classes spill into continuation
//!   sub-cycles (delay-slot contention), the slot barrier waits for the
//!   slowest group, and CZs occupy their 60 ns concurrently.
//!
//! Both engines draw every per-gate decision (decomposition depth `K`,
//! firing count `L`, delay class) from the shared
//! [`crate::delay_model::DelayModel`], so a [`CosimReport`] produced from
//! the same compiled artifact ([`qcircuit::pipeline::CompileArtifact`])
//! + [`ExecParams`] as an [`ExecReport`] is
//! *exactly* comparable: integer cycle counters (`oneq_cycles`,
//! `serialization_cycles`, CZ segments, slots) must agree to the cycle,
//! and `total_ns` to f64 rounding (the co-simulator sums exact integer
//! ticks where the analytic model sums f64 nanoseconds) — see
//! [`diff_analytic`] and `crates/core/tests/cosim_diff.rs`. What the
//! co-simulator adds over the closed form is *attribution*: per-group
//! sequencer utilization, per-slot serialization, double-buffered
//! select/mask staging counts, and an optional per-cycle trace.
//!
//! ```
//! use digiq_core::cosim::{diff_analytic, simulate, CosimParams};
//! use digiq_core::design::{ControllerDesign, SystemConfig};
//! use digiq_core::exec::{checkerboard_groups, execute, ExecParams};
//! use qcircuit::schedule::schedule_crosstalk_aware;
//! use qcircuit::topology::Grid;
//!
//! let grid = Grid::new(4, 4);
//! let mut c = qcircuit::ir::Circuit::new(16);
//! for q in 0..16 {
//!     c.ry(q, 0.1 + 0.05 * q as f64);
//! }
//! let slots = schedule_crosstalk_aware(&c, &grid);
//! let groups = checkerboard_groups(4, 16, 2);
//! let mut params = ExecParams::new(SystemConfig::paper_default(
//!     ControllerDesign::DigiqOpt { bs: 4 },
//!     2,
//! ));
//! params.config.n_qubits = 16;
//! let cosim = simulate(&c, &slots, &groups, &CosimParams::new(params.clone()));
//! let analytic = execute(&c, &slots, &groups, &params);
//! assert!(diff_analytic(&cosim, &analytic).is_exact(1e-9));
//! ```

use crate::delay_model::{gate_bin, DelayModel};
use crate::design::ControllerDesign;
use crate::exec::{ExecParams, ExecReport};
use calib::min_decomp::representative_sequence;
use qcircuit::ir::{Circuit, Gate};
use qcircuit::schedule::Slot;
use sfq_hw::json::{Json, ToJson};
use std::collections::BTreeMap;

/// Co-simulation controls: the analytic model's parameters plus tracing.
#[derive(Debug, Clone)]
pub struct CosimParams {
    /// The execution-model parameters (identical to what
    /// [`crate::exec::execute`] receives — same seed, same draws).
    pub exec: ExecParams,
    /// Record per-cycle [`TraceEvent`]s.
    pub trace: bool,
    /// Cap on recorded events; the report flags truncation.
    pub trace_limit: usize,
}

impl CosimParams {
    /// Tracing off, default cap.
    pub fn new(exec: ExecParams) -> Self {
        CosimParams {
            exec,
            trace: false,
            trace_limit: 4096,
        }
    }

    /// Enables the per-cycle trace.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// What happened in one traced micro-event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A slot's select/mask words flipped from the staging buffer to the
    /// active buffer (`detail` = words staged).
    Stage,
    /// A qubit sequencer fired one basis bitstream cycle (`detail` =
    /// representative basis-gate index).
    Fire,
    /// A group sequencer broadcast a batch of delayed-Ubs copies
    /// (`detail` = distinct delay classes issued this sub-cycle).
    Broadcast,
    /// A CZ segment started (`detail` = partner qubit).
    Cz,
}

impl TraceKind {
    /// The stable lowercase label used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Stage => "stage",
            TraceKind::Fire => "fire",
            TraceKind::Broadcast => "broadcast",
            TraceKind::Cz => "cz",
        }
    }

    fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "stage" => Ok(TraceKind::Stage),
            "fire" => Ok(TraceKind::Fire),
            "broadcast" => Ok(TraceKind::Broadcast),
            "cz" => Ok(TraceKind::Cz),
            other => Err(format!("unknown trace kind `{other}`")),
        }
    }
}

/// One per-cycle event of the co-simulation. Events are recorded in issue
/// order (per-qubit timelines interleave, so `tick` is not globally
/// monotonic on the MIMD designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// SFQ clock tick (40 ps) at which the event starts.
    pub tick: u64,
    /// Schedule slot the event belongs to.
    pub slot: usize,
    /// Frequency group of the issuing sequencer.
    pub group: usize,
    /// The qubit involved, when the event is qubit-specific.
    pub qubit: Option<usize>,
    /// Event class.
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`]).
    pub detail: u64,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tick", self.tick.to_json()),
            ("slot", self.slot.to_json()),
            ("group", self.group.to_json()),
            ("qubit", self.qubit.to_json()),
            ("kind", self.kind.name().to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

impl TraceEvent {
    /// Reads an event back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "trace event";
        let qubit = match j.get("qubit") {
            None => return Err("trace event missing `qubit`".to_string()),
            Some(Json::Null) => None,
            Some(_) => Some(j.count_field("qubit", CTX)? as usize),
        };
        Ok(TraceEvent {
            tick: j.count_field("tick", CTX)?,
            slot: j.count_field("slot", CTX)? as usize,
            group: j.count_field("group", CTX)? as usize,
            qubit,
            kind: TraceKind::from_name(j.str_field("kind", CTX)?)?,
            detail: j.count_field("detail", CTX)?,
        })
    }
}

/// Activity roll-up of one frequency group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupActivity {
    /// Group index.
    pub group: usize,
    /// Member qubits (from the checkerboard map).
    pub members: usize,
    /// Busy SFQ clock ticks: on DigiQ_opt the group sequencer's issue
    /// cycles × the cycle length; on the per-qubit-timeline designs the
    /// summed occupied ticks of the member qubits.
    pub busy_ticks: u64,
    /// Duty fraction in `[0, 1]`: `busy / makespan` for a DigiQ_opt
    /// sequencer, `busy / (members × makespan)` for timeline designs.
    pub utilization: f64,
}

impl ToJson for GroupActivity {
    fn to_json(&self) -> Json {
        Json::obj([
            ("group", self.group.to_json()),
            ("members", self.members.to_json()),
            ("busy_ticks", self.busy_ticks.to_json()),
            ("utilization", self.utilization.to_json()),
        ])
    }
}

impl GroupActivity {
    /// Reads a roll-up back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "group activity";
        Ok(GroupActivity {
            group: j.count_field("group", CTX)? as usize,
            members: j.count_field("members", CTX)? as usize,
            busy_ticks: j.count_field("busy_ticks", CTX)?,
            utilization: j.num_field("utilization", CTX)?,
        })
    }
}

/// Serialization cycles attributed to one schedule slot (only slots with
/// contention are listed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSerialization {
    /// Slot index in the schedule.
    pub slot: usize,
    /// Continuation sub-cycles the slot lost to delay-slot contention.
    pub cycles: u64,
}

impl ToJson for SlotSerialization {
    fn to_json(&self) -> Json {
        Json::obj([
            ("slot", self.slot.to_json()),
            ("cycles", self.cycles.to_json()),
        ])
    }
}

impl SlotSerialization {
    /// Reads an attribution row back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "slot serialization";
        Ok(SlotSerialization {
            slot: j.count_field("slot", CTX)? as usize,
            cycles: j.count_field("cycles", CTX)?,
        })
    }
}

/// The full co-simulation result. The integer counters line up
/// field-for-field with [`ExecReport`] (see [`diff_analytic`]); the rest
/// is attribution the analytic model cannot produce.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimReport {
    /// The simulated design.
    pub design: ControllerDesign,
    /// Makespan in SFQ clock ticks (40 ps each) — the exact integer the
    /// analytic `total_ns` approximates in f64.
    pub total_ticks: u64,
    /// Makespan in ns (`total_ticks × clock_period_ns`).
    pub total_ns: f64,
    /// Controller cycles spent on single-qubit work (must equal the
    /// analytic count exactly).
    pub oneq_cycles: u64,
    /// Continuation sub-cycles lost to delay-slot contention (DigiQ_opt;
    /// must equal the analytic count exactly).
    pub serialization_cycles: u64,
    /// CZ gates executed.
    pub cz_count: u64,
    /// CZ occupancy ns under the analytic model's accounting (per gate on
    /// the timeline designs, per occupied slot on DigiQ_opt).
    pub cz_ns: f64,
    /// Schedule slots processed.
    pub slots: u64,
    /// Select/mask words staged through the per-qubit double buffers (one
    /// per participating qubit per slot; staging for slot *n+1* overlaps
    /// slot *n*, so it never stalls the sequencers).
    pub staged_words: u64,
    /// Per-group activity, ascending by group index.
    pub groups: Vec<GroupActivity>,
    /// Per-slot serialization attribution (slots with contention only).
    pub slot_serialization: Vec<SlotSerialization>,
    /// True when the trace hit [`CosimParams::trace_limit`].
    pub trace_truncated: bool,
    /// Per-cycle events (empty unless [`CosimParams::trace`] was set).
    pub trace: Vec<TraceEvent>,
}

impl ToJson for CosimReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("total_ticks", self.total_ticks.to_json()),
            ("total_ns", self.total_ns.to_json()),
            ("oneq_cycles", self.oneq_cycles.to_json()),
            ("serialization_cycles", self.serialization_cycles.to_json()),
            ("cz_count", self.cz_count.to_json()),
            ("cz_ns", self.cz_ns.to_json()),
            ("slots", self.slots.to_json()),
            ("staged_words", self.staged_words.to_json()),
            ("groups", self.groups.to_json()),
            ("slot_serialization", self.slot_serialization.to_json()),
            ("trace_truncated", self.trace_truncated.to_json()),
            ("trace", self.trace.to_json()),
        ])
    }
}

impl CosimReport {
    /// Reads a report back from its [`ToJson`] form — the inverse of
    /// [`CosimReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "cosim report";
        let groups = match j.get("groups") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(GroupActivity::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("cosim report missing array `groups`".to_string()),
        };
        let slot_serialization = match j.get("slot_serialization") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(SlotSerialization::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("cosim report missing array `slot_serialization`".to_string()),
        };
        let trace = match j.get("trace") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(TraceEvent::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("cosim report missing array `trace`".to_string()),
        };
        let trace_truncated = match j.get("trace_truncated") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("cosim report missing boolean `trace_truncated`".to_string()),
        };
        Ok(CosimReport {
            design: ControllerDesign::from_json(
                j.get("design").ok_or("cosim report missing `design`")?,
            )?,
            total_ticks: j.count_field("total_ticks", CTX)?,
            total_ns: j.num_field("total_ns", CTX)?,
            oneq_cycles: j.count_field("oneq_cycles", CTX)?,
            serialization_cycles: j.count_field("serialization_cycles", CTX)?,
            cz_count: j.count_field("cz_count", CTX)?,
            cz_ns: j.num_field("cz_ns", CTX)?,
            slots: j.count_field("slots", CTX)?,
            staged_words: j.count_field("staged_words", CTX)?,
            groups,
            slot_serialization,
            trace_truncated,
            trace,
        })
    }
}

/// Field-by-field divergence between a co-simulation and the analytic
/// model run on the same compiled artifact and parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimDiff {
    /// `cosim.oneq_cycles − analytic.oneq_cycles`.
    pub oneq_delta: i64,
    /// `cosim.serialization_cycles − analytic.serialization_cycles`.
    pub serialization_delta: i64,
    /// `cosim.slots − analytic.slots`.
    pub slots_delta: i64,
    /// `cosim.cz_ns − analytic.cz_ns` (exact-zero when the CZ accounting
    /// agrees: both are integer multiples of 60.0).
    pub cz_ns_delta: f64,
    /// `|cosim.total_ns − analytic.total_ns| / analytic.total_ns` — f64
    /// rounding only (the co-simulator sums integer ticks, the analytic
    /// model f64 nanoseconds), so ~1e-12 in practice.
    pub total_rel_err: f64,
}

impl CosimDiff {
    /// True when every integer counter matches to the cycle and the ns
    /// totals agree within `tol` relative error.
    pub fn is_exact(&self, tol: f64) -> bool {
        self.oneq_delta == 0
            && self.serialization_delta == 0
            && self.slots_delta == 0
            && self.cz_ns_delta == 0.0
            && self.total_rel_err <= tol
    }
}

impl ToJson for CosimDiff {
    fn to_json(&self) -> Json {
        Json::obj([
            ("oneq_delta", self.oneq_delta.to_json()),
            ("serialization_delta", self.serialization_delta.to_json()),
            ("slots_delta", self.slots_delta.to_json()),
            ("cz_ns_delta", self.cz_ns_delta.to_json()),
            ("total_rel_err", self.total_rel_err.to_json()),
        ])
    }
}

/// Compares a co-simulation against the analytic report it must
/// reproduce.
pub fn diff_analytic(cosim: &CosimReport, analytic: &ExecReport) -> CosimDiff {
    CosimDiff {
        oneq_delta: cosim.oneq_cycles as i64 - analytic.oneq_cycles as i64,
        serialization_delta: cosim.serialization_cycles as i64
            - analytic.serialization_cycles as i64,
        slots_delta: cosim.slots as i64 - analytic.slots as i64,
        cz_ns_delta: cosim.cz_ns - analytic.cz_ns,
        total_rel_err: (cosim.total_ns - analytic.total_ns).abs()
            / analytic.total_ns.max(f64::MIN_POSITIVE),
    }
}

/// Bounded event recorder.
struct Tracer {
    on: bool,
    limit: usize,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Tracer {
    fn new(params: &CosimParams) -> Self {
        Tracer {
            on: params.trace,
            limit: params.trace_limit,
            events: Vec::new(),
            truncated: false,
        }
    }

    fn push(&mut self, e: TraceEvent) {
        if !self.on {
            return;
        }
        if self.events.len() >= self.limit {
            self.truncated = true;
            return;
        }
        self.events.push(e);
    }
}

fn group_of_qubit(group_of: &[usize], q: usize) -> usize {
    group_of.get(q).copied().unwrap_or(0)
}

/// Per-group member counts over the checkerboard map.
fn group_members(group_of: &[usize]) -> BTreeMap<usize, usize> {
    let mut members: BTreeMap<usize, usize> = BTreeMap::new();
    for &g in group_of {
        *members.entry(g).or_insert(0) += 1;
    }
    if members.is_empty() {
        members.insert(0, 0);
    }
    members
}

/// Select/mask words a slot stages: one per distinct participating qubit
/// (double-buffered, flipped at the slot boundary).
fn staged_words_of_slot(circuit: &Circuit, slot: &Slot) -> u64 {
    let mut qubits: Vec<usize> = slot
        .iter()
        .flat_map(|&gi| circuit.gates()[gi].qubits())
        .collect();
    qubits.sort_unstable();
    qubits.dedup();
    qubits.len() as u64
}

/// Runs the cycle-accurate co-simulation of a lowered, scheduled circuit.
///
/// Consumes exactly what [`crate::exec::execute`] consumes: the physical
/// circuit, its crosstalk-aware slots, the checkerboard `group_of` map,
/// and the execution parameters (wrapped in [`CosimParams`]).
///
/// # Panics
///
/// Panics if a slot references an out-of-range gate, or the circuit
/// contains non-lowered gates.
pub fn simulate(
    circuit: &Circuit,
    slots: &[Slot],
    group_of: &[usize],
    params: &CosimParams,
) -> CosimReport {
    qcircuit::lower::assert_lowered(circuit, "co-simulator");
    match params.exec.config.design {
        ControllerDesign::DigiqOpt { bs } => simulate_opt(circuit, slots, group_of, params, bs),
        _ => simulate_timelines(circuit, slots, group_of, params),
    }
}

/// Per-qubit-timeline machine: Impossible MIMD, SFQ_MIMD_naive,
/// SFQ_MIMD_decomp, DigiQ_min. Every qubit owns an independent sequencer;
/// CZs synchronize their two endpoints and keep schedule-slot order among
/// themselves.
fn simulate_timelines(
    circuit: &Circuit,
    slots: &[Slot],
    group_of: &[usize],
    params: &CosimParams,
) -> CosimReport {
    let cfg = &params.exec.config;
    let model = DelayModel::new(&params.exec);
    let cycle_ticks = cfg.cycle_ticks();
    let cz_ticks = cfg.cz_ticks();
    let one_bitstream = matches!(
        cfg.design,
        ControllerDesign::ImpossibleMimd | ControllerDesign::SfqMimdNaive
    );
    // Basis alphabet size for trace playback (mirrors
    // `crate::system::MinBasisKind::for_design`).
    let basis_len = match cfg.design {
        ControllerDesign::DigiqMin { bs } if bs >= 4 => 4,
        _ => 2,
    };

    let mut tracer = Tracer::new(params);
    let mut free_at = vec![0u64; circuit.n_qubits()];
    let mut busy = vec![0u64; circuit.n_qubits()];
    let mut cz_floor = 0u64;
    let mut oneq_cycles = 0u64;
    let mut cz_count = 0u64;
    let mut staged_words = 0u64;

    for (si, slot) in slots.iter().enumerate() {
        staged_words += staged_words_of_slot(circuit, slot);
        let mut slot_cz_end = cz_floor;
        for &gi in slot {
            match circuit.gates()[gi] {
                Gate::Cz { a, b } => {
                    let start = free_at[a].max(free_at[b]).max(cz_floor);
                    let end = start + cz_ticks;
                    busy[a] += cz_ticks;
                    busy[b] += cz_ticks;
                    free_at[a] = end;
                    free_at[b] = end;
                    slot_cz_end = slot_cz_end.max(start);
                    cz_count += 1;
                    tracer.push(TraceEvent {
                        tick: start,
                        slot: si,
                        group: group_of_qubit(group_of, a),
                        qubit: Some(a),
                        kind: TraceKind::Cz,
                        detail: b as u64,
                    });
                }
                Gate::OneQ { q, kind } => {
                    let k = if one_bitstream {
                        1
                    } else {
                        model.min_depth(kind, q)
                    };
                    if tracer.on {
                        // DigiQ_min sequence playback: one basis firing
                        // per controller cycle, labelled by a
                        // deterministic representative sequence.
                        let salt = qsim::rng::stable_hash(&[
                            params.exec.seed,
                            gate_bin(kind, params.exec.angle_bins),
                            q as u64,
                        ]);
                        let seq = representative_sequence(k, basis_len, salt);
                        for (c, &op) in seq.iter().enumerate() {
                            tracer.push(TraceEvent {
                                tick: free_at[q] + c as u64 * cycle_ticks,
                                slot: si,
                                group: group_of_qubit(group_of, q),
                                qubit: Some(q),
                                kind: TraceKind::Fire,
                                detail: op as u64,
                            });
                        }
                    }
                    let dur = k as u64 * cycle_ticks;
                    free_at[q] += dur;
                    busy[q] += dur;
                    oneq_cycles += if one_bitstream { 1 } else { k as u64 };
                }
                _ => panic!("co-simulator requires a lowered circuit"),
            }
        }
        cz_floor = slot_cz_end;
    }

    let total_ticks = free_at.iter().copied().max().unwrap_or(0);
    let groups = group_members(group_of)
        .into_iter()
        .map(|(g, members)| {
            let busy_ticks: u64 = (0..circuit.n_qubits())
                .filter(|&q| group_of_qubit(group_of, q) == g)
                .map(|q| busy[q])
                .sum();
            let denom = members as u64 * total_ticks;
            GroupActivity {
                group: g,
                members,
                busy_ticks,
                utilization: if denom == 0 {
                    0.0
                } else {
                    busy_ticks as f64 / denom as f64
                },
            }
        })
        .collect();

    CosimReport {
        design: cfg.design,
        total_ticks,
        total_ns: total_ticks as f64 * cfg.clock_period_ns,
        oneq_cycles,
        serialization_cycles: 0,
        cz_count,
        cz_ns: cz_count as f64 * cfg.cz_ns,
        slots: slots.len() as u64,
        staged_words,
        groups,
        slot_serialization: Vec::new(),
        trace_truncated: tracer.truncated,
        trace: tracer.events,
    }
}

/// Slot-synchronous SIMD machine for DigiQ_opt: per-group sequencers
/// broadcasting up to `BS` distinct delay classes per controller cycle.
fn simulate_opt(
    circuit: &Circuit,
    slots: &[Slot],
    group_of: &[usize],
    params: &CosimParams,
    bs: usize,
) -> CosimReport {
    let cfg = &params.exec.config;
    let model = DelayModel::new(&params.exec);
    let cycle_ticks = cfg.cycle_ticks();
    let cz_ticks = cfg.cz_ticks();

    let mut tracer = Tracer::new(params);
    let mut now = 0u64;
    let mut oneq_cycles = 0u64;
    let mut serialization_cycles = 0u64;
    let mut cz_count = 0u64;
    let mut cz_slots = 0u64;
    let mut staged_words = 0u64;
    let mut slot_serialization = Vec::new();
    let mut group_busy_cycles: BTreeMap<usize, u64> = BTreeMap::new();

    for (si, slot) in slots.iter().enumerate() {
        let words = staged_words_of_slot(circuit, slot);
        staged_words += words;
        tracer.push(TraceEvent {
            tick: now,
            slot: si,
            group: 0,
            qubit: None,
            kind: TraceKind::Stage,
            detail: words,
        });

        // Gather each group's demand queue: firing positions in order,
        // each with its sorted set of distinct delay classes.
        let mut demands: BTreeMap<usize, BTreeMap<usize, Vec<u64>>> = BTreeMap::new();
        let mut slot_cz = 0u64;
        for &gi in slot {
            match circuit.gates()[gi] {
                Gate::Cz { a, b } => {
                    slot_cz += 1;
                    tracer.push(TraceEvent {
                        tick: now,
                        slot: si,
                        group: group_of_qubit(group_of, a),
                        qubit: Some(a),
                        kind: TraceKind::Cz,
                        detail: b as u64,
                    });
                }
                Gate::OneQ { q, kind } => {
                    let group = group_of_qubit(group_of, q);
                    for pos in 0..model.firing_count(kind) {
                        let class = model.delay_class(kind, pos, group, q);
                        let classes = demands.entry(group).or_default().entry(pos).or_default();
                        if !classes.contains(&class) {
                            classes.push(class);
                        }
                    }
                }
                _ => panic!("co-simulator requires a lowered circuit"),
            }
        }
        for positions in demands.values_mut() {
            for classes in positions.values_mut() {
                classes.sort_unstable();
            }
        }

        // Per-cycle engine: every unfinished group issues up to BS delay
        // classes at its current firing position each controller cycle;
        // a position spilling past its first sub-cycle is contention.
        struct GroupState {
            queue: Vec<(usize, Vec<u64>)>,
            pos_idx: usize,
            class_idx: usize,
        }
        let mut states: BTreeMap<usize, GroupState> = demands
            .into_iter()
            .map(|(g, positions)| {
                (
                    g,
                    GroupState {
                        queue: positions.into_iter().collect(),
                        pos_idx: 0,
                        class_idx: 0,
                    },
                )
            })
            .collect();

        let mut cycles_this_slot = 0u64;
        let mut ser_this_slot = 0u64;
        loop {
            let mut issued_any = false;
            for (&g, st) in states.iter_mut() {
                if st.pos_idx >= st.queue.len() {
                    continue;
                }
                issued_any = true;
                let (_, classes) = &st.queue[st.pos_idx];
                if st.class_idx > 0 {
                    // Continuation sub-cycle at the same firing position:
                    // pure delay-slot contention.
                    ser_this_slot += 1;
                }
                let take = bs.min(classes.len() - st.class_idx);
                tracer.push(TraceEvent {
                    tick: now + cycles_this_slot * cycle_ticks,
                    slot: si,
                    group: g,
                    qubit: None,
                    kind: TraceKind::Broadcast,
                    detail: take as u64,
                });
                st.class_idx += take;
                if st.class_idx >= classes.len() {
                    st.pos_idx += 1;
                    st.class_idx = 0;
                }
                *group_busy_cycles.entry(g).or_insert(0) += 1;
            }
            if !issued_any {
                break;
            }
            cycles_this_slot += 1;
        }

        oneq_cycles += cycles_this_slot;
        serialization_cycles += ser_this_slot;
        if ser_this_slot > 0 {
            slot_serialization.push(SlotSerialization {
                slot: si,
                cycles: ser_this_slot,
            });
        }

        let mut slot_ticks = cycles_this_slot * cycle_ticks;
        if slot_cz > 0 {
            slot_ticks = slot_ticks.max(cz_ticks);
            cz_slots += 1;
            cz_count += slot_cz;
        }
        now += slot_ticks;
    }

    let total_ticks = now;
    let groups = group_members(group_of)
        .into_iter()
        .map(|(g, members)| {
            let busy_ticks = group_busy_cycles.get(&g).copied().unwrap_or(0) * cycle_ticks;
            GroupActivity {
                group: g,
                members,
                busy_ticks,
                utilization: if total_ticks == 0 {
                    0.0
                } else {
                    busy_ticks as f64 / total_ticks as f64
                },
            }
        })
        .collect();

    CosimReport {
        design: cfg.design,
        total_ticks,
        total_ns: total_ticks as f64 * cfg.clock_period_ns,
        oneq_cycles,
        serialization_cycles,
        cz_count,
        // The analytic model charges CZ occupancy once per occupied slot
        // on the slot-synchronous design.
        cz_ns: cz_slots as f64 * cfg.cz_ns,
        slots: slots.len() as u64,
        staged_words,
        groups,
        slot_serialization,
        trace_truncated: tracer.truncated,
        trace: tracer.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SystemConfig;
    use crate::exec::{checkerboard_groups, execute};
    use qcircuit::ir::Circuit;
    use qcircuit::schedule::schedule_crosstalk_aware;
    use qcircuit::topology::Grid;

    fn setup(
        design: ControllerDesign,
        c: &Circuit,
        grid: &Grid,
    ) -> (Vec<Slot>, Vec<usize>, ExecParams) {
        let slots = schedule_crosstalk_aware(c, grid);
        let groups = checkerboard_groups(grid.cols(), c.n_qubits(), 2);
        let mut params = ExecParams::new(SystemConfig::paper_default(design, 2));
        params.config.n_qubits = c.n_qubits();
        (slots, groups, params)
    }

    fn rotations(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.1 + 0.05 * q as f64);
        }
        c
    }

    #[test]
    fn opt_matches_analytic_counts() {
        let grid = Grid::new(4, 4);
        let mut c = rotations(16);
        for q in (0..15).step_by(2) {
            c.cz(q, q + 1);
        }
        for bs in [2usize, 4, 16] {
            let (slots, groups, params) = setup(ControllerDesign::DigiqOpt { bs }, &c, &grid);
            let cosim = simulate(&c, &slots, &groups, &CosimParams::new(params.clone()));
            let analytic = execute(&c, &slots, &groups, &params);
            let d = diff_analytic(&cosim, &analytic);
            assert!(d.is_exact(1e-9), "BS={bs}: {d:?}");
            // Sparse attribution sums to the aggregate counter.
            let attributed: u64 = cosim.slot_serialization.iter().map(|s| s.cycles).sum();
            assert_eq!(attributed, cosim.serialization_cycles);
        }
    }

    #[test]
    fn timeline_designs_match_analytic_counts() {
        let grid = Grid::new(4, 4);
        let mut c = rotations(16);
        c.cz(0, 1);
        c.h(0);
        for design in [
            ControllerDesign::ImpossibleMimd,
            ControllerDesign::SfqMimdNaive,
            ControllerDesign::SfqMimdDecomp,
            ControllerDesign::DigiqMin { bs: 2 },
        ] {
            let (slots, groups, params) = setup(design, &c, &grid);
            let cosim = simulate(&c, &slots, &groups, &CosimParams::new(params.clone()));
            let analytic = execute(&c, &slots, &groups, &params);
            let d = diff_analytic(&cosim, &analytic);
            assert!(d.is_exact(1e-9), "{design}: {d:?}");
            assert_eq!(cosim.serialization_cycles, 0);
        }
    }

    #[test]
    fn utilization_is_a_duty_fraction() {
        let grid = Grid::new(4, 4);
        let c = rotations(16);
        let (slots, groups, params) = setup(ControllerDesign::DigiqOpt { bs: 4 }, &c, &grid);
        let r = simulate(&c, &slots, &groups, &CosimParams::new(params));
        assert_eq!(r.groups.len(), 2, "checkerboard has two groups");
        for g in &r.groups {
            assert!((0.0..=1.0).contains(&g.utilization), "{g:?}");
            assert!(g.busy_ticks > 0);
            assert_eq!(g.members, 8);
        }
    }

    #[test]
    fn trace_records_playback_and_respects_cap() {
        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cz(0, 1);
        let (slots, groups, params) = setup(ControllerDesign::DigiqMin { bs: 2 }, &c, &grid);
        let traced = simulate(
            &c,
            &slots,
            &groups,
            &CosimParams::new(params.clone()).with_trace(),
        );
        // One Fire event per charged controller cycle, plus the CZ.
        let fires = traced
            .trace
            .iter()
            .filter(|e| e.kind == TraceKind::Fire)
            .count() as u64;
        assert_eq!(fires, traced.oneq_cycles);
        assert!(traced.trace.iter().any(|e| e.kind == TraceKind::Cz));
        assert!(traced
            .trace
            .iter()
            .all(|e| e.detail < 2 || e.kind != TraceKind::Fire));
        assert!(!traced.trace_truncated);
        // A tiny cap truncates without changing the timing result.
        let mut capped_params = CosimParams::new(params).with_trace();
        capped_params.trace_limit = 1;
        let capped = simulate(&c, &slots, &groups, &capped_params);
        assert!(capped.trace_truncated);
        assert_eq!(capped.trace.len(), 1);
        assert_eq!(capped.total_ticks, traced.total_ticks);
    }

    #[test]
    fn report_json_round_trips() {
        let grid = Grid::new(4, 4);
        let mut c = rotations(16);
        c.cz(0, 1);
        let (slots, groups, params) = setup(ControllerDesign::DigiqOpt { bs: 2 }, &c, &grid);
        let r = simulate(&c, &slots, &groups, &CosimParams::new(params).with_trace());
        assert!(!r.trace.is_empty());
        let j = r.to_json();
        assert_eq!(CosimReport::from_json(&j), Ok(r.clone()));
        // Text round-trip too.
        let parsed = Json::parse(&r.to_json_string()).unwrap();
        assert_eq!(CosimReport::from_json(&parsed), Ok(r));
    }

    #[test]
    fn empty_schedule_is_zero_time() {
        let grid = Grid::new(2, 2);
        let c = Circuit::new(4);
        let (slots, groups, params) = setup(ControllerDesign::DigiqOpt { bs: 4 }, &c, &grid);
        let r = simulate(&c, &slots, &groups, &CosimParams::new(params));
        assert_eq!(r.total_ticks, 0);
        assert_eq!(r.slots, 0);
        assert_eq!(r.oneq_cycles, 0);
    }
}
