//! Scalability analysis (§VI-A3): how many qubits fit the fridge budget.
//!
//! "Our results show that even our largest designs can operate within the
//! power budget of typical dilution refrigerators at 4 K … DigiQ_min(BS=2)
//! has the lowest hardware cost and highest scalability (>42,000 qubits
//! given 10 W power budget). The scalability of DigiQ_opt is also high,
//! allowing >25,000 qubits (>17,000 qubits) for BS = 8 (BS = 16)."
//!
//! The 1,024-qubit design is replicated to scale (which "naturally
//! increases the number of groups"), so qubit capacity is simply
//! `budget / (power of one 1,024-qubit tile) × 1024`.

use crate::design::{ControllerDesign, SystemConfig};
use crate::hardware::build_hardware;
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};

/// The 4 K-stage power budget the paper quotes (ref [7]): 10 W.
pub const POWER_BUDGET_W: f64 = 10.0;

/// One scalability row.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Design label.
    pub design: String,
    /// Power of one 1,024-qubit tile, W.
    pub tile_power_w: f64,
    /// Area of one 1,024-qubit tile, mm².
    pub tile_area_mm2: f64,
    /// Maximum qubits under the power budget.
    pub max_qubits: u64,
    /// Cables per 1,024-qubit tile.
    pub cables_per_tile: u64,
}

impl ToJson for ScalabilityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("tile_power_w", self.tile_power_w.to_json()),
            ("tile_area_mm2", self.tile_area_mm2.to_json()),
            ("max_qubits", self.max_qubits.to_json()),
            ("cables_per_tile", self.cables_per_tile.to_json()),
        ])
    }
}

/// Maximum qubits a design supports within `budget_w`, by tiling the
/// 1,024-qubit unit (§VI-A3).
pub fn max_qubits(
    design: ControllerDesign,
    groups: usize,
    model: &CostModel,
    budget_w: f64,
) -> u64 {
    let cfg = SystemConfig::paper_default(design, groups);
    let hw = build_hardware(&cfg, model);
    ((budget_w / hw.report.power_w).floor() as u64) * cfg.n_qubits as u64
}

/// The headline design points of the §VI-A3 table.
pub fn scalability_points() -> Vec<(ControllerDesign, usize)> {
    vec![
        (ControllerDesign::DigiqMin { bs: 2 }, 2usize),
        (ControllerDesign::DigiqMin { bs: 4 }, 2),
        (ControllerDesign::DigiqOpt { bs: 8 }, 2),
        (ControllerDesign::DigiqOpt { bs: 16 }, 2),
        (ControllerDesign::SfqMimdNaive, 1),
        (ControllerDesign::SfqMimdDecomp, 1),
    ]
}

/// The §VI-A3 scalability table for the headline design points.
pub fn scalability_table(model: &CostModel) -> Vec<ScalabilityRow> {
    scalability_table_parallel(model, 1)
}

/// [`scalability_table`] sharded over `workers` threads through the
/// evaluation engine: each tile synthesizes once in the engine's keyed
/// hardware cache, and rows merge in [`scalability_points`] order
/// regardless of worker count.
pub fn scalability_table_parallel(model: &CostModel, workers: usize) -> Vec<ScalabilityRow> {
    let engine = crate::engine::EvalEngine::new(*model);
    let points = scalability_points();
    crate::engine::par_map_ordered(&points, workers, |_, &(design, groups)| {
        let hw = engine
            .hardware(design, groups)
            .expect("every tabulated design is buildable");
        let cfg = SystemConfig::paper_default(design, groups);
        ScalabilityRow {
            design: design.to_string(),
            tile_power_w: hw.report.power_w,
            tile_area_mm2: hw.report.area_mm2,
            max_qubits: ((POWER_BUDGET_W / hw.report.power_w).floor() as u64) * cfg.n_qubits as u64,
            cables_per_tile: hw.cables,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_bs2_scales_past_twenty_thousand() {
        // Paper: >42,000. Our calibrated tile power (~0.35 W vs the
        // paper's ~0.24 W) lands the same order of magnitude; the claim
        // we hold ourselves to is >20k and min(BS=2) beating every other
        // design.
        let m = CostModel::default();
        let n = max_qubits(ControllerDesign::DigiqMin { bs: 2 }, 2, &m, POWER_BUDGET_W);
        assert!(n > 20_000, "min(BS=2) scales to {n}");
    }

    #[test]
    fn opt_scaling_order_matches_paper() {
        // Paper: opt(BS=8) >25,000; opt(BS=16) >17,000 — and BS=8 beats
        // BS=16.
        let m = CostModel::default();
        let n8 = max_qubits(ControllerDesign::DigiqOpt { bs: 8 }, 2, &m, POWER_BUDGET_W);
        let n16 = max_qubits(ControllerDesign::DigiqOpt { bs: 16 }, 2, &m, POWER_BUDGET_W);
        assert!(n8 > n16);
        assert!(n8 > 12_000, "opt(BS=8) scales to {n8}");
        assert!(n16 > 8_000, "opt(BS=16) scales to {n16}");
    }

    #[test]
    fn mimd_designs_cannot_exceed_a_couple_thousand() {
        let m = CostModel::default();
        let naive = max_qubits(ControllerDesign::SfqMimdNaive, 1, &m, POWER_BUDGET_W);
        let decomp = max_qubits(ControllerDesign::SfqMimdDecomp, 1, &m, POWER_BUDGET_W);
        assert!(naive <= 2048, "naive {naive}");
        assert!(decomp <= 1024, "decomp {decomp}");
    }

    #[test]
    fn table_is_complete_and_ordered() {
        let t = scalability_table(&CostModel::default());
        assert_eq!(t.len(), 6);
        // DigiQ rows dominate the MIMD rows.
        let min2 = t[0].max_qubits;
        let naive = t[4].max_qubits;
        assert!(min2 > 10 * naive);
        for row in &t {
            assert!(row.tile_power_w > 0.0);
        }
        // Sharded synthesis merges identically.
        let p = scalability_table_parallel(&CostModel::default(), 3);
        assert_eq!(t.len(), p.len());
        for (a, b) in t.iter().zip(&p) {
            assert_eq!(a.design, b.design);
            assert_eq!(a.max_qubits, b.max_qubits);
        }
    }
}
