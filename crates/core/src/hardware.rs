//! Controller hardware composition and synthesis (Fig 5, Fig 8).
//!
//! Each design point is assembled hierarchically from synthesized
//! `sfq_hw` module netlists (splitter-legalized, path-balanced, retimed),
//! with module statistics multiplied by instance counts — the Fig 5
//! structure rendered in cells:
//!
//! * per **qubit controller**: a BS-way one-hot bitstream mux, the
//!   25-block SFQ/DC flux driver, and the double control buffer;
//! * per **group**: bitstream storage (circulating registers for the
//!   discrete designs; one register + a 255-stage tapped delay line with
//!   `BS` comparator-selected taps for DigiQ_opt) and broadcast splitter
//!   trees reaching every member qubit;
//! * per **chip**: the controller-cycle counter and an SFQ PLL for
//!   multi-chip clock sync (§VI-A3).
//!
//! Module synthesis is memoized process-wide through the
//! [`ns::HARDWARE_MODULE`] store namespace, keyed by (generator, params,
//! cost-model fingerprint): the Fig 8 sweep re-instantiates the same few
//! small modules at every design point, so each distinct module is
//! synthesized exactly once per process. [`clear_module_memo`] restores a
//! deterministic cold state for benches and tests.

use crate::design::{ControllerDesign, SystemConfig};
use crate::store::{lock_unpoisoned, ns, ArtifactStore};
use sfq_hw::cables::{cable_count, CableSpec};
use sfq_hw::cost::{CostModel, CostReport};
use sfq_hw::generators as gen;
use sfq_hw::json::{Json, ToJson};
use sfq_hw::netlist::{Netlist, NetlistStats};
use sfq_hw::passes::synthesize;
use std::sync::{Arc, Mutex, OnceLock};

/// SFQ/DC blocks per qubit current generator (Fig 4: 25).
pub const SFQDC_BLOCKS_PER_QUBIT: usize = 25;

/// JJ budget of the per-chip phase-locked loop (ref [56]; constant small
/// block, estimate documented in DESIGN.md).
pub const PLL_JJ: u64 = 500;

/// One composed module with its multiplicity.
#[derive(Debug, Clone)]
pub struct ModuleInstance {
    /// Human-readable module role.
    pub name: String,
    /// Instances in the full design.
    pub count: u64,
    /// Synthesized statistics of one instance (skipped in reports).
    pub stats: NetlistStats,
    /// Worst pipeline stage of one instance, ps.
    pub worst_stage_ps: f64,
}

impl ToJson for ModuleInstance {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("count", self.count.to_json()),
            ("worst_stage_ps", self.worst_stage_ps.to_json()),
        ])
    }
}

/// The fully composed hardware of one design point.
#[derive(Debug, Clone)]
pub struct DesignHardware {
    /// The configuration this was built for.
    pub config: SystemConfig,
    /// Module breakdown.
    pub modules: Vec<ModuleInstance>,
    /// Aggregate statistics (skipped in reports).
    pub total: NetlistStats,
    /// Cost summary (power W, area mm², worst stage ps).
    pub report: CostReport,
    /// Room-temperature cables required (Fig 8c).
    pub cables: u64,
}

impl ToJson for DesignHardware {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config.to_json()),
            ("modules", self.modules.to_json()),
            ("report", self.report.to_json()),
            ("cables", self.cables.to_json()),
        ])
    }
}

fn synthesized(mut nl: Netlist, model: &CostModel) -> (NetlistStats, f64) {
    synthesize(&mut nl);
    let stage = model.worst_stage_ps(&nl);
    (nl.stats(), stage)
}

/// A structural module generator plus its parameters — the memo key
/// domain of [`ns::HARDWARE_MODULE`]. The Fig 8 sweep instantiates the
/// same few small modules at every design point; describing them by value
/// lets [`build_hardware`] defer (and share) the actual synthesis.
#[derive(Debug, Clone)]
enum ModuleGen {
    CirculatingRegister(usize),
    OneHotMux(usize),
    BroadcastTree(usize),
    TappedDelayLine(usize, Vec<usize>),
    BinaryCounter(usize),
    EqualityComparator(usize),
    NdroBank(usize),
    SfqdcArray(usize),
    DoubleBuffer(usize),
}

impl ModuleGen {
    fn build(&self) -> Netlist {
        match self {
            ModuleGen::CirculatingRegister(bits) => gen::circulating_register(*bits),
            ModuleGen::OneHotMux(bs) => gen::one_hot_mux(*bs),
            ModuleGen::BroadcastTree(sinks) => gen::broadcast_tree(*sinks),
            ModuleGen::TappedDelayLine(n, taps) => gen::tapped_delay_line(*n, taps),
            ModuleGen::BinaryCounter(bits) => gen::binary_counter(*bits),
            ModuleGen::EqualityComparator(bits) => gen::equality_comparator(*bits),
            ModuleGen::NdroBank(bits) => gen::ndro_bank(*bits),
            ModuleGen::SfqdcArray(blocks) => gen::sfqdc_array(*blocks),
            ModuleGen::DoubleBuffer(bits) => gen::double_buffer(*bits),
        }
    }

    /// Memo key: generator tag, every parameter, and the cost-model
    /// fingerprint (the stage delay depends on the model).
    fn key(&self, model_hash: u64) -> u64 {
        let (tag, a, extra): (u64, usize, &[usize]) = match self {
            ModuleGen::CirculatingRegister(b) => (1, *b, &[]),
            ModuleGen::OneHotMux(b) => (2, *b, &[]),
            ModuleGen::BroadcastTree(b) => (3, *b, &[]),
            ModuleGen::TappedDelayLine(n, taps) => (4, *n, taps.as_slice()),
            ModuleGen::BinaryCounter(b) => (5, *b, &[]),
            ModuleGen::EqualityComparator(b) => (6, *b, &[]),
            ModuleGen::NdroBank(b) => (7, *b, &[]),
            ModuleGen::SfqdcArray(b) => (8, *b, &[]),
            ModuleGen::DoubleBuffer(b) => (9, *b, &[]),
        };
        let mut words = vec![tag, a as u64, model_hash];
        words.extend(extra.iter().map(|&t| t as u64));
        qsim::rng::stable_hash_str("hw_module", &words)
    }
}

/// Exact-content fingerprint of a cost model (bit patterns, so two models
/// share a memo entry only when every field is bitwise identical).
fn model_fingerprint(model: &CostModel) -> u64 {
    qsim::rng::stable_hash_str(
        "cost_model",
        &[
            model.bias_current_per_jj_ua.to_bits(),
            model.bias_voltage_mv.to_bits(),
            model.wiring_jj_overhead.to_bits(),
            model.area_utilization.to_bits(),
            model.jtl_hops_per_edge.to_bits(),
            model.clock_ghz.to_bits(),
            model.switching_activity.to_bits(),
            model.sfqdc_analog_nw.to_bits(),
        ],
    )
}

/// Memo value: one module's synthesized statistics and priced worst stage.
#[derive(Debug, Clone)]
struct ModuleSynth {
    stats: NetlistStats,
    worst_stage_ps: f64,
}

static MODULE_STORE: OnceLock<Mutex<Arc<ArtifactStore>>> = OnceLock::new();

fn module_store_cell() -> &'static Mutex<Arc<ArtifactStore>> {
    MODULE_STORE.get_or_init(|| Mutex::new(Arc::new(ArtifactStore::in_memory())))
}

/// The process-wide [`ns::HARDWARE_MODULE`] memo. Deliberately *not* the
/// engine's store: engine cache accounting (and the goldens pinning it)
/// stays untouched, mirroring `qsim::expm`'s eigendecomposition memo.
fn module_store() -> Arc<ArtifactStore> {
    lock_unpoisoned(module_store_cell()).clone()
}

/// Drops every memoized module synthesis (bench/test hygiene: makes a
/// subsequent [`build_hardware`] deterministically cold).
pub fn clear_module_memo() {
    *lock_unpoisoned(module_store_cell()) = Arc::new(ArtifactStore::in_memory());
}

/// Number of distinct modules currently memoized (observability for
/// tests).
pub fn module_memo_len() -> usize {
    module_store().stats().resident as usize
}

/// Composes and synthesizes the hardware for a configuration.
///
/// # Panics
///
/// Panics if called for [`ControllerDesign::ImpossibleMimd`] (it has no
/// buildable hardware — that is its point).
pub fn build_hardware(config: &SystemConfig, model: &CostModel) -> DesignHardware {
    assert!(
        config.design != ControllerDesign::ImpossibleMimd,
        "the Impossible MIMD reference has no hardware"
    );
    let nq = config.n_qubits as u64;
    let groups = config.groups as u64;
    let per_group_qubits = config.qubits_per_group();
    let mut modules: Vec<ModuleInstance> = Vec::new();

    let store = module_store();
    let model_hash = model_fingerprint(model);
    let mut push = |name: &str, count: u64, g: ModuleGen| {
        let key = g.key(model_hash);
        let synth = store.get_or_build(ns::HARDWARE_MODULE, key, || {
            let (stats, worst_stage_ps) = synthesized(g.build(), model);
            ModuleSynth {
                stats,
                worst_stage_ps,
            }
        });
        modules.push(ModuleInstance {
            name: name.to_string(),
            count,
            stats: synth.stats.clone(),
            worst_stage_ps: synth.worst_stage_ps,
        });
    };

    match config.design {
        ControllerDesign::SfqMimdNaive => {
            push(
                "per-qubit bitstream register",
                nq,
                ModuleGen::CirculatingRegister(config.register_bits),
            );
            push("per-qubit gate mux", nq, ModuleGen::OneHotMux(1));
        }
        ControllerDesign::SfqMimdDecomp => {
            push(
                "per-qubit basis registers",
                2 * nq,
                ModuleGen::CirculatingRegister(config.register_bits),
            );
            push("per-qubit gate mux", nq, ModuleGen::OneHotMux(2));
        }
        ControllerDesign::DigiqMin { bs } => {
            push(
                "per-group basis registers",
                groups * bs as u64,
                ModuleGen::CirculatingRegister(config.register_bits),
            );
            push(
                "per-group broadcast trees",
                groups * bs as u64,
                ModuleGen::BroadcastTree(per_group_qubits),
            );
            push("per-qubit bitstream mux", nq, ModuleGen::OneHotMux(bs));
        }
        ControllerDesign::DigiqOpt { bs } => {
            push(
                "per-group Ry register",
                groups,
                ModuleGen::CirculatingRegister(config.register_bits),
            );
            // Tap positions are dynamic: the line exposes every BS-worth
            // of taps via comparators; the line itself is shared.
            let taps: Vec<usize> = (0..bs).map(|k| (k + 1) * config.n_delays / bs).collect();
            push(
                "per-group delay line",
                groups,
                ModuleGen::TappedDelayLine(config.n_delays, taps),
            );
            push(
                "per-group delay counter",
                groups,
                ModuleGen::BinaryCounter(8),
            );
            push(
                "per-group tap selectors (comparator+latch)",
                groups * bs as u64,
                ModuleGen::EqualityComparator(8),
            );
            push(
                "per-group tap delay registers",
                groups * bs as u64,
                ModuleGen::NdroBank(8),
            );
            push(
                "per-group broadcast trees",
                groups * bs as u64,
                ModuleGen::BroadcastTree(per_group_qubits),
            );
            push("per-qubit bitstream mux", nq, ModuleGen::OneHotMux(bs));
        }
        ControllerDesign::ImpossibleMimd => unreachable!(),
    }

    // Common per-qubit blocks.
    push(
        "per-qubit SFQ/DC flux driver",
        nq,
        ModuleGen::SfqdcArray(SFQDC_BLOCKS_PER_QUBIT),
    );
    // Control staging: the SIMD designs double-buffer their select bits;
    // the MIMD baselines stream bits straight into their registers and
    // only stage a narrow select/valid word.
    let buffer_bits = match config.design {
        ControllerDesign::SfqMimdNaive => 1,
        ControllerDesign::SfqMimdDecomp => 3,
        _ => config.sel_bits_per_qubit().max(1),
    };
    push(
        "per-qubit control double-buffer",
        nq,
        ModuleGen::DoubleBuffer(buffer_bits),
    );
    // Per-chip controller-cycle counter (counts SFQ ticks in a cycle:
    // 508 ticks → 9 bits for DigiQ_opt).
    let cycle_ticks = (config.cycle_ns() / config.clock_period_ns).ceil() as usize;
    let counter_bits = (usize::BITS - cycle_ticks.leading_zeros()) as usize;
    push(
        "per-chip cycle counter",
        groups,
        ModuleGen::BinaryCounter(counter_bits),
    );

    // Roll up.
    let mut total = NetlistStats::default();
    let mut worst_stage: f64 = 0.0;
    for m in &modules {
        total.add_scaled(&m.stats, m.count);
        worst_stage = worst_stage.max(m.worst_stage_ps);
    }
    // PLL: flat JJ adder per chip (no netlist; documented estimate).
    total.total_jj += PLL_JJ * groups;
    total.cell_area_um2 += PLL_JJ as f64 * groups as f64 * 300.0;

    let report = model.report_composed(&total, worst_stage);
    let cables = cable_count(
        config.payload_bits_per_cycle(),
        config.cable_cycle_ns(),
        &CableSpec::default(),
    );

    DesignHardware {
        config: *config,
        modules,
        total,
        report,
        cables,
    }
}

/// One Fig 8 sweep row.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Design label.
    pub design: String,
    /// Group count.
    pub groups: usize,
    /// Total power per 1024 qubits, W.
    pub power_w: f64,
    /// Total area per 1024 qubits, mm².
    pub area_mm2: f64,
    /// Cable count per 1024 qubits.
    pub cables: u64,
    /// Worst stage delay, ps.
    pub worst_stage_ps: f64,
}

impl ToJson for Fig8Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("groups", self.groups.to_json()),
            ("power_w", self.power_w.to_json()),
            ("area_mm2", self.area_mm2.to_json()),
            ("cables", self.cables.to_json()),
            ("worst_stage_ps", self.worst_stage_ps.to_json()),
        ])
    }
}

/// The Fig 8 design points: both MIMD baselines plus
/// `DigiQ_min(BS∈{2,4})` and `DigiQ_opt(BS∈{2,4,8,16})` across
/// `G∈{2,4,8,16}`.
pub fn fig8_points() -> Vec<(ControllerDesign, usize)> {
    let mut points = vec![
        (ControllerDesign::SfqMimdNaive, 1),
        (ControllerDesign::SfqMimdDecomp, 1),
    ];
    for &g in &[2usize, 4, 8, 16] {
        for &bs in &[2usize, 4] {
            points.push((ControllerDesign::DigiqMin { bs }, g));
        }
        for &bs in &[2usize, 4, 8, 16] {
            points.push((ControllerDesign::DigiqOpt { bs }, g));
        }
    }
    points
}

/// Runs the full Fig 8 sweep serially (rows in [`fig8_points`] order).
pub fn fig8_sweep(model: &CostModel) -> Vec<Fig8Row> {
    fig8_sweep_parallel(model, 1)
}

/// Runs the full Fig 8 sweep sharded over `workers` threads via the
/// evaluation engine's ordered map — each point synthesizes
/// independently, and rows merge in [`fig8_points`] order regardless of
/// worker count.
pub fn fig8_sweep_parallel(model: &CostModel, workers: usize) -> Vec<Fig8Row> {
    let points = fig8_points();
    crate::engine::par_map_ordered(&points, workers, |_, &(design, groups)| {
        let cfg = SystemConfig::paper_default(design, groups);
        let hw = build_hardware(&cfg, model);
        Fig8Row {
            design: design.to_string(),
            groups,
            power_w: hw.report.power_w,
            area_mm2: hw.report.area_mm2,
            cables: hw.cables,
            worst_stage_ps: hw.report.worst_stage_ps,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    fn hw(design: ControllerDesign, groups: usize) -> DesignHardware {
        build_hardware(&SystemConfig::paper_default(design, groups), &model())
    }

    #[test]
    fn naive_mimd_matches_paper_scale() {
        // Fig 8 headline: SFQ_MIMD_naive = 5.9 W and 16,197 mm² per 1024
        // qubits. Registers dominate; our composition must land within
        // ~25% on both.
        let h = hw(ControllerDesign::SfqMimdNaive, 1);
        assert!(
            (h.report.power_w - 5.9).abs() / 5.9 < 0.25,
            "naive power {:.2} W vs paper 5.9 W",
            h.report.power_w
        );
        assert!(
            (h.report.area_mm2 - 16_197.0).abs() / 16_197.0 < 0.25,
            "naive area {:.0} mm² vs paper 16,197 mm²",
            h.report.area_mm2
        );
    }

    #[test]
    fn decomp_mimd_roughly_doubles_naive() {
        // Fig 8: SFQ_MIMD_decomp = 10.7 W, 29,571 mm² — about 2× naive.
        let n = hw(ControllerDesign::SfqMimdNaive, 1);
        let d = hw(ControllerDesign::SfqMimdDecomp, 1);
        let ratio = d.report.power_w / n.report.power_w;
        assert!((1.6..2.2).contains(&ratio), "power ratio {ratio:.2}");
    }

    #[test]
    fn digiq_designs_are_orders_cheaper_than_mimd() {
        // Fig 8a: every DigiQ point sits below 1.5 W vs 5.9/10.7 W.
        let naive = hw(ControllerDesign::SfqMimdNaive, 1);
        for &bs in &[2usize, 4] {
            let h = hw(ControllerDesign::DigiqMin { bs }, 2);
            assert!(
                h.report.power_w < 1.5 && h.report.power_w < naive.report.power_w / 4.0,
                "min(BS={bs}) power {:.3} W",
                h.report.power_w
            );
        }
        for &bs in &[2usize, 4, 8, 16] {
            let h = hw(ControllerDesign::DigiqOpt { bs }, 2);
            assert!(
                h.report.power_w < 1.5,
                "opt(BS={bs}) power {:.3} W",
                h.report.power_w
            );
        }
    }

    #[test]
    fn cost_grows_with_bs() {
        let p2 = hw(ControllerDesign::DigiqOpt { bs: 2 }, 2).report.power_w;
        let p16 = hw(ControllerDesign::DigiqOpt { bs: 16 }, 2).report.power_w;
        assert!(p16 > p2, "BS=16 must cost more than BS=2");
        let m2 = hw(ControllerDesign::DigiqMin { bs: 2 }, 2).report.power_w;
        let m4 = hw(ControllerDesign::DigiqMin { bs: 4 }, 2).report.power_w;
        assert!(m4 > m2);
    }

    #[test]
    fn same_bs_times_g_has_similar_cost() {
        // §VI-A3's surprise: designs with equal BS·G cost about the same,
        // because group logic duplicates as G rises while qubit muxes
        // shrink with BS. Check BS·G = 16 within 2×.
        let a = hw(ControllerDesign::DigiqOpt { bs: 8 }, 2).report.power_w;
        let b = hw(ControllerDesign::DigiqOpt { bs: 4 }, 4).report.power_w;
        let c = hw(ControllerDesign::DigiqOpt { bs: 2 }, 8).report.power_w;
        for (x, y) in [(a, b), (b, c), (a, c)] {
            let ratio = x.max(y) / x.min(y);
            assert!(ratio < 2.0, "BS·G=16 spread too wide: {a:.3} {b:.3} {c:.3}");
        }
    }

    #[test]
    fn worst_stage_near_paper_34_5ps() {
        // §VI-A2: worst stage delay 34.5 ps → 40 ps clock. Ours must stay
        // under the 40 ps clock and within a plausible band.
        for &bs in &[2usize, 8, 16] {
            let h = hw(ControllerDesign::DigiqOpt { bs }, 2);
            assert!(
                (20.0..40.0).contains(&h.report.worst_stage_ps),
                "stage {:.1} ps at BS={bs}",
                h.report.worst_stage_ps
            );
        }
    }

    #[test]
    fn cable_counts_match_fig8c_scale() {
        // §VI-A4: DigiQ_min(G=2,BS=2) = 39 cables; DigiQ_opt(G=2,BS=16)
        // = 33 cables; MIMD baselines in the hundreds/thousands.
        let min2 = hw(ControllerDesign::DigiqMin { bs: 2 }, 2);
        assert!(
            (35..=43).contains(&min2.cables),
            "min cables {}",
            min2.cables
        );
        let opt16 = hw(ControllerDesign::DigiqOpt { bs: 16 }, 2);
        assert!(
            (28..=38).contains(&opt16.cables),
            "opt cables {}",
            opt16.cables
        );
        let naive = hw(ControllerDesign::SfqMimdNaive, 1);
        assert!(naive.cables > 1000, "naive cables {}", naive.cables);
    }

    #[test]
    fn module_breakdown_accounts_for_total() {
        let h = hw(ControllerDesign::DigiqOpt { bs: 8 }, 2);
        let mut sum = NetlistStats::default();
        for m in &h.modules {
            sum.add_scaled(&m.stats, m.count);
        }
        // Total = modules + PLL adder.
        assert_eq!(h.total.total_jj, sum.total_jj + PLL_JJ * 2);
    }

    #[test]
    fn fig8_sweep_has_all_points() {
        let rows = fig8_sweep(&model());
        // 2 baselines + 4 G × (2 min + 4 opt) = 26.
        assert_eq!(rows.len(), 26);
        assert_eq!(rows.len(), fig8_points().len());
        assert!(rows.iter().all(|r| r.power_w > 0.0 && r.area_mm2 > 0.0));
    }

    #[test]
    fn fig8_sweep_parallel_matches_serial() {
        let serial = fig8_sweep(&model());
        let parallel = fig8_sweep_parallel(&model(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.design, b.design);
            assert_eq!(a.groups, b.groups);
            assert_eq!(a.power_w, b.power_w);
            assert_eq!(a.area_mm2, b.area_mm2);
            assert_eq!(a.cables, b.cables);
            assert_eq!(a.worst_stage_ps, b.worst_stage_ps);
        }
    }

    #[test]
    #[should_panic]
    fn impossible_mimd_has_no_hardware() {
        let _ = hw(ControllerDesign::ImpossibleMimd, 1);
    }

    #[test]
    fn module_memo_deduplicates_synthesis() {
        clear_module_memo();
        let cold = hw(ControllerDesign::DigiqOpt { bs: 8 }, 2);
        let n = module_memo_len();
        assert!(n > 0, "cold build must populate the module memo");
        // A warm rebuild of the same point hits the memo for every
        // module: no netlist is materialized at all, and the results are
        // the very same synthesized statistics.
        let (warm, tally) =
            sfq_hw::counters::counted(|| hw(ControllerDesign::DigiqOpt { bs: 8 }, 2));
        assert_eq!(tally.allocs, 0, "warm build must synthesize no modules");
        assert_eq!(tally.cells, 0, "warm build must run no passes");
        assert_eq!(warm.total.total_jj, cold.total.total_jj);
        assert_eq!(warm.report.power_w, cold.report.power_w);
        assert_eq!(warm.report.worst_stage_ps, cold.report.worst_stage_ps);
        // Other concurrently running tests may add entries, never remove.
        assert!(module_memo_len() >= n);
    }
}
