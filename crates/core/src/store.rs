//! The unified, content-addressed artifact store.
//!
//! Every expensive artifact the evaluation engine builds — benchmark
//! circuits, synthesized hardware, compiled pipeline stages, sequence
//! databases, baseline executions, co-simulation reports — used to live
//! in its own ad-hoc per-process cache. This module replaces all of them
//! with one [`ArtifactStore`]:
//!
//! * **content-addressed** — values are keyed by 64-bit stable digests
//!   ([`qsim::rng::stable_hash`] chains: circuit fingerprints, pipeline
//!   stage keys, design parameters), grouped into string *namespaces*
//!   (`circuit`, `hardware`, `stage/route`, `baseline`, `cosim`, …);
//! * **sharded** — entries spread over independently locked shards, with
//!   build-once semantics per key: the first caller runs the builder,
//!   concurrent callers of the same key block on the same slot and share
//!   the built [`Arc`];
//! * **bounded** — an optional capacity with least-recently-used
//!   eviction; evicting never changes results, it only costs a rebuild
//!   on the next lookup;
//! * **persistent** — namespaces whose values implement [`Artifact`]
//!   (compiled pipeline stages, [`ExecReport`] baselines,
//!   [`CosimReport`]s) spill to disk under `--cache-dir` with atomic
//!   write-then-rename, so a second sweep warm-starts across processes;
//!   corrupt or truncated files are treated as misses and rebuilt;
//! * **accounted** — per-namespace hit / miss / disk-hit / build /
//!   eviction counters ([`ArtifactStore::stats`]), surfaced beside the
//!   engine's `PassCacheStats`.
//!
//! The default configuration (in-memory, unbounded) reproduces the
//! historical per-process cache behaviour bit for bit — the golden files
//! `tests/golden/engine_smoke.json` and `tests/golden/cosim_smoke.json`
//! pin this.
//!
//! On-disk layout (format [`DISK_FORMAT_VERSION`], see README):
//!
//! ```text
//! <cache-dir>/v1/<namespace>/<key as %016x>.json   one artifact per file
//! <cache-dir>/v1/journal/<spec key>.jsonl          sweep completion journal
//! <cache-dir>/v1/journal/<spec key>.<label>.jsonl  per-worker shard journal
//! <cache-dir>/v1/claims/<spec key>/<index>.claim   distributed job claims
//! ```

use crate::cosim::CosimReport;
use crate::design::ControllerDesign;
use crate::exec::ExecReport;
use crate::system::MinBasisKind;
use qcircuit::ir::{Circuit, Gate, OneQ};
use qcircuit::mapping::Layout;
use qcircuit::pipeline::{
    CompileArtifact, CompileWorkspace, PassMetrics, Pipeline, PipelineConfig,
};
use qcircuit::topology::Grid;
use sfq_hw::json::{Json, ToJson};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Version directory of the on-disk artifact format. Bump only for a
/// deliberate, documented format change (see the ROADMAP's stability
/// rules); old version directories are simply ignored, never migrated.
pub const DISK_FORMAT_VERSION: &str = "v1";

/// Locks a mutex, recovering the guard when a previous holder panicked.
///
/// Every shared structure guarded this way (store shards, counters,
/// metric aggregations, result slots) is updated atomically from the
/// caller's perspective — a panicking worker can leave the data stale but
/// never torn — so recovering from the poison flag is always safe and
/// keeps one crashed job from wedging every subsequent cache access.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Well-known namespace names of the evaluation engine's artifacts.
pub mod ns {
    /// Generated benchmark circuits (in-memory only).
    pub const CIRCUIT: &str = "circuit";
    /// Synthesized design hardware (in-memory only).
    pub const HARDWARE: &str = "hardware";
    /// Meet-in-the-middle sequence databases (in-memory only).
    pub const SEQ_DB: &str = "seq_db";
    /// Measured decomposition-length distributions (in-memory only).
    pub const MIN_LENGTHS: &str = "min_lengths";
    /// Memoized calibration-search artifacts keyed by exact basis
    /// content: prebuilt `OptTables` delay products and DigiQ_min
    /// sequence databases shared across qubits and repeat evaluations
    /// (in-memory only — cheap to rebuild, expensive to redo per qubit).
    /// Not part of [`crate::engine::CacheStats`] accounting.
    pub const CALIB_MEMO: &str = "calib/memo";
    /// Memoized per-module synthesis results keyed by (generator,
    /// params, cost-model hash): the Fig 8 sweep instantiates the same
    /// small module (one-hot mux, circulating register, …) at every
    /// design point, so each distinct module is synthesized exactly once
    /// per process (in-memory only). Not part of
    /// [`crate::engine::CacheStats`] accounting.
    pub const HARDWARE_MODULE: &str = "hardware/module";
    /// Impossible-MIMD baseline executions (persistent).
    pub const BASELINE: &str = "baseline";
    /// Cycle-accurate co-simulation reports (persistent).
    pub const COSIM: &str = "cosim";
    /// Prefix of the per-pipeline-stage namespaces (persistent).
    pub const STAGE_PREFIX: &str = "stage/";

    /// The namespace of one compile-pipeline stage label.
    pub fn stage(label: &str) -> String {
        format!("{STAGE_PREFIX}{label}")
    }
}

/// A value the store can persist: a JSON codec over [`sfq_hw::json`]
/// whose decode validates enough to reject corrupt files.
pub trait Artifact: Send + Sync + Sized + 'static {
    /// Short machine-readable kind name (debugging / docs).
    fn kind() -> &'static str;

    /// Serializes the artifact for disk.
    fn encode(&self) -> Json;

    /// Reconstructs an artifact from its [`Artifact::encode`] form.
    /// `decode(encode(x))` must equal `x` exactly (bit-exact floats), so
    /// a warm-started run serializes byte-identical reports.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch; the store
    /// treats any error as a corrupt file and rebuilds.
    fn decode(j: &Json) -> Result<Self, String>;
}

// ---------------------------------------------------------------------
// Artifact codecs
// ---------------------------------------------------------------------

impl Artifact for ExecReport {
    fn kind() -> &'static str {
        "exec_report"
    }

    fn encode(&self) -> Json {
        self.to_json()
    }

    fn decode(j: &Json) -> Result<Self, String> {
        ExecReport::from_json(j)
    }
}

impl Artifact for CosimReport {
    fn kind() -> &'static str {
        "cosim_report"
    }

    fn encode(&self) -> Json {
        self.to_json()
    }

    fn decode(j: &Json) -> Result<Self, String> {
        CosimReport::from_json(j)
    }
}

fn gate_to_json(g: &Gate) -> Json {
    fn tagged(tag: &str, rest: &[Json]) -> Json {
        let mut items = vec![tag.to_json()];
        items.extend_from_slice(rest);
        Json::Arr(items)
    }
    match *g {
        Gate::OneQ { q, kind } => match kind {
            OneQ::H => tagged("h", &[q.to_json()]),
            OneQ::X => tagged("x", &[q.to_json()]),
            OneQ::Y => tagged("y", &[q.to_json()]),
            OneQ::Z => tagged("z", &[q.to_json()]),
            OneQ::S => tagged("s", &[q.to_json()]),
            OneQ::Sdg => tagged("sdg", &[q.to_json()]),
            OneQ::T => tagged("t", &[q.to_json()]),
            OneQ::Tdg => tagged("tdg", &[q.to_json()]),
            OneQ::Rx(a) => tagged("rx", &[q.to_json(), a.to_json()]),
            OneQ::Ry(a) => tagged("ry", &[q.to_json(), a.to_json()]),
            OneQ::Rz(a) => tagged("rz", &[q.to_json(), a.to_json()]),
            OneQ::U { theta, phi, lam } => tagged(
                "u",
                &[q.to_json(), theta.to_json(), phi.to_json(), lam.to_json()],
            ),
        },
        Gate::Cx { c, t } => tagged("cx", &[c.to_json(), t.to_json()]),
        Gate::Cz { a, b } => tagged("cz", &[a.to_json(), b.to_json()]),
        Gate::Swap { a, b } => tagged("swap", &[a.to_json(), b.to_json()]),
        Gate::Ccx { c1, c2, t } => tagged("ccx", &[c1.to_json(), c2.to_json(), t.to_json()]),
    }
}

fn gate_from_json(j: &Json, n_qubits: usize) -> Result<Gate, String> {
    let items = match j {
        Json::Arr(items) if !items.is_empty() => items,
        _ => return Err("gate must be a non-empty array".to_string()),
    };
    let tag = items[0].as_str().ok_or("gate tag must be a string")?;
    let qubit = |i: usize| -> Result<usize, String> {
        let x = items
            .get(i)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("gate `{tag}` operand {i} must be a number"))?;
        if x < 0.0 || x.fract() != 0.0 || x >= n_qubits as f64 {
            return Err(format!("gate `{tag}` qubit {x} out of range {n_qubits}"));
        }
        Ok(x as usize)
    };
    let angle = |i: usize| -> Result<f64, String> {
        items
            .get(i)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("gate `{tag}` angle {i} must be a number"))
    };
    let arity = |n: usize| -> Result<(), String> {
        if items.len() == n + 1 {
            Ok(())
        } else {
            Err(format!("gate `{tag}` takes {n} operand(s)"))
        }
    };
    let oneq = |kind: OneQ, n: usize| -> Result<Gate, String> {
        arity(n)?;
        Ok(Gate::OneQ { q: qubit(1)?, kind })
    };
    let pair = |make: fn(usize, usize) -> Gate| -> Result<Gate, String> {
        arity(2)?;
        let (a, b) = (qubit(1)?, qubit(2)?);
        if a == b {
            return Err(format!("gate `{tag}` repeats qubit {a}"));
        }
        Ok(make(a, b))
    };
    match tag {
        "h" => oneq(OneQ::H, 1),
        "x" => oneq(OneQ::X, 1),
        "y" => oneq(OneQ::Y, 1),
        "z" => oneq(OneQ::Z, 1),
        "s" => oneq(OneQ::S, 1),
        "sdg" => oneq(OneQ::Sdg, 1),
        "t" => oneq(OneQ::T, 1),
        "tdg" => oneq(OneQ::Tdg, 1),
        "rx" => oneq(OneQ::Rx(angle(2)?), 2),
        "ry" => oneq(OneQ::Ry(angle(2)?), 2),
        "rz" => oneq(OneQ::Rz(angle(2)?), 2),
        "u" => oneq(
            OneQ::U {
                theta: angle(2)?,
                phi: angle(3)?,
                lam: angle(4)?,
            },
            4,
        ),
        "cx" => pair(|c, t| Gate::Cx { c, t }),
        "cz" => pair(|a, b| Gate::Cz { a, b }),
        "swap" => pair(|a, b| Gate::Swap { a, b }),
        "ccx" => {
            arity(3)?;
            let (c1, c2, t) = (qubit(1)?, qubit(2)?, qubit(3)?);
            if c1 == c2 || c1 == t || c2 == t {
                return Err("gate `ccx` repeats a qubit".to_string());
            }
            Ok(Gate::Ccx { c1, c2, t })
        }
        other => Err(format!("unknown gate tag `{other}`")),
    }
}

fn circuit_to_json(c: &Circuit) -> Json {
    Json::obj([
        ("n_qubits", c.n_qubits().to_json()),
        (
            "gates",
            Json::Arr(c.gates().iter().map(gate_to_json).collect()),
        ),
    ])
}

fn circuit_from_json(j: &Json) -> Result<Circuit, String> {
    const CTX: &str = "circuit";
    let n_qubits = j.count_field("n_qubits", CTX)? as usize;
    if n_qubits > MAX_DECODED_QUBITS {
        return Err(format!("circuit width {n_qubits} is implausible"));
    }
    let mut circuit = Circuit::new(n_qubits);
    for g in j.arr_field("gates", CTX)? {
        circuit.push(gate_from_json(g, n_qubits)?);
    }
    Ok(circuit)
}

fn layout_to_json(l: &Layout) -> Json {
    Json::obj([
        ("log_to_phys", l.assignment().to_json()),
        ("n_physical", l.n_physical().to_json()),
    ])
}

/// Upper bound on decoded register sizes: far above any real device
/// (the paper grid is 1,024 qubits) but small enough that a corrupt
/// cache file's `n_physical` can never drive a huge allocation — decode
/// must *reject* damaged files, not abort the process on them.
const MAX_DECODED_QUBITS: usize = 1 << 24;

fn layout_from_json(j: &Json) -> Result<Layout, String> {
    const CTX: &str = "layout";
    let n_physical = j.count_field("n_physical", CTX)? as usize;
    if n_physical > MAX_DECODED_QUBITS {
        return Err(format!("layout register size {n_physical} is implausible"));
    }
    let mut log_to_phys = Vec::new();
    let mut seen = vec![false; n_physical];
    for p in j.arr_field("log_to_phys", CTX)? {
        let x = p.as_f64().ok_or("layout entries must be numbers")?;
        if x < 0.0 || x.fract() != 0.0 || x >= n_physical as f64 {
            return Err(format!("layout maps outside {n_physical} physical qubits"));
        }
        let p = x as usize;
        if seen[p] {
            return Err(format!("layout assigns physical qubit {p} twice"));
        }
        seen[p] = true;
        log_to_phys.push(p);
    }
    Ok(Layout::from_assignment(log_to_phys, n_physical))
}

impl Artifact for CompileArtifact {
    fn kind() -> &'static str {
        "compile_artifact"
    }

    fn encode(&self) -> Json {
        let slots = match &self.slots {
            Some(slots) => slots.to_json(),
            None => Json::Null,
        };
        Json::obj([
            ("circuit", circuit_to_json(&self.circuit)),
            ("logical_gates", self.logical_gates.to_json()),
            ("swaps", self.swaps.to_json()),
            ("initial_layout", layout_to_json(&self.initial_layout)),
            ("final_layout", layout_to_json(&self.final_layout)),
            ("slots", slots),
        ])
    }

    fn decode(j: &Json) -> Result<Self, String> {
        const CTX: &str = "compile artifact";
        let circuit = circuit_from_json(
            j.get("circuit")
                .ok_or("compile artifact missing `circuit`")?,
        )?;
        let slots = match j.get("slots") {
            None => return Err("compile artifact missing `slots`".to_string()),
            Some(Json::Null) => None,
            Some(Json::Arr(slots)) => {
                let mut out: Vec<Vec<usize>> = Vec::with_capacity(slots.len());
                for slot in slots {
                    let items = match slot {
                        Json::Arr(items) => items,
                        _ => return Err("schedule slots must be arrays".to_string()),
                    };
                    let mut gates = Vec::with_capacity(items.len());
                    for g in items {
                        let x = g.as_f64().ok_or("slot entries must be numbers")?;
                        if x < 0.0 || x.fract() != 0.0 || x >= circuit.len() as f64 {
                            return Err(format!(
                                "slot references gate {x} outside the {}-gate circuit",
                                circuit.len()
                            ));
                        }
                        gates.push(x as usize);
                    }
                    out.push(gates);
                }
                Some(out)
            }
            Some(_) => return Err("compile artifact `slots` must be an array or null".to_string()),
        };
        Ok(CompileArtifact {
            logical_gates: j.count_field("logical_gates", CTX)? as usize,
            swaps: j.count_field("swaps", CTX)? as usize,
            initial_layout: layout_from_json(
                j.get("initial_layout")
                    .ok_or("compile artifact missing `initial_layout`")?,
            )?,
            final_layout: layout_from_json(
                j.get("final_layout")
                    .ok_or("compile artifact missing `final_layout`")?,
            )?,
            circuit,
            slots,
        })
    }
}

// ---------------------------------------------------------------------
// Stable content keys
// ---------------------------------------------------------------------

/// The stable word encoding of a design point (discriminant plus `BS`),
/// the building block of hardware / co-simulation content keys.
pub fn design_words(design: ControllerDesign) -> [u64; 2] {
    match design {
        ControllerDesign::SfqMimdNaive => [0, 0],
        ControllerDesign::SfqMimdDecomp => [1, 0],
        ControllerDesign::DigiqMin { bs } => [2, bs as u64],
        ControllerDesign::DigiqOpt { bs } => [3, bs as u64],
        ControllerDesign::ImpossibleMimd => [4, 0],
    }
}

/// Content key of synthesized hardware: design point × group count.
pub fn hardware_key(design: ControllerDesign, groups: usize) -> u64 {
    let [d, bs] = design_words(design);
    qsim::rng::stable_hash_str("hardware", &[d, bs, groups as u64])
}

/// Content key of a sequence database / length distribution basis kind.
pub fn basis_kind_key(kind: MinBasisKind) -> u64 {
    let word = match kind {
        MinBasisKind::IdealRyT => 0,
        MinBasisKind::Rich4 => 1,
    };
    qsim::rng::stable_hash_str("min_basis", &[word])
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// Configuration of an [`ArtifactStore`].
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Maximum resident entries across all namespaces (`None`:
    /// unbounded). When exceeded, the least-recently-used entry is
    /// evicted; evictions never change results, only cost rebuilds.
    pub capacity: Option<usize>,
    /// Root directory for disk persistence (`None`: in-memory only).
    /// Artifacts land under `<cache_dir>/v1/<namespace>/<key>.json`.
    pub cache_dir: Option<PathBuf>,
}

type ArcAny = Arc<dyn Any + Send + Sync>;

struct Entry {
    slot: Arc<OnceLock<ArcAny>>,
    last_used: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    hits: u64,
    misses: u64,
    disk_hits: u64,
    builds: u64,
    evictions: u64,
    coalesced: u64,
}

const SHARD_COUNT: usize = 16;

/// The unified content-addressed artifact store (see the module docs).
pub struct ArtifactStore {
    shards: Vec<Mutex<HashMap<(String, u64), Entry>>>,
    counters: Mutex<BTreeMap<String, Counters>>,
    resident: AtomicUsize,
    clock: AtomicU64,
    tmp_seq: AtomicU64,
    tmp_swept: u64,
    capacity: Option<usize>,
    disk_root: Option<PathBuf>,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("resident", &self.resident())
            .field("capacity", &self.capacity)
            .field("disk_root", &self.disk_root)
            .finish()
    }
}

impl Default for ArtifactStore {
    fn default() -> Self {
        ArtifactStore::in_memory()
    }
}

impl ArtifactStore {
    /// An unbounded, in-memory store — the default configuration every
    /// golden file pins.
    pub fn in_memory() -> Self {
        ArtifactStore::with_config(StoreConfig::default())
    }

    /// A store with explicit capacity / persistence configuration.
    ///
    /// Opening a persistent store also sweeps orphaned atomic-write temp
    /// files (left by writers that died between write and rename) out of
    /// the disk root; the count is reported in [`StoreStats::tmp_swept`].
    pub fn with_config(config: StoreConfig) -> Self {
        let disk_root = config.cache_dir.map(|d| d.join(DISK_FORMAT_VERSION));
        let tmp_swept = disk_root.as_deref().map_or(0, sweep_orphan_tmp);
        ArtifactStore {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            counters: Mutex::new(BTreeMap::new()),
            resident: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            tmp_swept,
            capacity: config.capacity,
            disk_root,
        }
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The versioned disk root (`<cache_dir>/v1`), if persistence is on.
    pub fn disk_root(&self) -> Option<&Path> {
        self.disk_root.as_deref()
    }

    /// The journal directory a persistent sweep uses, for a cache dir.
    pub fn journal_dir(cache_dir: &Path) -> PathBuf {
        cache_dir.join(DISK_FORMAT_VERSION).join("journal")
    }

    /// Orphaned atomic-write temp files swept when this store opened.
    pub fn tmp_swept(&self) -> u64 {
        self.tmp_swept
    }

    /// Entries currently resident in memory.
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    fn shard_index(ns: &str, key: u64) -> usize {
        (qsim::rng::stable_hash_str(ns, &[key]) % SHARD_COUNT as u64) as usize
    }

    /// The build-once slot of `(ns, key)`, stamping its LRU clock.
    fn slot(&self, ns: &str, key: u64) -> Arc<OnceLock<ArcAny>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_unpoisoned(&self.shards[Self::shard_index(ns, key)]);
        let entry = shard.entry((ns.to_string(), key)).or_insert_with(|| Entry {
            slot: Arc::new(OnceLock::new()),
            last_used: 0,
        });
        entry.last_used = stamp;
        Arc::clone(&entry.slot)
    }

    fn downcast<T: Send + Sync + 'static>(ns: &str, any: ArcAny) -> Arc<T> {
        any.downcast::<T>().unwrap_or_else(|_| {
            panic!("artifact store namespace `{ns}` holds a different value type")
        })
    }

    /// Counter bookkeeping for one lookup. For misses this runs *inside*
    /// the init closure — before the slot's value becomes visible — so a
    /// coalesced waiter can never observe the artifact while its build is
    /// still uncounted (stats readers rely on `builds >= 1` the moment a
    /// result exists; the old post-init accounting raced them on fast
    /// paths). `coalesced` marks a hit that arrived while another
    /// caller's build of the same key was still in flight (the lookup
    /// blocked on — or raced with — that build instead of running its
    /// own); coalesced hits are counted inside `hits` too.
    fn count_lookup(&self, ns: &str, initialized: bool, from_disk: bool, coalesced: bool) {
        let mut map = lock_unpoisoned(&self.counters);
        let c = map.entry(ns.to_string()).or_default();
        if initialized {
            c.misses += 1;
            if from_disk {
                c.disk_hits += 1;
            } else {
                c.builds += 1;
            }
        } else {
            c.hits += 1;
            if coalesced {
                c.coalesced += 1;
            }
        }
    }

    /// Returns the value for `(ns, key)`, building it in memory on first
    /// use. Concurrent callers of the same key block until the one
    /// running builder finishes, so no artifact is ever built twice
    /// (unless evicted in between). Also reports whether *this* call
    /// populated the entry (a miss).
    pub fn fetch<T: Send + Sync + 'static>(
        &self,
        ns: &str,
        key: u64,
        build: impl FnOnce() -> T,
    ) -> (Arc<T>, bool) {
        let slot = self.slot(ns, key);
        let pending = slot.get().is_none();
        let mut initialized = false;
        let any = slot
            .get_or_init(|| {
                initialized = true;
                let value = Arc::new(build()) as ArcAny;
                self.resident.fetch_add(1, Ordering::Relaxed);
                self.count_lookup(ns, true, false, false);
                value
            })
            .clone();
        if initialized {
            self.evict_to_capacity();
        } else {
            self.count_lookup(ns, false, false, pending);
        }
        (Self::downcast(ns, any), initialized)
    }

    /// [`ArtifactStore::fetch`] without the miss flag.
    pub fn get_or_build<T: Send + Sync + 'static>(
        &self,
        ns: &str,
        key: u64,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        self.fetch(ns, key, build).0
    }

    /// The persistent variant of [`ArtifactStore::fetch`]: on a memory
    /// miss, the store first tries `<disk_root>/<ns>/<key>.json` (a
    /// *disk hit* — no build), and only then runs the builder and writes
    /// the result back with atomic write-then-rename. Without a disk
    /// root this is exactly [`ArtifactStore::fetch`].
    pub fn fetch_artifact<T: Artifact>(
        &self,
        ns: &str,
        key: u64,
        build: impl FnOnce() -> T,
    ) -> (Arc<T>, bool) {
        let slot = self.slot(ns, key);
        let pending = slot.get().is_none();
        let mut initialized = false;
        let any = slot
            .get_or_init(|| {
                initialized = true;
                let mut from_disk = false;
                let value = match self.disk_load::<T>(ns, key) {
                    Some(v) => {
                        from_disk = true;
                        Arc::new(v) as ArcAny
                    }
                    None => {
                        let v = build();
                        self.disk_store(ns, key, &v);
                        Arc::new(v) as ArcAny
                    }
                };
                self.resident.fetch_add(1, Ordering::Relaxed);
                self.count_lookup(ns, true, from_disk, false);
                value
            })
            .clone();
        if initialized {
            self.evict_to_capacity();
        } else {
            self.count_lookup(ns, false, false, pending);
        }
        (Self::downcast(ns, any), initialized)
    }

    /// A counter-neutral read: the resident value for `(ns, key)` if it
    /// is already built, touching neither the hit/miss counters nor the
    /// LRU clock (so peeking never changes accounting or eviction
    /// order). Used by resumed sweeps to fingerprint already-generated
    /// circuits without re-generating them.
    pub fn peek<T: Send + Sync + 'static>(&self, ns: &str, key: u64) -> Option<Arc<T>> {
        let shard = lock_unpoisoned(&self.shards[Self::shard_index(ns, key)]);
        let any = shard.get(&(ns.to_string(), key))?.slot.get()?.clone();
        drop(shard);
        Some(Self::downcast(ns, any))
    }

    /// [`ArtifactStore::fetch_artifact`] without the miss flag.
    pub fn get_or_build_artifact<T: Artifact>(
        &self,
        ns: &str,
        key: u64,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        self.fetch_artifact(ns, key, build).0
    }

    fn disk_path(&self, ns: &str, key: u64) -> Option<PathBuf> {
        Some(
            self.disk_root
                .as_ref()?
                .join(ns)
                .join(format!("{key:016x}.json")),
        )
    }

    /// Best-effort disk read: any IO, parse, or decode failure is a miss
    /// (the builder runs and overwrites the corrupt file).
    fn disk_load<T: Artifact>(&self, ns: &str, key: u64) -> Option<T> {
        let text = std::fs::read_to_string(self.disk_path(ns, key)?).ok()?;
        T::decode(&Json::parse(&text).ok()?).ok()
    }

    /// Best-effort atomic disk write: the artifact lands under a unique
    /// temporary name first and is renamed into place, so concurrent
    /// processes and interrupted runs never leave a half-written file
    /// under the final name. IO errors are swallowed — persistence is an
    /// accelerator, never a correctness dependency.
    fn disk_store<T: Artifact>(&self, ns: &str, key: u64, value: &T) {
        let Some(path) = self.disk_path(ns, key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(
            ".{key:016x}.tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, value.encode().render()).is_ok() {
            if std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Evicts least-recently-used initialized entries until the resident
    /// count fits the capacity. Mid-build entries are never evicted, and
    /// callers already holding an evicted value's `Arc` keep it alive.
    fn evict_to_capacity(&self) {
        let Some(cap) = self.capacity else { return };
        while self.resident.load(Ordering::Relaxed) > cap {
            let mut victim: Option<(usize, String, u64, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = lock_unpoisoned(shard);
                for ((ns, key), entry) in shard.iter() {
                    let older = victim.as_ref().is_none_or(|v| entry.last_used < v.3);
                    if entry.slot.get().is_some() && older {
                        victim = Some((i, ns.clone(), *key, entry.last_used));
                    }
                }
            }
            let Some((i, ns, key, stamp)) = victim else {
                return; // nothing evictable (everything is mid-build)
            };
            let removed = {
                let mut shard = lock_unpoisoned(&self.shards[i]);
                match shard.get(&(ns.clone(), key)) {
                    // Re-check under the lock: a concurrent hit may have
                    // refreshed the stamp, in which case we rescan.
                    Some(e) if e.last_used == stamp && e.slot.get().is_some() => {
                        shard.remove(&(ns.clone(), key));
                        true
                    }
                    _ => false,
                }
            };
            if removed {
                self.resident.fetch_sub(1, Ordering::Relaxed);
                let mut map = lock_unpoisoned(&self.counters);
                map.entry(ns).or_default().evictions += 1;
            }
        }
    }

    /// The counters of one namespace (all zero when it was never used).
    pub fn namespace_stats(&self, namespace: &str) -> NamespaceStats {
        let map = lock_unpoisoned(&self.counters);
        let c = map.get(namespace).copied().unwrap_or_default();
        NamespaceStats {
            namespace: namespace.to_string(),
            hits: c.hits,
            misses: c.misses,
            disk_hits: c.disk_hits,
            builds: c.builds,
            evictions: c.evictions,
            coalesced: c.coalesced,
        }
    }

    /// A snapshot of every namespace's counters, name-sorted, plus the
    /// store-wide resident entry count.
    pub fn stats(&self) -> StoreStats {
        let map = lock_unpoisoned(&self.counters);
        StoreStats {
            namespaces: map
                .iter()
                .map(|(namespace, c)| NamespaceStats {
                    namespace: namespace.clone(),
                    hits: c.hits,
                    misses: c.misses,
                    disk_hits: c.disk_hits,
                    builds: c.builds,
                    evictions: c.evictions,
                    coalesced: c.coalesced,
                })
                .collect(),
            resident: self.resident() as u64,
            tmp_swept: self.tmp_swept,
        }
    }
}

/// Removes orphaned atomic-write temp files (`.{key}.tmp.{pid}.{seq}`)
/// from every namespace directory under `root`. A writer that dies
/// between `fs::write` and `rename` leaks its temp file forever —
/// harmless to readers, but in a cache dir shared by many worker
/// processes they accumulate without bound. A temp file is swept only
/// when its embedded writer pid is provably dead; everything else
/// (including the claims and journal directories, whose names never
/// match the pattern) is left alone.
fn sweep_orphan_tmp(root: &Path) -> u64 {
    let mut swept = 0;
    let Ok(namespaces) = std::fs::read_dir(root) else {
        return 0;
    };
    for ns_dir in namespaces.flatten() {
        let Ok(files) = std::fs::read_dir(ns_dir.path()) else {
            continue;
        };
        for f in files.flatten() {
            let name = f.file_name();
            let Some(pid) = orphan_tmp_pid(name.to_str().unwrap_or("")) else {
                continue;
            };
            if pid != std::process::id()
                && !process_alive(pid)
                && std::fs::remove_file(f.path()).is_ok()
            {
                swept += 1;
            }
        }
    }
    swept
}

/// Parses the writer pid out of an atomic-write temp file name
/// (`.{16-hex key}.tmp.{pid}.{seq}`); `None` for every other name.
fn orphan_tmp_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('.')?;
    let (key, rest) = rest.split_once(".tmp.")?;
    if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let (pid, seq) = rest.split_once('.')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse().ok()
}

/// Whether `pid` is a live process. Conservative: without procfs,
/// liveness cannot be determined, every pid reads as alive, and nothing
/// is swept.
fn process_alive(pid: u32) -> bool {
    if !Path::new("/proc/self").exists() {
        return true;
    }
    Path::new("/proc").join(pid.to_string()).exists()
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Counters of one store namespace. Invariants:
/// `misses == disk_hits + builds` (a memory miss is satisfied either
/// from disk or by running the builder) and `coalesced <= hits` (a
/// coalesced lookup is a hit that arrived while the key's one build was
/// still in flight — the request-deduplication signal the sweep service
/// reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Namespace name (`circuit`, `stage/route`, …).
    pub namespace: String,
    /// Lookups satisfied from memory.
    pub hits: u64,
    /// Lookups that missed memory.
    pub misses: u64,
    /// Memory misses satisfied from the disk layer.
    pub disk_hits: u64,
    /// Memory misses that ran the builder.
    pub builds: u64,
    /// Entries evicted under the capacity bound.
    pub evictions: u64,
    /// Hits that joined an in-flight build instead of running their own.
    pub coalesced: u64,
}

impl ToJson for NamespaceStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("namespace", self.namespace.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("disk_hits", self.disk_hits.to_json()),
            ("builds", self.builds.to_json()),
            ("evictions", self.evictions.to_json()),
            ("coalesced", self.coalesced.to_json()),
        ])
    }
}

impl NamespaceStats {
    /// Reads the stats back from their [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "namespace stats";
        Ok(NamespaceStats {
            namespace: j.str_field("namespace", CTX)?.to_string(),
            hits: j.count_field("hits", CTX)?,
            misses: j.count_field("misses", CTX)?,
            disk_hits: j.count_field("disk_hits", CTX)?,
            builds: j.count_field("builds", CTX)?,
            evictions: j.count_field("evictions", CTX)?,
            coalesced: j.count_field("coalesced", CTX)?,
        })
    }
}

/// A whole-store counter snapshot ([`ArtifactStore::stats`]), surfaced
/// beside the engine's `PassCacheStats` and appended to `sweep --json`
/// output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Per-namespace counters, name-sorted.
    pub namespaces: Vec<NamespaceStats>,
    /// Entries resident in memory at snapshot time.
    pub resident: u64,
    /// Orphaned atomic-write temp files swept when the store opened
    /// (dead writers' `.{key}.tmp.{pid}.{seq}` leftovers).
    pub tmp_swept: u64,
}

impl StoreStats {
    /// The entry for one namespace, if it was ever used.
    pub fn get(&self, namespace: &str) -> Option<&NamespaceStats> {
        self.namespaces.iter().find(|n| n.namespace == namespace)
    }

    /// Builder executions across the compile-pipeline stage namespaces —
    /// the number the warm-start proof drives to zero.
    pub fn pass_builds(&self) -> u64 {
        self.namespaces
            .iter()
            .filter(|n| n.namespace.starts_with(ns::STAGE_PREFIX))
            .map(|n| n.builds)
            .sum()
    }

    /// Store-wide totals `(hits, misses, disk_hits, builds, evictions)`.
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        self.namespaces.iter().fold((0, 0, 0, 0, 0), |acc, n| {
            (
                acc.0 + n.hits,
                acc.1 + n.misses,
                acc.2 + n.disk_hits,
                acc.3 + n.builds,
                acc.4 + n.evictions,
            )
        })
    }

    /// Store-wide coalesced-hit total (lookups that joined an in-flight
    /// build) — the request-deduplication counter the sweep service's
    /// smoke check asserts is non-zero under concurrent duplicates.
    pub fn coalesced_total(&self) -> u64 {
        self.namespaces.iter().map(|n| n.coalesced).sum()
    }

    /// Namespace-wise counter difference (`self − earlier`), saturating
    /// at zero, for snapshotting one request's activity out of a shared
    /// long-lived store. `resident` is carried over from `self` (it is a
    /// level, not a counter). Namespaces absent from `earlier` are kept
    /// whole; namespaces with no activity since `earlier` are dropped.
    #[must_use]
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        let namespaces = self
            .namespaces
            .iter()
            .filter_map(|n| {
                let base = earlier.get(&n.namespace);
                let sub = |now: u64, before: u64| now.saturating_sub(before);
                let d = NamespaceStats {
                    namespace: n.namespace.clone(),
                    hits: sub(n.hits, base.map_or(0, |b| b.hits)),
                    misses: sub(n.misses, base.map_or(0, |b| b.misses)),
                    disk_hits: sub(n.disk_hits, base.map_or(0, |b| b.disk_hits)),
                    builds: sub(n.builds, base.map_or(0, |b| b.builds)),
                    evictions: sub(n.evictions, base.map_or(0, |b| b.evictions)),
                    coalesced: sub(n.coalesced, base.map_or(0, |b| b.coalesced)),
                };
                let active = d.hits + d.misses + d.evictions + d.coalesced > 0;
                active.then_some(d)
            })
            .collect();
        StoreStats {
            namespaces,
            resident: self.resident,
            tmp_swept: self.tmp_swept,
        }
    }

    /// Reads the stats back from their [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let namespaces = match j.get("namespaces") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(NamespaceStats::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("store stats missing array `namespaces`".to_string()),
        };
        Ok(StoreStats {
            namespaces,
            resident: j.count_field("resident", "store stats")?,
            // Absent in records written before the sweep existed.
            tmp_swept: j.count_field("tmp_swept", "store stats").unwrap_or(0),
        })
    }

    /// Parses serialized stats (the inverse of [`ToJson::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first structural mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        StoreStats::from_json(&j)
    }
}

impl ToJson for StoreStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("namespaces", self.namespaces.to_json()),
            ("resident", self.resident.to_json()),
            ("tmp_swept", self.tmp_swept.to_json()),
        ])
    }
}

// ---------------------------------------------------------------------
// Stage-cached compilation
// ---------------------------------------------------------------------

/// Compiles `circuit` on `grid` (snake initial layout) through the shared
/// [`Pipeline::standard`] for `cfg`, memoizing **every stage** in the
/// store under its chained stable key ([`Pipeline::stage_keys`]): each
/// pass runs at most once per distinct (input, pass-prefix) fingerprint,
/// and pipelines sharing a prefix share the cached prefix artifacts.
/// `on_build` observes the metrics of every pass that actually ran.
/// Returns the final artifact and whether the final stage missed memory.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the grid has, or if a
/// pass or its post-validation fails (a configuration bug — every
/// schedule is checked by its strategy's validator on build).
pub fn compile_cached(
    store: &ArtifactStore,
    circuit: &Circuit,
    grid: &Grid,
    cfg: &PipelineConfig,
    mut on_build: impl FnMut(&PassMetrics),
) -> (Arc<CompileArtifact>, bool) {
    let pipeline = Pipeline::standard(cfg);
    let layout = Layout::snake(circuit.n_qubits(), grid);
    let input_key = CompileArtifact::input_key(circuit, &layout, grid);
    let keys = pipeline.stage_keys(input_key);

    let mut artifact: Option<Arc<CompileArtifact>> = None;
    let mut final_missed = false;
    let mut ws = CompileWorkspace::new();
    for (stage, &key) in pipeline.stages().iter().zip(&keys) {
        let namespace = ns::stage(stage.label());
        let prev = artifact.clone();
        let mut metrics = None;
        let (value, missed) = store.fetch_artifact(&namespace, key, || {
            let mut next = match &prev {
                Some(a) => (**a).clone(),
                None => CompileArtifact::new(circuit.clone(), layout.clone()),
            };
            let m = stage
                .run_timed(&mut next, grid, &mut ws)
                .unwrap_or_else(|e| panic!("compile pipeline: {e}"));
            metrics = Some(m);
            next
        });
        if let Some(m) = &metrics {
            on_build(m);
        }
        final_missed = missed;
        artifact = Some(value);
    }
    (
        artifact.expect("standard pipelines have at least one stage"),
        final_missed,
    )
}

// ---------------------------------------------------------------------
// Sweep journal
// ---------------------------------------------------------------------

/// An append-only job-completion journal: one JSON line per finished
/// sweep job, written through and flushed as workers complete, so an
/// interrupted sweep can resume exactly where it stopped. The file is
/// keyed by the sweep spec's stable fingerprint — a changed spec never
/// reads another spec's journal — and loading tolerates truncated or
/// corrupt lines (the interrupted write is simply re-run).
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl std::fmt::Debug for SweepJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJournal")
            .field("path", &self.path)
            .finish()
    }
}

impl SweepJournal {
    /// Opens (creating if needed) the journal for a spec key under `dir`.
    ///
    /// # Errors
    ///
    /// Returns the IO error if the directory or file cannot be created.
    pub fn open(dir: &Path, spec_key: u64) -> std::io::Result<SweepJournal> {
        Self::open_at(dir, format!("{spec_key:016x}.jsonl"))
    }

    /// Opens (creating if needed) a per-worker **shard** journal
    /// (`<spec key>.<label>.jsonl`) under `dir`. Distributed workers each
    /// stream completions into their own shard so no two processes ever
    /// append to the same file; [`SweepJournal::load_all`] reads every
    /// shard back for the merge. Non-filename-safe label characters are
    /// replaced with `-`.
    ///
    /// # Errors
    ///
    /// Returns the IO error if the directory or file cannot be created.
    pub fn open_shard(dir: &Path, spec_key: u64, label: &str) -> std::io::Result<SweepJournal> {
        let safe: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        Self::open_at(dir, format!("{spec_key:016x}.{safe}.jsonl"))
    }

    fn open_at(dir: &Path, file_name: String) -> std::io::Result<SweepJournal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(SweepJournal {
            path,
            file: Mutex::new(file),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads every valid `(job index, record)` line, in file order.
    /// Corrupt or truncated lines are skipped; duplicate indices are
    /// returned as-is (callers keep the last occurrence).
    pub fn load(&self) -> Vec<(u64, Json)> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        Self::parse_lines(&text)
    }

    fn parse_lines(text: &str) -> Vec<(u64, Json)> {
        text.lines()
            .filter_map(|line| {
                let j = Json::parse(line).ok()?;
                let index = j.count_field("index", "journal line").ok()?;
                Some((index, j.get("record")?.clone()))
            })
            .collect()
    }

    /// Loads every valid line of `spec_key`'s base journal **and** all of
    /// its worker shards under `dir`, concatenated in lexicographic file
    /// order (base first, shards by label). Same per-line tolerance as
    /// [`SweepJournal::load`]; duplicate indices across shards are
    /// returned as-is. Because every record is the output of the same
    /// pure evaluation function, which shard journaled a job never
    /// changes the merged bytes.
    pub fn load_all(dir: &Path, spec_key: u64) -> Vec<(u64, Json)> {
        let prefix = format!("{spec_key:016x}");
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_prefix(prefix.as_str()))
                    .is_some_and(|rest| {
                        rest == ".jsonl" || (rest.starts_with('.') && rest.ends_with(".jsonl"))
                    })
            })
            .collect();
        files.sort();
        let mut out = Vec::new();
        for p in files {
            if let Ok(text) = std::fs::read_to_string(&p) {
                out.extend(Self::parse_lines(&text));
            }
        }
        out
    }

    /// Appends one completed job, flushing so the line survives an
    /// immediate kill. Write errors are swallowed — the job simply
    /// re-runs on resume.
    pub fn append(&self, index: u64, record: &Json) {
        let line = Json::obj([("index", index.to_json()), ("record", record.clone())]).render();
        let mut file = lock_unpoisoned(&self.file);
        let _ = writeln!(file, "{line}");
        let _ = file.flush();
    }
}

// ---------------------------------------------------------------------
// Distributed job claims
// ---------------------------------------------------------------------

/// Per-job claim files coordinating distributed sweep workers through a
/// shared cache dir, with no coordinator process:
///
/// * **acquire** — `O_CREAT|O_EXCL` ([`std::fs::OpenOptions::create_new`])
///   on `<cache-dir>/v1/claims/<spec key>/<index>.claim`, so exactly one
///   of any number of racing processes wins a job;
/// * **heartbeat** — the holder periodically rewrites its claim file,
///   refreshing the mtime. The refresher dies with the process (SIGKILL
///   included), so a dead worker's claims stop being refreshed;
/// * **expiry** — a claim whose mtime is older than the TTL is stale.
///   A stealer first renames it to a unique tombstone (exactly one of
///   several concurrent stealers wins the rename) and then re-races the
///   vacated name under the normal `create_new` rules.
///
/// The claim file's JSON body (`{"worker":…,"pid":…}`) is diagnostic
/// only — correctness rests entirely on the atomic create/rename
/// operations. The directory lives under [`DISK_FORMAT_VERSION`], so a
/// layout change follows the same bump discipline as the artifact files.
pub struct JobClaims {
    dir: PathBuf,
    body: String,
    ttl: Duration,
    steal_seq: AtomicU64,
}

impl std::fmt::Debug for JobClaims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobClaims")
            .field("dir", &self.dir)
            .field("ttl", &self.ttl)
            .finish()
    }
}

impl JobClaims {
    /// The claims directory of one sweep spec, for a cache dir.
    pub fn claims_dir(cache_dir: &Path, spec_key: u64) -> PathBuf {
        cache_dir
            .join(DISK_FORMAT_VERSION)
            .join("claims")
            .join(format!("{spec_key:016x}"))
    }

    /// Opens (creating if needed) the claim directory for a spec key.
    /// `worker` is a diagnostic label written into claim bodies; `ttl`
    /// is how long an un-refreshed claim stays valid before another
    /// worker may steal it.
    ///
    /// # Errors
    ///
    /// Returns the IO error if the directory cannot be created.
    pub fn open(
        cache_dir: &Path,
        spec_key: u64,
        worker: &str,
        ttl: Duration,
    ) -> std::io::Result<JobClaims> {
        let dir = Self::claims_dir(cache_dir, spec_key);
        std::fs::create_dir_all(&dir)?;
        let body = Json::obj([
            ("worker", worker.to_json()),
            ("pid", u64::from(std::process::id()).to_json()),
        ])
        .render();
        Ok(JobClaims {
            dir,
            body,
            ttl,
            steal_seq: AtomicU64::new(0),
        })
    }

    fn claim_path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("{index}.claim"))
    }

    /// Tries to claim job `index`: wins a vacant claim atomically, or
    /// steals a stale one (un-refreshed for longer than the TTL).
    /// Returns whether this caller now holds the claim.
    pub fn try_claim(&self, index: u64) -> bool {
        let path = self.claim_path(index);
        if self.acquire(&path) {
            return true;
        }
        if !self.is_stale(&path) {
            return false;
        }
        // Steal: rename the stale claim to a unique tombstone — of any
        // number of concurrent stealers, exactly one rename succeeds —
        // then re-race the vacated name. Losing either race is fine:
        // some other worker holds the job now.
        let tombstone = self.dir.join(format!(
            ".steal.{index}.{}.{}",
            std::process::id(),
            self.steal_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::rename(&path, &tombstone).is_err() {
            return false;
        }
        let _ = std::fs::remove_file(&tombstone);
        self.acquire(&path)
    }

    /// `O_CREAT|O_EXCL` acquisition of one claim path.
    fn acquire(&self, path: &Path) -> bool {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut f) => {
                let _ = f.write_all(self.body.as_bytes());
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the claim at `path` has not been refreshed within the TTL.
    /// Unreadable metadata (including a just-released claim) reads as
    /// fresh — the next scan retries.
    fn is_stale(&self, path: &Path) -> bool {
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| mtime.elapsed().ok())
            .is_some_and(|age| age > self.ttl)
    }

    /// Rewrites the claim file for job `index`, refreshing its mtime.
    pub fn refresh(&self, index: u64) {
        let _ = std::fs::write(self.claim_path(index), self.body.as_bytes());
    }

    /// Releases the claim on job `index` (after its record is safely
    /// journaled). Best-effort: an unreleased claim merely goes stale.
    pub fn release(&self, index: u64) {
        let _ = std::fs::remove_file(self.claim_path(index));
    }

    /// Starts a background refresher for job `index`, rewriting the
    /// claim every quarter-TTL until the returned guard drops (panic
    /// safe — the guard stops the thread from its destructor). A worker
    /// killed outright loses the refresher with the process, so its
    /// claim goes stale and gets reclaimed — exactly the expiry story
    /// the distributed tests kill a real worker to prove.
    pub fn heartbeat(&self, index: u64) -> ClaimHeartbeat {
        let period = (self.ttl / 4).max(Duration::from_millis(5));
        let path = self.claim_path(index);
        let body = self.body.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::park_timeout(period);
                if thread_stop.load(Ordering::Relaxed) {
                    break;
                }
                let _ = std::fs::write(&path, body.as_bytes());
            }
        });
        ClaimHeartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the claim refresher when dropped (see [`JobClaims::heartbeat`]).
pub struct ClaimHeartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ClaimHeartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::pipeline::{RouteStrategy, ScheduleStrategy};

    fn demo_artifact(cfg: &PipelineConfig) -> CompileArtifact {
        let grid = Grid::new(3, 3);
        let mut c = Circuit::new(9);
        c.h(0);
        c.cx(0, 4);
        c.ccx(1, 3, 5);
        c.swap(2, 6);
        c.cz(7, 8);
        c.rz(8, 0.1234567891011);
        c.ry(3, -2.5);
        let art = CompileArtifact::new(c, Layout::snake(9, &grid));
        Pipeline::standard(cfg).run(art, &grid).unwrap().0
    }

    #[test]
    fn builds_once_per_key_across_threads() {
        let store = ArtifactStore::in_memory();
        let builds = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..8u64 {
                        let v = store.get_or_build("t", k % 3, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            k % 3 + 100
                        });
                        assert_eq!(*v % 100, k % 3);
                    }
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 3, "one build per key");
        let stats = store.namespace_stats("t");
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.builds, 3);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.hits, 4 * 8 - 3);
        assert!(stats.coalesced <= stats.hits);
        assert_eq!(store.resident(), 3);
    }

    #[test]
    fn concurrent_lookups_coalesce_onto_one_build() {
        use std::sync::Barrier;
        let store = ArtifactStore::in_memory();
        let entered = Barrier::new(2);
        let release = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                store.get_or_build("c", 9, || {
                    entered.wait(); // builder is now mid-flight
                    release.wait(); // …until the main thread releases it
                    42u32
                });
            });
            entered.wait();
            // The build is provably in flight: a second lookup of the
            // same key must coalesce onto it (block on the slot, never
            // run its own builder).
            let waiter =
                s.spawn(|| *store.get_or_build("c", 9, || -> u32 { unreachable!("coalesced") }));
            // Give the waiter time to reach the slot, then let the
            // builder finish.
            std::thread::sleep(std::time::Duration::from_millis(50));
            release.wait();
            assert_eq!(waiter.join().unwrap(), 42);
        });
        let stats = store.namespace_stats("c");
        assert_eq!(stats.builds, 1, "exactly one build");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.coalesced, 1, "the second lookup coalesced");
        // A lookup after the build completes is a plain (non-coalesced) hit.
        store.get_or_build("c", 9, || -> u32 { unreachable!("resident") });
        let stats = store.namespace_stats("c");
        assert_eq!((stats.hits, stats.coalesced), (2, 1));
    }

    #[test]
    fn stats_since_diffs_namespace_counters() {
        let store = ArtifactStore::in_memory();
        store.get_or_build("a", 1, || 1u32);
        store.get_or_build("b", 1, || 1u32);
        let base = store.stats();
        store.get_or_build("a", 1, || 1u32); // hit after the snapshot
        store.get_or_build("a", 2, || 2u32); // build after the snapshot
        let delta = store.stats().since(&base);
        let a = delta.get("a").expect("a was active since the snapshot");
        assert_eq!((a.hits, a.misses, a.builds), (1, 1, 1));
        assert!(delta.get("b").is_none(), "b was idle since the snapshot");
        assert_eq!(delta.resident, 3, "resident is a level, not a counter");
        // A self-diff is empty.
        let now = store.stats();
        assert!(now.since(&now).namespaces.is_empty());
    }

    #[test]
    fn namespaces_isolate_keys() {
        let store = ArtifactStore::in_memory();
        let a = store.get_or_build("a", 7, || 1u32);
        let b = store.get_or_build("b", 7, || 2u32);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(store.namespace_stats("a").misses, 1);
        assert_eq!(store.namespace_stats("b").misses, 1);
        assert_eq!(store.namespace_stats("never_used").misses, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let store = ArtifactStore::with_config(StoreConfig {
            capacity: Some(2),
            cache_dir: None,
        });
        store.get_or_build("t", 1, || 1u32);
        store.get_or_build("t", 2, || 2u32);
        store.get_or_build("t", 1, || -> u32 { unreachable!("still resident") }); // refresh 1
        store.get_or_build("t", 3, || 3u32); // evicts 2 (least recent)
        assert_eq!(store.resident(), 2);
        assert_eq!(store.namespace_stats("t").evictions, 1);
        // 1 and 3 are still resident; 2 rebuilds.
        store.get_or_build("t", 1, || -> u32 { unreachable!("1 was refreshed") });
        let rebuilt = AtomicU64::new(0);
        store.get_or_build("t", 2, || {
            rebuilt.fetch_add(1, Ordering::Relaxed);
            2u32
        });
        assert_eq!(rebuilt.load(Ordering::Relaxed), 1, "2 was evicted");
        let stats = store.namespace_stats("t");
        assert_eq!(stats.builds, 4);
        assert!(stats.evictions >= 2, "inserting 2 re-evicted something");
    }

    #[test]
    fn lock_unpoisoned_recovers_from_a_panicked_holder() {
        let m = std::sync::Mutex::new(5u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.lock().is_err(), "mutex is poisoned");
        assert_eq!(*lock_unpoisoned(&m), 5);
        *lock_unpoisoned(&m) = 6;
        assert_eq!(*lock_unpoisoned(&m), 6);
    }

    #[test]
    fn compile_artifact_codec_roundtrips_exactly() {
        for cfg in [
            PipelineConfig::default(),
            PipelineConfig::default()
                .with_router(RouteStrategy::Lookahead { window: 4 })
                .with_scheduler(ScheduleStrategy::Asap),
            PipelineConfig::default().with_fuse(),
        ] {
            let art = demo_artifact(&cfg);
            let decoded = CompileArtifact::decode(&art.encode()).unwrap();
            assert_eq!(decoded, art, "{cfg:?}");
            // Byte-stable re-encode (bit-exact floats).
            assert_eq!(decoded.encode().render(), art.encode().render());
        }
        // An unscheduled artifact (slots: null) round-trips too.
        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.u(0);
        let unscheduled = CompileArtifact::new(c, Layout::snake(4, &grid));
        let decoded = CompileArtifact::decode(&unscheduled.encode()).unwrap();
        assert_eq!(decoded, unscheduled);
    }

    // A tiny builder extension used by the codec test above.
    trait UExt {
        fn u(&mut self, q: usize);
    }
    impl UExt for Circuit {
        fn u(&mut self, q: usize) {
            self.push(Gate::OneQ {
                q,
                kind: OneQ::U {
                    theta: 0.25,
                    phi: -1.5,
                    lam: 3.25,
                },
            });
        }
    }

    #[test]
    fn codec_rejects_corrupt_documents() {
        let art = demo_artifact(&PipelineConfig::default());
        let good = art.encode();
        for mutate in [
            |j: &mut Json| {
                // Slot referencing a gate outside the circuit.
                if let Some(Json::Arr(slots)) = find_mut(j, "slots") {
                    slots.push(Json::Arr(vec![Json::Num(1e9)]));
                }
            },
            |j: &mut Json| {
                // Layout collision.
                if let Some(layout) = find_mut(j, "initial_layout") {
                    if let Some(Json::Arr(tbl)) = find_mut(layout, "log_to_phys") {
                        tbl[1] = tbl[0].clone();
                    }
                }
            },
            |j: &mut Json| {
                // Unknown gate tag.
                if let Some(circ) = find_mut(j, "circuit") {
                    if let Some(Json::Arr(gates)) = find_mut(circ, "gates") {
                        gates[0] = Json::Arr(vec!["warp".to_json(), 0u64.to_json()]);
                    }
                }
            },
        ] {
            let mut bad = good.clone();
            mutate(&mut bad);
            assert!(CompileArtifact::decode(&bad).is_err());
        }
        assert!(CompileArtifact::decode(&Json::Null).is_err());
        assert!(ExecReport::decode(&Json::obj([("x", Json::Null)])).is_err());
        assert!(CosimReport::decode(&Json::Null).is_err());
    }

    #[test]
    fn codec_rejects_implausible_register_sizes_without_allocating() {
        // A corrupt-but-parseable file must be a decode error, never a
        // giant allocation: 2^53−1 qubits would abort the process if the
        // decoder trusted it.
        let huge = (MAX_DECODED_QUBITS + 1).to_json();
        let layout = Json::obj([
            ("log_to_phys", Json::Arr(vec![])),
            ("n_physical", huge.clone()),
        ]);
        assert!(layout_from_json(&layout).is_err());
        let circuit = Json::obj([("n_qubits", huge), ("gates", Json::Arr(vec![]))]);
        assert!(circuit_from_json(&circuit).is_err());
        // The bound is generous: the paper grid decodes fine.
        let grid = Grid::new(32, 32);
        let layout = Layout::snake(1024, &grid);
        assert_eq!(layout_from_json(&layout_to_json(&layout)).unwrap(), layout);
    }

    fn find_mut<'a>(j: &'a mut Json, key: &str) -> Option<&'a mut Json> {
        match j {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[test]
    fn store_stats_roundtrip_through_json() {
        let store = ArtifactStore::in_memory();
        store.get_or_build("stage/lower", 1, || 1u32);
        store.get_or_build("stage/lower", 1, || 1u32);
        store.get_or_build("baseline", 2, || 2u32);
        let stats = store.stats();
        assert_eq!(stats.namespaces.len(), 2);
        assert_eq!(stats.get("stage/lower").unwrap().hits, 1);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.totals(), (1, 2, 0, 2, 0));
        assert_eq!(stats.coalesced_total(), 0);
        let parsed = StoreStats::parse(&stats.to_json_string()).unwrap();
        assert_eq!(parsed, stats);
        assert!(StoreStats::parse("{}").is_err());
        // Records written before the tmp sweep existed lack the field.
        let legacy = StoreStats::parse(r#"{"namespaces": [], "resident": 0}"#).unwrap();
        assert_eq!(legacy.tmp_swept, 0);
        // misses == disk_hits + builds and coalesced <= hits everywhere.
        for n in &stats.namespaces {
            assert_eq!(n.misses, n.disk_hits + n.builds);
            assert!(n.coalesced <= n.hits);
        }
    }

    #[test]
    fn orphan_tmp_names_parse_exactly() {
        assert_eq!(
            orphan_tmp_pid(".00000000deadbeef.tmp.4242.7"),
            Some(4242),
            "well-formed temp name"
        );
        for name in [
            "00000000deadbeef.tmp.4242.7",   // no leading dot
            ".00000000deadbeef.tmp.4242",    // no sequence part
            ".00000000deadbee.tmp.4242.7",   // 15-char key
            ".00000000deadbeef.tmp.4242.7x", // non-digit sequence
            ".00000000deadbeef.tmp.x.7",     // non-digit pid
            "00000000deadbeef.json",         // a real artifact
            ".steal.3.4242.0",               // a claim tombstone
            "00000000deadbeef.w2.jsonl",     // a shard journal
        ] {
            assert_eq!(orphan_tmp_pid(name), None, "{name}");
        }
    }

    #[test]
    fn open_sweeps_dead_writers_orphan_tmp_files() {
        let dir = std::env::temp_dir().join(format!(
            "digiq-store-tmp-sweep-{}-{:x}",
            std::process::id(),
            qsim::rng::stable_hash_str("tmp-sweep", &[line!() as u64])
        ));
        let ns_dir = dir.join(DISK_FORMAT_VERSION).join("baseline");
        std::fs::create_dir_all(&ns_dir).unwrap();
        // An orphan from a provably dead writer (pid far beyond pid_max),
        // one from this live process, and a real artifact file.
        let orphan = ns_dir.join(".00000000deadbeef.tmp.999999999.0");
        let ours = ns_dir.join(format!(".00000000deadbeef.tmp.{}.1", std::process::id()));
        let artifact = ns_dir.join("00000000deadbeef.json");
        for p in [&orphan, &ours, &artifact] {
            std::fs::write(p, "{}").unwrap();
        }
        let store = ArtifactStore::with_config(StoreConfig {
            capacity: None,
            cache_dir: Some(dir.clone()),
        });
        assert!(!orphan.exists(), "dead writer's orphan swept");
        assert!(ours.exists(), "live writer's temp file kept");
        assert!(artifact.exists(), "artifacts untouched");
        assert_eq!(store.tmp_swept(), 1);
        assert_eq!(store.stats().tmp_swept, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claims_acquire_once_and_steal_only_stale() {
        let dir = std::env::temp_dir().join(format!(
            "digiq-store-claims-{}-{:x}",
            std::process::id(),
            qsim::rng::stable_hash_str("claims", &[line!() as u64])
        ));
        let ttl = Duration::from_millis(80);
        let a = JobClaims::open(&dir, 7, "a", ttl).unwrap();
        let b = JobClaims::open(&dir, 7, "b", ttl).unwrap();
        assert!(a.try_claim(3), "vacant claim acquired");
        assert!(!b.try_claim(3), "fresh claim is not stealable");
        // A heartbeated claim outlives the TTL un-stolen.
        let hb = a.heartbeat(3);
        std::thread::sleep(ttl * 3);
        assert!(!b.try_claim(3), "refreshed claim stays fresh");
        drop(hb);
        // Without the refresher the claim goes stale and is stolen.
        std::thread::sleep(ttl * 2);
        assert!(b.try_claim(3), "stale claim stolen");
        assert!(!a.try_claim(3), "the thief's claim is fresh again");
        // Releasing vacates the name for a plain re-acquisition.
        b.release(3);
        assert!(a.try_claim(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_journals_merge_with_the_base_journal() {
        let dir = std::env::temp_dir().join(format!(
            "digiq-store-shards-{}-{:x}",
            std::process::id(),
            qsim::rng::stable_hash_str("shards", &[line!() as u64])
        ));
        let base = SweepJournal::open(&dir, 5).unwrap();
        base.append(0, &Json::Num(10.0));
        let w0 = SweepJournal::open_shard(&dir, 5, "w0").unwrap();
        w0.append(2, &Json::Num(12.0));
        let w1 = SweepJournal::open_shard(&dir, 5, "w1").unwrap();
        w1.append(1, &Json::Num(11.0));
        // A different spec's journal is invisible to this spec's merge.
        SweepJournal::open_shard(&dir, 6, "w0")
            .unwrap()
            .append(9, &Json::Num(99.0));
        let mut merged = SweepJournal::load_all(&dir, 5);
        merged.sort_by_key(|(i, _)| *i);
        assert_eq!(
            merged,
            vec![
                (0, Json::Num(10.0)),
                (1, Json::Num(11.0)),
                (2, Json::Num(12.0)),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_keys_discriminate() {
        let mut keys = vec![
            hardware_key(ControllerDesign::SfqMimdNaive, 1),
            hardware_key(ControllerDesign::SfqMimdNaive, 2),
            hardware_key(ControllerDesign::SfqMimdDecomp, 1),
            hardware_key(ControllerDesign::DigiqMin { bs: 2 }, 2),
            hardware_key(ControllerDesign::DigiqMin { bs: 4 }, 2),
            hardware_key(ControllerDesign::DigiqOpt { bs: 4 }, 2),
            basis_kind_key(MinBasisKind::IdealRyT),
            basis_kind_key(MinBasisKind::Rich4),
        ];
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8, "all content keys distinct");
        assert_eq!(
            hardware_key(ControllerDesign::DigiqOpt { bs: 8 }, 2),
            hardware_key(ControllerDesign::DigiqOpt { bs: 8 }, 2)
        );
    }
}
